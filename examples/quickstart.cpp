// Quickstart: simulate a 16-server MPC cluster, distribute two relations,
// run a parallel hash join, and read the communication meter.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "workload/generator.h"

int main() {
  using namespace mpcqp;

  // A cluster is p simulated shared-nothing servers plus a communication
  // meter. All randomness is seeded: runs are reproducible.
  const int p = 16;
  Cluster cluster(p, /*seed=*/42);

  // Synthesize two relations R(x, y) and S(y, z), 100k rows each.
  Rng rng(7);
  const Relation r = GenerateUniform(rng, 100000, 2, /*domain=*/50000);
  const Relation s = GenerateUniform(rng, 100000, 2, /*domain=*/50000);

  // Inputs start block-partitioned across the servers (that initial
  // placement is free - the MPC model assumes data begins spread out).
  const DistRelation r_dist = DistRelation::Scatter(r, p);
  const DistRelation s_dist = DistRelation::Scatter(s, p);

  // One round: both relations are re-partitioned by hash of the join key
  // (R.y == S.y), then every server joins its fragments locally.
  const DistRelation joined =
      ParallelHashJoin(cluster, r_dist, s_dist, /*left_keys=*/{1},
                       /*right_keys=*/{0});

  std::printf("query: R(x,y) JOIN S(y,z) ON R.y = S.y\n");
  std::printf("|R| = %lld, |S| = %lld, |OUT| = %lld\n",
              static_cast<long long>(r.size()),
              static_cast<long long>(s.size()),
              static_cast<long long>(joined.TotalSize()));
  std::printf("\ncost report:\n%s\n",
              cluster.cost_report().ToString().c_str());
  std::printf(
      "\nideal load IN/p = %lld tuples; the hash join should be within a "
      "few percent of it on this skew-free input.\n",
      static_cast<long long>((r.size() + s.size()) / p));
  return 0;
}
