// A star-schema warehouse query (the slide-52 flavor):
//
//   SELECT o.customer, SUM(o.price)
//   FROM orders o JOIN customers c ON o.customer = c.id
//                 JOIN products  d ON o.product  = d.id
//   GROUP BY o.customer
//
// run as an acyclic join with distributed GYM over its join tree, followed
// by a distributed group-by (hash partition on the grouping key + local
// aggregation).
//
//   ./build/examples/star_warehouse

#include <cstdio>

#include "acyclic/gym.h"
#include "mpc/cluster.h"
#include "mpc/exchange.h"
#include "query/ghd.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

int main() {
  using namespace mpcqp;

  const int p = 16;
  Rng rng(11);

  // orders(customer, product, price): facts.
  const int64_t num_orders = 50000;
  const uint64_t num_customers = 2000;
  const uint64_t num_products = 500;
  Relation orders(3);
  for (int64_t i = 0; i < num_orders; ++i) {
    orders.AppendRow({rng.Uniform(num_customers), rng.Uniform(num_products),
                      1 + rng.Uniform(100)});
  }
  // customers(id): only 60% of ids are active accounts.
  Relation customers(1);
  for (uint64_t c = 0; c < num_customers; ++c) {
    if (rng.Uniform(10) < 6) customers.AppendRow({c});
  }
  // products(id): a subset is in the current catalog.
  Relation products(1);
  for (uint64_t d = 0; d < num_products; ++d) {
    if (rng.Uniform(10) < 8) products.AppendRow({d});
  }

  // The join part as a CQ: orders(c, d, v), customers(c), products(d).
  const auto q = ConjunctiveQuery::Parse(
      "Q(c,d,v) :- Orders(c,d,v), Customers(c), Products(d)");
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }

  Cluster cluster(p, 5);
  Rng gym_rng(13);
  GymOptions options;
  options.optimized = true;
  const auto tree = BuildJoinTree(*q);
  const GymResult joined = GymJoin(
      cluster, *q, *tree,
      {DistRelation::Scatter(orders, p), DistRelation::Scatter(customers, p),
       DistRelation::Scatter(products, p)},
      gym_rng, options);

  // Distributed GROUP BY customer, SUM(price): one more round.
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation by_customer =
      HashPartition(cluster, joined.output, {0}, hash, "group-by shuffle");
  DistRelation aggregated(2, p);
  for (int s = 0; s < p; ++s) {
    aggregated.fragment(s) =
        GroupBySum(by_customer.fragment(s), {0}, 2).value();
  }

  std::printf("orders=%lld customers=%lld products=%lld\n",
              static_cast<long long>(orders.size()),
              static_cast<long long>(customers.size()),
              static_cast<long long>(products.size()));
  std::printf("qualifying order lines: %lld; customer groups: %lld\n",
              static_cast<long long>(joined.output.TotalSize()),
              static_cast<long long>(aggregated.TotalSize()));
  std::printf("GYM join rounds: %d; total rounds incl. group-by: %d\n",
              joined.rounds, cluster.cost_report().num_rounds());
  std::printf("max per-server load: %lld tuples (IN/p = %lld)\n",
              static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
              static_cast<long long>(
                  (orders.size() + customers.size() + products.size()) / p));

  // Show a few result groups.
  const Relation sample = aggregated.fragment(0);
  std::printf("\nsample groups (customer, sum_price):\n%s\n",
              sample.ToString(5).c_str());
  return 0;
}
