// Triangle counting on a random directed graph, three ways:
//   1. iterative binary joins  (2 rounds, what most systems do),
//   2. HyperCube               (1 round, load N/p^{2/3}),
//   3. SkewHC                  (1 round, robust to heavy vertices).
// The graph gets a planted clique so both skew and real triangles exist.
//
//   ./build/examples/triangle_counting

#include <cstdio>

#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "query/query.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

int main() {
  using namespace mpcqp;

  const int p = 27;
  Rng rng(2024);
  // 3000-node graph, 40k random edges, plus a 30-node clique (adds
  // 30*29*28 directed triangles and heavy-degree vertices).
  Relation edges = GenerateRandomGraph(rng, 3000, 40000);
  edges = AddClique(edges, /*first_node=*/5000, /*clique_nodes=*/30);

  // Triangle query over three copies of the edge relation.
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(DistRelation::Scatter(edges, p));
  }

  std::printf("graph: %lld edges (incl. 30-clique); p = %d servers\n\n",
              static_cast<long long>(edges.size()), p);

  long long counts[3] = {0, 0, 0};
  {
    Cluster cluster(p, 1);
    Rng plan_rng(3);
    const BinaryPlanResult result =
        IterativeBinaryJoin(cluster, q, atoms, plan_rng);
    counts[0] = result.output.TotalSize();
    std::printf("binary joins : %lld triangles, r=%d, L=%lld tuples\n",
                counts[0], cluster.cost_report().num_rounds(),
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()));
  }
  {
    Cluster cluster(p, 1);
    const HyperCubeResult result = HyperCubeJoin(cluster, q, atoms);
    counts[1] = result.output.TotalSize();
    std::printf("HyperCube    : %lld triangles, r=%d, L=%lld tuples "
                "(shares %dx%dx%d)\n",
                counts[1], cluster.cost_report().num_rounds(),
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
                result.shares[0], result.shares[1], result.shares[2]);
  }
  {
    Cluster cluster(p, 1);
    const SkewHcResult result = SkewHcJoin(cluster, q, atoms);
    counts[2] = result.output.TotalSize();
    std::printf("SkewHC       : %lld triangles, r=%d, L=%lld tuples "
                "(%zu residual queries)\n",
                counts[2], cluster.cost_report().num_rounds(),
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
                result.residuals.size());
  }

  if (counts[0] == counts[1] && counts[1] == counts[2]) {
    std::printf("\nall three agree: %lld directed triangles (%lld "
                "undirected).\n",
                counts[0], counts[0] / 6);
  } else {
    std::printf("\nERROR: counts disagree!\n");
    return 1;
  }
  return 0;
}
