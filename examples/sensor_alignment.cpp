// Similarity (band) join: align two sensor streams on timestamps that
// differ by at most epsilon ticks — one of the deck's motivating
// applications of distributed sorting (slide 99).
//
//   ./build/examples/sensor_alignment

#include <cstdio>

#include "mpc/cluster.h"
#include "sort/band_join.h"
#include "workload/generator.h"

int main() {
  using namespace mpcqp;

  const int p = 16;
  const Value epsilon = 5;  // Clock skew tolerance, in ticks.
  Rng rng(77);

  // Stream A: (timestamp, reading); stream B: (timestamp, reading).
  // B's clock drifts a little against A's.
  Relation stream_a(2);
  Relation stream_b(2);
  Value clock = 0;
  for (int i = 0; i < 30000; ++i) {
    clock += 1 + rng.Uniform(6);
    stream_a.AppendRow({clock, rng.Uniform(1000)});
    if (rng.Uniform(3) == 0) {
      const Value drift = rng.Uniform(2 * epsilon + 1);
      stream_b.AppendRow({clock + drift - epsilon, rng.Uniform(1000)});
    }
  }

  Cluster cluster(p, 9);
  const DistRelation pairs =
      BandJoin(cluster, DistRelation::Scatter(stream_a, p),
               DistRelation::Scatter(stream_b, p), /*left_col=*/0,
               /*right_col=*/0, epsilon);

  std::printf("stream A: %lld readings, stream B: %lld readings\n",
              static_cast<long long>(stream_a.size()),
              static_cast<long long>(stream_b.size()));
  std::printf("aligned pairs within %llu ticks: %lld\n",
              static_cast<unsigned long long>(epsilon),
              static_cast<long long>(pairs.TotalSize()));
  std::printf("\ncost report:\n%s\n",
              cluster.cost_report().ToString().c_str());
  std::printf(
      "\nthe 3 rounds are: PSRS sample broadcast, PSRS range partition, "
      "and the epsilon-window replication of stream A — load stays near "
      "IN/p because few readings sit within epsilon of a partition "
      "boundary.\n");
  return 0;
}
