// Distributed matrix multiplication three ways (deck slides 107-126):
//   1. as SQL over sparse (i, j, v) relations  - 2 rounds,
//   2. the 1-round rectangle-block algorithm    - C ~ n^4/L,
//   3. the multi-round square-block algorithm   - C ~ n^3/sqrt(L).
// All three must agree with the serial product exactly (integer entries).
//
//   ./build/examples/distributed_matmul

#include <cstdio>

#include "matmul/block_mm.h"
#include "matmul/matrix.h"
#include "matmul/sql_mm.h"
#include "mpc/cluster.h"

int main() {
  using namespace mpcqp;

  const int n = 64;
  const int p = 16;
  Rng rng(123);
  Matrix a = RandomMatrix(rng, n, n, 9);
  Matrix b = RandomMatrix(rng, n, n, 9);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ++a.at(i, j);  // Strictly positive: the sparse view is lossless.
      ++b.at(i, j);
    }
  }
  const Matrix expected = MultiplySerial(a, b);
  std::printf("multiplying two dense %dx%d integer matrices on %d servers\n\n",
              n, n, p);

  {
    Cluster cluster(p, 1);
    const DistRelation c_rel = SqlMatrixMultiply(
        cluster, DistRelation::Scatter(MatrixToRelation(a), p),
        DistRelation::Scatter(MatrixToRelation(b), p));
    const bool ok = RelationToMatrix(c_rel.Collect(), n, n) == expected;
    std::printf("SQL join+group-by : rounds=%d  L=%6lld tuples   %s\n",
                cluster.cost_report().num_rounds(),
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
                ok ? "correct" : "WRONG");
  }
  {
    Cluster cluster(p, 1);
    const OneRoundMmResult result = RectangleBlockMm(cluster, a, b);
    std::printf("rectangle-block   : rounds=%d  L=%6lld elements  %s "
                "(K=%d)\n",
                cluster.cost_report().num_rounds(),
                static_cast<long long>(cluster.cost_report().MaxLoadValues()),
                result.c == expected ? "correct" : "WRONG", result.grid_dim);
  }
  {
    Cluster cluster(p, 1);
    const SquareBlockMmResult result = SquareBlockMm(cluster, a, b, 4);
    std::printf("square-block H=4  : rounds=%d  L=%6lld elements  %s\n",
                result.rounds,
                static_cast<long long>(cluster.cost_report().MaxLoadValues()),
                result.c == expected ? "correct" : "WRONG");
  }

  std::printf(
      "\ntakeaway (slide 126): the multi-round algorithm trades rounds for "
      "a much smaller per-round load; the 1-round algorithm must ship "
      "whole row/column panels.\n");
  return 0;
}
