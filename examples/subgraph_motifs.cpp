// Subgraph (motif) queries on a graph — the application domain of the
// deck's slide-97 systems (BiGJoin, SEED, TwinTwigJoin, PSgL). Counts
// directed 4-cycles A->B->C->D->A two ways: the one-round HyperCube and
// the multi-round BiGJoin-style plan, then length-3 paths via the planner.
//
//   ./build/examples/subgraph_motifs

#include <cstdio>

#include "mpc/cluster.h"
#include "multiway/bigjoin.h"
#include "multiway/hypercube.h"
#include "planner/planner.h"
#include "query/query.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

int main() {
  using namespace mpcqp;

  const int p = 16;
  Rng rng(5);
  Relation edges = GenerateRandomGraph(rng, 2500, 25000);
  edges = AddClique(edges, 9000, 12);  // Plant motifs + skew.

  std::printf("graph: %lld edges; p = %d\n\n",
              static_cast<long long>(edges.size()), p);

  // Directed 4-cycle: E(a,b), E(b,c), E(c,d), E(d,a).
  const auto cycle =
      ConjunctiveQuery::Parse("Q(a,b,c,d) :- E1(a,b), E2(b,c), E3(c,d), "
                              "E4(d,a)");
  if (!cycle.ok()) return 1;
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(DistRelation::Scatter(edges, p));
  }

  long long hc_count = 0;
  long long big_count = 0;
  {
    Cluster cluster(p, 1);
    const HyperCubeResult result = HyperCubeJoin(cluster, *cycle, atoms);
    hc_count = result.output.TotalSize();
    std::printf("4-cycles via HyperCube : %lld  (r=%d, L=%lld)\n", hc_count,
                cluster.cost_report().num_rounds(),
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()));
  }
  {
    Cluster cluster(p, 1);
    const BigJoinResult result = BigJoin(cluster, *cycle, atoms);
    big_count = result.output.TotalSize();
    std::printf("4-cycles via BiGJoin   : %lld  (r=%d, L=%lld)\n", big_count,
                result.rounds,
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()));
  }
  if (hc_count != big_count) {
    std::printf("ERROR: counts disagree\n");
    return 1;
  }

  // Length-3 paths, planner's choice.
  const auto path = ConjunctiveQuery::Parse("P1(a,b), P2(b,c), P3(c,d)");
  if (!path.ok()) return 1;
  std::vector<DistRelation> path_atoms;
  for (int j = 0; j < 3; ++j) {
    path_atoms.push_back(DistRelation::Scatter(edges, p));
  }
  const PlanChoice choice = ChoosePlan(*path, path_atoms, p);
  Cluster cluster(p, 1);
  Rng plan_rng(7);
  const DistRelation paths =
      ExecutePlan(cluster, *path, path_atoms, choice, plan_rng);
  std::printf(
      "\nlength-3 paths via planner (%s, skew detected: %s): %lld  "
      "(r=%d, L=%lld)\n",
      PlanAlgorithmName(choice.chosen.algorithm),
      choice.input_is_skewed ? "yes" : "no",
      static_cast<long long>(paths.TotalSize()),
      cluster.cost_report().num_rounds(),
      static_cast<long long>(cluster.cost_report().MaxLoadTuples()));
  return 0;
}
