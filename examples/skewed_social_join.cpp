// Skew in the wild: joining a power-law "follows" edge list with itself
// to list paths of length two (who can see whose posts via a reshare).
// Celebrity accounts make the join key badly skewed; the plain hash join
// melts one server while the skew-aware join spreads the heavy keys over
// Cartesian grids (deck slides 27-30: "State of the art ... DIY").
//
//   ./build/examples/skewed_social_join

#include <cstdio>

#include "join/hash_join.h"
#include "join/heavy_hitters.h"
#include "join/skew_join.h"
#include "mpc/cluster.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

int main() {
  using namespace mpcqp;

  const int p = 64;
  const int64_t edges = 100000;
  const uint64_t users = 20000;
  Rng rng(3);
  // follows(follower, followee): followee popularity is Zipf(1.4) -> a
  // handful of celebrity accounts hold a large share of all edges.
  const Relation follows = GenerateZipf(rng, edges, 2, users, 1, 1.4);

  const DistRelation dist = DistRelation::Scatter(follows, p);
  const auto hitters = FindHeavyHitters(dist, 1, edges * 2 / p);
  std::printf("follows: %lld edges over %llu users; %zu celebrity accounts "
              "above the 2|E|/p degree threshold\n",
              static_cast<long long>(edges),
              static_cast<unsigned long long>(users), hitters.size());
  if (!hitters.empty()) {
    std::printf("hottest account: user %llu with %lld followers (IN/p = "
                "%lld)\n",
                static_cast<unsigned long long>(hitters[0].value),
                static_cast<long long>(hitters[0].count),
                static_cast<long long>(2 * edges / p));
  }

  // Self-join: follows(a, b) JOIN follows(b, c).
  long long out_hash = 0;
  long long out_skew = 0;
  {
    Cluster cluster(p, 9);
    const DistRelation out =
        ParallelHashJoin(cluster, dist, dist, {1}, {0});
    out_hash = out.TotalSize();
    std::printf("\nplain hash join : L = %6lld tuples, rounds = %d\n",
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
                cluster.cost_report().num_rounds());
  }
  {
    Cluster cluster(p, 9);
    Rng join_rng(17);
    const DistRelation out = SkewAwareJoin(cluster, dist, dist, 1, 0,
                                           join_rng);
    out_skew = out.TotalSize();
    std::printf("skew-aware join : L = %6lld tuples, rounds = %d\n",
                static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
                cluster.cost_report().num_rounds());
  }

  if (out_hash != out_skew) {
    std::printf("ERROR: outputs disagree (%lld vs %lld)\n", out_hash,
                out_skew);
    return 1;
  }
  std::printf("\nboth algorithms produce the same %lld length-2 paths; the "
              "skew-aware join just pays far less for the celebrities.\n",
              out_hash);
  return 0;
}
