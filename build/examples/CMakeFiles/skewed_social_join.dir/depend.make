# Empty dependencies file for skewed_social_join.
# This may be replaced when dependencies are built.
