file(REMOVE_RECURSE
  "CMakeFiles/skewed_social_join.dir/skewed_social_join.cpp.o"
  "CMakeFiles/skewed_social_join.dir/skewed_social_join.cpp.o.d"
  "skewed_social_join"
  "skewed_social_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_social_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
