# Empty dependencies file for star_warehouse.
# This may be replaced when dependencies are built.
