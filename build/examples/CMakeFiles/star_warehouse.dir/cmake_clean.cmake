file(REMOVE_RECURSE
  "CMakeFiles/star_warehouse.dir/star_warehouse.cpp.o"
  "CMakeFiles/star_warehouse.dir/star_warehouse.cpp.o.d"
  "star_warehouse"
  "star_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
