file(REMOVE_RECURSE
  "CMakeFiles/sensor_alignment.dir/sensor_alignment.cpp.o"
  "CMakeFiles/sensor_alignment.dir/sensor_alignment.cpp.o.d"
  "sensor_alignment"
  "sensor_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
