# Empty dependencies file for sensor_alignment.
# This may be replaced when dependencies are built.
