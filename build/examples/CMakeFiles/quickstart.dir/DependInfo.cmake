
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acyclic/CMakeFiles/mpcqp_acyclic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/mpcqp_join.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mpcqp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/matmul/CMakeFiles/mpcqp_matmul.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpcqp_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/multiway/CMakeFiles/mpcqp_multiway.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/mpcqp_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mpcqp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/mpcqp_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mpcqp_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
