# Empty dependencies file for distributed_matmul.
# This may be replaced when dependencies are built.
