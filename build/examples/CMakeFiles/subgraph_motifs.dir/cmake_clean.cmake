file(REMOVE_RECURSE
  "CMakeFiles/subgraph_motifs.dir/subgraph_motifs.cpp.o"
  "CMakeFiles/subgraph_motifs.dir/subgraph_motifs.cpp.o.d"
  "subgraph_motifs"
  "subgraph_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
