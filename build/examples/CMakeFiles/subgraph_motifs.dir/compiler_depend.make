# Empty compiler generated dependencies file for subgraph_motifs.
# This may be replaced when dependencies are built.
