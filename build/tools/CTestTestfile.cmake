# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_analyze "/root/repo/build/tools/mpcqp_run" "--query" "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)" "--analyze")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hypercube_verify "/root/repo/build/tools/mpcqp_run" "--query" "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)" "--gen" "R=uniform:2000:400" "--gen" "S=uniform:2000:400" "--gen" "T=uniform:2000:400" "--servers" "27" "--algorithm" "hypercube" "--verify")
set_tests_properties(cli_hypercube_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_skewhc_verify "/root/repo/build/tools/mpcqp_run" "--query" "R(x,y), S(y,z), T(z,x)" "--gen" "R=uniform:1500:300" "--gen" "S=zipf:1500:300:1.4" "--gen" "T=uniform:1500:300" "--servers" "16" "--algorithm" "skewhc" "--verify")
set_tests_properties(cli_skewhc_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gym_verify "/root/repo/build/tools/mpcqp_run" "--query" "A(x,y), B(y,z), C(z,w)" "--gen" "A=uniform:1200:200" "--gen" "B=uniform:1200:200" "--gen" "C=uniform:1200:200" "--servers" "8" "--algorithm" "gym" "--verify")
set_tests_properties(cli_gym_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_binary_verify "/root/repo/build/tools/mpcqp_run" "--query" "A(x,y), B(y,z)" "--gen" "A=degree:2000:10" "--gen" "B=uniform:2000:300" "--servers" "8" "--algorithm" "binary" "--verify")
set_tests_properties(cli_binary_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_planner_verify "/root/repo/build/tools/mpcqp_run" "--query" "R(x,y), S(y,z), T(z,x)" "--gen" "R=uniform:1000:200" "--gen" "S=zipf:1000:200:1.5" "--gen" "T=uniform:1000:200" "--servers" "16" "--algorithm" "planner" "--verify")
set_tests_properties(cli_planner_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;37;add_test;/root/repo/tools/CMakeLists.txt;0;")
