# Empty dependencies file for mpcqp_run.
# This may be replaced when dependencies are built.
