file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_run.dir/mpcqp_run.cc.o"
  "CMakeFiles/mpcqp_run.dir/mpcqp_run.cc.o.d"
  "mpcqp_run"
  "mpcqp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
