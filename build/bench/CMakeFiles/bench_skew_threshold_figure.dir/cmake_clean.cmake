file(REMOVE_RECURSE
  "CMakeFiles/bench_skew_threshold_figure.dir/bench_skew_threshold_figure.cc.o"
  "CMakeFiles/bench_skew_threshold_figure.dir/bench_skew_threshold_figure.cc.o.d"
  "bench_skew_threshold_figure"
  "bench_skew_threshold_figure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_threshold_figure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
