# Empty dependencies file for bench_skew_threshold_figure.
# This may be replaced when dependencies are built.
