file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_regimes.dir/bench_cost_regimes.cc.o"
  "CMakeFiles/bench_cost_regimes.dir/bench_cost_regimes.cc.o.d"
  "bench_cost_regimes"
  "bench_cost_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
