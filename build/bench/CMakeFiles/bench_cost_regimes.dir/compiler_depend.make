# Empty compiler generated dependencies file for bench_cost_regimes.
# This may be replaced when dependencies are built.
