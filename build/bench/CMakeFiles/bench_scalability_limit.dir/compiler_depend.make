# Empty compiler generated dependencies file for bench_scalability_limit.
# This may be replaced when dependencies are built.
