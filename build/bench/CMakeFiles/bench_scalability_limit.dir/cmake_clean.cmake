file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_limit.dir/bench_scalability_limit.cc.o"
  "CMakeFiles/bench_scalability_limit.dir/bench_scalability_limit.cc.o.d"
  "bench_scalability_limit"
  "bench_scalability_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
