# Empty compiler generated dependencies file for bench_gym.
# This may be replaced when dependencies are built.
