file(REMOVE_RECURSE
  "CMakeFiles/bench_gym.dir/bench_gym.cc.o"
  "CMakeFiles/bench_gym.dir/bench_gym.cc.o.d"
  "bench_gym"
  "bench_gym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
