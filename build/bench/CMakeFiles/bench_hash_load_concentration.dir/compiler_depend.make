# Empty compiler generated dependencies file for bench_hash_load_concentration.
# This may be replaced when dependencies are built.
