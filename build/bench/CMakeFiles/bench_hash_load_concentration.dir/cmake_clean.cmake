file(REMOVE_RECURSE
  "CMakeFiles/bench_hash_load_concentration.dir/bench_hash_load_concentration.cc.o"
  "CMakeFiles/bench_hash_load_concentration.dir/bench_hash_load_concentration.cc.o.d"
  "bench_hash_load_concentration"
  "bench_hash_load_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_load_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
