# Empty dependencies file for bench_cartesian_product.
# This may be replaced when dependencies are built.
