file(REMOVE_RECURSE
  "CMakeFiles/bench_cartesian_product.dir/bench_cartesian_product.cc.o"
  "CMakeFiles/bench_cartesian_product.dir/bench_cartesian_product.cc.o.d"
  "bench_cartesian_product"
  "bench_cartesian_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cartesian_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
