file(REMOVE_RECURSE
  "CMakeFiles/bench_bigjoin.dir/bench_bigjoin.cc.o"
  "CMakeFiles/bench_bigjoin.dir/bench_bigjoin.cc.o.d"
  "bench_bigjoin"
  "bench_bigjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bigjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
