# Empty compiler generated dependencies file for bench_bigjoin.
# This may be replaced when dependencies are built.
