# Empty compiler generated dependencies file for bench_hypercube_speedup.
# This may be replaced when dependencies are built.
