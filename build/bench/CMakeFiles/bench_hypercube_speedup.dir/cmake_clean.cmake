file(REMOVE_RECURSE
  "CMakeFiles/bench_hypercube_speedup.dir/bench_hypercube_speedup.cc.o"
  "CMakeFiles/bench_hypercube_speedup.dir/bench_hypercube_speedup.cc.o.d"
  "bench_hypercube_speedup"
  "bench_hypercube_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hypercube_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
