file(REMOVE_RECURSE
  "CMakeFiles/bench_local_ops.dir/bench_local_ops.cc.o"
  "CMakeFiles/bench_local_ops.dir/bench_local_ops.cc.o.d"
  "bench_local_ops"
  "bench_local_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
