# Empty compiler generated dependencies file for bench_local_ops.
# This may be replaced when dependencies are built.
