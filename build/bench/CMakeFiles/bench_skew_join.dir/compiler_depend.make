# Empty compiler generated dependencies file for bench_skew_join.
# This may be replaced when dependencies are built.
