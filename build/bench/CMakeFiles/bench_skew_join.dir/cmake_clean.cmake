file(REMOVE_RECURSE
  "CMakeFiles/bench_skew_join.dir/bench_skew_join.cc.o"
  "CMakeFiles/bench_skew_join.dir/bench_skew_join.cc.o.d"
  "bench_skew_join"
  "bench_skew_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
