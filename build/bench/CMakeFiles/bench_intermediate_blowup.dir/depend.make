# Empty dependencies file for bench_intermediate_blowup.
# This may be replaced when dependencies are built.
