file(REMOVE_RECURSE
  "CMakeFiles/bench_intermediate_blowup.dir/bench_intermediate_blowup.cc.o"
  "CMakeFiles/bench_intermediate_blowup.dir/bench_intermediate_blowup.cc.o.d"
  "bench_intermediate_blowup"
  "bench_intermediate_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intermediate_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
