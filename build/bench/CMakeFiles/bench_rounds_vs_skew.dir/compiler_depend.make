# Empty compiler generated dependencies file for bench_rounds_vs_skew.
# This may be replaced when dependencies are built.
