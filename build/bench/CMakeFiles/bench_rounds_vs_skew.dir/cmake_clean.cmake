file(REMOVE_RECURSE
  "CMakeFiles/bench_rounds_vs_skew.dir/bench_rounds_vs_skew.cc.o"
  "CMakeFiles/bench_rounds_vs_skew.dir/bench_rounds_vs_skew.cc.o.d"
  "bench_rounds_vs_skew"
  "bench_rounds_vs_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rounds_vs_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
