# Empty compiler generated dependencies file for bench_unequal_sizes.
# This may be replaced when dependencies are built.
