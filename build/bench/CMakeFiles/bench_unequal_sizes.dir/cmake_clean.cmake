file(REMOVE_RECURSE
  "CMakeFiles/bench_unequal_sizes.dir/bench_unequal_sizes.cc.o"
  "CMakeFiles/bench_unequal_sizes.dir/bench_unequal_sizes.cc.o.d"
  "bench_unequal_sizes"
  "bench_unequal_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unequal_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
