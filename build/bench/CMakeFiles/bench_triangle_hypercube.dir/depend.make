# Empty dependencies file for bench_triangle_hypercube.
# This may be replaced when dependencies are built.
