file(REMOVE_RECURSE
  "CMakeFiles/bench_triangle_hypercube.dir/bench_triangle_hypercube.cc.o"
  "CMakeFiles/bench_triangle_hypercube.dir/bench_triangle_hypercube.cc.o.d"
  "bench_triangle_hypercube"
  "bench_triangle_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangle_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
