file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wcoj.dir/bench_ablation_wcoj.cc.o"
  "CMakeFiles/bench_ablation_wcoj.dir/bench_ablation_wcoj.cc.o.d"
  "bench_ablation_wcoj"
  "bench_ablation_wcoj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wcoj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
