# Empty dependencies file for bench_ablation_wcoj.
# This may be replaced when dependencies are built.
