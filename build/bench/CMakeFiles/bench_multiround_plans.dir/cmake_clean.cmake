file(REMOVE_RECURSE
  "CMakeFiles/bench_multiround_plans.dir/bench_multiround_plans.cc.o"
  "CMakeFiles/bench_multiround_plans.dir/bench_multiround_plans.cc.o.d"
  "bench_multiround_plans"
  "bench_multiround_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiround_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
