# Empty compiler generated dependencies file for bench_multiround_plans.
# This may be replaced when dependencies are built.
