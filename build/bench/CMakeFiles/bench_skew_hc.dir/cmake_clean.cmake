file(REMOVE_RECURSE
  "CMakeFiles/bench_skew_hc.dir/bench_skew_hc.cc.o"
  "CMakeFiles/bench_skew_hc.dir/bench_skew_hc.cc.o.d"
  "bench_skew_hc"
  "bench_skew_hc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_hc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
