# Empty dependencies file for bench_skew_hc.
# This may be replaced when dependencies are built.
