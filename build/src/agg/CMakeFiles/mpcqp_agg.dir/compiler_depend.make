# Empty compiler generated dependencies file for mpcqp_agg.
# This may be replaced when dependencies are built.
