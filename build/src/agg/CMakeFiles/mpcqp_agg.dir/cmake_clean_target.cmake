file(REMOVE_RECURSE
  "libmpcqp_agg.a"
)
