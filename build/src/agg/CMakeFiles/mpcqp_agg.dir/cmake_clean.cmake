file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_agg.dir/aggregate.cc.o"
  "CMakeFiles/mpcqp_agg.dir/aggregate.cc.o.d"
  "libmpcqp_agg.a"
  "libmpcqp_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
