file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_common.dir/hash.cc.o"
  "CMakeFiles/mpcqp_common.dir/hash.cc.o.d"
  "CMakeFiles/mpcqp_common.dir/random.cc.o"
  "CMakeFiles/mpcqp_common.dir/random.cc.o.d"
  "CMakeFiles/mpcqp_common.dir/status.cc.o"
  "CMakeFiles/mpcqp_common.dir/status.cc.o.d"
  "libmpcqp_common.a"
  "libmpcqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
