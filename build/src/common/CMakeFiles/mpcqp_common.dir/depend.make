# Empty dependencies file for mpcqp_common.
# This may be replaced when dependencies are built.
