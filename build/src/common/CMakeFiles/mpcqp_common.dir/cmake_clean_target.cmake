file(REMOVE_RECURSE
  "libmpcqp_common.a"
)
