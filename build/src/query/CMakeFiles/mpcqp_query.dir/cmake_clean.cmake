file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_query.dir/generic_join.cc.o"
  "CMakeFiles/mpcqp_query.dir/generic_join.cc.o.d"
  "CMakeFiles/mpcqp_query.dir/ghd.cc.o"
  "CMakeFiles/mpcqp_query.dir/ghd.cc.o.d"
  "CMakeFiles/mpcqp_query.dir/hypergraph_lp.cc.o"
  "CMakeFiles/mpcqp_query.dir/hypergraph_lp.cc.o.d"
  "CMakeFiles/mpcqp_query.dir/local_eval.cc.o"
  "CMakeFiles/mpcqp_query.dir/local_eval.cc.o.d"
  "CMakeFiles/mpcqp_query.dir/lower_bounds.cc.o"
  "CMakeFiles/mpcqp_query.dir/lower_bounds.cc.o.d"
  "CMakeFiles/mpcqp_query.dir/query.cc.o"
  "CMakeFiles/mpcqp_query.dir/query.cc.o.d"
  "libmpcqp_query.a"
  "libmpcqp_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
