
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/generic_join.cc" "src/query/CMakeFiles/mpcqp_query.dir/generic_join.cc.o" "gcc" "src/query/CMakeFiles/mpcqp_query.dir/generic_join.cc.o.d"
  "/root/repo/src/query/ghd.cc" "src/query/CMakeFiles/mpcqp_query.dir/ghd.cc.o" "gcc" "src/query/CMakeFiles/mpcqp_query.dir/ghd.cc.o.d"
  "/root/repo/src/query/hypergraph_lp.cc" "src/query/CMakeFiles/mpcqp_query.dir/hypergraph_lp.cc.o" "gcc" "src/query/CMakeFiles/mpcqp_query.dir/hypergraph_lp.cc.o.d"
  "/root/repo/src/query/local_eval.cc" "src/query/CMakeFiles/mpcqp_query.dir/local_eval.cc.o" "gcc" "src/query/CMakeFiles/mpcqp_query.dir/local_eval.cc.o.d"
  "/root/repo/src/query/lower_bounds.cc" "src/query/CMakeFiles/mpcqp_query.dir/lower_bounds.cc.o" "gcc" "src/query/CMakeFiles/mpcqp_query.dir/lower_bounds.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/mpcqp_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/mpcqp_query.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mpcqp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
