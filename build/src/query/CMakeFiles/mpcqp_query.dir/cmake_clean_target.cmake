file(REMOVE_RECURSE
  "libmpcqp_query.a"
)
