# Empty compiler generated dependencies file for mpcqp_query.
# This may be replaced when dependencies are built.
