file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_mpc.dir/bsp_time.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/bsp_time.cc.o.d"
  "CMakeFiles/mpcqp_mpc.dir/cluster.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/cluster.cc.o.d"
  "CMakeFiles/mpcqp_mpc.dir/cost.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/cost.cc.o.d"
  "CMakeFiles/mpcqp_mpc.dir/dist_relation.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/dist_relation.cc.o.d"
  "CMakeFiles/mpcqp_mpc.dir/exchange.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/exchange.cc.o.d"
  "CMakeFiles/mpcqp_mpc.dir/set_ops.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/set_ops.cc.o.d"
  "CMakeFiles/mpcqp_mpc.dir/stats.cc.o"
  "CMakeFiles/mpcqp_mpc.dir/stats.cc.o.d"
  "libmpcqp_mpc.a"
  "libmpcqp_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
