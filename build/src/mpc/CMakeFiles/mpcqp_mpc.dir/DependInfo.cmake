
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/bsp_time.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/bsp_time.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/bsp_time.cc.o.d"
  "/root/repo/src/mpc/cluster.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/cluster.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/cluster.cc.o.d"
  "/root/repo/src/mpc/cost.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/cost.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/cost.cc.o.d"
  "/root/repo/src/mpc/dist_relation.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/dist_relation.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/dist_relation.cc.o.d"
  "/root/repo/src/mpc/exchange.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/exchange.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/exchange.cc.o.d"
  "/root/repo/src/mpc/set_ops.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/set_ops.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/set_ops.cc.o.d"
  "/root/repo/src/mpc/stats.cc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/stats.cc.o" "gcc" "src/mpc/CMakeFiles/mpcqp_mpc.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
