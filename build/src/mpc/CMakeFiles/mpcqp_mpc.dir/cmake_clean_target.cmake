file(REMOVE_RECURSE
  "libmpcqp_mpc.a"
)
