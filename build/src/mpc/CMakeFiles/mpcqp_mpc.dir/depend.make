# Empty dependencies file for mpcqp_mpc.
# This may be replaced when dependencies are built.
