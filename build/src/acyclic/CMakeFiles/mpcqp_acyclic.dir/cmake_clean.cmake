file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_acyclic.dir/gym.cc.o"
  "CMakeFiles/mpcqp_acyclic.dir/gym.cc.o.d"
  "CMakeFiles/mpcqp_acyclic.dir/yannakakis.cc.o"
  "CMakeFiles/mpcqp_acyclic.dir/yannakakis.cc.o.d"
  "libmpcqp_acyclic.a"
  "libmpcqp_acyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_acyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
