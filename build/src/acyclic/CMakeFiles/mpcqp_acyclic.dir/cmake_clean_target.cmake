file(REMOVE_RECURSE
  "libmpcqp_acyclic.a"
)
