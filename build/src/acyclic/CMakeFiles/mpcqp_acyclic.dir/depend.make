# Empty dependencies file for mpcqp_acyclic.
# This may be replaced when dependencies are built.
