
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiway/bigjoin.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/bigjoin.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/bigjoin.cc.o.d"
  "/root/repo/src/multiway/binary_plan.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/binary_plan.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/binary_plan.cc.o.d"
  "/root/repo/src/multiway/hypercube.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/hypercube.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/hypercube.cc.o.d"
  "/root/repo/src/multiway/join_order.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/join_order.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/join_order.cc.o.d"
  "/root/repo/src/multiway/shares.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/shares.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/shares.cc.o.d"
  "/root/repo/src/multiway/skew_hc.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/skew_hc.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/skew_hc.cc.o.d"
  "/root/repo/src/multiway/triangle_hl.cc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/triangle_hl.cc.o" "gcc" "src/multiway/CMakeFiles/mpcqp_multiway.dir/triangle_hl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/mpcqp_join.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpcqp_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mpcqp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/mpcqp_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mpcqp_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
