# Empty compiler generated dependencies file for mpcqp_multiway.
# This may be replaced when dependencies are built.
