file(REMOVE_RECURSE
  "libmpcqp_multiway.a"
)
