file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_multiway.dir/bigjoin.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/bigjoin.cc.o.d"
  "CMakeFiles/mpcqp_multiway.dir/binary_plan.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/binary_plan.cc.o.d"
  "CMakeFiles/mpcqp_multiway.dir/hypercube.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/hypercube.cc.o.d"
  "CMakeFiles/mpcqp_multiway.dir/join_order.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/join_order.cc.o.d"
  "CMakeFiles/mpcqp_multiway.dir/shares.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/shares.cc.o.d"
  "CMakeFiles/mpcqp_multiway.dir/skew_hc.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/skew_hc.cc.o.d"
  "CMakeFiles/mpcqp_multiway.dir/triangle_hl.cc.o"
  "CMakeFiles/mpcqp_multiway.dir/triangle_hl.cc.o.d"
  "libmpcqp_multiway.a"
  "libmpcqp_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
