# Empty compiler generated dependencies file for mpcqp_matmul.
# This may be replaced when dependencies are built.
