file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_matmul.dir/block_mm.cc.o"
  "CMakeFiles/mpcqp_matmul.dir/block_mm.cc.o.d"
  "CMakeFiles/mpcqp_matmul.dir/cost_model.cc.o"
  "CMakeFiles/mpcqp_matmul.dir/cost_model.cc.o.d"
  "CMakeFiles/mpcqp_matmul.dir/matrix.cc.o"
  "CMakeFiles/mpcqp_matmul.dir/matrix.cc.o.d"
  "CMakeFiles/mpcqp_matmul.dir/rect_mm.cc.o"
  "CMakeFiles/mpcqp_matmul.dir/rect_mm.cc.o.d"
  "CMakeFiles/mpcqp_matmul.dir/sql_mm.cc.o"
  "CMakeFiles/mpcqp_matmul.dir/sql_mm.cc.o.d"
  "libmpcqp_matmul.a"
  "libmpcqp_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
