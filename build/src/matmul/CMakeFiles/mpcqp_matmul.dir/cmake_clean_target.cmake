file(REMOVE_RECURSE
  "libmpcqp_matmul.a"
)
