
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matmul/block_mm.cc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/block_mm.cc.o" "gcc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/block_mm.cc.o.d"
  "/root/repo/src/matmul/cost_model.cc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/cost_model.cc.o" "gcc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/cost_model.cc.o.d"
  "/root/repo/src/matmul/matrix.cc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/matrix.cc.o" "gcc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/matrix.cc.o.d"
  "/root/repo/src/matmul/rect_mm.cc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/rect_mm.cc.o" "gcc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/rect_mm.cc.o.d"
  "/root/repo/src/matmul/sql_mm.cc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/sql_mm.cc.o" "gcc" "src/matmul/CMakeFiles/mpcqp_matmul.dir/sql_mm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/mpcqp_join.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpcqp_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/mpcqp_sort.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
