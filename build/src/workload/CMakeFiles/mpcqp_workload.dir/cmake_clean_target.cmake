file(REMOVE_RECURSE
  "libmpcqp_workload.a"
)
