file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_workload.dir/generator.cc.o"
  "CMakeFiles/mpcqp_workload.dir/generator.cc.o.d"
  "libmpcqp_workload.a"
  "libmpcqp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
