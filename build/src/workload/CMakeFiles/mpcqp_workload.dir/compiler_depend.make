# Empty compiler generated dependencies file for mpcqp_workload.
# This may be replaced when dependencies are built.
