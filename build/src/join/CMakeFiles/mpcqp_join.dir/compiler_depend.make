# Empty compiler generated dependencies file for mpcqp_join.
# This may be replaced when dependencies are built.
