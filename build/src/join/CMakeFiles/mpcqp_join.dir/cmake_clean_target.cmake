file(REMOVE_RECURSE
  "libmpcqp_join.a"
)
