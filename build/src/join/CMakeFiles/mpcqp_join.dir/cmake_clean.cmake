file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_join.dir/broadcast_join.cc.o"
  "CMakeFiles/mpcqp_join.dir/broadcast_join.cc.o.d"
  "CMakeFiles/mpcqp_join.dir/cartesian.cc.o"
  "CMakeFiles/mpcqp_join.dir/cartesian.cc.o.d"
  "CMakeFiles/mpcqp_join.dir/hash_join.cc.o"
  "CMakeFiles/mpcqp_join.dir/hash_join.cc.o.d"
  "CMakeFiles/mpcqp_join.dir/heavy_hitters.cc.o"
  "CMakeFiles/mpcqp_join.dir/heavy_hitters.cc.o.d"
  "CMakeFiles/mpcqp_join.dir/semi_join.cc.o"
  "CMakeFiles/mpcqp_join.dir/semi_join.cc.o.d"
  "CMakeFiles/mpcqp_join.dir/skew_join.cc.o"
  "CMakeFiles/mpcqp_join.dir/skew_join.cc.o.d"
  "CMakeFiles/mpcqp_join.dir/sort_join.cc.o"
  "CMakeFiles/mpcqp_join.dir/sort_join.cc.o.d"
  "libmpcqp_join.a"
  "libmpcqp_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
