
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/broadcast_join.cc" "src/join/CMakeFiles/mpcqp_join.dir/broadcast_join.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/broadcast_join.cc.o.d"
  "/root/repo/src/join/cartesian.cc" "src/join/CMakeFiles/mpcqp_join.dir/cartesian.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/cartesian.cc.o.d"
  "/root/repo/src/join/hash_join.cc" "src/join/CMakeFiles/mpcqp_join.dir/hash_join.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/hash_join.cc.o.d"
  "/root/repo/src/join/heavy_hitters.cc" "src/join/CMakeFiles/mpcqp_join.dir/heavy_hitters.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/heavy_hitters.cc.o.d"
  "/root/repo/src/join/semi_join.cc" "src/join/CMakeFiles/mpcqp_join.dir/semi_join.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/semi_join.cc.o.d"
  "/root/repo/src/join/skew_join.cc" "src/join/CMakeFiles/mpcqp_join.dir/skew_join.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/skew_join.cc.o.d"
  "/root/repo/src/join/sort_join.cc" "src/join/CMakeFiles/mpcqp_join.dir/sort_join.cc.o" "gcc" "src/join/CMakeFiles/mpcqp_join.dir/sort_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpcqp_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/mpcqp_sort.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
