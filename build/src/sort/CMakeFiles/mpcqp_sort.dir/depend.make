# Empty dependencies file for mpcqp_sort.
# This may be replaced when dependencies are built.
