file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_sort.dir/band_join.cc.o"
  "CMakeFiles/mpcqp_sort.dir/band_join.cc.o.d"
  "CMakeFiles/mpcqp_sort.dir/multi_round_sort.cc.o"
  "CMakeFiles/mpcqp_sort.dir/multi_round_sort.cc.o.d"
  "CMakeFiles/mpcqp_sort.dir/psrs.cc.o"
  "CMakeFiles/mpcqp_sort.dir/psrs.cc.o.d"
  "libmpcqp_sort.a"
  "libmpcqp_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
