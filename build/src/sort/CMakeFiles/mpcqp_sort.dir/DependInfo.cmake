
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sort/band_join.cc" "src/sort/CMakeFiles/mpcqp_sort.dir/band_join.cc.o" "gcc" "src/sort/CMakeFiles/mpcqp_sort.dir/band_join.cc.o.d"
  "/root/repo/src/sort/multi_round_sort.cc" "src/sort/CMakeFiles/mpcqp_sort.dir/multi_round_sort.cc.o" "gcc" "src/sort/CMakeFiles/mpcqp_sort.dir/multi_round_sort.cc.o.d"
  "/root/repo/src/sort/psrs.cc" "src/sort/CMakeFiles/mpcqp_sort.dir/psrs.cc.o" "gcc" "src/sort/CMakeFiles/mpcqp_sort.dir/psrs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpcqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/mpcqp_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mpcqp_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
