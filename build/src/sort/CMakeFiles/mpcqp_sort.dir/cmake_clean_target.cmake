file(REMOVE_RECURSE
  "libmpcqp_sort.a"
)
