file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_relation.dir/csv.cc.o"
  "CMakeFiles/mpcqp_relation.dir/csv.cc.o.d"
  "CMakeFiles/mpcqp_relation.dir/key_index.cc.o"
  "CMakeFiles/mpcqp_relation.dir/key_index.cc.o.d"
  "CMakeFiles/mpcqp_relation.dir/relation.cc.o"
  "CMakeFiles/mpcqp_relation.dir/relation.cc.o.d"
  "CMakeFiles/mpcqp_relation.dir/relation_ops.cc.o"
  "CMakeFiles/mpcqp_relation.dir/relation_ops.cc.o.d"
  "libmpcqp_relation.a"
  "libmpcqp_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
