# Empty compiler generated dependencies file for mpcqp_relation.
# This may be replaced when dependencies are built.
