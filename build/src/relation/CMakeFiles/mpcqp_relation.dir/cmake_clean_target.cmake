file(REMOVE_RECURSE
  "libmpcqp_relation.a"
)
