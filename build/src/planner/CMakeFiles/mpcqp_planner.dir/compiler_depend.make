# Empty compiler generated dependencies file for mpcqp_planner.
# This may be replaced when dependencies are built.
