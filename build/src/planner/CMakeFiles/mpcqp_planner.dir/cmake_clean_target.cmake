file(REMOVE_RECURSE
  "libmpcqp_planner.a"
)
