file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_planner.dir/planner.cc.o"
  "CMakeFiles/mpcqp_planner.dir/planner.cc.o.d"
  "libmpcqp_planner.a"
  "libmpcqp_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
