# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lp")
subdirs("relation")
subdirs("workload")
subdirs("mpc")
subdirs("agg")
subdirs("query")
subdirs("join")
subdirs("multiway")
subdirs("acyclic")
subdirs("planner")
subdirs("sort")
subdirs("matmul")
