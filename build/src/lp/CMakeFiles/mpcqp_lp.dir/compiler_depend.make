# Empty compiler generated dependencies file for mpcqp_lp.
# This may be replaced when dependencies are built.
