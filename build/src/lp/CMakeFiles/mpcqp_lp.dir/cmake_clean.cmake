file(REMOVE_RECURSE
  "CMakeFiles/mpcqp_lp.dir/simplex.cc.o"
  "CMakeFiles/mpcqp_lp.dir/simplex.cc.o.d"
  "libmpcqp_lp.a"
  "libmpcqp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpcqp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
