file(REMOVE_RECURSE
  "libmpcqp_lp.a"
)
