file(REMOVE_RECURSE
  "CMakeFiles/bigjoin_test.dir/bigjoin_test.cc.o"
  "CMakeFiles/bigjoin_test.dir/bigjoin_test.cc.o.d"
  "bigjoin_test"
  "bigjoin_test.pdb"
  "bigjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
