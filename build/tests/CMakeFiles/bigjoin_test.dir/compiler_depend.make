# Empty compiler generated dependencies file for bigjoin_test.
# This may be replaced when dependencies are built.
