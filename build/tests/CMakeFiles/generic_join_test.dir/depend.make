# Empty dependencies file for generic_join_test.
# This may be replaced when dependencies are built.
