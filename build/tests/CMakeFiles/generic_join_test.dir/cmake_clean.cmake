file(REMOVE_RECURSE
  "CMakeFiles/generic_join_test.dir/generic_join_test.cc.o"
  "CMakeFiles/generic_join_test.dir/generic_join_test.cc.o.d"
  "generic_join_test"
  "generic_join_test.pdb"
  "generic_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
