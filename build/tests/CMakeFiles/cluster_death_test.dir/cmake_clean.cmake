file(REMOVE_RECURSE
  "CMakeFiles/cluster_death_test.dir/cluster_death_test.cc.o"
  "CMakeFiles/cluster_death_test.dir/cluster_death_test.cc.o.d"
  "cluster_death_test"
  "cluster_death_test.pdb"
  "cluster_death_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
