# Empty dependencies file for cluster_death_test.
# This may be replaced when dependencies are built.
