# Empty dependencies file for rect_mm_test.
# This may be replaced when dependencies are built.
