file(REMOVE_RECURSE
  "CMakeFiles/rect_mm_test.dir/rect_mm_test.cc.o"
  "CMakeFiles/rect_mm_test.dir/rect_mm_test.cc.o.d"
  "rect_mm_test"
  "rect_mm_test.pdb"
  "rect_mm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rect_mm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
