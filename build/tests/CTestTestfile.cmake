# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/agg_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/set_ops_test[1]_include.cmake")
include("/root/repo/build/tests/join_order_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_death_test[1]_include.cmake")
include("/root/repo/build/tests/bigjoin_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/generic_join_test[1]_include.cmake")
include("/root/repo/build/tests/lower_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/ghd_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/semijoin_test[1]_include.cmake")
include("/root/repo/build/tests/rect_mm_test[1]_include.cmake")
include("/root/repo/build/tests/sort_test[1]_include.cmake")
include("/root/repo/build/tests/multiway_test[1]_include.cmake")
include("/root/repo/build/tests/acyclic_test[1]_include.cmake")
include("/root/repo/build/tests/matmul_test[1]_include.cmake")
