// mpcqp_run — command-line driver for the library: parse a conjunctive
// query, generate or load data, analyze the query (τ*, ρ*, AGM, shares),
// run a chosen parallel algorithm on the simulator, and print the cost
// report.
//
// Examples:
//   mpcqp_run --query "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)"
//             --gen "R=uniform:20000:10000" --gen "S=uniform:20000:10000"
//             --gen "T=uniform:20000:10000" --servers 64 --algorithm hypercube
//
//   mpcqp_run --query "R(x,y), S(y,z)" --input R=r.csv --input S=s.csv
//             --algorithm skewhc --servers 16 --output out.csv
//
//   mpcqp_run --query "..." --analyze            # plan only, no execution
//
// Generator specs: uniform:rows:domain | zipf:rows:domain:skew |
//                  degree:rows:deg (binary, exact-degree column 1) |
//                  graph:nodes:edges (binary edge list)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "acyclic/gym.h"
#include "common/parse.h"
#include "common/trace.h"
#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "mpc/metrics.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "planner/calibration.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "query/ghd.h"
#include "query/hypergraph_lp.h"
#include "query/local_eval.h"
#include "multiway/join_order.h"
#include "query/lower_bounds.h"
#include "query/query.h"
#include "relation/csv.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

struct Options {
  std::string query_text;
  int servers = 16;
  int threads = 1;
  int64_t morsel_rows = ClusterOptions{}.morsel_rows;
  std::string algorithm = "hypercube";
  std::map<std::string, std::string> generators;  // atom name -> spec.
  std::map<std::string, std::string> inputs;      // atom name -> csv path.
  std::string output_path;
  std::string trace_path;  // Chrome-trace JSON sink (empty = tracing off).
  std::string stats_path;  // StatsReport JSON sink.
  bool analyze_only = false;
  bool verify = false;
  uint64_t seed = 42;
  // Planner controls (--algorithm auto/planner).
  double round_cost = 0.0;   // λ: tuples-equivalent charge per round.
  bool plan_cache = true;    // --plan-cache on|off.
  bool calibrate = false;    // Measure per-tuple costs before planning.
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --query Q [--servers P] [--threads T] [--morsel-rows N] "
      "[--algorithm hypercube|skewhc|binary|gym|auto|planner]\n"
      "          [--gen NAME=SPEC]... [--input NAME=FILE.csv]...\n"
      "          [--output FILE.csv] [--seed N] [--analyze] [--verify]\n"
      "          [--trace FILE.json] [--stats FILE.json]\n"
      "          [--round-cost LAMBDA] [--plan-cache on|off] [--calibrate]\n"
      "  --morsel-rows sets the rows-per-morsel grain of the parallel\n"
      "  exchange passes (>= 1; never changes results)\n"
      "  --algorithm auto (alias: planner) runs the cost-based planner:\n"
      "  join-order enumeration + plan cache; prints the chosen plan tree\n"
      "  --round-cost charges LAMBDA tuples per round (planner only)\n"
      "  --plan-cache on|off toggles the shape+stats plan cache\n"
      "  --calibrate measures per-tuple phase costs first and plans in "
      "microseconds\n"
      "  --trace writes a Chrome-trace (chrome://tracing / Perfetto) "
      "timeline\n"
      "  --stats writes a machine-readable per-round stats report\n",
      argv0);
  std::exit(2);
}

bool SplitKeyValue(const std::string& arg, std::string* key,
                   std::string* value) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  *key = arg.substr(0, eq);
  *value = arg.substr(eq + 1);
  return true;
}

std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (true) {
    const size_t colon = s.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, colon - pos));
    pos = colon + 1;
  }
  return parts;
}

StatusOr<Relation> Generate(const std::string& spec, int arity, Rng& rng) {
  const std::vector<std::string> parts = SplitColons(spec);
  const std::string& kind = parts[0];
  auto need = [&](size_t n) { return parts.size() == n; };
  // Every numeric field goes through the checked parsers: "20k" or a
  // wrapped 2^64 row count is a spec error, not a silent zero.
  auto count = [&](const std::string& text) -> StatusOr<int64_t> {
    auto parsed = ParseInt64InRange(text, 0, INT64_MAX);
    if (!parsed.ok()) {
      return InvalidArgumentError("bad generator spec '" + spec +
                                  "': " + parsed.status().message());
    }
    return parsed;
  };
  auto domain = [&](const std::string& text) -> StatusOr<uint64_t> {
    auto parsed = ParseUint64(text);
    if (!parsed.ok()) {
      return InvalidArgumentError("bad generator spec '" + spec +
                                  "': " + parsed.status().message());
    }
    return parsed;
  };
  if (kind == "uniform" && need(3)) {
    auto rows = count(parts[1]);
    if (!rows.ok()) return rows.status();
    auto dom = domain(parts[2]);
    if (!dom.ok()) return dom.status();
    return GenerateUniform(rng, *rows, arity, *dom);
  }
  if (kind == "zipf" && need(4)) {
    if (arity < 1) return InvalidArgumentError("zipf needs arity >= 1");
    auto rows = count(parts[1]);
    if (!rows.ok()) return rows.status();
    auto dom = domain(parts[2]);
    if (!dom.ok()) return dom.status();
    auto skew = ParseDouble(parts[3]);
    if (!skew.ok()) {
      return InvalidArgumentError("bad generator spec '" + spec +
                                  "': " + skew.status().message());
    }
    return GenerateZipf(rng, *rows, arity, *dom, /*zipf_col=*/0, *skew);
  }
  if (kind == "degree" && need(3)) {
    if (arity != 2) return InvalidArgumentError("degree needs arity 2");
    auto rows = count(parts[1]);
    if (!rows.ok()) return rows.status();
    auto deg = count(parts[2]);
    if (!deg.ok()) return deg.status();
    return GenerateMatchingDegree(rng, *rows, *deg);
  }
  if (kind == "graph" && need(3)) {
    if (arity != 2) return InvalidArgumentError("graph needs arity 2");
    auto nodes = domain(parts[1]);
    if (!nodes.ok()) return nodes.status();
    auto edges = count(parts[2]);
    if (!edges.ok()) return edges.status();
    return GenerateRandomGraph(rng, *nodes, *edges);
  }
  return InvalidArgumentError("bad generator spec: " + spec);
}

int Run(const Options& options) {
  const auto query = ConjunctiveQuery::Parse(options.query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  const ConjunctiveQuery& q = *query;
  std::printf("query: %s\n", q.ToString().c_str());

  // --- Analysis ---
  const auto packing = FractionalEdgePacking(q);
  const auto cover = FractionalEdgeCover(q);
  if (packing.ok() && cover.ok()) {
    std::printf("tau* (edge packing) = %.3f   rho* (edge cover) = %.3f   "
                "acyclic: %s\n",
                packing->value, cover->value,
                IsAcyclic(q) ? "yes" : "no");
  }

  // --- Data ---
  Rng rng(options.seed);
  std::vector<Relation> atoms;
  std::vector<int64_t> sizes;
  for (int j = 0; j < q.num_atoms(); ++j) {
    const Atom& atom = q.atom(j);
    Relation rel(atom.arity());
    if (const auto it = options.inputs.find(atom.name);
        it != options.inputs.end()) {
      auto loaded = ReadCsvFile(it->second, atom.arity());
      if (!loaded.ok()) {
        std::fprintf(stderr, "input %s: %s\n", atom.name.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      rel = std::move(loaded).value();
    } else if (const auto git = options.generators.find(atom.name);
               git != options.generators.end()) {
      auto generated = Generate(git->second, atom.arity(), rng);
      if (!generated.ok()) {
        std::fprintf(stderr, "gen %s: %s\n", atom.name.c_str(),
                     generated.status().ToString().c_str());
        return 1;
      }
      rel = std::move(generated).value();
    } else if (!options.analyze_only) {
      std::fprintf(stderr,
                   "no data for atom %s (use --gen or --input)\n",
                   atom.name.c_str());
      return 1;
    }
    std::printf("  %s: %lld tuples\n", atom.name.c_str(),
                static_cast<long long>(rel.size()));
    sizes.push_back(rel.size());
    atoms.push_back(std::move(rel));
  }

  const auto agm = AgmBound(q, sizes);
  if (agm.ok()) std::printf("AGM output bound: %.0f\n", *agm);
  const IntegerShares shares = ComputeShares(q, sizes, options.servers);
  std::printf("HyperCube shares for p=%d: ", options.servers);
  for (int v = 0; v < q.num_vars(); ++v) {
    std::printf("%s=%d ", q.var_name(v).c_str(), shares.shares[v]);
  }
  std::printf(" (predicted load %.0f tuples)\n", shares.predicted_load);
  const auto lb = OneRoundLoadLowerBound(q, sizes, options.servers);
  if (lb.ok()) std::printf("one-round load lower bound: %.0f tuples\n", *lb);

  // EXPLAIN-style extras when data is present.
  bool have_data = true;
  for (const Relation& rel : atoms) {
    if (rel.empty()) have_data = false;
  }
  if (have_data) {
    std::vector<DistRelation> probe;
    for (const Relation& rel : atoms) {
      probe.push_back(DistRelation::Scatter(rel, options.servers));
    }
    const std::vector<int> order = GreedyJoinOrder(q, probe);
    const std::vector<double> estimates =
        EstimateIntermediates(q, probe, order);
    std::printf("greedy binary-join order:");
    for (size_t i = 0; i < order.size(); ++i) {
      std::printf(" %s", q.atom(order[i]).name.c_str());
      if (i > 0) {
        std::printf("(~%.0f)", estimates[i - 1]);
      }
    }
    std::printf("\n");
  }
  if (IsAcyclic(q)) {
    const auto tree = BuildJoinTree(q);
    if (tree.ok()) {
      std::printf("join tree: %s\n", tree->ToString(q).c_str());
    }
  }
  if (options.analyze_only) return 0;

  // --- Execution ---
  if (!options.trace_path.empty()) Tracer::Get().Enable();
  ClusterOptions cluster_options;
  cluster_options.num_threads = options.threads;
  cluster_options.morsel_rows = options.morsel_rows;
  Cluster cluster(options.servers, options.seed + 1, cluster_options);
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) {
    dist.push_back(
        DistRelation::Scatter(r, options.servers, &cluster.pool()));
  }
  Rng algo_rng(options.seed + 2);

  std::string algorithm = options.algorithm;
  DistRelation output(q.num_vars(), options.servers);
  if (algorithm == "auto" || algorithm == "planner") {
    PlannerOptions planner_options;
    planner_options.round_cost_tuples = options.round_cost;
    if (options.calibrate) {
      planner_options.cost =
          CalibrateCostModel(options.servers, options.threads);
      std::printf("calibrated cost model: %s\n",
                  planner_options.cost.ToString().c_str());
    }
    PlanCache cache;
    const PlannedQuery planned =
        PlanQuery(q, dist, options.servers, planner_options,
                  options.plan_cache ? &cache : nullptr);
    std::printf("planner candidates:\n");
    for (const CandidatePlan& plan : planned.candidates) {
      std::printf("  %-12s %s est L=%.0f r=%d cost=%.0f  (%s)\n",
                  PlanAlgorithmName(plan.algorithm),
                  plan.feasible ? "ok " : "n/a", plan.estimated_load,
                  plan.estimated_rounds, plan.total_cost,
                  plan.rationale.c_str());
    }
    std::printf("planner chose: %s (%s, %lld dp states)\n",
                PlanAlgorithmName(planned.plan.family),
                planned.cache_hit ? "plan cache hit" : "planned",
                static_cast<long long>(planned.dp_states));
    std::printf("plan tree:\n%s", planned.plan.tree.ToString(q).c_str());
    output = ExecutePlannedQuery(cluster, q, dist, planned, algo_rng);
    algorithm = PlanAlgorithmName(planned.plan.family);
  } else if (algorithm == "hypercube") {
    output = HyperCubeJoin(cluster, q, dist).output;
  } else if (algorithm == "skewhc") {
    output = SkewHcJoin(cluster, q, dist).output;
  } else if (algorithm == "binary") {
    BinaryPlanOptions plan;
    plan.skew_aware = true;
    output = IterativeBinaryJoin(cluster, q, dist, algo_rng, plan).output;
  } else if (algorithm == "gym") {
    const auto tree = BuildJoinTree(q);
    if (!tree.ok()) {
      std::fprintf(stderr, "gym: %s\n", tree.status().ToString().c_str());
      return 1;
    }
    GymOptions gym;
    gym.optimized = true;
    output = GymJoin(cluster, q, *tree, dist, algo_rng, gym).output;
  } else {
    std::fprintf(stderr, "unknown algorithm: %s\n", algorithm.c_str());
    return 1;
  }

  std::printf("\nalgorithm: %s\noutput: %lld tuples\n%s\n",
              algorithm.c_str(),
              static_cast<long long>(output.TotalSize()),
              cluster.cost_report().ToString().c_str());

  if (!options.trace_path.empty()) {
    const Status written = Tracer::Get().WriteChromeTrace(options.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace %s (%lld events)\n", options.trace_path.c_str(),
                static_cast<long long>(Tracer::Get().event_count()));
  }
  if (!options.stats_path.empty()) {
    const Status written =
        WriteStatsJson(BuildStatsReport(cluster), options.stats_path);
    if (!written.ok()) {
      std::fprintf(stderr, "stats: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote stats %s\n", options.stats_path.c_str());
  }

  if (options.verify) {
    const Relation expected = EvalJoinLocal(q, atoms);
    const bool ok = MultisetEqual(output.Collect(&cluster.pool()), expected,
                                  &cluster.pool());
    std::printf("verify against serial evaluation: %s\n",
                ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }
  if (!options.output_path.empty()) {
    const Status written =
        WriteCsvFile(output.Collect(&cluster.pool()), options.output_path);
    if (!written.ok()) {
      std::fprintf(stderr, "output: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.output_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace mpcqp

int main(int argc, char** argv) {
  mpcqp::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) mpcqp::Usage(argv[0]);
      return argv[++i];
    };
    // Flags also accept the --flag=value spelling.
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    auto value = [&]() -> std::string {
      return has_inline_value ? inline_value : next();
    };
    // atoi-free integer flags: the whole string must parse and be >= 1.
    auto int_flag = [&](const char* flag) -> int {
      const std::string text = value();
      const auto parsed = mpcqp::ParseIntInRange(text, 1, 1 << 20);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", flag,
                     parsed.status().message().c_str());
        mpcqp::Usage(argv[0]);
      }
      return *parsed;
    };
    if (arg == "--query") {
      options.query_text = value();
    } else if (arg == "--servers" || arg == "-p") {
      options.servers = int_flag("--servers");
    } else if (arg == "--threads") {
      options.threads = int_flag("--threads");
    } else if (arg == "--morsel-rows") {
      const std::string text = value();
      const auto parsed = mpcqp::ParseInt64InRange(text, 1, INT64_MAX);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--morsel-rows: %s\n",
                     parsed.status().message().c_str());
        mpcqp::Usage(argv[0]);
      }
      options.morsel_rows = *parsed;
    } else if (arg == "--algorithm") {
      options.algorithm = value();
    } else if (arg == "--gen") {
      std::string key;
      std::string spec;
      if (!mpcqp::SplitKeyValue(value(), &key, &spec)) {
        mpcqp::Usage(argv[0]);
      }
      options.generators[key] = spec;
    } else if (arg == "--input") {
      std::string key;
      std::string path;
      if (!mpcqp::SplitKeyValue(value(), &key, &path)) {
        mpcqp::Usage(argv[0]);
      }
      options.inputs[key] = path;
    } else if (arg == "--output") {
      options.output_path = value();
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--stats") {
      options.stats_path = value();
    } else if (arg == "--seed") {
      const std::string text = value();
      const auto parsed = mpcqp::ParseUint64(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--seed: %s\n",
                     parsed.status().message().c_str());
        mpcqp::Usage(argv[0]);
      }
      options.seed = *parsed;
    } else if (arg == "--round-cost") {
      const std::string text = value();
      const auto parsed = mpcqp::ParseDouble(text);
      if (!parsed.ok() || *parsed < 0) {
        std::fprintf(stderr, "--round-cost: %s\n",
                     parsed.ok() ? "must be >= 0"
                                 : parsed.status().message().c_str());
        mpcqp::Usage(argv[0]);
      }
      options.round_cost = *parsed;
    } else if (arg == "--plan-cache") {
      const std::string text = value();
      const auto parsed = mpcqp::ParseBool(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--plan-cache: %s\n",
                     parsed.status().message().c_str());
        mpcqp::Usage(argv[0]);
      }
      options.plan_cache = *parsed;
    } else if (arg == "--calibrate") {
      options.calibrate = true;
    } else if (arg == "--analyze") {
      options.analyze_only = true;
    } else if (arg == "--verify") {
      options.verify = true;
    } else {
      mpcqp::Usage(argv[0]);
    }
  }
  if (options.query_text.empty() || options.servers < 1 ||
      options.threads < 1) {
    mpcqp::Usage(argv[0]);
  }
  return mpcqp::Run(options);
}
