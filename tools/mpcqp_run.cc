// mpcqp_run — command-line driver for the library: parse a conjunctive
// query, generate or load data, analyze the query (τ*, ρ*, AGM, shares),
// run a chosen parallel algorithm on the simulator, and print the cost
// report.
//
// Examples:
//   mpcqp_run --query "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)"
//             --gen "R=uniform:20000:10000" --gen "S=uniform:20000:10000"
//             --gen "T=uniform:20000:10000" --servers 64 --algorithm hypercube
//
//   mpcqp_run --query "R(x,y), S(y,z)" --input R=r.csv --input S=s.csv
//             --algorithm skewhc --servers 16 --output out.csv
//
//   mpcqp_run --query "..." --analyze            # plan only, no execution
//
// Generator specs: uniform:rows:domain | zipf:rows:domain:skew |
//                  degree:rows:deg (binary, exact-degree column 1) |
//                  graph:nodes:edges (binary edge list)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "acyclic/gym.h"
#include "agg/aggregate.h"
#include "common/flags.h"
#include "common/parse.h"
#include "common/simd.h"
#include "common/trace.h"
#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "mpc/metrics.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "planner/calibration.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "query/ghd.h"
#include "query/hypergraph_lp.h"
#include "query/local_eval.h"
#include "multiway/join_order.h"
#include "query/lower_bounds.h"
#include "query/query.h"
#include "relation/csv.h"
#include "relation/relation_ops.h"
#include "serve/catalog.h"
#include "serve/load_driver.h"
#include "serve/query_server.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

struct Options {
  std::string query_text;
  int servers = 16;
  int threads = 1;
  int64_t morsel_rows = ClusterOptions{}.morsel_rows;
  std::string layout = "auto";  // row|columnar|auto (never changes results).
  std::string algorithm = "hypercube";
  std::map<std::string, std::string> generators;  // atom name -> spec.
  std::map<std::string, std::string> inputs;      // atom name -> csv path.
  std::string output_path;
  std::string group_by;  // Comma-separated output variables to group on.
  std::string agg;       // sum:var | count | count:var | min:var | max:var.
  std::string trace_path;  // Chrome-trace JSON sink (empty = tracing off).
  std::string stats_path;  // StatsReport JSON sink.
  bool analyze_only = false;
  bool verify = false;
  uint64_t seed = 42;
  // Planner controls (--algorithm auto/planner).
  double round_cost = 0.0;   // λ: tuples-equivalent charge per round.
  bool plan_cache = true;    // --plan-cache on|off.
  bool calibrate = false;    // Measure per-tuple costs before planning.
  // Serving mode (--serve batch:FILE).
  std::string serve_spec;    // Empty = one-shot mode.
  int clients = 1;
  int64_t requests = 0;      // 0 = 25 per client.
  int max_inflight = 4;
  int max_queued = 64;
  int64_t mem_budget_mb = 0;  // Per-query estimate cap; 0 = unlimited.
  bool result_cache = true;
  std::string serve_stats_path;  // LoadReport JSON sink.
};

// Registers every flag against `options`. One table: Parse() and the
// usage text both come from it, so they cannot drift.
FlagSet BuildFlags(Options* options) {
  FlagSet flags;
  flags.String("query", &options->query_text,
               "conjunctive query, e.g. \"Q(x,z) :- R(x,y), S(y,z)\"");
  flags.Int("servers", &options->servers, 1, 1 << 20,
            "simulated MPC cluster size p", "-p");
  flags.Int("threads", &options->threads, 1, 1 << 20,
            "OS threads executing a round (never changes results)");
  flags.Int64("morsel-rows", &options->morsel_rows, 1, INT64_MAX,
              "rows per exchange morsel (never changes results)");
  flags.String("layout", &options->layout,
               "physical layout for hot kernels, row|columnar|auto "
               "(never changes results)");
  flags.String("algorithm", &options->algorithm,
               "hypercube|skewhc|binary|gym|auto|planner");
  flags.KeyValue("gen", &options->generators,
                 "generator spec per atom, NAME=uniform:rows:domain | "
                 "zipf:rows:domain:skew | degree:rows:deg | "
                 "graph:nodes:edges");
  flags.KeyValue("input", &options->inputs, "CSV input per atom, NAME=FILE");
  flags.String("output", &options->output_path, "write the result as CSV");
  flags.String("group-by", &options->group_by,
               "aggregate: comma-separated output variables to group on "
               "(empty with --agg = one scalar group)");
  flags.String("agg", &options->agg,
               "aggregate the join output: sum:VAR | count | count:VAR | "
               "min:VAR | max:VAR");
  flags.String("trace", &options->trace_path,
               "write a Chrome-trace (Perfetto) timeline");
  flags.String("stats", &options->stats_path,
               "write a machine-readable per-round stats report");
  flags.Uint64("seed", &options->seed, "RNG seed (data + hash functions)");
  flags.Double("round-cost", &options->round_cost, 0.0,
               "planner lambda: tuples-equivalent charge per round");
  flags.Bool("plan-cache", &options->plan_cache,
             "toggle the shape+stats plan cache");
  flags.Switch("calibrate", &options->calibrate,
               "measure per-tuple phase costs first, plan in microseconds");
  flags.Switch("analyze", &options->analyze_only,
               "plan and print analysis only, no execution");
  flags.Switch("verify", &options->verify,
               "check the output against serial evaluation");
  flags.String("serve", &options->serve_spec,
               "serving mode: batch:FILE with one query per line");
  flags.Int("clients", &options->clients, 1, 4096,
            "serve: concurrent client threads");
  flags.Int64("requests", &options->requests, 0, INT64_MAX,
              "serve: total requests (0 = 25 per client)");
  flags.Int("max-inflight", &options->max_inflight, 1, 4096,
            "serve: queries executing at once");
  flags.Int("max-queued", &options->max_queued, 0, 1 << 20,
            "serve: admission queue depth beyond max-inflight");
  flags.Int64("mem-budget", &options->mem_budget_mb, 0, INT64_MAX,
              "serve: per-query estimated-memory cap in MiB (0 = off)");
  flags.Bool("result-cache", &options->result_cache,
             "serve: toggle the fingerprint-keyed result cache");
  flags.String("serve-stats", &options->serve_stats_path,
               "serve: write the load report as JSON");
  return flags;
}

[[noreturn]] void Usage(const char* argv0, const FlagSet& flags) {
  std::fprintf(stderr, "usage: %s --query Q [flags]\n%s", argv0,
               flags.Help().c_str());
  std::exit(2);
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return parts;
}

std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (true) {
    const size_t colon = s.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, colon - pos));
    pos = colon + 1;
  }
  return parts;
}

StatusOr<Relation> Generate(const std::string& spec, int arity, Rng& rng) {
  const std::vector<std::string> parts = SplitColons(spec);
  const std::string& kind = parts[0];
  auto need = [&](size_t n) { return parts.size() == n; };
  // Every numeric field goes through the checked parsers: "20k" or a
  // wrapped 2^64 row count is a spec error, not a silent zero.
  auto count = [&](const std::string& text) -> StatusOr<int64_t> {
    auto parsed = ParseInt64InRange(text, 0, INT64_MAX);
    if (!parsed.ok()) {
      return InvalidArgumentError("bad generator spec '" + spec +
                                  "': " + parsed.status().message());
    }
    return parsed;
  };
  auto domain = [&](const std::string& text) -> StatusOr<uint64_t> {
    auto parsed = ParseUint64(text);
    if (!parsed.ok()) {
      return InvalidArgumentError("bad generator spec '" + spec +
                                  "': " + parsed.status().message());
    }
    return parsed;
  };
  if (kind == "uniform" && need(3)) {
    auto rows = count(parts[1]);
    if (!rows.ok()) return rows.status();
    auto dom = domain(parts[2]);
    if (!dom.ok()) return dom.status();
    return GenerateUniform(rng, *rows, arity, *dom);
  }
  if (kind == "zipf" && need(4)) {
    if (arity < 1) return InvalidArgumentError("zipf needs arity >= 1");
    auto rows = count(parts[1]);
    if (!rows.ok()) return rows.status();
    auto dom = domain(parts[2]);
    if (!dom.ok()) return dom.status();
    auto skew = ParseDouble(parts[3]);
    if (!skew.ok()) {
      return InvalidArgumentError("bad generator spec '" + spec +
                                  "': " + skew.status().message());
    }
    return GenerateZipf(rng, *rows, arity, *dom, /*zipf_col=*/0, *skew);
  }
  if (kind == "degree" && need(3)) {
    if (arity != 2) return InvalidArgumentError("degree needs arity 2");
    auto rows = count(parts[1]);
    if (!rows.ok()) return rows.status();
    auto deg = count(parts[2]);
    if (!deg.ok()) return deg.status();
    return GenerateMatchingDegree(rng, *rows, *deg);
  }
  if (kind == "graph" && need(3)) {
    if (arity != 2) return InvalidArgumentError("graph needs arity 2");
    auto nodes = domain(parts[1]);
    if (!nodes.ok()) return nodes.status();
    auto edges = count(parts[2]);
    if (!edges.ok()) return edges.status();
    return GenerateRandomGraph(rng, *nodes, *edges);
  }
  return InvalidArgumentError("bad generator spec: " + spec);
}

int Run(const Options& options) {
  const auto query = ConjunctiveQuery::Parse(options.query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  const ConjunctiveQuery& q = *query;
  std::printf("query: %s\n", q.ToString().c_str());

  // --- Analysis ---
  const auto packing = FractionalEdgePacking(q);
  const auto cover = FractionalEdgeCover(q);
  if (packing.ok() && cover.ok()) {
    std::printf("tau* (edge packing) = %.3f   rho* (edge cover) = %.3f   "
                "acyclic: %s\n",
                packing->value, cover->value,
                IsAcyclic(q) ? "yes" : "no");
  }

  // --- Data ---
  Rng rng(options.seed);
  std::vector<Relation> atoms;
  std::vector<int64_t> sizes;
  for (int j = 0; j < q.num_atoms(); ++j) {
    const Atom& atom = q.atom(j);
    Relation rel(atom.arity());
    if (const auto it = options.inputs.find(atom.name);
        it != options.inputs.end()) {
      auto loaded = ReadCsvFile(it->second, atom.arity());
      if (!loaded.ok()) {
        std::fprintf(stderr, "input %s: %s\n", atom.name.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      rel = std::move(loaded).value();
    } else if (const auto git = options.generators.find(atom.name);
               git != options.generators.end()) {
      auto generated = Generate(git->second, atom.arity(), rng);
      if (!generated.ok()) {
        std::fprintf(stderr, "gen %s: %s\n", atom.name.c_str(),
                     generated.status().ToString().c_str());
        return 1;
      }
      rel = std::move(generated).value();
    } else if (!options.analyze_only) {
      std::fprintf(stderr,
                   "no data for atom %s (use --gen or --input)\n",
                   atom.name.c_str());
      return 1;
    }
    std::printf("  %s: %lld tuples\n", atom.name.c_str(),
                static_cast<long long>(rel.size()));
    sizes.push_back(rel.size());
    atoms.push_back(std::move(rel));
  }

  const auto agm = AgmBound(q, sizes);
  if (agm.ok()) std::printf("AGM output bound: %.0f\n", *agm);
  const IntegerShares shares = ComputeShares(q, sizes, options.servers);
  std::printf("HyperCube shares for p=%d: ", options.servers);
  for (int v = 0; v < q.num_vars(); ++v) {
    std::printf("%s=%d ", q.var_name(v).c_str(), shares.shares[v]);
  }
  std::printf(" (predicted load %.0f tuples)\n", shares.predicted_load);
  const auto lb = OneRoundLoadLowerBound(q, sizes, options.servers);
  if (lb.ok()) std::printf("one-round load lower bound: %.0f tuples\n", *lb);

  // EXPLAIN-style extras when data is present.
  bool have_data = true;
  for (const Relation& rel : atoms) {
    if (rel.empty()) have_data = false;
  }
  if (have_data) {
    std::vector<DistRelation> probe;
    for (const Relation& rel : atoms) {
      probe.push_back(DistRelation::Scatter(rel, options.servers));
    }
    const std::vector<int> order = GreedyJoinOrder(q, probe);
    const std::vector<double> estimates =
        EstimateIntermediates(q, probe, order);
    std::printf("greedy binary-join order:");
    for (size_t i = 0; i < order.size(); ++i) {
      std::printf(" %s", q.atom(order[i]).name.c_str());
      if (i > 0) {
        std::printf("(~%.0f)", estimates[i - 1]);
      }
    }
    std::printf("\n");
  }
  if (IsAcyclic(q)) {
    const auto tree = BuildJoinTree(q);
    if (tree.ok()) {
      std::printf("join tree: %s\n", tree->ToString(q).c_str());
    }
  }
  if (options.analyze_only) return 0;

  // --- Execution ---
  if (!options.trace_path.empty()) Tracer::Get().Enable();
  ClusterOptions cluster_options;
  cluster_options.num_threads = options.threads;
  cluster_options.morsel_rows = options.morsel_rows;
  if (!ParseLayoutMode(options.layout, &cluster_options.layout)) {
    std::fprintf(stderr, "--layout must be row|columnar|auto, got \"%s\"\n",
                 options.layout.c_str());
    return 2;
  }
  Cluster cluster(options.servers, options.seed + 1, cluster_options);
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) {
    dist.push_back(
        DistRelation::Scatter(r, options.servers, &cluster.pool()));
  }
  Rng algo_rng(options.seed + 2);

  std::string algorithm = options.algorithm;
  DistRelation output(q.num_vars(), options.servers);
  if (algorithm == "auto" || algorithm == "planner") {
    PlannerOptions planner_options;
    planner_options.round_cost_tuples = options.round_cost;
    if (options.calibrate) {
      planner_options.cost =
          CalibrateCostModel(options.servers, options.threads);
      std::printf("calibrated cost model: %s\n",
                  planner_options.cost.ToString().c_str());
    }
    PlanCache cache;
    const PlannedQuery planned =
        PlanQuery(q, dist, options.servers, planner_options,
                  options.plan_cache ? &cache : nullptr);
    std::printf("planner candidates:\n");
    for (const CandidatePlan& plan : planned.candidates) {
      std::printf("  %-12s %s est L=%.0f r=%d cost=%.0f  (%s)\n",
                  PlanAlgorithmName(plan.algorithm),
                  plan.feasible ? "ok " : "n/a", plan.estimated_load,
                  plan.estimated_rounds, plan.total_cost,
                  plan.rationale.c_str());
    }
    std::printf("planner chose: %s (%s, %lld dp states)\n",
                PlanAlgorithmName(planned.plan.family),
                planned.cache_hit ? "plan cache hit" : "planned",
                static_cast<long long>(planned.dp_states));
    std::printf("plan tree:\n%s", planned.plan.tree.ToString(q).c_str());
    output = ExecutePlannedQuery(cluster, q, dist, planned, algo_rng);
    algorithm = PlanAlgorithmName(planned.plan.family);
  } else if (algorithm == "hypercube") {
    output = HyperCubeJoin(cluster, q, dist).output;
  } else if (algorithm == "skewhc") {
    output = SkewHcJoin(cluster, q, dist).output;
  } else if (algorithm == "binary") {
    BinaryPlanOptions plan;
    plan.skew_aware = true;
    output = IterativeBinaryJoin(cluster, q, dist, algo_rng, plan).output;
  } else if (algorithm == "gym") {
    const auto tree = BuildJoinTree(q);
    if (!tree.ok()) {
      std::fprintf(stderr, "gym: %s\n", tree.status().ToString().c_str());
      return 1;
    }
    GymOptions gym;
    gym.optimized = true;
    output = GymJoin(cluster, q, *tree, dist, algo_rng, gym).output;
  } else {
    std::fprintf(stderr, "unknown algorithm: %s\n", algorithm.c_str());
    return 1;
  }

  // --agg runs the distributed group-by engine over the join output (with
  // per-fragment combiners and a hash shuffle), so its rounds show up in
  // the cost report below.
  bool aggregated = false;
  std::vector<int> group_cols;
  int agg_value_col = -1;
  AggregateOp agg_op = AggregateOp::kCount;
  if (!options.agg.empty()) {
    auto var_index = [&](const std::string& name) {
      for (int v = 0; v < q.num_vars(); ++v) {
        if (q.var_name(v) == name) return v;
      }
      return -1;
    };
    for (const std::string& name : SplitCommas(options.group_by)) {
      const int v = var_index(name);
      if (v < 0) {
        std::fprintf(stderr, "--group-by: unknown variable '%s'\n",
                     name.c_str());
        return 1;
      }
      group_cols.push_back(v);
    }
    const std::vector<std::string> parts = SplitColons(options.agg);
    if (parts[0] == "sum") {
      agg_op = AggregateOp::kSum;
    } else if (parts[0] == "count") {
      agg_op = AggregateOp::kCount;
    } else if (parts[0] == "min") {
      agg_op = AggregateOp::kMin;
    } else if (parts[0] == "max") {
      agg_op = AggregateOp::kMax;
    } else {
      std::fprintf(stderr, "--agg: unknown op '%s'\n", parts[0].c_str());
      return 1;
    }
    if (parts.size() == 2) {
      agg_value_col = var_index(parts[1]);
      if (agg_value_col < 0) {
        std::fprintf(stderr, "--agg: unknown variable '%s'\n",
                     parts[1].c_str());
        return 1;
      }
    } else if (parts.size() != 1 || agg_op != AggregateOp::kCount) {
      std::fprintf(stderr,
                   "--agg: expected OP:VAR (only bare 'count' may omit the "
                   "value variable)\n");
      return 1;
    }
    auto agg_result = DistributedGroupByAggregate(cluster, output, group_cols,
                                                  agg_value_col, agg_op);
    if (!agg_result.ok()) {
      std::fprintf(stderr, "aggregate: %s\n",
                   agg_result.status().ToString().c_str());
      return 1;
    }
    output = std::move(agg_result).value();
    aggregated = true;
    std::printf("aggregate: %s over %zu group column(s) -> %lld groups\n",
                options.agg.c_str(), group_cols.size(),
                static_cast<long long>(output.TotalSize()));
  }

  std::printf("\nalgorithm: %s\noutput: %lld tuples\n%s\n",
              algorithm.c_str(),
              static_cast<long long>(output.TotalSize()),
              cluster.cost_report().ToString().c_str());

  if (!options.trace_path.empty()) {
    const Status written = Tracer::Get().WriteChromeTrace(options.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace %s (%lld events)\n", options.trace_path.c_str(),
                static_cast<long long>(Tracer::Get().event_count()));
  }
  if (!options.stats_path.empty()) {
    const Status written =
        WriteStatsJson(BuildStatsReport(cluster), options.stats_path);
    if (!written.ok()) {
      std::fprintf(stderr, "stats: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote stats %s (simd: %s)\n", options.stats_path.c_str(),
                simd::IsaLevelName(simd::DispatchedIsa()));
  }

  if (options.verify) {
    Relation expected = EvalJoinLocal(q, atoms);
    if (aggregated) {
      auto agg_expected =
          GroupByAggregate(expected, group_cols, agg_value_col, agg_op);
      if (!agg_expected.ok()) {
        std::fprintf(stderr, "verify aggregate: %s\n",
                     agg_expected.status().ToString().c_str());
        return 1;
      }
      expected = std::move(agg_expected).value();
    }
    const bool ok = MultisetEqual(output.Collect(&cluster.pool()), expected,
                                  &cluster.pool());
    std::printf("verify against serial evaluation: %s\n",
                ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }
  if (!options.output_path.empty()) {
    const Status written =
        WriteCsvFile(output.Collect(&cluster.pool()), options.output_path);
    if (!written.ok()) {
      std::fprintf(stderr, "output: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.output_path.c_str());
  }
  return 0;
}

// --serve batch:FILE — the multi-query serving front-end. Loads the
// workload (one query per line, '#' comments), registers every referenced
// atom's data in a Catalog, then drives a QueryServer with --clients
// closed-loop threads on the process-wide shared pool.
int RunServe(const Options& options) {
  const std::string kPrefix = "batch:";
  if (options.serve_spec.compare(0, kPrefix.size(), kPrefix) != 0) {
    std::fprintf(stderr, "--serve: expected batch:FILE, got '%s'\n",
                 options.serve_spec.c_str());
    return 2;
  }
  const std::string path = options.serve_spec.substr(kPrefix.size());
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "--serve: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> queries;
  for (std::string line; std::getline(file, line);) {
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    queries.push_back(line);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "--serve: no queries in %s\n", path.c_str());
    return 1;
  }

  // Register data for every atom the workload mentions, in first-use
  // order (which makes generated data reproducible from --seed alone).
  Catalog catalog;
  Rng rng(options.seed);
  for (const std::string& text : queries) {
    const auto query = ConjunctiveQuery::Parse(text);
    if (!query.ok()) {
      std::fprintf(stderr, "query '%s': %s\n", text.c_str(),
                   query.status().ToString().c_str());
      return 1;
    }
    for (int j = 0; j < query->num_atoms(); ++j) {
      const Atom& atom = query->atom(j);
      Catalog::Entry existing;
      if (catalog.Find(atom.name, &existing)) continue;
      Relation rel(atom.arity());
      if (const auto it = options.inputs.find(atom.name);
          it != options.inputs.end()) {
        auto loaded = ReadCsvFile(it->second, atom.arity());
        if (!loaded.ok()) {
          std::fprintf(stderr, "input %s: %s\n", atom.name.c_str(),
                       loaded.status().ToString().c_str());
          return 1;
        }
        rel = std::move(loaded).value();
      } else if (const auto git = options.generators.find(atom.name);
                 git != options.generators.end()) {
        auto generated = Generate(git->second, atom.arity(), rng);
        if (!generated.ok()) {
          std::fprintf(stderr, "gen %s: %s\n", atom.name.c_str(),
                       generated.status().ToString().c_str());
          return 1;
        }
        rel = std::move(generated).value();
      } else {
        std::fprintf(stderr, "no data for atom %s (use --gen or --input)\n",
                     atom.name.c_str());
        return 1;
      }
      std::printf("  %s: %lld tuples\n", atom.name.c_str(),
                  static_cast<long long>(rel.size()));
      catalog.Register(atom.name, std::move(rel));
    }
  }

  ServeOptions serve;
  serve.num_servers = options.servers;
  serve.num_threads = options.threads;
  serve.morsel_rows = options.morsel_rows;
  if (!ParseLayoutMode(options.layout, &serve.layout)) {
    std::fprintf(stderr, "--layout must be row|columnar|auto, got \"%s\"\n",
                 options.layout.c_str());
    return 2;
  }
  serve.algorithm = options.algorithm;
  serve.seed = options.seed;
  serve.round_cost = options.round_cost;
  serve.max_inflight = options.max_inflight;
  serve.max_queued = options.max_queued;
  serve.mem_budget_bytes = options.mem_budget_mb * (int64_t{1} << 20);
  serve.enable_result_cache = options.result_cache;
  serve.enable_plan_cache = options.plan_cache;
  QueryServer server(&catalog, serve);

  LoadOptions load;
  load.clients = options.clients;
  load.requests = options.requests > 0
                      ? options.requests
                      : int64_t{25} * options.clients;
  std::printf("serving %zu queries: %lld requests, %d clients, "
              "%d servers, %d threads, algorithm %s\n",
              queries.size(), static_cast<long long>(load.requests),
              load.clients, options.servers, options.threads,
              options.algorithm.c_str());
  const LoadReport report = RunLoad(server, queries, load);

  std::printf(
      "completed %lld (%lld errors) in %.1f ms: %.1f qps\n"
      "latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n"
      "executed %lld  result-cache hits %lld  coalesced %lld  "
      "rejected: overload %lld, memory %lld\n",
      static_cast<long long>(report.completed),
      static_cast<long long>(report.errors), report.wall_ms, report.qps,
      report.mean_ms, report.p50_ms, report.p95_ms, report.p99_ms,
      report.max_ms, static_cast<long long>(report.executed),
      static_cast<long long>(report.result_cache_hits),
      static_cast<long long>(report.coalesced),
      static_cast<long long>(report.rejected_overload),
      static_cast<long long>(report.rejected_memory));

  if (!options.serve_stats_path.empty()) {
    std::ofstream out(options.serve_stats_path);
    if (!out) {
      std::fprintf(stderr, "serve-stats: cannot write %s\n",
                   options.serve_stats_path.c_str());
      return 1;
    }
    out << report.ToJson() << "\n";
    std::printf("wrote %s\n", options.serve_stats_path.c_str());
  }
  return report.errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mpcqp

int main(int argc, char** argv) {
  mpcqp::Options options;
  const mpcqp::FlagSet flags = mpcqp::BuildFlags(&options);
  if (const mpcqp::Status parsed = flags.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.message().c_str());
    mpcqp::Usage(argv[0], flags);
  }
  if (!options.serve_spec.empty()) {
    return mpcqp::RunServe(options);
  }
  if (options.query_text.empty()) {
    mpcqp::Usage(argv[0], flags);
  }
  return mpcqp::Run(options);
}
