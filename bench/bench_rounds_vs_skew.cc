// E10 — deck slides 53-54: the 1-round vs multi-round table.
//
// For the triangle, the bowtie R(x),S(x,y),T(y), and the 2-way join, the
// deck tabulates loads in four regimes: {no skew, skew} x {1 round,
// multi-round}. We measure all four cells per query on the simulator.

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "query/hypergraph_lp.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

struct Cell {
  int64_t load;
  int rounds;
};

Cell RunOneRound(const ConjunctiveQuery& q, const std::vector<Relation>& atoms,
                 int p) {
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));
  Cluster cluster(p, 7);
  SkewHcJoin(cluster, q, dist);
  return {cluster.cost_report().MaxLoadTuples(),
          cluster.cost_report().num_rounds()};
}

Cell RunMultiRound(const ConjunctiveQuery& q,
                   const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));
  Cluster cluster(p, 7);
  Rng rng(67);
  BinaryPlanOptions options;
  options.skew_aware = true;
  IterativeBinaryJoin(cluster, q, dist, rng, options);
  return {cluster.cost_report().MaxLoadTuples(),
          cluster.cost_report().num_rounds()};
}

void Run() {
  const int p = 64;
  const int64_t n = 12000;
  Rng data_rng(71);

  struct QuerySpec {
    const char* name;
    ConjunctiveQuery query;
    // Column of each atom to make heavy in the skewed variant (-1: value
    // column 1 of every atom is set to the constant).
  };
  const QuerySpec specs[] = {
      {"2-way join R(x,y)⋈S(y,z)", ConjunctiveQuery::TwoWayJoin()},
      {"triangle", ConjunctiveQuery::Triangle()},
      {"bowtie R(x),S(x,y),T(y)", ConjunctiveQuery::Bowtie()},
  };

  bench::Banner(
      "E10 (slides 53-54): measured L in the four regimes, p=64, "
      "N=12000/atom");
  Table table({"query", "tau*", "no-skew 1r L", "no-skew multi-r L",
               "skew 1r L", "skew multi-r L", "multi-r rounds"});

  for (const QuerySpec& spec : specs) {
    const ConjunctiveQuery& q = spec.query;
    // Skew-free instances.
    std::vector<Relation> uniform;
    for (int j = 0; j < q.num_atoms(); ++j) {
      uniform.push_back(
          GenerateUniform(data_rng, n, q.atom(j).arity(), 1 << 18));
    }
    // Skewed instances: one shared heavy value on every join column.
    std::vector<Relation> skewed;
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (q.atom(j).arity() == 1) {
        // Unary atoms stay uniform sets.
        skewed.push_back(GenerateUniform(data_rng, n, 1, 1 << 12));
      } else {
        // Zipf on the first column, heavy head lands on value 0.
        skewed.push_back(GenerateZipf(data_rng, n, 2, 1 << 12, 0, 1.3));
      }
    }

    const Cell a = RunOneRound(q, uniform, p);
    const Cell b = RunMultiRound(q, uniform, p);
    const Cell c = RunOneRound(q, skewed, p);
    const Cell d = RunMultiRound(q, skewed, p);
    const auto tau = FractionalEdgePacking(q);

    table.AddRow({spec.name, Fmt(tau.ok() ? tau->value : -1, 2),
                  FmtInt(a.load), FmtInt(b.load), FmtInt(c.load),
                  FmtInt(d.load), FmtInt(d.rounds)});
  }
  table.Print();
  std::printf(
      "\nShape check (slide 54): multi-round reaches ~IN/p without skew "
      "for every query; in one round the triangle pays p^{1/3} extra "
      "(tau*=3/2) and under skew both models land at IN/p^{1/psi*}.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
