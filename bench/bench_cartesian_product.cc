// E4 — deck slide 28: the one-round Cartesian product on a p1 × p2 grid.
//
// Measured load vs the optimal 2·sqrt(|R||S|/p), sweeping p and the size
// ratio |R|/|S| (including the broadcast regime |R| << |S|, where the
// optimal grid degenerates to 1 × p).

#include <cmath>

#include "bench/bench_util.h"
#include "join/cartesian.h"
#include "mpc/cluster.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void Run() {
  bench::Banner("E4 (slide 28): Cartesian product load vs p, |R|=|S|=1024");
  {
    Table table({"p", "grid", "measured L", "2 sqrt(|R||S|/p)", "ratio"});
    Rng data_rng(17);
    const Relation left = GenerateUniform(data_rng, 1024, 1, 1u << 30);
    const Relation right = GenerateUniform(data_rng, 1024, 1, 1u << 30);
    for (const int p : {1, 4, 16, 64, 256}) {
      Rng rng(19);
      Cluster cluster(p, 7);
      CartesianProduct(cluster, DistRelation::Scatter(left, p),
                       DistRelation::Scatter(right, p), rng);
      const auto [rows, cols] = OptimalGridShape(1024, 1024, p);
      const double measured =
          static_cast<double>(cluster.cost_report().MaxLoadTuples());
      const double optimal = 2.0 * std::sqrt(1024.0 * 1024.0 / p);
      table.AddRow({FmtInt(p),
                    std::to_string(rows) + "x" + std::to_string(cols),
                    Fmt(measured, 0), Fmt(optimal, 0),
                    Fmt(measured / optimal, 3)});
    }
    table.Print();
  }

  bench::Banner(
      "E4 (slide 28): size-ratio sweep at p=64 — broadcast regime when "
      "|R| << |S|");
  {
    Table table({"|R|", "|S|", "grid", "measured L", "2 sqrt(|R||S|/p)",
                 "min(|R|,|S|)+|S|/p (broadcast)"});
    const int p = 64;
    Rng data_rng(23);
    for (const int64_t r_size : {16, 128, 1024, 8192}) {
      const int64_t s_size = 8192;
      const Relation left = GenerateUniform(data_rng, r_size, 1, 1u << 30);
      const Relation right = GenerateUniform(data_rng, s_size, 1, 1u << 30);
      Rng rng(29);
      Cluster cluster(p, 7);
      CartesianProduct(cluster, DistRelation::Scatter(left, p),
                       DistRelation::Scatter(right, p), rng);
      const auto [rows, cols] = OptimalGridShape(r_size, s_size, p);
      const double grid_bound =
          2.0 * std::sqrt(static_cast<double>(r_size) * s_size / p);
      const double broadcast_bound =
          static_cast<double>(r_size) + static_cast<double>(s_size) / p;
      table.AddRow({FmtInt(r_size), FmtInt(s_size),
                    std::to_string(rows) + "x" + std::to_string(cols),
                    FmtInt(cluster.cost_report().MaxLoadTuples()),
                    Fmt(grid_bound, 0), Fmt(broadcast_bound, 0)});
    }
    table.Print();
    std::printf(
        "\nShape check: measured load tracks the 2 sqrt(|R||S|/p) curve in "
        "the balanced regime and the broadcast bound once |R| is small "
        "enough that the optimal grid is 1 x p.\n");
  }
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
