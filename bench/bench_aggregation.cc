// E17 — deck slide 52: the GROUP BY query that motivates multi-round
// execution (join round + aggregation round), plus the combiner effect
// under group skew and the aggregation-tree round structure behind the
// log_L lower bounds (slides 105, 125).

#include <cmath>

#include "agg/aggregate.h"
#include "bench/bench_util.h"
#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void JoinThenGroupBy() {
  bench::Banner(
      "E17a (slide 52): SELECT cKey, month, SUM(price) FROM Orders x "
      "Customers GROUP BY — join round + aggregation round, p=32");
  const int p = 32;
  Rng rng(1);
  // Orders(cKey, month, price), Customers(cKey).
  const int64_t orders_n = 60000;
  Relation orders(3);
  for (int64_t i = 0; i < orders_n; ++i) {
    orders.AppendRow({rng.Uniform(4000), rng.Uniform(12),
                      1 + rng.Uniform(500)});
  }
  Relation customers(1);
  for (Value c = 0; c < 4000; ++c) {
    if (rng.Uniform(10) < 7) customers.AppendRow({c});
  }

  Cluster cluster(p, 3);
  const DistRelation joined = ParallelHashJoin(
      cluster, DistRelation::Scatter(orders, p),
      DistRelation::Scatter(customers, p), {0}, {0});
  const DistRelation grouped =
      DistributedGroupBySum(cluster, joined, {0, 1}, 2).value();

  Table table({"stage", "rounds so far", "L (tuples)", "rows"});
  table.AddRow({"join Orders x Customers", "1",
                FmtInt(cluster.cost_report().rounds()[0].MaxTuplesReceived()),
                FmtInt(joined.TotalSize())});
  table.AddRow({"group by (cKey, month)", "2",
                FmtInt(cluster.cost_report().rounds()[1].MaxTuplesReceived()),
                FmtInt(grouped.TotalSize())});
  table.Print();
}

void CombinerEffect() {
  bench::Banner(
      "E17b: combiner ablation under group skew (Zipf groups), N=40000, "
      "p=32");
  const int p = 32;
  Table table({"zipf s", "groups", "L without combiners", "L with combiners"});
  for (const double skew : {0.0, 1.0, 2.0}) {
    Rng rng(5);
    const Relation rel = GenerateZipf(rng, 40000, 2, 2000, 0, skew);
    GroupByOptions without;
    without.use_combiners = false;
    Cluster c1(p, 3);
    const DistRelation g1 =
        DistributedGroupBySum(c1, DistRelation::Scatter(rel, p), {0}, 1,
                              without)
            .value();
    Cluster c2(p, 3);
    DistributedGroupBySum(c2, DistRelation::Scatter(rel, p), {0}, 1).value();
    table.AddRow({Fmt(skew, 1), FmtInt(g1.TotalSize()),
                  FmtInt(c1.cost_report().MaxLoadTuples()),
                  FmtInt(c2.cost_report().MaxLoadTuples())});
  }
  table.Print();
  std::printf(
      "\nShape check: without combiners the heaviest group's full weight "
      "lands on one server (degree of the Zipf head); with combiners each "
      "server ships at most one partial per group.\n");
}

void AggregationTree() {
  bench::Banner(
      "E17c (slides 105/125 flavor): global SUM via a fan-in tree — "
      "rounds = ceil(log_f p), p=256");
  const int p = 256;
  Rng rng(7);
  const Relation rel = GenerateUniform(rng, 4096, 1, 100);
  Table table({"fan-in f", "rounds", "ceil(log_f p)", "max L/round"});
  for (const int fan_in : {2, 4, 16, 256}) {
    Cluster cluster(p, 3);
    const ScalarAggregateResult result =
        DistributedSum(cluster, DistRelation::Scatter(rel, p), 0, fan_in)
            .value();
    table.AddRow({FmtInt(fan_in), FmtInt(result.rounds),
                  FmtInt(static_cast<int64_t>(
                      std::ceil(std::log(p) / std::log(fan_in) - 1e-9))),
                  FmtInt(cluster.cost_report().MaxLoadTuples())});
  }
  table.Print();
  std::printf(
      "\nShape check: rounds x log(load) is constant-ish — the r >= "
      "log_L(N) tradeoff for aggregation.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::JoinThenGroupBy();
  mpcqp::CombinerEffect();
  mpcqp::AggregationTree();
  return 0;
}
