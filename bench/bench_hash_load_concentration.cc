// E2 — deck slides 24-25: concentration of the hash-partition load.
//
// Without skew (every join value unique) the max load stays within
// (1+δ)·IN/p with probability bounded by p·exp(-δ²IN/(3p)); with values of
// degree d the exponent loses a factor d, so the same δ is exceeded far
// more often. We measure Pr[L >= (1+δ)IN/p] over repeated hash functions
// and print it next to the Chernoff bound, for several degrees.

#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "relation/relation.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// Max bucket load of hashing `rel`'s column 1 into p buckets.
int64_t MaxBucketLoad(const Relation& rel, const HashFunction& hash, int p) {
  std::vector<int64_t> counts(p, 0);
  for (int64_t i = 0; i < rel.size(); ++i) {
    ++counts[hash.Bucket(rel.at(i, 1), p)];
  }
  int64_t best = 0;
  for (int64_t c : counts) best = std::max(best, c);
  return best;
}

void Run() {
  const int p = 64;
  const int64_t n = 1 << 16;
  const double delta = 0.3;
  const int trials = 200;
  Rng rng(11);

  Table table({"degree d", "expected IN/p", "mean max load",
               "Pr[L >= 1.3 IN/p] measured", "Chernoff bound p*e^{-d^2IN/3pd}"});

  for (const int64_t degree : {1, 4, 16, 64, 256, 1024}) {
    const Relation rel = GenerateMatchingDegree(rng, n, degree);
    int exceed = 0;
    double load_sum = 0;
    for (int t = 0; t < trials; ++t) {
      const HashFunction hash(1000 + t);
      const int64_t load = MaxBucketLoad(rel, hash, p);
      load_sum += static_cast<double>(load);
      if (load >= (1.0 + delta) * n / p) ++exceed;
    }
    const double bound =
        p * std::exp(-delta * delta * static_cast<double>(n) /
                     (3.0 * p * static_cast<double>(degree)));
    table.AddRow({FmtInt(degree), FmtInt(n / p), Fmt(load_sum / trials, 1),
                  Fmt(static_cast<double>(exceed) / trials, 3),
                  Fmt(std::min(1.0, bound), 4)});
  }

  bench::Banner(
      "E2 (slides 24-25): hash-partition load concentration, IN=65536, "
      "p=64, delta=0.3, 200 hash draws");
  table.Print();
  std::printf(
      "\nShape check: exceedance probability ~0 for small degrees and "
      "grows toward 1 as d approaches IN/p (slide 25's extra d factor in "
      "the exponent).\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
