// SIMD kernel throughput study (EXPERIMENTS.md E23): every kernel in
// common/simd.h timed against a VERBATIM scalar baseline embedded in this
// file — the baselines deliberately bypass the dispatch layer entirely, so
// a mis-dispatched or subtly slow kernel table cannot grade itself.
//
// Emits BENCH_simd.json. CI runs this binary as a Release gate and fails
// (exit 1) if
//  - any kernel's output differs from the embedded baseline at t=1 or
//    t=8 (including a lane-unfriendly tail count), or
//  - hash / bucket / filter show less than 1.3x speedup over the baseline
//    at t=8 when AVX2 is dispatched, or
//  - any kernel loses to its baseline (beyond a 10% noise band) at t=8
//    when any vector level is dispatched.
// On a scalar-only dispatch (hardware or MPCQP_SIMD_LEVEL cap) the speed
// gates are skipped — identical code on both sides has no contract to
// enforce — and only bit-identity is checked.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::Table;
using bench::WallTimer;

constexpr int kReps = 3;  // Best-of-N wall times.
constexpr int64_t kRows = 4000000;
constexpr int64_t kGrain = 65536;  // Per-task chunk of the parallel driver.
// Vector kernels must not lose at t=8; a band absorbs scheduler noise.
constexpr double kNoiseBand = 1.10;
// Headline gate on the mixing-bound kernels when AVX2 is dispatched.
constexpr double kHeadlineSpeedup = 1.3;
constexpr uint64_t kWhitening = 0x5851f42d4c957f2dULL;
constexpr uint64_t kGroupSeed = 0x9e3779b97f4a7c15ULL;

// ---- Embedded scalar baselines (verbatim reference semantics) ----
// These mirror the scalar reference loops the dispatch layer promises to
// match, but live here so the gate never measures the library against
// itself.
namespace baseline {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
              uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = SplitMix64(values[i] ^ whitening);
  }
}

void BucketMany(const uint64_t* values, int64_t count, uint64_t whitening,
                int num_buckets, int32_t* out) {
  const auto p = static_cast<unsigned __int128>(num_buckets);
  for (int64_t i = 0; i < count; ++i) {
    out[i] =
        static_cast<int32_t>((SplitMix64(values[i] ^ whitening) * p) >> 64);
  }
}

void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                   uint64_t mask, uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = SplitMix64(seed ^ SplitMix64(keys[i])) & mask;
  }
}

int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                     uint64_t hi) {
  int64_t hits = 0;
  for (int64_t i = 0; i < count; ++i) {
    hits += values[i] >= lo && values[i] <= hi;
  }
  return hits;
}

int64_t FillInRange(const uint64_t* values, int64_t count, int64_t index_base,
                    uint64_t lo, uint64_t hi, int64_t* out) {
  int64_t written = 0;
  for (int64_t i = 0; i < count; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      out[written++] = index_base + i;
    }
  }
  return written;
}

void GatherStride(const uint64_t* base, int64_t stride, int64_t count,
                  uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = base[i * stride];
  }
}

void GatherIndexed(const uint64_t* base, const int64_t* indices, int64_t count,
                   int64_t stride, int64_t offset, uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = base[indices[i] * stride + offset];
  }
}

void HistogramTopBits(const uint64_t* hashes, int64_t count, int bits,
                      int64_t* counts) {
  const int shift = 64 - bits;
  for (int64_t i = 0; i < count; ++i) {
    ++counts[hashes[i] >> shift];
  }
}

}  // namespace baseline

double BestOf(const std::function<void()>& body) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    body();
    const double ms = timer.ElapsedMs();
    if (ms < best) best = ms;
  }
  return best;
}

bool g_ok = true;

void Gate(bool pass, const std::string& what) {
  if (!pass) {
    std::printf("FAIL: %s\n", what.c_str());
    g_ok = false;
  }
}

// Chunks [0, count) into kGrain tiles and runs `body(begin, end)` for each
// on the pool — the same shape the morsel-driven operators drive the
// kernels in, so both sides of every comparison share the driver.
void ForChunks(ThreadPool& pool, int64_t count,
               const std::function<void(int64_t, int64_t)>& body) {
  const int64_t chunks = (count + kGrain - 1) / kGrain;
  pool.ParallelFor(chunks, [&](int64_t c) {
    const int64_t begin = c * kGrain;
    const int64_t end = std::min(count, begin + kGrain);
    body(begin, end);
  });
}

struct KernelTimes {
  double base_t1 = 0, vec_t1 = 0, base_t8 = 0, vec_t8 = 0;
};

// Times `run(pool, use_vector)` at {1, 8} threads for both sides, checks
// the speed gates, and records a table row + JSON entries. `headline`
// applies the 1.3x AVX2 gate; every vectorized kernel gets the don't-lose
// band.
void Report(Table* table, BenchJson* json, const std::string& name,
            bool headline, bool vectorized,
            const std::function<void(ThreadPool&, bool)>& run) {
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  KernelTimes t;
  t.base_t1 = BestOf([&] { run(pool1, false); });
  t.vec_t1 = BestOf([&] { run(pool1, true); });
  t.base_t8 = BestOf([&] { run(pool8, false); });
  t.vec_t8 = BestOf([&] { run(pool8, true); });

  const bool scalar_dispatch =
      simd::DispatchedIsa() == simd::IsaLevel::kScalar;
  if (!scalar_dispatch && vectorized) {
    Gate(t.vec_t8 <= t.base_t8 * kNoiseBand,
         name + ": vector loses to embedded scalar baseline at t=8 (" +
             Fmt(t.base_t8 / t.vec_t8, 2) + "x)");
    if (headline && simd::DispatchedIsa() == simd::IsaLevel::kAvx2) {
      Gate(t.base_t8 / t.vec_t8 >= kHeadlineSpeedup,
           name + ": AVX2 speedup below " + Fmt(kHeadlineSpeedup, 1) +
               "x at t=8 (" + Fmt(t.base_t8 / t.vec_t8, 2) + "x)");
    }
  }

  table->AddRow({name, Fmt(t.base_t1, 2), Fmt(t.vec_t1, 2), Fmt(t.base_t8, 2),
                 Fmt(t.vec_t8, 2), Fmt(t.base_t8 / t.vec_t8, 2)});
  json->Set(name + "_baseline_t1_ms", t.base_t1);
  json->Set(name + "_vector_t1_ms", t.vec_t1);
  json->Set(name + "_baseline_t8_ms", t.base_t8);
  json->Set(name + "_vector_t8_ms", t.vec_t8);
  json->Set(name + "_speedup_t8", t.base_t8 / t.vec_t8);
}

std::vector<uint64_t> MakeValues(int64_t count) {
  std::vector<uint64_t> values(static_cast<size_t>(count));
  uint64_t x = 0x243f6a8885a308d3ULL;  // Weyl sequence: cheap, full-period.
  for (auto& v : values) {
    v = x;
    x += 0x9e3779b97f4a7c15ULL;
  }
  return values;
}

// Bit-identity against the embedded baselines at a lane-unfriendly tail
// count, at both thread counts — independent of the wall-time runs so a
// fast-but-wrong kernel cannot pass.
void CheckParity(const std::vector<uint64_t>& values) {
  const int64_t counts[] = {kRows, kRows - 3};
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    for (const int64_t n : counts) {
      std::vector<uint64_t> want(static_cast<size_t>(n));
      std::vector<uint64_t> got(static_cast<size_t>(n));
      baseline::HashMany(values.data(), n, kWhitening, want.data());
      ForChunks(*pool, n, [&](int64_t b, int64_t e) {
        simd::HashMany(values.data() + b, e - b, kWhitening, got.data() + b);
      });
      Gate(want == got, "hash parity mismatch");

      std::vector<int32_t> want_b(static_cast<size_t>(n));
      std::vector<int32_t> got_b(static_cast<size_t>(n));
      baseline::BucketMany(values.data(), n, kWhitening, 1000, want_b.data());
      ForChunks(*pool, n, [&](int64_t b, int64_t e) {
        simd::BucketMany(values.data() + b, e - b, kWhitening, 1000,
                         got_b.data() + b);
      });
      Gate(want_b == got_b, "bucket parity mismatch");

      baseline::GroupHashMany(values.data(), n, kGroupSeed, (1 << 20) - 1,
                              want.data());
      ForChunks(*pool, n, [&](int64_t b, int64_t e) {
        simd::GroupHashMany(values.data() + b, e - b, kGroupSeed,
                            (1 << 20) - 1, got.data() + b);
      });
      Gate(want == got, "grouphash parity mismatch");

      const uint64_t lo = uint64_t{1} << 62, hi = uint64_t{3} << 62;
      std::vector<int64_t> want_idx(static_cast<size_t>(n));
      std::vector<int64_t> got_idx(static_cast<size_t>(n));
      const int64_t want_hits =
          baseline::FillInRange(values.data(), n, 0, lo, hi, want_idx.data());
      Gate(baseline::CountInRange(values.data(), n, lo, hi) == want_hits,
           "baseline count/fill disagree");
      Gate(simd::CountInRange(values.data(), n, lo, hi) == want_hits,
           "filter count parity mismatch");
      const int64_t got_hits = simd::FillInRange(values.data(), n, 0, lo, hi,
                                                 got_idx.data(), want_hits);
      Gate(got_hits == want_hits, "filter fill count mismatch");
      want_idx.resize(static_cast<size_t>(want_hits));
      got_idx.resize(static_cast<size_t>(got_hits));
      Gate(want_idx == got_idx, "filter fill parity mismatch");

      const int64_t stride_rows = n / 8;
      std::vector<uint64_t> want_g(static_cast<size_t>(stride_rows));
      std::vector<uint64_t> got_g(static_cast<size_t>(stride_rows));
      baseline::GatherStride(values.data(), 8, stride_rows, want_g.data());
      ForChunks(*pool, stride_rows, [&](int64_t b, int64_t e) {
        simd::GatherStride(values.data() + b * 8, 8, e - b, got_g.data() + b);
      });
      Gate(want_g == got_g, "gather parity mismatch");

      std::vector<int64_t> idx(static_cast<size_t>(stride_rows));
      for (int64_t i = 0; i < stride_rows; ++i) {
        idx[static_cast<size_t>(i)] = (i * 7) % stride_rows;
      }
      baseline::GatherIndexed(values.data(), idx.data(), stride_rows, 8, 3,
                              want_g.data());
      ForChunks(*pool, stride_rows, [&](int64_t b, int64_t e) {
        simd::GatherIndexed(values.data(), idx.data() + b, e - b, 8, 3,
                            got_g.data() + b);
      });
      Gate(want_g == got_g, "gather_indexed parity mismatch");

      std::vector<int64_t> want_h(256, 0), got_h(256, 0);
      baseline::HistogramTopBits(values.data(), n, 8, want_h.data());
      simd::HistogramTopBits(values.data(), n, 8, got_h.data());
      Gate(want_h == got_h, "histogram parity mismatch");
    }
  }
}

}  // namespace
}  // namespace mpcqp

int main() {
  using namespace mpcqp;  // NOLINT
  BenchJson json("simd");

  const char* isa = simd::IsaLevelName(simd::DispatchedIsa());
  bench::Banner("SIMD kernels vs embedded scalar baselines — dispatched: " +
                std::string(isa) + ", " + std::to_string(kRows) +
                " values, threads {1, 8}, best of " + std::to_string(kReps));

  const std::vector<uint64_t> values = MakeValues(kRows);
  CheckParity(values);

  Table table({"kernel", "base t1", "vec t1", "base t8", "vec t8",
               "speedup t8"});

  std::vector<uint64_t> out64(static_cast<size_t>(kRows));
  std::vector<int32_t> out32(static_cast<size_t>(kRows));
  std::vector<int64_t> out_idx(static_cast<size_t>(kRows));

  Report(&table, &json, "hash", /*headline=*/true, /*vectorized=*/true,
         [&](ThreadPool& pool, bool vec) {
           ForChunks(pool, kRows, [&](int64_t b, int64_t e) {
             (vec ? simd::HashMany : baseline::HashMany)(
                 values.data() + b, e - b, kWhitening, out64.data() + b);
           });
         });

  Report(&table, &json, "bucket", /*headline=*/true, /*vectorized=*/true,
         [&](ThreadPool& pool, bool vec) {
           ForChunks(pool, kRows, [&](int64_t b, int64_t e) {
             (vec ? simd::BucketMany : baseline::BucketMany)(
                 values.data() + b, e - b, kWhitening, 1000,
                 out32.data() + b);
           });
         });

  Report(&table, &json, "grouphash", /*headline=*/true, /*vectorized=*/true,
         [&](ThreadPool& pool, bool vec) {
           ForChunks(pool, kRows, [&](int64_t b, int64_t e) {
             (vec ? simd::GroupHashMany : baseline::GroupHashMany)(
                 values.data() + b, e - b, kGroupSeed, (1 << 20) - 1,
                 out64.data() + b);
           });
         });

  // Filter: the SelectRange shape — per-chunk count, serial prefix sum,
  // per-chunk fill into disjoint output ranges. ~25% selectivity.
  {
    const uint64_t lo = uint64_t{1} << 62, hi = uint64_t{3} << 61;
    Report(&table, &json, "filter", /*headline=*/true, /*vectorized=*/true,
           [&](ThreadPool& pool, bool vec) {
             const int64_t chunks = (kRows + kGrain - 1) / kGrain;
             std::vector<int64_t> counts(static_cast<size_t>(chunks));
             ForChunks(pool, kRows, [&](int64_t b, int64_t e) {
               counts[static_cast<size_t>(b / kGrain)] =
                   vec ? simd::CountInRange(values.data() + b, e - b, lo, hi)
                       : baseline::CountInRange(values.data() + b, e - b, lo,
                                                hi);
             });
             std::vector<int64_t> offsets(static_cast<size_t>(chunks), 0);
             std::partial_sum(counts.begin(), counts.end() - 1,
                              offsets.begin() + 1);
             ForChunks(pool, kRows, [&](int64_t b, int64_t e) {
               const auto c = static_cast<size_t>(b / kGrain);
               if (vec) {
                 simd::FillInRange(values.data() + b, e - b, b, lo, hi,
                                   out_idx.data() + offsets[c], counts[c]);
               } else {
                 baseline::FillInRange(values.data() + b, e - b, b, lo, hi,
                                       out_idx.data() + offsets[c]);
               }
             });
           });
  }

  // Gather: stride-8 key-column extraction (the arity-8 GatherKeyColumn
  // shape). Don't-lose gate only — gathers are memory-bound.
  {
    const int64_t rows = kRows / 8;
    Report(&table, &json, "gather", /*headline=*/false, /*vectorized=*/true,
           [&](ThreadPool& pool, bool vec) {
             ForChunks(pool, rows, [&](int64_t b, int64_t e) {
               (vec ? simd::GatherStride : baseline::GatherStride)(
                   values.data() + b * 8, 8, e - b, out64.data() + b);
             });
           });
  }

  // Histogram: the radix top-byte count pass. The library implementation
  // is the interleaved scalar loop at every level (scatter-shaped), so no
  // vector gate applies — the JSON trajectory tracks the interleaving win.
  Report(&table, &json, "histogram", /*headline=*/false, /*vectorized=*/false,
         [&](ThreadPool& pool, bool vec) {
           const int64_t chunks = (kRows + kGrain - 1) / kGrain;
           std::vector<int64_t> counts(static_cast<size_t>(chunks) * 256, 0);
           ForChunks(pool, kRows, [&](int64_t b, int64_t e) {
             int64_t* mine = counts.data() + (b / kGrain) * 256;
             if (vec) {
               simd::HistogramTopBits(values.data() + b, e - b, 8, mine);
             } else {
               baseline::HistogramTopBits(values.data() + b, e - b, 8, mine);
             }
           });
         });

  table.Print();

  json.Set("rows", kRows);
  json.Set("gate_ok", g_ok ? "pass" : "fail");
  json.Write();
  if (!g_ok) {
    std::printf("\nsimd bench gate FAILED (dispatched: %s)\n", isa);
    return 1;
  }
  std::printf(
      "\nsimd bench gate passed (dispatched: %s): outputs bit-identical to "
      "embedded baselines; vector kernels hold their speedup gates at t=8\n",
      isa);
  return 0;
}
