// A1 — ablation of DESIGN.md decision ✦3: integer share rounding.
//
// The share LP's fractional optimum must be rounded to integer shares with
// product <= p. We compare floor+greedy-repair against exhaustive search
// (and against the fractional LP bound) across queries, sizes, and p.

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/hypercube.h"
#include "query/hypergraph_lp.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

std::string SharesString(const std::vector<int>& shares) {
  std::string s;
  for (size_t v = 0; v < shares.size(); ++v) {
    if (v > 0) s += "x";
    s += std::to_string(shares[v]);
  }
  return s;
}

void Run() {
  bench::Banner(
      "A1: share rounding — floor+greedy vs exhaustive vs fractional LP");
  Table table({"query", "sizes", "p", "LP load", "greedy shares",
               "greedy load", "exact shares", "exact load",
               "greedy/exact"});

  struct Case {
    const char* name;
    ConjunctiveQuery query;
    std::vector<int64_t> sizes;
  };
  const Case cases[] = {
      {"triangle", ConjunctiveQuery::Triangle(), {10000, 10000, 10000}},
      {"triangle", ConjunctiveQuery::Triangle(), {500, 20000, 20000}},
      {"2-way", ConjunctiveQuery::TwoWayJoin(), {30000, 3000}},
      {"path-4", ConjunctiveQuery::Path(4), {8000, 8000, 8000, 8000}},
      {"star-3", ConjunctiveQuery::Star(3), {9000, 9000, 9000}},
  };
  for (const Case& c : cases) {
    for (const int p : {8, 27, 50, 100}) {
      const auto lp = OptimalShareExponents(c.query, c.sizes, p);
      const IntegerShares greedy =
          ComputeShares(c.query, c.sizes, p, ShareRounding::kFloorGreedy);
      const IntegerShares exact =
          ComputeShares(c.query, c.sizes, p, ShareRounding::kExhaustive);
      std::string sizes;
      for (size_t j = 0; j < c.sizes.size(); ++j) {
        if (j > 0) sizes += ",";
        sizes += std::to_string(c.sizes[j]);
      }
      table.AddRow(
          {c.name, sizes, FmtInt(p),
           Fmt(lp.ok() ? lp->predicted_load : -1, 0),
           SharesString(greedy.shares), Fmt(greedy.predicted_load, 0),
           SharesString(exact.shares), Fmt(exact.predicted_load, 0),
           Fmt(greedy.predicted_load / exact.predicted_load, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nTakeaway: greedy matches exhaustive search on nearly every "
      "instance (ratio 1.0); integer rounding itself costs up to ~2x over "
      "the fractional LP at awkward p (non-perfect powers), which is the "
      "staircase seen in the slide-45 speedup curve.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
