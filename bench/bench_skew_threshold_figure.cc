// E3 — deck slide 26: "The Effect of Skew" figure.
//
// For IN = 100 billion tuples, the plotted curve is the largest uniform
// degree d such that the hash-partition load stays within 30% of IN/p
// with probability 95%, as p grows from 50 to 1000. Solving the slide's
// Chernoff bound p·exp(-δ²·IN/(3·p·d)) = 0.05 for d gives
//   d(p) = δ²·IN / (3·p·ln(p/0.05)).
// We regenerate the analytic series at the slide's scale (IN = 1e11) and
// then validate the bound empirically at simulator scale (IN = 2^16).

#include <cmath>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

double DegreeThreshold(double in, double p, double delta, double fail_prob) {
  return delta * delta * in / (3.0 * p * std::log(p / fail_prob));
}

void Run() {
  bench::Banner(
      "E3 (slide 26): max tolerable degree d(p), IN=1e11, <=30% over "
      "IN/p w.p. 95% (analytic, the slide's own curve)");
  Table analytic({"p", "d threshold (millions)"});
  for (int p = 50; p <= 1000; p += 50) {
    const double d = DegreeThreshold(1e11, p, 0.3, 0.05);
    analytic.AddRow({FmtInt(p), Fmt(d / 1e6, 2)});
  }
  analytic.Print();
  std::printf(
      "\nSlide's reference points: p=100 -> ~4M, p=1000 -> ~0.3-1M "
      "(slide annotates d=10^4 conservatively; the exact constant depends "
      "on the bound used). Shape: d(p) falls roughly as 1/(p log p).\n");

  // Empirical validation at simulator scale: at the analytic threshold
  // the overload probability should be near (below) 5%; at 8x the
  // threshold it should be clearly worse.
  bench::Banner("E3 validation: measured overload probability, IN=2^16, p=32");
  const int64_t n = 1 << 16;
  const int p = 32;
  const double delta = 0.3;
  const int trials = 300;
  Rng rng(13);
  Table measured({"degree d", "d / d_threshold", "Pr[L > 1.3 IN/p]"});
  const double threshold = DegreeThreshold(static_cast<double>(n), p, delta,
                                           0.05);
  for (const double factor : {0.25, 1.0, 4.0, 16.0}) {
    int64_t degree = std::max<int64_t>(
        1, static_cast<int64_t>(threshold * factor));
    while (n % degree != 0) --degree;  // GenerateMatchingDegree needs d | n.
    const Relation rel = GenerateMatchingDegree(rng, n, degree);
    int exceed = 0;
    for (int t = 0; t < trials; ++t) {
      const HashFunction hash(5000 + t);
      std::vector<int64_t> counts(p, 0);
      for (int64_t i = 0; i < rel.size(); ++i) {
        ++counts[hash.Bucket(rel.at(i, 1), p)];
      }
      int64_t load = 0;
      for (int64_t c : counts) load = std::max(load, c);
      if (static_cast<double>(load) > (1.0 + delta) * n / p) ++exceed;
    }
    measured.AddRow({FmtInt(degree),
                     Fmt(static_cast<double>(degree) / threshold, 2),
                     Fmt(static_cast<double>(exceed) / trials, 3)});
  }
  measured.Print();
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
