// E15 — deck slides 99-106: distributed sorting.
//
// (a) Slide 102: PSRS load ~ N/p while p << N^{1/3}; the p^2 sample term
//     takes over past that (measured sweep).
// (b) Slide 102: regular sampling vs random sampling splitter quality.
// (c) Slides 103-105: multi-round sort — rounds vs per-round load as the
//     fan-out shrinks, against the Ω(log_L N) round lower bound.
// (d) Slide 106: the "sorting in practice" table re-cast over our own
//     implementations (splitter-based, coarse-grained).

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "sort/multi_round_sort.h"
#include "sort/psrs.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void PsrsSweep() {
  bench::Banner("E15a (slide 102): PSRS load vs p, N=65536");
  const int64_t n = 1 << 16;
  Rng data_rng(137);
  const Relation input = GenerateUniform(data_rng, n, 1, 1u << 31);
  Table table({"p", "measured L", "N/p", "p^2 (sample term)",
               "L / (N/p + p^2)", "balanced?"});
  for (const int p : {2, 4, 8, 16, 32, 64}) {
    Cluster cluster(p, 7);
    PsrsOptions options;
    options.key_cols = {0};
    const PsrsResult result =
        PsrsSort(cluster, DistRelation::Scatter(input, p), options);
    const int64_t load = cluster.cost_report().MaxLoadTuples();
    const double denom = static_cast<double>(n) / p +
                         static_cast<double>(p) * p;
    table.AddRow({FmtInt(p), FmtInt(load), FmtInt(n / p),
                  FmtInt(static_cast<int64_t>(p) * p),
                  Fmt(static_cast<double>(load) / denom, 2),
                  IsGloballySorted(result.sorted, {0}) ? "sorted" : "NO"});
  }
  table.Print();
}

void SplitterQuality() {
  bench::Banner(
      "E15b (slide 102): splitter quality — regular sample vs random "
      "sampling, N=65536, p=16");
  const int64_t n = 1 << 16;
  const int p = 16;
  Rng data_rng(139);
  const Relation input = GenerateUniform(data_rng, n, 1, 1u << 31);
  Table table({"splitter mode", "max fragment", "ideal N/p",
               "imbalance max/ideal"});
  {
    Cluster cluster(p, 7);
    PsrsOptions options;
    options.key_cols = {0};
    const PsrsResult result =
        PsrsSort(cluster, DistRelation::Scatter(input, p), options);
    table.AddRow({"regular sample (p-1/server)",
                  FmtInt(result.sorted.MaxFragmentSize()), FmtInt(n / p),
                  Fmt(static_cast<double>(result.sorted.MaxFragmentSize()) /
                          (n / p),
                      3)});
  }
  for (const int samples : {4, 16, 64}) {
    Cluster cluster(p, 7);
    Rng rng(141);
    PsrsOptions options;
    options.key_cols = {0};
    options.use_sampling = true;
    options.samples_per_server = samples;
    const PsrsResult result =
        PsrsSort(cluster, DistRelation::Scatter(input, p), options, &rng);
    table.AddRow({"random sampling (" + std::to_string(samples) + "/server)",
                  FmtInt(result.sorted.MaxFragmentSize()), FmtInt(n / p),
                  Fmt(static_cast<double>(result.sorted.MaxFragmentSize()) /
                          (n / p),
                      3)});
  }
  table.Print();
}

void MultiRoundTradeoff() {
  bench::Banner(
      "E15c (slides 103-105): multi-round sort — rounds vs load, N=32768, "
      "p=64");
  const int64_t n = 1 << 15;
  const int p = 64;
  Rng data_rng(149);
  const Relation input = GenerateUniform(data_rng, n, 1, 1u << 31);
  Table table({"fan-out f", "rounds", "measured L", "log_L(N) lower bound"});
  for (const int fan_out : {2, 4, 8, 64}) {
    Cluster cluster(p, 7);
    Rng rng(151);
    const MultiRoundSortResult result = MultiRoundSort(
        cluster, DistRelation::Scatter(input, p), 0, fan_out, rng);
    const int64_t load = cluster.cost_report().MaxLoadTuples();
    const double lb = std::log(static_cast<double>(n)) /
                      std::log(std::max<double>(2.0,
                                                static_cast<double>(load)));
    table.AddRow({FmtInt(fan_out), FmtInt(result.rounds), FmtInt(load),
                  Fmt(lb, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check (slide 105): fewer rounds require higher per-round "
      "load; every (r, L) point respects r >= log_L N.\n");
}

void PracticeTable() {
  bench::Banner(
      "E15d (slide 106 recast): our sort implementations, N=65536, p=16 — "
      "all practical sorts are splitter-based with p << N");
  const int64_t n = 1 << 16;
  const int p = 16;
  Rng data_rng(157);
  const Relation input = GenerateUniform(data_rng, n, 1, 1u << 31);
  Table table({"algorithm", "rounds", "L", "total comm", "notes"});
  {
    Cluster cluster(p, 7);
    PsrsOptions options;
    options.key_cols = {0};
    PsrsSort(cluster, DistRelation::Scatter(input, p), options);
    table.AddRow({"PSRS (regular sampling)",
                  FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().TotalCommTuples()),
                  "the textbook 2-round sort"});
  }
  {
    Cluster cluster(p, 7);
    Rng rng(163);
    PsrsOptions options;
    options.key_cols = {0};
    options.use_sampling = true;
    options.samples_per_server = 32;
    PsrsSort(cluster, DistRelation::Scatter(input, p), options, &rng);
    table.AddRow({"sample-sort (random splitters)",
                  FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().TotalCommTuples()),
                  "what modern systems do (slide 102)"});
  }
  {
    Cluster cluster(p, 7);
    Rng rng(167);
    const auto result = MultiRoundSort(
        cluster, DistRelation::Scatter(input, p), 0, 4, rng);
    table.AddRow({"multi-round distribution sort (f=4)",
                  FmtInt(result.rounds),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().TotalCommTuples()),
                  "Goodrich-style regime, fine-grained p"});
  }
  table.Print();
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::PsrsSweep();
  mpcqp::SplitterQuality();
  mpcqp::MultiRoundTradeoff();
  mpcqp::PracticeTable();
  return 0;
}
