// Columnar vs row-major hot-kernel study (EXPERIMENTS.md E22): the three
// kernels the --layout flag routes — single-column selection scans, the
// exchange route pass, and group-by scans — timed through both physical
// layouts on the same data, plus the arity/selectivity crossover sweep
// the kAuto heuristics are derived from.
//
// Emits BENCH_columnar.json. CI runs this binary as a Release gate and
// fails (exit 1) if
//  - any kernel's output differs between layouts, across {1, 8} threads
//    and morsel sizes {1024, 65536} (the layout determinism contract), or
//  - columnar loses to row-major (beyond a 5% noise band) at t=8 on any
//    gated shape, or
//  - the wide-arity filter shape shows less than 1.5x columnar speedup.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "agg/groupby_engine.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "relation/columnar.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::Table;
using bench::WallTimer;

constexpr int kReps = 3;       // Best-of-N wall times.
constexpr int kServers = 8;
constexpr uint64_t kSeed = 42;
// Columnar must not lose at t=8; a small band absorbs scheduler noise.
constexpr double kNoiseBand = 1.05;
// Headline gate on the wide-arity filter shape.
constexpr double kHeadlineSpeedup = 1.5;
const int64_t kMorselSweep[] = {1024, 65536};

double BestOf(const std::function<void()>& body) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    body();
    const double ms = timer.ElapsedMs();
    if (ms < best) best = ms;
  }
  return best;
}

bool g_ok = true;

void Gate(bool pass, const std::string& what) {
  if (!pass) {
    std::printf("FAIL: %s\n", what.c_str());
    g_ok = false;
  }
}

// ---- Shape 1: wide-arity filter (the headline scan shape) ----
// A 16-wide fact relation filtered on one column at ~50% selectivity: the
// row path strides 128 bytes per predicate, the columnar path streams one
// contiguous column. Scans repeat against a transposed snapshot, so the
// transpose is amortized and reported separately.
void RunWideFilter(Table* table, BenchJson* json) {
  Rng rng(31);
  const int64_t rows = 600000;
  const Relation rel = GenerateUniform(rng, rows, 16, 1000);
  const Value lo = 250, hi = 749;
  ThreadPool pool1(1);
  ThreadPool pool8(8);

  const std::vector<int64_t> reference =
      SelectRange(rel, 0, lo, hi, nullptr, 0, LayoutMode::kRow);

  WallTimer transpose_timer;
  const ColumnarRelation col =
      ColumnarRelation::FromRowMajor(rel, &pool8, 65536);
  const double transpose_ms = transpose_timer.ElapsedMs();

  const double row_t8 = BestOf([&] {
    SelectRange(rel, 0, lo, hi, &pool8, 65536, LayoutMode::kRow);
  });
  const double col_t8 =
      BestOf([&] { SelectRange(col, 0, lo, hi, &pool8, 65536); });
  const double row_t1 = BestOf([&] {
    SelectRange(rel, 0, lo, hi, &pool1, 65536, LayoutMode::kRow);
  });
  const double col_t1 =
      BestOf([&] { SelectRange(col, 0, lo, hi, &pool1, 65536); });

  // Bit-identity: layouts x threads x morsel sizes all match the serial
  // row-path reference (ascending match indices).
  for (ThreadPool* pool : {&pool1, &pool8}) {
    for (const int64_t morsel : kMorselSweep) {
      for (const LayoutMode layout :
           {LayoutMode::kRow, LayoutMode::kColumnar, LayoutMode::kAuto}) {
        Gate(SelectRange(rel, 0, lo, hi, pool, morsel, layout) == reference,
             "wide_filter row-view output mismatch");
      }
      Gate(SelectRange(col, 0, lo, hi, pool, morsel) == reference,
           "wide_filter columnar output mismatch");
    }
  }

  Gate(col_t8 <= row_t8 * kNoiseBand, "wide_filter: columnar loses at t=8");
  Gate(row_t8 / col_t8 >= kHeadlineSpeedup,
       "wide_filter: columnar speedup below " + Fmt(kHeadlineSpeedup, 1) +
           "x at t=8 (" + Fmt(row_t8 / col_t8, 2) + "x)");

  table->AddRow({"wide_filter(a=16)", bench::FmtInt(rows), Fmt(row_t1, 2),
                 Fmt(col_t1, 2), Fmt(row_t8, 2), Fmt(col_t8, 2),
                 Fmt(row_t8 / col_t8, 2)});
  json->Set("wide_filter_rows", rows);
  json->Set("wide_filter_transpose_ms", transpose_ms);
  json->Set("wide_filter_row_t1_ms", row_t1);
  json->Set("wide_filter_columnar_t1_ms", col_t1);
  json->Set("wide_filter_row_t8_ms", row_t8);
  json->Set("wide_filter_columnar_t8_ms", col_t8);
  json->Set("wide_filter_speedup_t8", row_t8 / col_t8);
}

// ---- Shape 2: wide-arity exchange route ----
// HashPartition of a 12-wide relation on one key column: kRow fuses the
// strided gather into the route loop, kColumnar extracts the key column
// (Phase::kTranspose) and buckets it with one vectorized pass.
void RunRouteWide(Table* table, BenchJson* json) {
  Rng rng(32);
  const int64_t rows = 400000;
  const Relation rel = GenerateUniform(rng, rows, 12, 1 << 20);
  const DistRelation input = DistRelation::Scatter(rel, kServers);

  const auto run = [&](LayoutMode layout, int threads, int64_t morsel) {
    ClusterOptions options;
    options.num_threads = threads;
    options.morsel_rows = morsel;
    options.layout = layout;
    Cluster cluster(kServers, kSeed, options);
    const HashFunction hash = cluster.NewHashFunction();
    return HashPartition(cluster, input, {3}, hash, "bench: route");
  };

  const DistRelation reference = run(LayoutMode::kRow, 1, 8192);
  const auto same = [&](const DistRelation& got) {
    for (int s = 0; s < kServers; ++s) {
      if (!(got.fragment(s) == reference.fragment(s))) return false;
    }
    return true;
  };
  for (const int threads : {1, 8}) {
    for (const int64_t morsel : kMorselSweep) {
      for (const LayoutMode layout :
           {LayoutMode::kRow, LayoutMode::kColumnar, LayoutMode::kAuto}) {
        Gate(same(run(layout, threads, morsel)),
             "route_wide shuffle output mismatch");
      }
    }
  }

  const double row_t8 =
      BestOf([&] { run(LayoutMode::kRow, 8, 8192); });
  const double col_t8 =
      BestOf([&] { run(LayoutMode::kColumnar, 8, 8192); });
  const double row_t1 =
      BestOf([&] { run(LayoutMode::kRow, 1, 8192); });
  const double col_t1 =
      BestOf([&] { run(LayoutMode::kColumnar, 1, 8192); });

  Gate(col_t8 <= row_t8 * kNoiseBand, "route_wide: columnar loses at t=8");

  table->AddRow({"route_wide(a=12)", bench::FmtInt(rows), Fmt(row_t1, 2),
                 Fmt(col_t1, 2), Fmt(row_t8, 2), Fmt(col_t8, 2),
                 Fmt(row_t8 / col_t8, 2)});
  json->Set("route_wide_rows", rows);
  json->Set("route_wide_row_t1_ms", row_t1);
  json->Set("route_wide_columnar_t1_ms", col_t1);
  json->Set("route_wide_row_t8_ms", row_t8);
  json->Set("route_wide_columnar_t8_ms", col_t8);
  json->Set("route_wide_speedup_t8", row_t8 / col_t8);
}

// ---- Shape 3: wide-arity group-by scan ----
// SUM over one value column grouped by one key column of an 8-wide
// relation: the columnar engine path compacts the two live columns out of
// the wide rows before hashing/accumulating.
void RunGroupByWide(Table* table, BenchJson* json) {
  Rng rng(33);
  const int64_t rows = 600000;
  const Relation rel = GenerateUniform(rng, rows, 8, 5000);
  ThreadPool pool1(1);
  ThreadPool pool8(8);

  const auto run = [&](LayoutMode layout, ThreadPool* pool,
                       int64_t morsel) {
    GroupByEngineOptions options;
    options.pool = pool;
    options.morsel_rows = morsel;
    options.layout = layout;
    StatusOr<Relation> out =
        GroupByAggregateParallel(rel, {0}, 1, AggregateOp::kSum, options);
    if (!out.ok()) {
      std::printf("FAIL: groupby_wide errored: %s\n",
                  out.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(out).value();
  };

  const Relation reference = run(LayoutMode::kRow, &pool1, 8192);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    for (const int64_t morsel : kMorselSweep) {
      for (const LayoutMode layout :
           {LayoutMode::kRow, LayoutMode::kColumnar, LayoutMode::kAuto}) {
        Gate(run(layout, pool, morsel) == reference,
             "groupby_wide output mismatch");
      }
    }
  }

  const double row_t8 =
      BestOf([&] { run(LayoutMode::kRow, &pool8, 8192); });
  const double col_t8 =
      BestOf([&] { run(LayoutMode::kColumnar, &pool8, 8192); });
  const double row_t1 =
      BestOf([&] { run(LayoutMode::kRow, &pool1, 8192); });
  const double col_t1 =
      BestOf([&] { run(LayoutMode::kColumnar, &pool1, 8192); });

  Gate(col_t8 <= row_t8 * kNoiseBand, "groupby_wide: columnar loses at t=8");

  table->AddRow({"groupby_wide(a=8)", bench::FmtInt(rows), Fmt(row_t1, 2),
                 Fmt(col_t1, 2), Fmt(row_t8, 2), Fmt(col_t8, 2),
                 Fmt(row_t8 / col_t8, 2)});
  json->Set("groupby_wide_rows", rows);
  json->Set("groupby_wide_row_t1_ms", row_t1);
  json->Set("groupby_wide_columnar_t1_ms", col_t1);
  json->Set("groupby_wide_row_t8_ms", row_t8);
  json->Set("groupby_wide_columnar_t8_ms", col_t8);
  json->Set("groupby_wide_speedup_t8", row_t8 / col_t8);
}

// ---- Ungated: arity x selectivity crossover sweep (E22) ----
// Constant total values (4.8M) across arities, so row counts shrink as
// rows widen; selectivity varies the branch density of the predicate.
// This is the data behind the kAuto thresholds in relation/columnar.h.
void RunCrossoverSweep(BenchJson* json) {
  ThreadPool pool8(8);
  bench::Banner("E22 crossover: scan ms by arity x selectivity, t=8");
  Table sweep({"arity", "rows", "selectivity", "row ms", "columnar ms",
               "speedup"});
  for (const int arity : {2, 4, 8, 16}) {
    const int64_t rows = 4800000 / arity;
    Rng rng(40 + arity);
    const Relation rel = GenerateUniform(rng, rows, arity, 1000);
    const ColumnarRelation col =
        ColumnarRelation::FromRowMajor(rel, &pool8, 65536);
    for (const double selectivity : {0.01, 0.5, 0.99}) {
      const Value hi = static_cast<Value>(1000 * selectivity);
      const double row_ms = BestOf([&] {
        SelectRange(rel, 0, 0, hi, &pool8, 65536, LayoutMode::kRow);
      });
      const double col_ms =
          BestOf([&] { SelectRange(col, 0, 0, hi, &pool8, 65536); });
      sweep.AddRow({bench::FmtInt(arity), bench::FmtInt(rows),
                    Fmt(selectivity, 2), Fmt(row_ms, 2), Fmt(col_ms, 2),
                    Fmt(row_ms / col_ms, 2)});
      const std::string key = "sweep_a" + std::to_string(arity) + "_s" +
                              std::to_string(static_cast<int>(
                                  selectivity * 100));
      json->Set(key + "_row_ms", row_ms);
      json->Set(key + "_columnar_ms", col_ms);
    }
  }
  sweep.Print();
}

}  // namespace
}  // namespace mpcqp

int main() {
  using namespace mpcqp;  // NOLINT
  BenchJson json("columnar");

  bench::Banner(
      "Columnar vs row-major hot kernels — threads {1, 8}, best of " +
      std::to_string(kReps));
  Table table({"shape", "rows", "row t1", "col t1", "row t8", "col t8",
               "speedup t8"});

  RunWideFilter(&table, &json);
  RunRouteWide(&table, &json);
  RunGroupByWide(&table, &json);
  table.Print();

  RunCrossoverSweep(&json);

  json.Set("gate_ok", g_ok ? "pass" : "fail");
  json.Write();
  if (!g_ok) {
    std::printf("\ncolumnar bench gate FAILED\n");
    return 1;
  }
  std::printf(
      "\ncolumnar bench gate passed: outputs bit-identical across layouts "
      "x threads x morsels, columnar >= row at t=8, wide filter >= %.1fx\n",
      kHeadlineSpeedup);
  return 0;
}
