// E19 — deck conclusions (slides 129-131): "minimize communication,
// minimize rounds" — the planner's scenario table. For each workload the
// planner ranks every strategy; we then execute ALL feasible strategies
// and check the planner's pick against the measured loads.

#include <string>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "planner/planner.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

void RunScenario(const std::string& name, const ConjunctiveQuery& q,
                 const std::vector<Relation>& atoms, int p,
                 double round_cost) {
  PlannerOptions options;
  options.round_cost_tuples = round_cost;
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, p), p, options);

  bench::Banner("E19: " + name + "  (p=" + std::to_string(p) +
                ", round cost " + Fmt(round_cost, 0) + " tuples, skewed: " +
                (choice.input_is_skewed ? "yes" : "no") + ")");
  Table table({"algorithm", "feasible", "est L", "est r", "measured L",
               "measured r", "chosen"});
  for (const CandidatePlan& plan : choice.candidates) {
    std::string measured_load = "-";
    std::string measured_rounds = "-";
    if (plan.feasible) {
      PlanChoice forced = choice;
      forced.chosen = plan;
      Cluster cluster(p, 7);
      Rng rng(11);
      ExecutePlan(cluster, q, Scatter(atoms, p), forced, rng);
      measured_load = FmtInt(cluster.cost_report().MaxLoadTuples());
      measured_rounds = FmtInt(cluster.cost_report().num_rounds());
    }
    table.AddRow({PlanAlgorithmName(plan.algorithm),
                  plan.feasible ? "yes" : "no",
                  plan.feasible ? Fmt(plan.estimated_load, 0) : "-",
                  plan.feasible ? FmtInt(plan.estimated_rounds) : "-",
                  measured_load, measured_rounds,
                  plan.algorithm == choice.chosen.algorithm ? "<=" : ""});
  }
  table.Print();
}

void Run() {
  const int p = 27;
  {
    Rng rng(1);
    std::vector<Relation> atoms;
    for (int j = 0; j < 3; ++j) {
      atoms.push_back(Dedup(GenerateUniform(rng, 8000, 2, 1 << 14)));
    }
    RunScenario("skew-free triangle, rounds expensive",
                ConjunctiveQuery::Triangle(), atoms, p, 5000);
    RunScenario("skew-free triangle, rounds free",
                ConjunctiveQuery::Triangle(), atoms, p, 0);
  }
  {
    Rng rng(2);
    std::vector<Relation> atoms = {
        Dedup(GenerateUniform(rng, 6000, 2, 1 << 14)),
        GenerateConstantColumn(6000, 1, 7),
        GenerateConstantColumn(6000, 0, 7),
    };
    RunScenario("heavy-z triangle, rounds expensive",
                ConjunctiveQuery::Triangle(), atoms, p, 5000);
  }
  {
    Rng rng(3);
    std::vector<Relation> atoms;
    for (int j = 0; j < 4; ++j) {
      atoms.push_back(GenerateMatchingDegree(rng, 6000, 1));
    }
    RunScenario("sparse acyclic star-4, rounds free",
                ConjunctiveQuery::Star(4), atoms, p, 0);
  }
  std::printf(
      "\nShape check (slides 129-131): expensive rounds push the planner "
      "to 1-round plans (HyperCube / SkewHC by skew); free rounds favor "
      "multi-round plans whose loads approach IN/p; acyclic + small OUT "
      "goes to GYM. The 'chosen' row should sit at or near the best "
      "measured (L, r) combination for the given round price.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
