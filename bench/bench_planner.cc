// E19 — the planner as a measured optimizer, two studies:
//
//  1. Adversarial join-order study: a path query A(x,y), B(y,z), C(z,w)
//     whose y-column is one constant in A and B. Any static strategy that
//     joins A with B first materializes |A|·|B| tuples; the planner's DP
//     starts from the selective C edge instead. We execute the planner's
//     plan AND every feasible static strategy wall-clock; the planner must
//     beat the worst static by >= 3x or the bench exits nonzero.
//
//  2. Plan-cache study: the second PlanQuery for the same query + stats
//     must hit the cache and skip enumeration entirely (dp_states == 0),
//     or the bench exits nonzero.
//
// Emits BENCH_planner.json with both studies' datapoints for CI tracking.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "planner/calibration.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::FmtInt;
using bench::Table;
using bench::WallTimer;

constexpr int kServers = 16;

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

// y constant in A and B: the A-B prefix explodes to rows^2 tuples; C keeps
// only 5 of B's z values, so C-first orders stay near-linear and OUT is
// small enough that the reordered binary plan dominates every one-round
// strategy on estimated load as well.
std::vector<Relation> AdversarialPathData(int64_t rows) {
  Relation a(2);
  Relation b(2);
  for (int64_t i = 0; i < rows; ++i) {
    a.AppendRow({Value(1000000 + i), Value(7)});
    b.AppendRow({Value(7), Value(i)});
  }
  Relation c(2);
  for (int64_t i = 0; i < 5; ++i) {
    c.AppendRow({Value(i * (rows / 5)), Value(5000000 + i)});
  }
  return {a, b, c};
}

double TimeStatic(const ConjunctiveQuery& q, const std::vector<Relation>& atoms,
                  const CandidatePlan& plan, const PlanChoice& ranking) {
  PlanChoice forced = ranking;
  forced.chosen = plan;
  Cluster cluster(kServers, 7);
  Rng rng(11);
  WallTimer timer;
  ExecutePlan(cluster, q, Scatter(atoms, kServers), forced, rng);
  return timer.ElapsedMs();
}

int Run() {
  BenchJson json("planner");
  int failures = 0;

  // ---- Study 1: planner vs every feasible static strategy ----
  const auto parsed = ConjunctiveQuery::Parse("A(x,y), B(y,z), C(z,w)");
  const ConjunctiveQuery& q = *parsed;
  const std::vector<Relation> atoms = AdversarialPathData(2000);

  // Calibrated pricing is what makes a 15-round variable-at-a-time plan
  // with a small load estimate lose to a 2-round reordered binary plan:
  // rounds cost measured microseconds, not zero.
  PlannerOptions options;
  options.cost = CalibrateCostModel(kServers, /*num_threads=*/1);
  std::printf("calibrated cost model: %s\n", options.cost.ToString().c_str());

  PlanCache cache;
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, kServers), kServers, options, &cache);
  Cluster planner_cluster(kServers, 7);
  Rng planner_rng(11);
  WallTimer exec_timer;
  ExecutePlannedQuery(planner_cluster, q, Scatter(atoms, kServers), planned,
                      planner_rng);
  const double planner_ms = exec_timer.ElapsedMs();

  bench::Banner("E19: adversarial path, planner vs static strategies (p=" +
                std::to_string(kServers) + ")");
  std::printf("planner chose %s via: %s\n",
              PlanAlgorithmName(planned.plan.family),
              planned.plan.rationale.c_str());

  Table table({"strategy", "wall ms", "measured L", "rounds"});
  table.AddRow({std::string("planner (") +
                    PlanAlgorithmName(planned.plan.family) + ")",
                Fmt(planner_ms, 1),
                FmtInt(planner_cluster.cost_report().MaxLoadTuples()),
                FmtInt(planner_cluster.cost_report().num_rounds())});

  double worst_ms = 0.0;
  std::string worst_name;
  for (const CandidatePlan& plan : planned.candidates) {
    if (!plan.feasible) continue;
    PlanChoice ranking;
    ranking.candidates = planned.candidates;
    ranking.input_is_skewed = planned.input_is_skewed;
    const double ms = TimeStatic(q, atoms, plan, ranking);
    table.AddRow({std::string("static ") + PlanAlgorithmName(plan.algorithm),
                  Fmt(ms, 1), "-", FmtInt(plan.estimated_rounds)});
    if (ms > worst_ms) {
      worst_ms = ms;
      worst_name = PlanAlgorithmName(plan.algorithm);
    }
    json.Set(std::string("static_") + PlanAlgorithmName(plan.algorithm) +
                 "_ms",
             ms);
  }
  {
    // The vanilla binary driver's default (identity) join order — the
    // static plan every naive system would run — hits the A-B blowup.
    Cluster cluster(kServers, 7);
    Rng rng(11);
    WallTimer timer;
    IterativeBinaryJoin(cluster, q, Scatter(atoms, kServers), rng, {});
    const double ms = timer.ElapsedMs();
    table.AddRow({"static binary-plan (identity order)", Fmt(ms, 1), "-",
                  FmtInt(cluster.cost_report().num_rounds())});
    if (ms > worst_ms) {
      worst_ms = ms;
      worst_name = "binary-plan-identity";
    }
    json.Set("static_binary_identity_ms", ms);
  }
  table.Print();

  const double speedup = planner_ms > 0 ? worst_ms / planner_ms : 0.0;
  std::printf("worst static: %s at %s ms; planner %s ms -> %.1fx\n",
              worst_name.c_str(), Fmt(worst_ms, 1).c_str(),
              Fmt(planner_ms, 1).c_str(), speedup);
  json.Set("planner_ms", planner_ms);
  json.Set("planner_family",
           std::string(PlanAlgorithmName(planned.plan.family)));
  json.Set("worst_static", worst_name);
  json.Set("worst_static_ms", worst_ms);
  json.Set("speedup_vs_worst_static", speedup);
  if (speedup < 3.0) {
    std::printf("FAIL: planner is not >=3x faster than the worst static "
                "strategy\n");
    ++failures;
  }

  // ---- Study 2: warm plan cache skips enumeration ----
  const double cold_planning_ms = planned.planning_ms;
  const PlannedQuery warm =
      PlanQuery(q, Scatter(atoms, kServers), kServers, options, &cache);
  bench::Banner("E19: plan cache, cold vs warm planning");
  std::printf("cold: %.3f ms, %lld dp states; warm: %.3f ms, %lld dp "
              "states, cache_hit=%s\n",
              cold_planning_ms, static_cast<long long>(planned.dp_states),
              warm.planning_ms, static_cast<long long>(warm.dp_states),
              warm.cache_hit ? "yes" : "no");
  json.Set("cold_planning_ms", cold_planning_ms);
  json.Set("cold_dp_states", planned.dp_states);
  json.Set("warm_planning_ms", warm.planning_ms);
  json.Set("warm_dp_states", warm.dp_states);
  json.Set("warm_cache_hit", warm.cache_hit ? 1 : 0);
  if (!warm.cache_hit || warm.dp_states != 0) {
    std::printf("FAIL: warm plan was not a cache hit with zero dp states\n");
    ++failures;
  }

  json.Write();
  return failures;
}

}  // namespace
}  // namespace mpcqp

int main() { return mpcqp::Run() == 0 ? 0 : 1; }
