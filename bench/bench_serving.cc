// E20 — the multi-query serving runtime under repeated traffic.
//
// A fixed workload of distinct conjunctive queries is served to {1, 8, 64}
// closed-loop clients. Data "deploys" arrive in epochs: before each epoch
// every base relation is re-registered with fresh content, which changes
// its fingerprint and invalidates every cached result — the classic cache
// stampede. Within an epoch each query executes at most once no matter how
// many clients ask for it (the first Execute runs it, concurrent identical
// requests coalesce onto that execution, later ones hit the result cache),
// so answered-requests-per-second must scale with the client count while
// the execution count stays fixed at queries x epochs.
//
// Gate: 64-client throughput >= 3x 1-client throughput on the same shared
// pool, or the bench exits nonzero. An uncached/unique-traffic row (every
// request a distinct never-seen query shape against fresh data) is also
// reported, honestly showing where the win does NOT come from: on one core
// the execution path itself cannot scale with clients.
//
// Emits BENCH_serving.json for CI tracking.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "serve/catalog.h"
#include "serve/load_driver.h"
#include "serve/query_server.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::FmtInt;
using bench::Table;

constexpr int kServers = 8;
constexpr int kEpochs = 3;
constexpr int kRepsPerClient = 2;  // Workload passes per client per epoch.
constexpr int64_t kRows = 2000;
constexpr uint64_t kDomain = 400;

const std::vector<std::string>& Workload() {
  static const std::vector<std::string> queries = {
      "R(x,y), S(y,z)",
      "S(x,y), T(y,z)",
      "R(x,y), T(y,z)",
      "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
      "R(a,b), S(b,c)",  // Isomorphic to #1: plan-cache hit, own result.
      "R(x,y), S(y,z), T(z,w)",
  };
  return queries;
}

// One data deploy: replaces R, S, T with fresh draws. New fingerprints
// invalidate all cached results for them.
void DeployEpoch(Catalog& catalog, Rng& rng) {
  catalog.Register("R", GenerateUniform(rng, kRows, 2, kDomain));
  catalog.Register("S", GenerateUniform(rng, kRows, 2, kDomain));
  catalog.Register("T", GenerateUniform(rng, kRows, 2, kDomain));
}

struct RunSummary {
  int clients = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p99_ms = 0.0;  // Worst epoch's p99.
  int64_t executed = 0;
  int64_t cache_hits = 0;
  int64_t coalesced = 0;
};

RunSummary ServeEpochs(int clients) {
  Catalog catalog;
  Rng rng(17);
  ServeOptions options;
  options.num_servers = kServers;
  options.seed = 42;
  options.algorithm = "auto";
  options.max_inflight = 4;
  options.max_queued = 1 << 12;  // Closed-loop: never reject on queue.
  QueryServer server(&catalog, options);

  RunSummary summary;
  summary.clients = clients;
  LoadOptions load;
  load.clients = clients;
  load.requests = static_cast<int64_t>(clients) * kRepsPerClient *
                  static_cast<int64_t>(Workload().size());
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    DeployEpoch(catalog, rng);
    const LoadReport report = RunLoad(server, Workload(), load);
    summary.completed += report.completed;
    summary.errors += report.errors;
    summary.wall_ms += report.wall_ms;
    if (report.p99_ms > summary.p99_ms) summary.p99_ms = report.p99_ms;
  }
  summary.qps = summary.wall_ms > 0
                    ? 1000.0 * static_cast<double>(summary.completed) /
                          summary.wall_ms
                    : 0.0;
  // Cumulative server-side counters (across all epochs).
  summary.executed = server.counters().executed;
  summary.coalesced = server.counters().coalesced;
  summary.cache_hits = server.result_cache().counters().hits;
  return summary;
}

// The honest control: every request is a never-seen query against fresh
// data, so neither the result cache nor coalescing can help and each
// request pays a full execution.
RunSummary ServeUnique(int clients, int64_t requests) {
  Catalog catalog;
  Rng rng(29);
  ServeOptions options;
  options.num_servers = kServers;
  options.seed = 42;
  options.algorithm = "auto";
  options.max_inflight = 4;
  options.max_queued = 1 << 12;
  QueryServer server(&catalog, options);

  std::vector<std::string> queries;
  for (int64_t i = 0; i < requests; ++i) {
    const std::string name = "U" + std::to_string(i);
    catalog.Register(name, GenerateUniform(rng, kRows / 4, 2, kDomain));
    queries.push_back(name + "(x,y), " + name + "(y,z)");
  }
  LoadOptions load;
  load.clients = clients;
  load.requests = requests;
  const LoadReport report = RunLoad(server, queries, load);

  RunSummary summary;
  summary.clients = clients;
  summary.completed = report.completed;
  summary.errors = report.errors;
  summary.wall_ms = report.wall_ms;
  summary.qps = report.qps;
  summary.p99_ms = report.p99_ms;
  summary.executed = server.counters().executed;
  summary.cache_hits = server.result_cache().counters().hits;
  summary.coalesced = server.counters().coalesced;
  return summary;
}

int Run() {
  BenchJson json("serving");
  int failures = 0;

  bench::Banner("E20: serving throughput vs client count (p=" +
                std::to_string(kServers) + ", " +
                std::to_string(Workload().size()) + " queries, " +
                std::to_string(kEpochs) + " deploy epochs)");

  Table table({"clients", "requests", "qps", "p99 ms", "executed",
               "cache hits", "coalesced", "errors"});
  std::vector<RunSummary> summaries;
  for (const int clients : {1, 8, 64}) {
    const RunSummary s = ServeEpochs(clients);
    summaries.push_back(s);
    table.AddRow({FmtInt(s.clients), FmtInt(s.completed), Fmt(s.qps, 1),
                  Fmt(s.p99_ms, 3), FmtInt(s.executed),
                  FmtInt(s.cache_hits), FmtInt(s.coalesced),
                  FmtInt(s.errors)});
    const std::string prefix = "clients_" + std::to_string(clients) + "_";
    json.Set(prefix + "qps", s.qps);
    json.Set(prefix + "p99_ms", s.p99_ms);
    json.Set(prefix + "completed", s.completed);
    json.Set(prefix + "executed", s.executed);
    json.Set(prefix + "result_cache_hits", s.cache_hits);
    json.Set(prefix + "coalesced", s.coalesced);
    json.Set(prefix + "errors", s.errors);
  }
  table.Print();

  const double speedup =
      summaries.front().qps > 0 ? summaries.back().qps / summaries.front().qps
                                : 0.0;
  std::printf("64-client vs 1-client throughput: %.1fx\n", speedup);
  json.Set("speedup_64v1", speedup);

  // Every client count must have executed the same number of queries:
  // workload x epochs, once each — more means coalescing or the result
  // cache failed to absorb the stampede.
  const int64_t expected_executions =
      static_cast<int64_t>(Workload().size()) * kEpochs;
  for (const RunSummary& s : summaries) {
    if (s.executed != expected_executions) {
      std::printf("FAIL: %d clients executed %lld times, expected %lld\n",
                  s.clients, static_cast<long long>(s.executed),
                  static_cast<long long>(expected_executions));
      ++failures;
    }
    if (s.errors != 0) {
      std::printf("FAIL: %d clients saw %lld errors\n", s.clients,
                  static_cast<long long>(s.errors));
      ++failures;
    }
  }
  if (speedup < 3.0) {
    std::printf("FAIL: 64-client throughput is not >=3x 1-client\n");
    ++failures;
  }

  bench::Banner("E20 control: unique queries, fresh data (nothing cacheable)");
  Table control({"clients", "requests", "qps", "p99 ms", "executed"});
  for (const int clients : {1, 8}) {
    const RunSummary s = ServeUnique(clients, /*requests=*/16);
    control.AddRow({FmtInt(s.clients), FmtInt(s.completed), Fmt(s.qps, 1),
                    Fmt(s.p99_ms, 3), FmtInt(s.executed)});
    const std::string prefix = "unique_clients_" + std::to_string(clients) +
                               "_";
    json.Set(prefix + "qps", s.qps);
    json.Set(prefix + "p99_ms", s.p99_ms);
  }
  control.Print();
  std::printf("(unique traffic pays one execution per request; client "
              "count cannot buy throughput there on one core)\n");

  json.Write();
  return failures;
}

}  // namespace
}  // namespace mpcqp

int main() { return mpcqp::Run() == 0 ? 0 : 1; }
