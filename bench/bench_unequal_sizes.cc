// E7 — deck slides 42-44: the unequal-size triangle table.
//
// For each size regime, the table lists each fractional edge packing's
// load expression, marks which attains the max (= the optimal load, by
// the slide-40 theorem), the shares the HyperCube picks, and the measured
// load, reproducing rows "1/2,1/2,1/2 -> (|R||S||T|)^{1/3}/p^{2/3}" and
// "1,0,0 -> |R|/p with pz = 1".

#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/hypercube.h"
#include "query/hypergraph_lp.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

std::string SharesString(const std::vector<int>& shares) {
  std::string s;
  for (size_t v = 0; v < shares.size(); ++v) {
    if (v > 0) s += "x";
    s += std::to_string(shares[v]);
  }
  return s;
}

void Run() {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const int p = 64;
  Rng data_rng(53);

  struct Regime {
    const char* name;
    int64_t r, s, t;
  };
  const Regime regimes[] = {
      {"|R| = |S| = |T|", 16384, 16384, 16384},
      {"|R| << |S| = |T|", 512, 16384, 16384},
      {"|R| >> |S| = |T|", 65536, 2048, 2048},
      {"|R| << |S| << |T|", 512, 4096, 32768},
  };

  for (const Regime& regime : regimes) {
    const std::vector<int64_t> sizes = {regime.r, regime.s, regime.t};
    bench::Banner(std::string("E7 (slides 42-44): ") + regime.name + "  (" +
                  std::to_string(regime.r) + ", " + std::to_string(regime.s) +
                  ", " + std::to_string(regime.t) + "), p=64");

    // The four packing rows of the slide table.
    Table packings({"packing (uR,uS,uT)", "load expression value",
                    "attains max?"});
    struct Packing {
      const char* label;
      std::vector<double> u;
    };
    const Packing rows[] = {
        {"1/2, 1/2, 1/2", {0.5, 0.5, 0.5}},
        {"1, 0, 0", {1, 0, 0}},
        {"0, 1, 0", {0, 1, 0}},
        {"0, 0, 1", {0, 0, 1}},
    };
    double best = 0;
    for (const Packing& row : rows) {
      best = std::max(best, LoadForPacking(row.u, sizes, p));
    }
    for (const Packing& row : rows) {
      const double value = LoadForPacking(row.u, sizes, p);
      packings.AddRow({row.label, Fmt(value, 1),
                       value >= best * 0.999 ? "<= max" : ""});
    }
    packings.Print();

    // LP optimum and what HyperCube actually does.
    const auto lp_load = MaxPackingLoad(q, sizes, p);
    std::vector<Relation> atoms = {
        GenerateUniform(data_rng, regime.r, 2, 1 << 18),
        GenerateUniform(data_rng, regime.s, 2, 1 << 18),
        GenerateUniform(data_rng, regime.t, 2, 1 << 18)};
    std::vector<DistRelation> dist;
    for (const Relation& rel : atoms) {
      dist.push_back(DistRelation::Scatter(rel, p));
    }
    Cluster cluster(p, 7);
    const HyperCubeResult hc = HyperCubeJoin(cluster, q, dist);
    std::printf(
        "LP optimal load: %s | shares chosen (px x py x pz): %s | measured "
        "L: %lld | measured/LP: %s\n",
        bench::Fmt(lp_load.ok() ? *lp_load : -1, 1).c_str(),
        SharesString(hc.shares).c_str(),
        static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
        bench::Fmt(static_cast<double>(
                       cluster.cost_report().MaxLoadTuples()) /
                       (lp_load.ok() ? *lp_load : 1),
                   2)
            .c_str());
  }
  std::printf(
      "\nShape check: with equal sizes the symmetric packing attains the "
      "max and shares are p^{1/3} each; with |R| small the (0,1,0)/(0,0,1) "
      "rows dominate and the z share collapses to 1 (slide 44: pz = 1, R "
      "effectively broadcast along its grid).\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
