// A2 — ablation of DESIGN.md decision ✦4: the heavy-hitter threshold.
//
// Theory sets the threshold at IN/p. We sweep the factor on Zipf data for
// the skew-aware 2-way join and for SkewHC on the triangle: too high
// leaves skew untreated (hash-join-like loads), too low declares
// everything heavy (grid/replication overhead).

#include "bench/bench_util.h"
#include "join/skew_join.h"
#include "mpc/cluster.h"
#include "multiway/skew_hc.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void TwoWay() {
  bench::Banner(
      "A2a: skew-aware join threshold factor sweep, Zipf(1.3), N=20000, "
      "p=64");
  const int p = 64;
  const int64_t n = 20000;
  Rng data_rng(181);
  const Relation left = GenerateZipf(data_rng, n, 2, 1 << 14, 1, 1.3);
  const Relation right = GenerateZipf(data_rng, n, 2, 1 << 14, 0, 1.3);
  Table table({"threshold factor", "measured L", "rounds"});
  for (const double factor : {0.125, 0.25, 0.5, 1.0, 2.0, 8.0, 64.0}) {
    Cluster cluster(p, 7);
    Rng rng(191);
    SkewJoinOptions options;
    options.threshold_factor = factor;
    SkewAwareJoin(cluster, DistRelation::Scatter(left, p),
                  DistRelation::Scatter(right, p), 1, 0, rng, options);
    table.AddRow({Fmt(factor, 3),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().num_rounds())});
  }
  table.Print();
}

void Triangle() {
  bench::Banner(
      "A2b: SkewHC threshold factor sweep, triangle with Zipf(1.2) "
      "columns, N=3000, p=27");
  const int p = 27;
  const int64_t n = 3000;
  Rng data_rng(193);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateZipf(data_rng, n, 2, 800, j % 2, 1.2));
  }
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));
  Table table(
      {"threshold factor", "residual queries run", "measured L", "rounds"});
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 8.0, 1000.0}) {
    Cluster cluster(p, 7);
    SkewHcOptions options;
    options.threshold_factor = factor;
    const SkewHcResult result =
        SkewHcJoin(cluster, ConjunctiveQuery::Triangle(), dist, options);
    table.AddRow({Fmt(factor, 2),
                  FmtInt(static_cast<int64_t>(result.residuals.size())),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().num_rounds())});
  }
  table.Print();
  std::printf(
      "\nTakeaway: the theory's IN/p factor (1.0) sits at or near the "
      "load minimum; very large factors degenerate to the skew-blind "
      "algorithm, very small ones multiply residual classes without "
      "improving the max load.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::TwoWay();
  mpcqp::Triangle();
  return 0;
}
