// E12 — deck slide 62: the scalability limitation of L = IN/p^{1/τ*}.
//
// For the path-20 query τ* = 10, so doubling the one-round speedup needs
// 2^10 = 1024x more processors. Part 1 prints the analytic table at the
// slide's scale; part 2 measures the effect at simulator scale on path-6
// (τ* = 3 -> 2x speedup needs 8x processors).

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/hypercube.h"
#include "query/hypergraph_lp.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void Analytic() {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(20);
  const auto tau = FractionalEdgePacking(q);
  bench::Banner("E12 (slide 62): path-20, tau* = " +
                Fmt(tau.ok() ? tau->value : -1, 1) +
                " — processors needed for each 2x of 1-round speedup");
  Table table({"target speedup", "p needed (speedup^{tau*})"});
  for (const double speedup : {2.0, 4.0, 8.0, 16.0}) {
    table.AddRow({Fmt(speedup, 0),
                  Fmt(std::pow(speedup, tau.ok() ? tau->value : 1), 0)});
  }
  table.Print();
  std::printf("Slide's headline: 2x speedup requires 1024x processors.\n");
}

void Measured() {
  const int len = 6;  // tau* = 3.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(len);
  const auto tau = FractionalEdgePacking(q);
  bench::Banner("E12 measured: path-6 (tau* = " +
                Fmt(tau.ok() ? tau->value : -1, 1) +
                "), HyperCube load vs p — 2x speedup needs ~8x servers");
  const int64_t n = 4096;
  Rng data_rng(91);
  std::vector<Relation> atoms;
  for (int j = 0; j < len; ++j) {
    atoms.push_back(GenerateUniform(data_rng, n, 2, 1 << 18));
  }
  Table table({"p", "measured L", "speedup vs p=1", "p^{1/3}"});
  double base = 0;
  for (const int p : {1, 8, 64, 512}) {
    std::vector<DistRelation> dist;
    for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));
    Cluster cluster(p, 7);
    HyperCubeJoin(cluster, q, dist);
    const double load =
        static_cast<double>(cluster.cost_report().MaxLoadTuples());
    if (p == 1) base = load;
    table.AddRow({FmtInt(p), Fmt(load, 0), Fmt(base / load, 2),
                  Fmt(std::pow(p, 1.0 / 3.0), 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: each 8x in p buys only ~2x in load — the poor "
      "1-round scalability the slide warns about for long paths.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Analytic();
  mpcqp::Measured();
  return 0;
}
