// E16 — deck slides 107-126: matrix multiplication in MPC.
//
// (a) Slide 110: the 1-round rectangle-block algorithm, C = Θ(n⁴/L).
// (b) Slides 111-121: the multi-round square-block algorithm,
//     C = Θ(n³/√L); the slide's p=H² and p=2H² schedules.
// (c) Slide 108: the SQL formulation (join + group-by) in 2 rounds.
// (d) Slide 126: the C-vs-L frontier — for each load, the 1-round and
//     multi-round communication against both lower bounds, with the round
//     thresholds.

#include <cmath>

#include "bench/bench_util.h"
#include "matmul/block_mm.h"
#include "matmul/cost_model.h"
#include "matmul/matrix.h"
#include "matmul/sql_mm.h"
#include "mpc/cluster.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void OneRound() {
  bench::Banner(
      "E16a (slide 110): rectangle-block 1-round MM, n=64 — C = Theta(n^4/L)");
  const int n = 64;
  Rng rng(171);
  const Matrix a = RandomMatrix(rng, n, n, 50);
  const Matrix b = RandomMatrix(rng, n, n, 50);
  const Matrix expected = MultiplySerial(a, b);
  Table table({"p", "K", "L (elements)", "C measured", "n^4/L", "C ratio",
               "correct"});
  for (const int p : {1, 4, 16, 64, 256}) {
    Cluster cluster(p, 7);
    const OneRoundMmResult result = RectangleBlockMm(cluster, a, b);
    const double load =
        static_cast<double>(cluster.cost_report().MaxLoadValues());
    const double comm =
        static_cast<double>(cluster.cost_report().TotalCommValues());
    const double theory = std::pow(n, 4) / load;
    table.AddRow({FmtInt(p), FmtInt(result.grid_dim), Fmt(load, 0),
                  Fmt(comm, 0), Fmt(theory, 0), Fmt(comm / theory, 2),
                  result.c == expected ? "yes" : "NO"});
  }
  table.Print();
}

void MultiRound() {
  bench::Banner(
      "E16b (slides 111-121): square-block multi-round MM, n=64 — "
      "C = Theta(n^3/sqrt(L))");
  const int n = 64;
  Rng rng(173);
  const Matrix a = RandomMatrix(rng, n, n, 50);
  const Matrix b = RandomMatrix(rng, n, n, 50);
  const Matrix expected = MultiplySerial(a, b);
  Table table({"H", "p", "rounds", "L/round", "C measured", "n^3/sqrt(L)",
               "C ratio", "correct"});
  struct Config {
    int h;
    int p;
  };
  const Config configs[] = {{4, 16}, {4, 32}, {8, 64}, {8, 16}, {16, 256}};
  for (const Config& config : configs) {
    Cluster cluster(config.p, 7);
    const SquareBlockMmResult result =
        SquareBlockMm(cluster, a, b, config.h);
    const double load =
        static_cast<double>(cluster.cost_report().MaxLoadValues());
    const double comm =
        static_cast<double>(cluster.cost_report().TotalCommValues());
    const double lb = CommLowerBound(n, static_cast<int64_t>(load));
    table.AddRow({FmtInt(config.h), FmtInt(config.p),
                  FmtInt(result.rounds), Fmt(load, 0), Fmt(comm, 0),
                  Fmt(lb, 0), Fmt(comm / lb, 2),
                  result.c == expected ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "Slide checks: H=4,p=16 -> 4 rounds (slides 115-118); H=4,p=32 -> 3 "
      "rounds (slides 119-121).\n");
}

void SqlFormulation() {
  bench::Banner(
      "E16c (slide 108): MM as SELECT i,k,SUM(vA*vB) ... GROUP BY — 2 "
      "rounds");
  const int n = 48;
  Rng rng(179);
  Matrix a = RandomMatrix(rng, n, n, 30);
  Matrix b = RandomMatrix(rng, n, n, 30);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ++a.at(i, j);
      ++b.at(i, j);
    }
  }
  Table table({"p", "rounds", "L (tuples)", "correct"});
  for (const int p : {4, 16, 64}) {
    Cluster cluster(p, 7);
    const DistRelation result = SqlMatrixMultiply(
        cluster, DistRelation::Scatter(MatrixToRelation(a), p),
        DistRelation::Scatter(MatrixToRelation(b), p));
    const bool correct =
        RelationToMatrix(result.Collect(), n, n) == MultiplySerial(a, b);
    table.AddRow({FmtInt(p), FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  correct ? "yes" : "NO"});
  }
  table.Print();
}

void SparsityCrossover() {
  bench::Banner(
      "E16e (slide 127 'sparse MM'): dense block algorithm vs sparse SQL "
      "formulation as density varies, n=64, p=16");
  const int n = 64;
  const int p = 16;
  Table table({"density %", "nnz per matrix", "block MM C (elements)",
               "SQL MM C (tuples)", "sparse wins?"});
  for (const int density_pct : {1, 5, 25, 100}) {
    Rng rng(191 + density_pct);
    Matrix a(n, n);
    Matrix b(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (static_cast<int>(rng.Uniform(100)) < density_pct) {
          a.at(i, j) = 1 + static_cast<int64_t>(rng.Uniform(9));
        }
        if (static_cast<int>(rng.Uniform(100)) < density_pct) {
          b.at(i, j) = 1 + static_cast<int64_t>(rng.Uniform(9));
        }
      }
    }
    Cluster dense_cluster(p, 7);
    const OneRoundMmResult dense = RectangleBlockMm(dense_cluster, a, b);
    Cluster sparse_cluster(p, 7);
    const DistRelation sparse = SqlMatrixMultiply(
        sparse_cluster, DistRelation::Scatter(MatrixToRelation(a), p),
        DistRelation::Scatter(MatrixToRelation(b), p));
    const bool equal =
        RelationToMatrix(sparse.Collect(), n, n) == dense.c;
    const int64_t dense_comm =
        dense_cluster.cost_report().TotalCommValues();
    const int64_t sparse_comm =
        sparse_cluster.cost_report().TotalCommTuples();
    table.AddRow({FmtInt(density_pct),
                  FmtInt(MatrixToRelation(a).size()), FmtInt(dense_comm),
                  FmtInt(sparse_comm),
                  std::string(sparse_comm < dense_comm ? "yes" : "no") +
                      (equal ? "" : " (MISMATCH)")});
  }
  table.Print();
  std::printf(
      "Shape check: the dense algorithm ships whole panels regardless of "
      "content; the SQL path's traffic tracks nnz and the join's output, "
      "so it wins at low densities and loses once the intermediate "
      "(i,j,v)x(j,k,v) pairs outnumber the panels.\n");
}

void Frontier() {
  bench::Banner(
      "E16d (slide 126): the C-vs-L frontier, n=1024 (analytic, the "
      "slide's own chart)");
  const int64_t n = 1024;
  Table table({"L", "1-round C = n^4/L", "multi-round C = ~n^3/sqrt(L)",
               "LB n^3/sqrt(L)", "rounds needed (LB)"});
  for (int shift = 4; shift <= 20; shift += 4) {
    const int64_t load = int64_t{1} << shift;
    const double r_lb = RoundsLowerBound(n, /*p=*/1024, load);
    table.AddRow({FmtInt(load), Fmt(OneRoundCommLowerBound(n, load), 0),
                  Fmt(SquareBlockComm(n, load), 0),
                  Fmt(CommLowerBound(n, load), 0),
                  Fmt(std::max(1.0, r_lb), 1)});
  }
  table.Print();
  std::printf(
      "\nShape check (slide 126): below L ~ n^2 the 1-round curve n^4/L "
      "sits far above the multi-round n^3/sqrt(L); the gap closes only "
      "near L = n^2, and smaller loads force more rounds.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::OneRound();
  mpcqp::MultiRound();
  mpcqp::SqlFormulation();
  mpcqp::SparsityCrossover();
  mpcqp::Frontier();
  return 0;
}
