// E18 — deck slide 97 ("Multi-round Multiway Joins In Practice"): a
// BiGJoin-style distributed Generic Join against the 1-round HyperCube
// and the iterative binary-join plan, on skew-free and skewed triangles.
//
// The practical systems trade rounds for replication-free exchanges and
// skew robustness; this bench measures that trade on the simulator. Set
// semantics throughout (inputs deduplicated).

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/bigjoin.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "query/generic_join.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

void RunInstance(const char* label, const std::vector<Relation>& atoms,
                 int p) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const Relation expected = EvalJoinWcoj(q, atoms);
  bench::Banner(std::string("E18 (slide 97): triangle, ") + label +
                ", p=" + std::to_string(p) + ", |OUT|=" +
                std::to_string(expected.size()));
  Table table({"algorithm", "rounds", "L (tuples)", "total comm", "correct"});

  {
    Cluster cluster(p, 7);
    const HyperCubeResult hc =
        HyperCubeJoin(cluster, q, Scatter(atoms, p));
    table.AddRow({"HyperCube (1 round)",
                  FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().TotalCommTuples()),
                  MultisetEqual(Dedup(hc.output.Collect()), expected)
                      ? "yes"
                      : "NO"});
  }
  {
    Cluster cluster(p, 7);
    Rng rng(11);
    const BinaryPlanResult bj =
        IterativeBinaryJoin(cluster, q, Scatter(atoms, p), rng);
    table.AddRow({"binary joins",
                  FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().TotalCommTuples()),
                  MultisetEqual(Dedup(bj.output.Collect()), expected)
                      ? "yes"
                      : "NO"});
  }
  {
    Cluster cluster(p, 7);
    const BigJoinResult big = BigJoin(cluster, q, Scatter(atoms, p));
    table.AddRow({"BiGJoin-style (var-at-a-time)", FmtInt(big.rounds),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(cluster.cost_report().TotalCommTuples()),
                  MultisetEqual(big.output.Collect(), expected) ? "yes"
                                                                : "NO"});
  }
  table.Print();
}

void Run() {
  const int p = 64;
  const int64_t n = 20000;
  {
    Rng rng(31);
    std::vector<Relation> atoms;
    for (int j = 0; j < 3; ++j) {
      atoms.push_back(Dedup(GenerateUniform(rng, n, 2, 1 << 16)));
    }
    RunInstance("skew-free", atoms, p);
  }
  {
    Rng rng(37);
    // A hub vertex touching everything: HyperCube's hash dimensions
    // collapse for the hub's tuples.
    Relation edges = GenerateRandomGraph(rng, 6000, n);
    for (Value v = 0; v < 3000; ++v) {
      edges.AppendRow({999999, v});
      edges.AppendRow({v, 999999});
    }
    std::vector<Relation> atoms = {edges, edges, edges};
    RunInstance("hub-skewed graph", atoms, p);
  }
  std::printf(
      "\nShape check: HyperCube wins rounds (1) at p^{1/3} extra load and "
      "suffers under the hub; the var-at-a-time plan pays O(k + filters) "
      "rounds but its per-round traffic tracks the true prefix counts — "
      "the trade the slide-97 systems make.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
