// E13 — deck slide 63: iterative binary joins can generate intermediates
// far larger than the input, in which case a 1-round replicated algorithm
// is cheaper.
//
// Adversarial path-3 instance: R1 and R2 join densely (|T1| ~ N^2/D) while
// R3 filters almost everything, so the final output is tiny. The
// binary-join plan materializes and ships the blow-up; the 1-round
// HyperCube replicates inputs only.

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void Run() {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  const int p = 16;
  const int64_t n = 4000;
  Rng data_rng(97);
  // R1(x0,x1), R2(x1,x2) share a tiny x1 domain (dense join); R3(x2,x3)
  // lives on a disjoint x2 domain (empty output).
  const uint64_t dense_domain = 16;
  Relation r1 = GenerateUniform(data_rng, n, 2, dense_domain);
  Relation r2 = GenerateUniform(data_rng, n, 2, dense_domain);
  Relation r3(2);
  for (int64_t i = 0; i < n; ++i) {
    r3.AppendRow({1000000 + static_cast<Value>(i), data_rng.Uniform(100)});
  }

  std::vector<DistRelation> dist = {DistRelation::Scatter(r1, p),
                                    DistRelation::Scatter(r2, p),
                                    DistRelation::Scatter(r3, p)};

  Cluster bj_cluster(p, 7);
  Rng rng(101);
  const BinaryPlanResult bj = IterativeBinaryJoin(bj_cluster, q, dist, rng);

  Cluster hc_cluster(p, 7);
  const HyperCubeResult hc = HyperCubeJoin(hc_cluster, q, dist);

  bench::Banner(
      "E13 (slide 63): intermediate blow-up — path-3, dense R1⋈R2, "
      "selective R3, IN=12000, p=16");
  Table table({"plan", "rounds", "max L", "total comm",
               "max intermediate", "|OUT|"});
  int64_t max_intermediate = 0;
  for (int64_t s : bj.intermediate_sizes) {
    max_intermediate = std::max(max_intermediate, s);
  }
  table.AddRow({"iterative binary joins",
                FmtInt(bj_cluster.cost_report().num_rounds()),
                FmtInt(bj_cluster.cost_report().MaxLoadTuples()),
                FmtInt(bj_cluster.cost_report().TotalCommTuples()),
                FmtInt(max_intermediate), FmtInt(bj.output.TotalSize())});
  table.AddRow({"1-round HyperCube",
                FmtInt(hc_cluster.cost_report().num_rounds()),
                FmtInt(hc_cluster.cost_report().MaxLoadTuples()),
                FmtInt(hc_cluster.cost_report().TotalCommTuples()),
                "(none)", FmtInt(hc.output.TotalSize())});
  table.Print();
  std::printf(
      "\nShape check (slide 63): |T1| = |R1 ⋈ R2| = %lld >> IN = 12000, so "
      "the binary plan ships ~%lldx the input while the 1-round algorithm "
      "only replicates inputs — 'better run 1 round & replicate IN'.\n",
      static_cast<long long>(max_intermediate),
      static_cast<long long>(max_intermediate / 12000));
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
