// E14 — deck slides 64-95: Yannakakis / GYM.
//
// (a) Slides 80-94: vanilla (r=9) vs optimized (r=4) GYM on the star-4
//     join tree, measured.
// (b) Slide 78: GYM L = (IN+OUT)/p vs the 1-round SkewHC L = IN/p^{1/τ*}
//     crossover as OUT grows.
// (c) Slide 95: the r-vs-L tradeoff across GHDs of path-12 — chain
//     (w=1, d=n), flat (w=n, d=1), balanced (w=3, d=log n).

#include <algorithm>

#include "bench/bench_util.h"
#include "acyclic/gym.h"
#include "mpc/cluster.h"
#include "multiway/skew_hc.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void VanillaVsOptimized() {
  bench::Banner(
      "E14a (slides 80-94): GYM on star-4, p=16, N=6000/atom — vanilla vs "
      "optimized rounds");
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  const int p = 16;
  Rng data_rng(103);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 6000, 2, 1 << 13));
  }
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));

  Table table({"mode", "rounds", "L (tuples)", "slide says"});
  for (const bool optimized : {false, true}) {
    Cluster cluster(p, 7);
    Rng rng(107);
    GymOptions options;
    options.optimized = optimized;
    const GymResult result =
        GymJoin(cluster, q, StarGhd(q), dist, rng, options);
    table.AddRow({optimized ? "optimized" : "vanilla",
                  FmtInt(result.rounds),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  optimized ? "r=4 (slides 90-94)" : "r=9 (slides 80-89)"});
  }
  table.Print();
}

void GymVsSkewHcCrossover() {
  bench::Banner(
      "E14b (slide 78): GYM (IN+OUT)/p vs 1-round SkewHC IN/p^{1/tau*} as "
      "OUT grows — bowtie-like star-2, p=16, N=8192/atom");
  // Star-2: R1(x0,x1), R2(x0,x2); tau* = 1, so the 1-round load is IN/p
  // only when skew-free... to expose the contrast we control OUT via the
  // center-degree d: OUT ~ N*d.
  const ConjunctiveQuery q = ConjunctiveQuery::Star(2);
  const int p = 16;
  const int64_t n = 8192;
  Table table({"center degree d", "|OUT|", "GYM rounds", "GYM L",
               "(IN+OUT)/p", "SkewHC L", "SkewHC rounds"});
  Rng data_rng(109);
  for (const int64_t degree : {1, 8, 64, 256}) {
    std::vector<Relation> atoms;
    for (int j = 0; j < 2; ++j) {
      // Column 0 (the shared center) has exact degree d.
      const Relation base = GenerateMatchingDegree(data_rng, n, degree);
      atoms.push_back(Project(base, {1, 0}));  // (center, leaf).
    }
    std::vector<DistRelation> dist;
    for (const Relation& r : atoms) {
      dist.push_back(DistRelation::Scatter(r, p));
    }
    Cluster gym_cluster(p, 7);
    Rng rng(113);
    GymOptions options;
    options.optimized = true;
    const GymResult gym =
        GymJoin(gym_cluster, q, StarGhd(q), dist, rng, options);
    Cluster hc_cluster(p, 7);
    const SkewHcResult hc = SkewHcJoin(hc_cluster, q, dist);
    const int64_t out = gym.output.TotalSize();
    table.AddRow({FmtInt(degree), FmtInt(out), FmtInt(gym.rounds),
                  FmtInt(gym_cluster.cost_report().MaxLoadTuples()),
                  FmtInt((2 * n + out) / p),
                  FmtInt(hc_cluster.cost_report().MaxLoadTuples()),
                  FmtInt(hc_cluster.cost_report().num_rounds())});
    if (hc.output.TotalSize() != out) {
      std::printf("WARNING: outputs disagree!\n");
    }
  }
  table.Print();
  std::printf(
      "\nShape check (slide 78): GYM's load follows (IN+OUT)/p — linear "
      "scalability while OUT < p^{1-1/tau*} IN; the 1-round algorithm's "
      "load grows with the heavy center degrees instead.\n");
}

void GhdTradeoff() {
  bench::Banner(
      "E14c (slide 95): r vs L across GHDs of path-12, p=16, N=60/atom "
      "(bags of non-adjacent atoms really cost IN^w, so N stays small)");
  const int len = 12;
  const ConjunctiveQuery q = ConjunctiveQuery::Path(len);
  Rng data_rng(127);
  std::vector<Relation> atoms;
  for (int j = 0; j < len; ++j) {
    // Degree-1 data: width-1 bags stay near N, while the balanced GHD's
    // {R_lo, R_mid, R_hi} bags pay the full N^3 cross product — the IN^w
    // term of slide 95's L = (IN^w + OUT)/p, measured for real.
    atoms.push_back(GenerateMatchingDegree(data_rng, 60, 1));
  }
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) {
    dist.push_back(DistRelation::Scatter(r, 16));
  }
  Table table({"GHD", "width w", "depth d", "rounds", "L",
               "max bag (IN^w proxy)"});
  struct Entry {
    const char* name;
    Ghd ghd;
  };
  const Entry entries[] = {
      {"chain (w=1, d=n)", ChainGhd(q)},
      {"grouped w=2", GroupedPathGhd(q, 2)},
      {"grouped w=3", GroupedPathGhd(q, 3)},
      {"balanced (w<=3, d=O(log n))", BalancedPathGhd(q)},
      {"grouped w=6", GroupedPathGhd(q, 6)},
      {"flat (w=n, d=1)", FlatGhd(q)},
  };
  for (const Entry& entry : entries) {
    Cluster cluster(16, 7);
    Rng rng(131);
    GymOptions options;
    options.optimized = true;
    const GymResult result =
        GymJoin(cluster, q, entry.ghd, dist, rng, options);
    table.AddRow({entry.name, FmtInt(entry.ghd.width()),
                  FmtInt(entry.ghd.depth()), FmtInt(result.rounds),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(result.max_bag_size)});
  }
  table.Print();
  std::printf(
      "\nShape check (slide 95): deeper GHDs take more rounds; wider bags "
      "raise the IN^w term. The balanced w=3 decomposition buys O(log n) "
      "rounds at bounded width — the advertised tradeoff.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::VanillaVsOptimized();
  mpcqp::GymVsSkewHcCrossover();
  mpcqp::GhdTradeoff();
  return 0;
}
