// E1 — deck slides 13-18: the MPC cost-regime table for a two-way join.
//
// Regimes: ideal (L = IN/p, 1 round), practical (L = IN/p^{1-ε}, O(1)
// rounds), naive 1 (broadcast everything: L = IN, 1 round), naive 2
// (ring relay: L = IN/p per round, p rounds). Measured by executing each
// strategy on the simulator and reading the communication meter.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// Naive 2: each round every server forwards the block it currently holds
// to its ring successor; after p-1 rounds everyone has seen every block
// and all joins can be emitted. One round of load IN/p, repeated.
void RingRelay(Cluster& cluster, const DistRelation& input) {
  const int p = cluster.num_servers();
  DistRelation current = input;
  for (int round = 0; round < p - 1; ++round) {
    cluster.BeginRound("relay round " + std::to_string(round + 1));
    std::vector<Relation> next(p, Relation(input.arity()));
    for (int s = 0; s < p; ++s) {
      const int dst = (s + 1) % p;
      const Relation& frag = current.fragment(s);
      if (!frag.empty()) {
        cluster.RecordMessage(s, dst, frag.size(),
                              frag.size() * frag.arity());
      }
      next[dst] = frag;
    }
    cluster.EndRound();
    current = DistRelation::FromFragments(std::move(next));
  }
}

void Run() {
  const int p = 16;
  const int64_t n = 40000;
  Rng rng(1);
  const Relation left = GenerateMatchingDegree(rng, n / 2, 1);
  const Relation right = GenerateMatchingDegree(rng, n / 2, 1);
  const int64_t in = n;

  Table table({"strategy", "rounds r", "measured L (tuples)", "L / (IN/p)",
               "theory"});

  // Ideal: one-round parallel hash join on skew-free data.
  {
    Cluster cluster(p, 7);
    ParallelHashJoin(cluster, DistRelation::Scatter(left, p),
                     DistRelation::Scatter(right, p), {1}, {1});
    const int64_t load = cluster.cost_report().MaxLoadTuples();
    table.AddRow({"ideal (hash join)",
                  FmtInt(cluster.cost_report().num_rounds()), FmtInt(load),
                  Fmt(static_cast<double>(load) / (in / p)), "IN/p"});
  }

  // Practical: ε-replication on a sqrt(p) x sqrt(p) grid (ε = 1/2), the
  // Cartesian-style one-round pattern every 1-round multiway join uses.
  {
    Cluster cluster(p, 7);
    const int rows = 4;
    const int cols = p / rows;
    Rng grid_rng(3);
    cluster.BeginRound("eps-replicated join");
    Route(
        cluster, DistRelation::Scatter(left, p),
        [&](const Value*, std::vector<int>& dests) {
          const int r = static_cast<int>(grid_rng.Uniform(rows));
          for (int c = 0; c < cols; ++c) dests.push_back(r * cols + c);
        },
        "");
    Route(
        cluster, DistRelation::Scatter(right, p),
        [&](const Value*, std::vector<int>& dests) {
          const int c = static_cast<int>(grid_rng.Uniform(cols));
          for (int r = 0; r < rows; ++r) dests.push_back(r * cols + c);
        },
        "");
    cluster.EndRound();
    const int64_t load = cluster.cost_report().MaxLoadTuples();
    table.AddRow({"practical (eps=1/2 grid)",
                  FmtInt(cluster.cost_report().num_rounds()), FmtInt(load),
                  Fmt(static_cast<double>(load) / (in / p)),
                  "IN/p^{1-eps}"});
  }

  // Naive 1: broadcast both inputs to every server.
  {
    Cluster cluster(p, 7);
    cluster.BeginRound("naive broadcast");
    Broadcast(cluster, DistRelation::Scatter(left, p), "");
    Broadcast(cluster, DistRelation::Scatter(right, p), "");
    cluster.EndRound();
    const int64_t load = cluster.cost_report().MaxLoadTuples();
    table.AddRow({"naive 1 (broadcast all)",
                  FmtInt(cluster.cost_report().num_rounds()), FmtInt(load),
                  Fmt(static_cast<double>(load) / (in / p)), "IN"});
  }

  // Naive 2: ring relay of the whole input, p-1 rounds.
  {
    Cluster cluster(p, 7);
    cluster.BeginRound("relay setup (both inputs interleaved)");
    cluster.EndRound();
    cluster.ResetCosts();
    const Relation both = UnionAll(left, right);
    RingRelay(cluster, DistRelation::Scatter(both, p));
    table.AddRow({"naive 2 (ring relay)",
                  FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  Fmt(static_cast<double>(
                          cluster.cost_report().MaxLoadTuples()) /
                      (in / p)),
                  "IN/p per round, p rounds"});
  }

  bench::Banner(
      "E1 (slides 13-18): cost regimes of a two-way join, p=16, IN=" +
      std::to_string(in));
  table.Print();
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
