#ifndef MPCQP_BENCH_BENCH_UTIL_H_
#define MPCQP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/simd.h"

namespace mpcqp::bench {

// Fixed-width console table, one per reproduced deck table/figure. Collect
// rows then Print(); columns auto-size.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    PrintRow(header_, widths);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Wall-clock stopwatch for the machine-readable datapoints below.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Machine-readable benchmark emission: collects (key, value) metrics in
// insertion order and writes them as BENCH_<name>.json in the working
// directory, so CI and scripts can track wall times, thread counts, and
// per-round loads without scraping the console tables. Keys and string
// values must not need JSON escaping (plain identifiers).
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) {
    entries_.push_back({key, Fmt(value, 3)});
  }
  void Set(const std::string& key, int64_t value) {
    entries_.push_back({key, std::to_string(value)});
  }
  void Set(const std::string& key, int value) {
    Set(key, static_cast<int64_t>(value));
  }
  void Set(const std::string& key, const std::string& value) {
    entries_.push_back({key, "\"" + value + "\""});
  }
  // Embeds a pre-rendered JSON value verbatim (e.g. a StatsReport's
  // ToJson()), so benchmarks can attach structured timing columns without
  // re-encoding them.
  void SetRawJson(const std::string& key, std::string json) {
    entries_.push_back({key, std::move(json)});
  }
  void SetArray(const std::string& key, const std::vector<int64_t>& values) {
    std::string json = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) json += ", ";
      json += std::to_string(values[i]);
    }
    json += "]";
    entries_.push_back({key, std::move(json)});
  }

  // Writes BENCH_<name>.json and echoes the path to the console. Every
  // bench records the dispatched SIMD level next to its name: wall-time
  // trajectories are only comparable between runs at the same level.
  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("(could not write %s)\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"simd_isa\": \"%s\"",
                 name_.c_str(), simd::IsaLevelName(simd::DispatchedIsa()));
    for (const auto& [key, value] : entries_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace mpcqp::bench

#endif  // MPCQP_BENCH_BENCH_UTIL_H_
