#ifndef MPCQP_BENCH_BENCH_UTIL_H_
#define MPCQP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mpcqp::bench {

// Fixed-width console table, one per reproduced deck table/figure. Collect
// rows then Print(); columns auto-size.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    PrintRow(header_, widths);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace mpcqp::bench

#endif  // MPCQP_BENCH_BENCH_UTIL_H_
