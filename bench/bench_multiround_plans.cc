// E11 — deck slides 57-59: multi-round plans.
//
// Part 1 (slide 57): path queries by iterated binary joins — r = n-1
// rounds with L = O(IN/p) when intermediates do not grow (degree-1 data).
// Part 2 (slide 59): the triangle with O(p^{1/3}) heavy z values, solved
// by the heavy/light + semijoin plan: light part 1-round HyperCube at
// L = IN/p^{2/3}, heavy part a 2-round binary plan on the residual
// q(z=h): both within L = O(IN/p^{2/3}) — worst-case optimal at r = 2.

#include <cmath>

#include "bench/bench_util.h"
#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/triangle_hl.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void PathPlans() {
  bench::Banner(
      "E11 (slide 57): path-n by iterative binary joins, degree-1 data "
      "(no intermediate growth), p=32, N=8000/atom");
  Table table({"path n", "rounds", "measured L", "IN/p", "max intermediate"});
  const int p = 32;
  const int64_t n = 8000;
  for (const int len : {2, 3, 5, 8}) {
    const ConjunctiveQuery q = ConjunctiveQuery::Path(len);
    Rng data_rng(73);
    std::vector<Relation> atoms;
    for (int j = 0; j < len; ++j) {
      // Permutation-like relations: x and y columns both degree <= 1 ->
      // intermediates never grow.
      Relation rel(2);
      std::vector<Value> perm(n);
      for (int64_t i = 0; i < n; ++i) perm[i] = static_cast<Value>(i);
      for (int64_t i = n - 1; i > 0; --i) {
        std::swap(perm[i],
                  perm[data_rng.Uniform(static_cast<uint64_t>(i) + 1)]);
      }
      for (int64_t i = 0; i < n; ++i) {
        rel.AppendRow({static_cast<Value>(i), perm[i]});
      }
      atoms.push_back(std::move(rel));
    }
    std::vector<DistRelation> dist;
    for (const Relation& r : atoms) {
      dist.push_back(DistRelation::Scatter(r, p));
    }
    Cluster cluster(p, 7);
    Rng rng(79);
    const BinaryPlanResult result = IterativeBinaryJoin(cluster, q, dist, rng);
    int64_t max_intermediate = 0;
    for (int64_t s : result.intermediate_sizes) {
      max_intermediate = std::max(max_intermediate, s);
    }
    table.AddRow({FmtInt(len), FmtInt(cluster.cost_report().num_rounds()),
                  FmtInt(cluster.cost_report().MaxLoadTuples()),
                  FmtInt(2 * n / p), FmtInt(max_intermediate)});
  }
  table.Print();
}

void TriangleHeavyLight() {
  bench::Banner(
      "E11 (slide 59): triangle with ~p^{1/3} heavy z values — HL + "
      "semijoin plan (TriangleHeavyLightJoin), p=64, N=12000/atom");
  const int p = 64;
  const int64_t n = 12000;
  const int heavy_count = 4;  // ~p^{1/3}.
  Rng data_rng(83);

  // S(y,z), T(z,x): half the tuples concentrated on `heavy_count` z
  // values, the rest uniform over a large domain.
  const uint64_t domain = 1 << 14;
  Relation s(2);
  Relation t(2);
  for (int64_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      const Value hz = 1000000 + i % heavy_count;
      s.AppendRow({data_rng.Uniform(domain), hz});
      t.AppendRow({hz, data_rng.Uniform(domain)});
    } else {
      s.AppendRow({data_rng.Uniform(domain), data_rng.Uniform(domain)});
      t.AppendRow({data_rng.Uniform(domain), data_rng.Uniform(domain)});
    }
  }
  const Relation r = GenerateUniform(data_rng, n, 2, domain);
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const Relation reference = EvalJoinLocal(q, {r, s, t});

  Cluster cluster(p, 7);
  Rng rng(89);
  TriangleHlOptions options;
  // At p=64, p^{1/3}=4 makes the theory threshold IN/p^{1/3} generous;
  // lower it so the planted hitters actually take the 2-round path.
  options.threshold_factor = 0.1;
  const TriangleHlResult result = TriangleHeavyLightJoin(
      cluster, DistRelation::Scatter(r, p), DistRelation::Scatter(s, p),
      DistRelation::Scatter(t, p), rng, options);

  const double target = 3.0 * n / std::pow(p, 2.0 / 3.0);
  Table table({"quantity", "value"});
  table.AddRow({"heavy z values handled", FmtInt(result.heavy_values)});
  table.AddRow({"rounds (overlapped, per the slide)",
                FmtInt(result.overlapped_rounds)});
  table.AddRow({"rounds (metered sequentially)",
                FmtInt(result.metered_rounds)});
  table.AddRow({"measured L",
                FmtInt(cluster.cost_report().MaxLoadTuples())});
  table.AddRow({"IN/p^{2/3} target", Fmt(target, 0)});
  table.AddRow({"output correct",
                MultisetEqual(result.output.Collect(), reference) ? "yes"
                                                                  : "NO"});
  table.Print();
  std::printf(
      "Worst-case optimal at r=2 (slide 59): light part is a 1-round "
      "HyperCube, heavy part a 2-round semijoin plan; a deployment "
      "overlaps the light round with the heavy plan's first round.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::PathPlans();
  mpcqp::TriangleHeavyLight();
  return 0;
}
