// A3 — ablation: the local evaluator inside each server.
//
// The binary-join local evaluator can materialize an intermediate of size
// ~N²/D even when the output is empty (deck slide 63 / the AGM discussion
// of slides 55-56); the worst-case-optimal Generic Join never exceeds
// IN^{ρ*}. We time both on the same instances (set semantics for both:
// inputs are deduplicated).

#include <chrono>

#include "bench/bench_util.h"
#include "query/generic_join.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

double MillisOf(const std::function<Relation()>& fn, int64_t* out_size) {
  const auto start = std::chrono::steady_clock::now();
  const Relation result = fn();
  const auto end = std::chrono::steady_clock::now();
  *out_size = result.size();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void Run() {
  bench::Banner(
      "A3: local evaluator — binary join plan vs Generic Join (WCOJ), "
      "set semantics");
  Table table({"instance", "|OUT|", "binary ms", "wcoj ms",
               "binary intermediate"});

  // Instance 1: benign uniform triangle.
  {
    Rng rng(1);
    const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
    std::vector<Relation> atoms;
    for (int j = 0; j < 3; ++j) {
      atoms.push_back(Dedup(GenerateUniform(rng, 3000, 2, 1200)));
    }
    int64_t out_binary = 0;
    int64_t out_wcoj = 0;
    const double binary_ms =
        MillisOf([&] { return Dedup(EvalJoinLocal(q, atoms)); }, &out_binary);
    const double wcoj_ms =
        MillisOf([&] { return EvalJoinWcoj(q, atoms); }, &out_wcoj);
    const Relation i1 = HashJoinLocal(atoms[0], atoms[1], {1}, {0});
    table.AddRow({"uniform triangle N=3000", FmtInt(out_wcoj),
                  Fmt(binary_ms, 1), Fmt(wcoj_ms, 1), FmtInt(i1.size())});
    if (out_binary != out_wcoj) std::printf("MISMATCH!\n");
  }

  // Instance 2: slide-63 adversarial path-3 — R1 ⋈ R2 is ~N²/D ≈ 2.4M
  // tuples while the final output is empty (R3 lives on a disjoint
  // domain).
  {
    Rng rng(2);
    const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
    const Relation r1 = Dedup(GenerateUniform(rng, 12000, 2, 60));
    const Relation r2 = Dedup(GenerateUniform(rng, 12000, 2, 60));
    Relation r3(2);
    for (int i = 0; i < 12000; ++i) {
      r3.AppendRow({1000000 + static_cast<Value>(i), 0});
    }
    std::vector<Relation> atoms = {r1, r2, r3};
    int64_t out_binary = 0;
    int64_t out_wcoj = 0;
    const double binary_ms =
        MillisOf([&] { return Dedup(EvalJoinLocal(q, atoms)); }, &out_binary);
    const double wcoj_ms =
        MillisOf([&] { return EvalJoinWcoj(q, atoms); }, &out_wcoj);
    const Relation i1 = HashJoinLocal(r1, r2, {1}, {0});
    table.AddRow({"adversarial path-3 (empty OUT)", FmtInt(out_wcoj),
                  Fmt(binary_ms, 1), Fmt(wcoj_ms, 1), FmtInt(i1.size())});
    if (out_binary != out_wcoj) std::printf("MISMATCH!\n");
  }

  // Instance 3: skewed triangle (one hub vertex).
  {
    Rng rng(3);
    const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
    Relation edges = GenerateRandomGraph(rng, 1500, 20000);
    // A hub connected to everyone.
    for (Value v = 0; v < 1500; ++v) {
      edges.AppendRow({999999, v});
      edges.AppendRow({v, 999999});
    }
    std::vector<Relation> atoms = {edges, edges, edges};
    int64_t out_binary = 0;
    int64_t out_wcoj = 0;
    const double binary_ms =
        MillisOf([&] { return Dedup(EvalJoinLocal(q, atoms)); }, &out_binary);
    const double wcoj_ms =
        MillisOf([&] { return EvalJoinWcoj(q, atoms); }, &out_wcoj);
    const Relation i1 = HashJoinLocal(edges, edges, {1}, {0});
    table.AddRow({"hub triangle", FmtInt(out_wcoj), Fmt(binary_ms, 1),
                  Fmt(wcoj_ms, 1), FmtInt(i1.size())});
    if (out_binary != out_wcoj) std::printf("MISMATCH!\n");
  }

  table.Print();
  std::printf(
      "\nTakeaway: the binary plan's cost follows its intermediate column "
      "(~N^2/D on the adversarial instance, hub-squared paths on the "
      "skewed graph) while Generic Join's work is bounded by IN^{rho*} "
      "and it skips dead branches outright. On benign instances the "
      "hash-join pipeline wins on constant factors (this Generic Join is "
      "a reference implementation without trie indexes) — the classic "
      "robustness-vs-raw-speed tradeoff.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
