// E6 — deck slides 34-36, 41: the triangle query in one round.
//
// HyperCube load N/p^{2/3} vs the binary-join plan (R ⋈ S then ⋈ T), over
// a p sweep on skew-free data. Also checks the Ω(N/p^{2/3}) one-round
// lower bound is respected and that both plans agree on the output.

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void Run() {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const int64_t n = 20000;
  Rng data_rng(43);
  // Skew-free relations: every value degree 1 per column.
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, n, 2, 1 << 18));
  }
  const Relation reference = EvalJoinLocal(q, atoms);

  bench::Banner(
      "E6 (slides 34-41): triangle, |R|=|S|=|T|=20000 — HyperCube (1 "
      "round) vs binary-join plan (2 rounds)");
  Table table({"p", "shares", "HC L", "N/p^{2/3}", "HC L ratio", "BJ L",
               "BJ rounds", "outputs equal"});
  for (const int p : {1, 8, 27, 64, 216}) {
    std::vector<DistRelation> dist;
    for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));

    Cluster hc_cluster(p, 7);
    const HyperCubeResult hc = HyperCubeJoin(hc_cluster, q, dist);
    const double hc_load =
        static_cast<double>(hc_cluster.cost_report().MaxLoadTuples());
    const double theory = static_cast<double>(n) / std::pow(p, 2.0 / 3.0);

    Cluster bj_cluster(p, 7);
    Rng rng(47);
    const BinaryPlanResult bj =
        IterativeBinaryJoin(bj_cluster, q, dist, rng);

    const bool equal =
        MultisetEqual(hc.output.Collect(), reference) &&
        MultisetEqual(bj.output.Collect(), reference);

    std::string shares;
    for (size_t v = 0; v < hc.shares.size(); ++v) {
      if (v > 0) shares += "x";
      shares += std::to_string(hc.shares[v]);
    }
    table.AddRow({FmtInt(p), shares, Fmt(hc_load, 0), Fmt(theory, 0),
                  Fmt(hc_load / theory, 2),
                  FmtInt(bj_cluster.cost_report().MaxLoadTuples()),
                  FmtInt(bj_cluster.cost_report().num_rounds()),
                  equal ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nShape check: HC load tracks N/p^{2/3} (the one-round optimum and "
      "lower bound, slide 36); the binary plan uses one fewer replication "
      "but two rounds. On skew-free data its per-round load is ~IN/p, so "
      "at large p the 1-round HC pays p^{1/3} extra — the 1-round-vs-"
      "multi-round tradeoff of slide 54.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
