// E6 — deck slides 34-36, 41: the triangle query in one round.
//
// HyperCube load N/p^{2/3} vs the binary-join plan (R ⋈ S then ⋈ T), over
// a p sweep on skew-free data. Also checks the Ω(N/p^{2/3}) one-round
// lower bound is respected and that both plans agree on the output.

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "mpc/metrics.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void Run() {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const int64_t n = 20000;
  Rng data_rng(43);
  // Skew-free relations: every value degree 1 per column.
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, n, 2, 1 << 18));
  }
  const Relation reference = EvalJoinLocal(q, atoms);

  bench::Banner(
      "E6 (slides 34-41): triangle, |R|=|S|=|T|=20000 — HyperCube (1 "
      "round) vs binary-join plan (2 rounds)");
  Table table({"p", "shares", "HC L", "N/p^{2/3}", "HC L ratio", "BJ L",
               "BJ rounds", "outputs equal"});
  for (const int p : {1, 8, 27, 64, 216}) {
    std::vector<DistRelation> dist;
    for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));

    Cluster hc_cluster(p, 7);
    const HyperCubeResult hc = HyperCubeJoin(hc_cluster, q, dist);
    const double hc_load =
        static_cast<double>(hc_cluster.cost_report().MaxLoadTuples());
    const double theory = static_cast<double>(n) / std::pow(p, 2.0 / 3.0);

    Cluster bj_cluster(p, 7);
    Rng rng(47);
    const BinaryPlanResult bj =
        IterativeBinaryJoin(bj_cluster, q, dist, rng);

    const bool equal =
        MultisetEqual(hc.output.Collect(), reference) &&
        MultisetEqual(bj.output.Collect(), reference);

    std::string shares;
    for (size_t v = 0; v < hc.shares.size(); ++v) {
      if (v > 0) shares += "x";
      shares += std::to_string(hc.shares[v]);
    }
    table.AddRow({FmtInt(p), shares, Fmt(hc_load, 0), Fmt(theory, 0),
                  Fmt(hc_load / theory, 2),
                  FmtInt(bj_cluster.cost_report().MaxLoadTuples()),
                  FmtInt(bj_cluster.cost_report().num_rounds()),
                  equal ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nShape check: HC load tracks N/p^{2/3} (the one-round optimum and "
      "lower bound, slide 36); the binary plan uses one fewer replication "
      "but two rounds. On skew-free data its per-round load is ~IN/p, so "
      "at large p the 1-round HC pays p^{1/3} extra — the 1-round-vs-"
      "multi-round tradeoff of slide 54.\n");

  // Executor datapoint: the same p=64 HyperCube run with 1 vs 8 OS
  // threads. The determinism contract makes the outputs and loads
  // identical; only the wall time may change. Emitted machine-readable so
  // CI can track the parallel executor's speedup on real multi-core
  // hardware.
  bench::Banner("Executor: threads=1 vs threads=8 (p=64 HyperCube)");
  const int bench_p = 64;
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) {
    dist.push_back(DistRelation::Scatter(r, bench_p));
  }
  bench::BenchJson json("triangle_hypercube");
  json.Set("p", bench_p);
  json.Set("n_per_relation", n);
  Table exec_table({"threads", "wall ms", "max load (tuples)", "rounds"});
  double wall_threads1 = 0.0;
  for (const int threads : {1, 8}) {
    ClusterOptions options;
    options.num_threads = threads;
    Cluster cluster(bench_p, 7, options);
    const bench::WallTimer timer;
    const HyperCubeResult result = HyperCubeJoin(cluster, q, dist);
    const double wall_ms = timer.ElapsedMs();
    if (threads == 1) wall_threads1 = wall_ms;
    const CostReport& report = cluster.cost_report();
    std::vector<int64_t> round_loads;
    for (const RoundCost& round : report.rounds()) {
      round_loads.push_back(round.MaxTuplesReceived());
    }
    exec_table.AddRow({FmtInt(threads), Fmt(wall_ms, 1),
                       FmtInt(report.MaxLoadTuples()),
                       FmtInt(report.num_rounds())});
    const std::string suffix = "_threads" + std::to_string(threads);
    json.Set("wall_ms" + suffix, wall_ms);
    json.Set("max_load_tuples" + suffix, report.MaxLoadTuples());
    json.SetArray("round_max_load_tuples" + suffix, round_loads);
    json.Set("output_tuples" + suffix, result.output.TotalSize());
    json.SetRawJson("stats" + suffix, BuildStatsReport(cluster).ToJson());
    if (threads != 1 && wall_threads1 > 0.0 && wall_ms > 0.0) {
      json.Set("speedup" + suffix, wall_threads1 / wall_ms);
      std::printf("speedup threads=%d vs 1: %.2fx\n", threads,
                  wall_threads1 / wall_ms);
    }
  }
  exec_table.Print();
  json.Write();
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
