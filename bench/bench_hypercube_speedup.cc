// E8 — deck slide 45: the HyperCube speedup curve.
//
// Speedup(p) = L(1) / L(p). With integer shares it is governed by
// 1/p^{Σ e_i} and degrades toward 1/p^{1/τ*} as p grows (for the triangle,
// τ* = 3/2 -> the asymptote is p^{2/3}).

#include <cmath>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/hypercube.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

void Run() {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const int64_t n = 8192;
  Rng data_rng(59);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, n, 2, 1 << 18));
  }

  bench::Banner(
      "E8 (slide 45): HyperCube speedup vs p, triangle, N=8192 per atom");
  Table table({"p", "measured L", "speedup L(1)/L(p)", "ideal p^{2/3}",
               "speedup / p^{2/3}"});
  double base_load = 0;
  for (const int p : {1, 2, 4, 8, 16, 27, 64, 125, 216, 512}) {
    std::vector<DistRelation> dist;
    for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));
    Cluster cluster(p, 7);
    HyperCubeJoin(cluster, q, dist);
    const double load =
        static_cast<double>(cluster.cost_report().MaxLoadTuples());
    if (p == 1) base_load = load;
    const double speedup = base_load / load;
    const double ideal = std::pow(p, 2.0 / 3.0);
    table.AddRow({FmtInt(p), Fmt(load, 0), Fmt(speedup, 2), Fmt(ideal, 2),
                  Fmt(speedup / ideal, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check (slide 45): the speedup is sublinear; at perfect-cube "
      "p it sits on the p^{2/3} curve and sags between cubes where integer "
      "share rounding wastes servers — the staircase degradation the "
      "slide sketches.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
