// Data-plane throughput: tuples/sec through every exchange primitive, at
// p ∈ {4, 64} and threads ∈ {1, 8}, against the embedded per-source
// router — the pre-morsel two-phase data plane whose parallelism grain was
// one task per source fragment (per-tuple HashSpan calls, a heap-allocated
// cursor vector per copy task, serial O(p^2) presize, no write-combining).
// The baseline is kept here verbatim (not in src/) precisely so the gain
// of the morsel-driven rewrite stays measurable release over release.
//
// The skewed config (all rows on one source) is where per-source tasking
// degenerates to serial execution and morsel stealing must not.
//
// Emits BENCH_exchange.json with <prim>_p<P>_t<T>_{new,persrc}_tps and
// _speedup keys; CI runs this binary as a Release smoke test and fails
// the build if the morsel router loses to the baseline at t=8 (with a
// small tolerance for timer noise).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "relation/relation.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::Table;
using bench::WallTimer;

// ---------------------------------------------------------------------------
// The pre-morsel data plane, verbatim: two-phase index-routed exchange with
// one task per source fragment.
// ---------------------------------------------------------------------------

template <typename SingleTargetFn>
DistRelation PerSourceRouteSingle(Cluster& cluster, const DistRelation& rel,
                                  const SingleTargetFn& target,
                                  const std::string& label) {
  const int p = cluster.num_servers();
  RoundScope scope(cluster, label);

  const int arity = rel.arity();
  DistRelation out(arity, p);
  ThreadPool& pool = cluster.pool();

  // Phase 1: destinations + counts, one task per source.
  std::vector<std::vector<int32_t>> dest_of(p);
  std::vector<int64_t> counts(static_cast<size_t>(p) * p, 0);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kRoute);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      const Relation& frag = rel.fragment(src);
      std::vector<int32_t>& dests = dest_of[src];
      dests.resize(frag.size());
      int64_t* cnt = counts.data() + static_cast<size_t>(src) * p;
      RouteContext ctx;
      ctx.src = src;
      const int64_t n = frag.size();
      for (int64_t i = 0; i < n; ++i) {
        ctx.row = i;
        const int dst = target(ctx, frag.row(i));
        MPCQP_CHECK_GE(dst, 0);
        MPCQP_CHECK_LT(dst, p);
        dests[i] = dst;
        ++cnt[dst];
      }
      for (int dst = 0; dst < p; ++dst) {
        if (cnt[dst] > 0) {
          cluster.RecordMessage(src, dst, cnt[dst], cnt[dst] * arity);
        }
      }
    });
  }

  // Serial O(p^2) presize: src-major offsets, matching append order.
  std::vector<int64_t> offsets(static_cast<size_t>(p) * p);
  std::vector<Value*> base(p);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    int64_t peak = 0;
    for (int dst = 0; dst < p; ++dst) {
      int64_t total = 0;
      for (int src = 0; src < p; ++src) {
        offsets[static_cast<size_t>(src) * p + dst] = total;
        total += counts[static_cast<size_t>(src) * p + dst];
      }
      base[dst] = out.fragment(dst).ResizeRowsForOverwrite(total);
      peak = std::max(peak, total);
    }
    cluster.metrics().RecordFragmentRows(peak);
  }

  // Phase 2: bulk copy, one task per source, cursor vector per task.
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      const Relation& frag = rel.fragment(src);
      if (frag.empty()) return;
      std::vector<int64_t> cursor(
          offsets.begin() + static_cast<size_t>(src) * p,
          offsets.begin() + static_cast<size_t>(src + 1) * p);
      const std::vector<int32_t>& dests = dest_of[src];
      const Value* in = frag.row(0);
      const int64_t n = frag.size();
      for (int64_t i = 0; i < n; ++i, in += arity) {
        const int dst = dests[i];
        std::memcpy(base[dst] + cursor[dst] * arity, in,
                    static_cast<size_t>(arity) * sizeof(Value));
        ++cursor[dst];
      }
    });
  }
  return out;
}

template <typename MultiTargetFn>
DistRelation PerSourceRouteMulti(Cluster& cluster, const DistRelation& rel,
                                 const MultiTargetFn& targets,
                                 const std::string& label) {
  const int p = cluster.num_servers();
  RoundScope scope(cluster, label);

  const int arity = rel.arity();
  DistRelation out(arity, p);
  ThreadPool& pool = cluster.pool();

  std::vector<std::vector<int32_t>> dest_of(p);
  std::vector<std::vector<int64_t>> row_end(p);
  std::vector<int64_t> counts(static_cast<size_t>(p) * p, 0);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kRoute);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      const Relation& frag = rel.fragment(src);
      std::vector<int32_t>& flat = dest_of[src];
      std::vector<int64_t>& ends = row_end[src];
      ends.resize(frag.size());
      int64_t* cnt = counts.data() + static_cast<size_t>(src) * p;
      std::vector<int> dests;
      RouteContext ctx;
      ctx.src = src;
      const int64_t n = frag.size();
      for (int64_t i = 0; i < n; ++i) {
        ctx.row = i;
        dests.clear();
        targets(ctx, frag.row(i), dests);
        for (int dst : dests) {
          MPCQP_CHECK_GE(dst, 0);
          MPCQP_CHECK_LT(dst, p);
          flat.push_back(dst);
          ++cnt[dst];
        }
        ends[i] = static_cast<int64_t>(flat.size());
      }
      for (int dst = 0; dst < p; ++dst) {
        if (cnt[dst] > 0) {
          cluster.RecordMessage(src, dst, cnt[dst], cnt[dst] * arity);
        }
      }
    });
  }

  std::vector<int64_t> offsets(static_cast<size_t>(p) * p);
  std::vector<Value*> base(p);
  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCount);
    int64_t peak = 0;
    for (int dst = 0; dst < p; ++dst) {
      int64_t total = 0;
      for (int src = 0; src < p; ++src) {
        offsets[static_cast<size_t>(src) * p + dst] = total;
        total += counts[static_cast<size_t>(src) * p + dst];
      }
      base[dst] = out.fragment(dst).ResizeRowsForOverwrite(total);
      peak = std::max(peak, total);
    }
    cluster.metrics().RecordFragmentRows(peak);
  }

  {
    ScopedPhaseTimer phase(cluster.metrics(), Phase::kCopy);
    pool.ParallelFor(p, [&](int64_t task) {
      const int src = static_cast<int>(task);
      const Relation& frag = rel.fragment(src);
      if (frag.empty()) return;
      std::vector<int64_t> cursor(
          offsets.begin() + static_cast<size_t>(src) * p,
          offsets.begin() + static_cast<size_t>(src + 1) * p);
      const std::vector<int32_t>& flat = dest_of[src];
      const std::vector<int64_t>& ends = row_end[src];
      const Value* in = frag.row(0);
      const int64_t n = frag.size();
      int64_t j = 0;
      for (int64_t i = 0; i < n; ++i, in += arity) {
        for (; j < ends[i]; ++j) {
          const int dst = flat[j];
          std::memcpy(base[dst] + cursor[dst] * arity, in,
                      static_cast<size_t>(arity) * sizeof(Value));
          ++cursor[dst];
        }
      }
    });
  }
  return out;
}

struct Primitive {
  std::string name;
  int64_t rows;  // Input size for this primitive (independent of p).
  // All rows on source 0 instead of block-scattered: the per-source
  // router's worst case (its parallel loops degenerate to one task).
  bool skewed = false;
  // Runs the library (morsel-driven) implementation.
  std::function<DistRelation(Cluster&, const DistRelation&)> run_new;
  // Same semantics through the embedded per-source router.
  std::function<DistRelation(Cluster&, const DistRelation&)> run_persrc;
};

std::vector<Primitive> MakePrimitives() {
  std::vector<Primitive> prims;

  // Every primitive derives its routing from a fixed-seed hash so both
  // routers are comparable and repeatable.
  const HashFunction hash(0x5eedULL);

  const auto hash_new = [hash](Cluster& c, const DistRelation& rel) {
    return HashPartition(c, rel, {0}, hash, "bench");
  };
  const auto hash_persrc = [hash](Cluster& c, const DistRelation& rel) {
    const int p = c.num_servers();
    return PerSourceRouteSingle(
        c, rel,
        [&hash, p](const RouteContext&, const Value* row) {
          // Verbatim pre-morsel path: an out-of-line HashSpan call per
          // tuple (the morsel router batches these via BucketMany).
          return static_cast<int>(
              (static_cast<unsigned __int128>(hash.HashSpan(row, 1)) * p) >>
              64);
        },
        "bench");
  };
  prims.push_back({"HashPartition", 400000, false, hash_new, hash_persrc});
  prims.push_back({"HashPartitionSkew", 400000, true, hash_new, hash_persrc});

  prims.push_back(
      {"RangePartition", 400000, false,
       [](Cluster& c, const DistRelation& rel) {
         std::vector<Value> splitters;
         for (int s = 1; s < c.num_servers(); ++s) {
           splitters.push_back(static_cast<Value>(s) * 1000000 /
                               c.num_servers());
         }
         return RangePartition(c, rel, 0, splitters, "bench");
       },
       [](Cluster& c, const DistRelation& rel) {
         std::vector<Value> splitters;
         for (int s = 1; s < c.num_servers(); ++s) {
           splitters.push_back(static_cast<Value>(s) * 1000000 /
                               c.num_servers());
         }
         return PerSourceRouteSingle(
             c, rel,
             [&splitters](const RouteContext&, const Value* row) {
               const auto it = std::upper_bound(splitters.begin(),
                                                splitters.end(), row[0]);
               return static_cast<int>(it - splitters.begin());
             },
             "bench");
       }});

  // HyperCube-style multicast: each tuple goes to two hash-derived servers.
  prims.push_back(
      {"Route2", 200000, false,
       [hash](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         return Route(
             c, rel,
             [&hash, p](const Value* row, std::vector<int>& dests) {
               dests.push_back(hash.Bucket(row[0], p));
               dests.push_back(hash.Bucket(row[1] + 1, p));
             },
             "bench");
       },
       [hash](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         // Replicates the old public Route() exactly: the user callback is
         // type-erased behind std::function (one indirect call per row),
         // same as the library's Route() before and after the rewrite.
         const std::function<void(const Value*, std::vector<int>&)> fn =
             [&hash, p](const Value* row, std::vector<int>& dests) {
               dests.push_back(hash.Bucket(row[0], p));
               dests.push_back(hash.Bucket(row[1] + 1, p));
             };
         return PerSourceRouteMulti(
             c, rel,
             [&fn](const RouteContext&, const Value* row,
                   std::vector<int>& dests) { fn(row, dests); },
             "bench");
       }});

  prims.push_back(
      {"Broadcast", 40000, false,
       [](Cluster& c, const DistRelation& rel) {
         return Broadcast(c, rel, "bench");
       },
       [](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         return PerSourceRouteMulti(
             c, rel,
             [p](const RouteContext&, const Value*, std::vector<int>& dests) {
               for (int s = 0; s < p; ++s) dests.push_back(s);
             },
             "bench");
       }});

  prims.push_back(
      {"GatherToServer", 400000, false,
       [](Cluster& c, const DistRelation& rel) {
         GatherToServer(c, rel, 0, "bench");
         return DistRelation(rel.arity(), c.num_servers());
       },
       [](Cluster& c, const DistRelation& rel) {
         PerSourceRouteSingle(
             c, rel, [](const RouteContext&, const Value*) { return 0; },
             "bench");
         return DistRelation(rel.arity(), c.num_servers());
       }});

  return prims;
}

DistRelation MakeInput(const Relation& input, int p, bool skewed) {
  if (!skewed) return DistRelation::Scatter(input, p);
  std::vector<Relation> frags(p, Relation(input.arity()));
  frags[0] = input;
  return DistRelation::FromFragments(std::move(frags));
}

// Best-of-`reps` throughput in delivered tuples/sec.
double MeasureTps(
    Cluster& cluster, const DistRelation& input, int64_t delivered,
    const std::function<DistRelation(Cluster&, const DistRelation&)>& run,
    int reps) {
  double best_ms = -1;
  for (int r = 0; r < reps; ++r) {
    cluster.ResetCosts();
    WallTimer timer;
    DistRelation out = run(cluster, input);
    const double ms = timer.ElapsedMs();
    if (best_ms < 0 || ms < best_ms) best_ms = ms;
  }
  return static_cast<double>(delivered) / (best_ms / 1000.0);
}

}  // namespace
}  // namespace mpcqp

int main() {
  using namespace mpcqp;
  constexpr int kReps = 5;
  const int kP[] = {4, 64};
  const int kThreads[] = {1, 8};
  // CI gate: at t=8 the morsel router must not lose to the per-source
  // baseline on any config. Even best-of-5 jitters >10% on a loaded
  // runner (the parity configs bounce either side of 1.0), hence the
  // tolerance.
  constexpr double kLoseTolerance = 0.85;

  bench::Banner("Exchange data-plane throughput (tuples/sec, best of 5)");
  bench::Table table({"primitive", "p", "threads", "new tps", "persrc tps",
                      "speedup"});
  bench::BenchJson json("exchange");
  json.Set("reps", kReps);

  Rng rng(99);
  std::vector<std::pair<std::string, double>> t8_speedups;
  // Best t=8 speedup over the small-p and skewed configs: the headline
  // "morsel routing pays off where per-source tasking can't" number.
  double headline_t8 = 0;
  std::vector<Primitive> prims = MakePrimitives();
  for (const Primitive& prim : prims) {
    const Relation input = GenerateUniform(rng, prim.rows, 2, 1000000);
    for (const int p : kP) {
      const DistRelation rel = MakeInput(input, p, prim.skewed);
      for (const int threads : kThreads) {
        ClusterOptions options;
        options.num_threads = threads;
        Cluster cluster(p, 7, options);

        // Sanity: both routers must move identical multisets of tuples.
        {
          Cluster check_new(p, 7), check_persrc(p, 7);
          DistRelation a = prim.run_new(check_new, rel);
          DistRelation b = prim.run_persrc(check_persrc, rel);
          if (!MultisetEqual(a.Collect(), b.Collect())) {
            std::fprintf(stderr, "FATAL: %s new/persrc outputs differ\n",
                         prim.name.c_str());
            return 1;
          }
        }

        // Delivered tuples: what the round actually ships (the meter is
        // identical for both routers by construction).
        cluster.ResetCosts();
        DistRelation probe = prim.run_new(cluster, rel);
        const int64_t delivered =
            cluster.cost_report().rounds().back().TotalTuplesReceived();

        const double new_tps =
            MeasureTps(cluster, rel, delivered, prim.run_new, kReps);
        const double persrc_tps =
            MeasureTps(cluster, rel, delivered, prim.run_persrc, kReps);
        const double speedup = new_tps / persrc_tps;

        table.AddRow({prim.name, std::to_string(p), std::to_string(threads),
                      bench::Fmt(new_tps / 1e6, 2) + "M",
                      bench::Fmt(persrc_tps / 1e6, 2) + "M",
                      bench::Fmt(speedup, 2) + "x"});
        const std::string key = prim.name + "_p" + std::to_string(p) + "_t" +
                                std::to_string(threads);
        json.Set(key + "_new_tps", new_tps);
        json.Set(key + "_persrc_tps", persrc_tps);
        json.Set(key + "_speedup", speedup);
        if (threads == 8) {
          t8_speedups.push_back({key, speedup});
          if (p == 4 || prim.skewed) {
            headline_t8 = std::max(headline_t8, speedup);
          }
        }
      }
    }
  }
  table.Print();
  json.Set("headline_small_p_t8_speedup", headline_t8);
  json.Write();

  bool lost = false;
  for (const auto& [key, speedup] : t8_speedups) {
    if (speedup < kLoseTolerance) {
      std::fprintf(stderr,
                   "FATAL: morsel router lost to per-source baseline: "
                   "%s speedup %.2fx < %.2fx\n",
                   key.c_str(), speedup, kLoseTolerance);
      lost = true;
    }
  }
  return lost ? 1 : 0;
}
