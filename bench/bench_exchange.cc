// Data-plane throughput: tuples/sec through every exchange primitive, at
// p ∈ {8, 64} and threads ∈ {1, 8}, against an embedded "legacy" routing
// implementation — the pre-zero-copy data plane that materialized private
// per-(src, dst) buffers tuple-by-tuple and concatenated them. The legacy
// router is kept here (not in src/) precisely so the speedup of the
// two-phase index-routed exchange stays measurable release over release.
//
// Emits BENCH_exchange.json with <prim>_p<P>_t<T>_{new,legacy}_tps and
// _speedup keys; CI runs this binary as a Release smoke test.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "relation/relation.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::Table;
using bench::WallTimer;

using TargetsFn =
    std::function<void(const Value* row, std::vector<int>& dests)>;

// The seed data plane, verbatim: per-tuple AppendRow into private
// per-(src, dst) Relation buffers, then a concatenation pass.
DistRelation LegacyRoute(Cluster& cluster, const DistRelation& rel,
                         const TargetsFn& targets, const std::string& label) {
  const int p = cluster.num_servers();
  RoundScope scope(cluster, label);
  DistRelation out(rel.arity(), p);
  ThreadPool& pool = cluster.pool();

  if (pool.num_threads() <= 1 || p <= 1) {
    std::vector<int64_t> sent_to(p, 0);
    std::vector<int> dests;
    for (int src = 0; src < p; ++src) {
      std::fill(sent_to.begin(), sent_to.end(), 0);
      const Relation& frag = rel.fragment(src);
      for (int64_t i = 0; i < frag.size(); ++i) {
        const Value* row = frag.row(i);
        dests.clear();
        targets(row, dests);
        for (int dst : dests) {
          out.fragment(dst).AppendRow(row);
          ++sent_to[dst];
        }
      }
      for (int dst = 0; dst < p; ++dst) {
        if (sent_to[dst] > 0) {
          cluster.RecordMessage(src, dst, sent_to[dst],
                                sent_to[dst] * rel.arity());
        }
      }
    }
    return out;
  }

  std::vector<std::vector<Relation>> bufs(p);
  pool.ParallelFor(p, [&](int64_t task) {
    const int src = static_cast<int>(task);
    std::vector<Relation>& mine = bufs[src];
    mine.assign(p, Relation(rel.arity()));
    std::vector<int64_t> sent_to(p, 0);
    std::vector<int> dests;
    const Relation& frag = rel.fragment(src);
    for (int64_t i = 0; i < frag.size(); ++i) {
      const Value* row = frag.row(i);
      dests.clear();
      targets(row, dests);
      for (int dst : dests) {
        mine[dst].AppendRow(row);
        ++sent_to[dst];
      }
    }
    for (int dst = 0; dst < p; ++dst) {
      if (sent_to[dst] > 0) {
        cluster.RecordMessage(src, dst, sent_to[dst],
                              sent_to[dst] * rel.arity());
      }
    }
  });
  pool.ParallelFor(p, [&](int64_t task) {
    const int dst = static_cast<int>(task);
    Relation& merged = out.fragment(dst);
    int64_t total = 0;
    for (int src = 0; src < p; ++src) total += bufs[src][dst].size();
    merged.Reserve(total);
    for (int src = 0; src < p; ++src) merged.Append(bufs[src][dst]);
  });
  return out;
}

struct Primitive {
  std::string name;
  int64_t rows;  // Input size for this primitive at the base p.
  // Runs the library (post-refactor) implementation.
  std::function<DistRelation(Cluster&, const DistRelation&)> run_new;
  // Same semantics through the legacy router.
  std::function<DistRelation(Cluster&, const DistRelation&)> run_legacy;
};

std::vector<Primitive> MakePrimitives() {
  std::vector<Primitive> prims;

  // Every primitive derives its routing from a fixed-seed hash so new and
  // legacy runs are comparable and repeatable.
  const HashFunction hash(0x5eedULL);

  prims.push_back(
      {"HashPartition", 400000,
       [hash](Cluster& c, const DistRelation& rel) {
         return HashPartition(c, rel, {0}, hash, "bench");
       },
       [hash](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         return LegacyRoute(
             c, rel,
             [&hash, p](const Value* row, std::vector<int>& dests) {
               dests.push_back(hash.Bucket(row[0], p));
             },
             "bench");
       }});

  prims.push_back(
      {"RangePartition", 400000,
       [](Cluster& c, const DistRelation& rel) {
         std::vector<Value> splitters;
         for (int s = 1; s < c.num_servers(); ++s) {
           splitters.push_back(static_cast<Value>(s) * 1000000 /
                               c.num_servers());
         }
         return RangePartition(c, rel, 0, splitters, "bench");
       },
       [](Cluster& c, const DistRelation& rel) {
         std::vector<Value> splitters;
         for (int s = 1; s < c.num_servers(); ++s) {
           splitters.push_back(static_cast<Value>(s) * 1000000 /
                               c.num_servers());
         }
         return LegacyRoute(
             c, rel,
             [&splitters](const Value* row, std::vector<int>& dests) {
               const auto it = std::upper_bound(splitters.begin(),
                                                splitters.end(), row[0]);
               dests.push_back(static_cast<int>(it - splitters.begin()));
             },
             "bench");
       }});

  // HyperCube-style multicast: each tuple goes to two hash-derived servers.
  prims.push_back(
      {"Route2", 200000,
       [hash](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         return Route(
             c, rel,
             [&hash, p](const Value* row, std::vector<int>& dests) {
               dests.push_back(hash.Bucket(row[0], p));
               dests.push_back(hash.Bucket(row[1] + 1, p));
             },
             "bench");
       },
       [hash](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         return LegacyRoute(
             c, rel,
             [&hash, p](const Value* row, std::vector<int>& dests) {
               dests.push_back(hash.Bucket(row[0], p));
               dests.push_back(hash.Bucket(row[1] + 1, p));
             },
             "bench");
       }});

  prims.push_back(
      {"Broadcast", 40000,
       [](Cluster& c, const DistRelation& rel) {
         return Broadcast(c, rel, "bench");
       },
       [](Cluster& c, const DistRelation& rel) {
         const int p = c.num_servers();
         return LegacyRoute(
             c, rel,
             [p](const Value*, std::vector<int>& dests) {
               for (int s = 0; s < p; ++s) dests.push_back(s);
             },
             "bench");
       }});

  prims.push_back(
      {"GatherToServer", 400000,
       [](Cluster& c, const DistRelation& rel) {
         GatherToServer(c, rel, 0, "bench");
         return DistRelation(rel.arity(), c.num_servers());
       },
       [](Cluster& c, const DistRelation& rel) {
         LegacyRoute(
             c, rel,
             [](const Value*, std::vector<int>& dests) {
               dests.push_back(0);
             },
             "bench");
         return DistRelation(rel.arity(), c.num_servers());
       }});

  return prims;
}

// Best-of-`reps` throughput in delivered tuples/sec.
double MeasureTps(
    Cluster& cluster, const DistRelation& input, int64_t delivered,
    const std::function<DistRelation(Cluster&, const DistRelation&)>& run,
    int reps) {
  double best_ms = -1;
  for (int r = 0; r < reps; ++r) {
    cluster.ResetCosts();
    WallTimer timer;
    DistRelation out = run(cluster, input);
    const double ms = timer.ElapsedMs();
    if (best_ms < 0 || ms < best_ms) best_ms = ms;
  }
  return static_cast<double>(delivered) / (best_ms / 1000.0);
}

}  // namespace
}  // namespace mpcqp

int main() {
  using namespace mpcqp;
  constexpr int kReps = 3;
  const int kP[] = {8, 64};
  const int kThreads[] = {1, 8};

  bench::Banner("Exchange data-plane throughput (tuples/sec, best of 3)");
  bench::Table table({"primitive", "p", "threads", "new tps", "legacy tps",
                      "speedup"});
  bench::BenchJson json("exchange");
  json.Set("reps", kReps);

  Rng rng(99);
  std::vector<Primitive> prims = MakePrimitives();
  for (const Primitive& prim : prims) {
    const Relation input =
        GenerateUniform(rng, prim.rows, 2, 1000000);
    for (const int p : kP) {
      for (const int threads : kThreads) {
        ClusterOptions options;
        options.num_threads = threads;
        Cluster cluster(p, 7, options);
        const DistRelation rel = DistRelation::Scatter(input, p);

        // Sanity: both routers must move identical multisets of tuples.
        {
          Cluster check_new(p, 7), check_legacy(p, 7);
          DistRelation a = prim.run_new(check_new, rel);
          DistRelation b = prim.run_legacy(check_legacy, rel);
          if (!MultisetEqual(a.Collect(), b.Collect())) {
            std::fprintf(stderr, "FATAL: %s new/legacy outputs differ\n",
                         prim.name.c_str());
            return 1;
          }
        }

        // Delivered tuples: what the round actually ships (the meter is
        // identical for both routers by construction).
        cluster.ResetCosts();
        DistRelation probe = prim.run_new(cluster, rel);
        const int64_t delivered =
            cluster.cost_report().rounds().back().TotalTuplesReceived();

        const double new_tps =
            MeasureTps(cluster, rel, delivered, prim.run_new, kReps);
        const double legacy_tps =
            MeasureTps(cluster, rel, delivered, prim.run_legacy, kReps);
        const double speedup = new_tps / legacy_tps;

        table.AddRow({prim.name, std::to_string(p), std::to_string(threads),
                      bench::Fmt(new_tps / 1e6, 2) + "M",
                      bench::Fmt(legacy_tps / 1e6, 2) + "M",
                      bench::Fmt(speedup, 2) + "x"});
        const std::string key = prim.name + "_p" + std::to_string(p) + "_t" +
                                std::to_string(threads);
        json.Set(key + "_new_tps", new_tps);
        json.Set(key + "_legacy_tps", legacy_tps);
        json.Set(key + "_speedup", speedup);
      }
    }
  }
  table.Print();
  json.Write();
  return 0;
}
