// E5 — deck slides 27-31: two-way joins under skew.
//
// Plain hash join vs skew-aware join (hash + heavy-hitter grids) vs
// sort-based join on (a) Zipf inputs of varying skew and (b) the extreme
// one-value instance. The skew-resilient algorithms should track
// O(sqrt(OUT/p) + IN/p) while the plain hash join degrades to the max
// degree.

#include <cmath>

#include "bench/bench_util.h"
#include "join/hash_join.h"
#include "join/skew_join.h"
#include "join/sort_join.h"
#include "mpc/cluster.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

struct Measured {
  int64_t load = 0;
  int rounds = 0;
  int64_t out = 0;
};

Measured MeasureHash(const Relation& l, const Relation& r, int p) {
  Cluster cluster(p, 7);
  const DistRelation out =
      ParallelHashJoin(cluster, DistRelation::Scatter(l, p),
                       DistRelation::Scatter(r, p), {1}, {0});
  return {cluster.cost_report().MaxLoadTuples(),
          cluster.cost_report().num_rounds(), out.TotalSize()};
}

Measured MeasureSkewAware(const Relation& l, const Relation& r, int p) {
  Cluster cluster(p, 7);
  Rng rng(31);
  const DistRelation out =
      SkewAwareJoin(cluster, DistRelation::Scatter(l, p),
                    DistRelation::Scatter(r, p), 1, 0, rng);
  return {cluster.cost_report().MaxLoadTuples(),
          cluster.cost_report().num_rounds(), out.TotalSize()};
}

Measured MeasureSort(const Relation& l, const Relation& r, int p) {
  Cluster cluster(p, 7);
  Rng rng(37);
  const DistRelation out =
      ParallelSortJoin(cluster, DistRelation::Scatter(l, p),
                       DistRelation::Scatter(r, p), 1, 0, rng);
  return {cluster.cost_report().MaxLoadTuples(),
          cluster.cost_report().num_rounds(), out.TotalSize()};
}

void Run() {
  const int p = 64;
  const int64_t n = 20000;

  bench::Banner(
      "E5 (slides 29-31): join load under Zipf skew, |R|=|S|=20000, p=64");
  Table table({"zipf s", "OUT", "hash L", "skew-aware L", "sort L",
               "sqrt(OUT/p)+IN/p", "hash r", "skew r", "sort r"});
  Rng data_rng(41);
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    const Relation left = GenerateZipf(data_rng, n, 2, 1 << 14, 1, skew);
    const Relation right = GenerateZipf(data_rng, n, 2, 1 << 14, 0, skew);
    const Measured hash = MeasureHash(left, right, p);
    const Measured skew_aware = MeasureSkewAware(left, right, p);
    const Measured sorted = MeasureSort(left, right, p);
    const double target =
        std::sqrt(static_cast<double>(hash.out) / p) + 2.0 * n / p;
    table.AddRow({Fmt(skew, 1), FmtInt(hash.out), FmtInt(hash.load),
                  FmtInt(skew_aware.load), FmtInt(sorted.load),
                  Fmt(target, 0), FmtInt(hash.rounds),
                  FmtInt(skew_aware.rounds), FmtInt(sorted.rounds)});
  }
  table.Print();

  bench::Banner(
      "E5 (slide 27): extreme skew — every tuple shares one join value");
  Table extreme({"IN per side", "OUT", "hash L", "skew-aware L", "sort L",
                 "2 sqrt(OUT/p)"});
  for (const int64_t side : {2000, 8000}) {
    const Relation left = GenerateConstantColumn(side, 1, 7);
    const Relation right = GenerateConstantColumn(side, 0, 7);
    const Measured hash = MeasureHash(left, right, p);
    const Measured skew_aware = MeasureSkewAware(left, right, p);
    const Measured sorted = MeasureSort(left, right, p);
    extreme.AddRow({FmtInt(side), FmtInt(hash.out), FmtInt(hash.load),
                    FmtInt(skew_aware.load), FmtInt(sorted.load),
                    Fmt(2.0 * std::sqrt(static_cast<double>(hash.out) / p),
                        0)});
  }
  extreme.Print();
  std::printf(
      "\nShape check: the hash join's load equals the whole heavy value "
      "(2*IN_side) while the skew-aware and sort joins stay near "
      "2 sqrt(OUT/p); who-wins matches slides 29-31.\n");
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::Run();
  return 0;
}
