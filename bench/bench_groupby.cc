// Group-by engine cardinality-crossover study: the adaptive multi-strategy
// kernel (agg/groupby_engine.h) against the seed serial std::map path,
// over the four workload shapes of ROADMAP item 3 — few groups, millions
// of groups, Zipf-skewed, and TPC-H-Q1-style — at 1 and 8 threads.
//
// Emits BENCH_groupby.json with per-shape, per-strategy wall times. CI
// runs this binary as a Release smoke test and fails (exit 1) if
//  - any strategy's output differs from the seed path's bytes (including
//    across morsel sizes: the determinism contract), or
//  - the adaptive engine loses to the seed path on any shape at 8 threads.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "agg/groupby_engine.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::Table;
using bench::WallTimer;

constexpr int kReps = 3;  // Best-of-N wall times (cold caches amortized).

struct Shape {
  std::string name;
  Relation data;
  std::vector<int> group_cols;
  int value_col;
  AggregateOp op;
};

std::vector<Shape> MakeShapes() {
  std::vector<Shape> shapes;
  {
    // Few groups, heavy duplication: the combiner-friendly regime.
    Rng rng(21);
    shapes.push_back({"few_groups", GenerateUniform(rng, 2500000, 2, 64),
                      {0}, 1, AggregateOp::kSum});
  }
  {
    // Millions of (nearly all distinct) groups: the table-build-bound
    // regime where the seed map pays a node allocation per row.
    Rng rng(22);
    shapes.push_back({"millions_of_groups",
                      GenerateUniform(rng, 1500000, 2, 4000000),
                      {0}, 1, AggregateOp::kSum});
  }
  {
    // Zipf-skewed: one giant group plus a long distinct tail.
    Rng rng(23);
    shapes.push_back({"zipf_skew",
                      GenerateZipf(rng, 2000000, 2, 1000000, 0, 1.1),
                      {0}, 1, AggregateOp::kSum});
  }
  {
    // TPC-H Q1 style: two low-cardinality group columns (returnflag x
    // linestatus ~ 6 combinations) over a wide fact scan.
    Rng rng(24);
    Relation q1(4);
    q1.Reserve(2500000);
    for (int64_t i = 0; i < 2500000; ++i) {
      q1.AppendRow({rng.Uniform(3), rng.Uniform(2), rng.Uniform(10000),
                    1 + rng.Uniform(50)});
    }
    shapes.push_back({"tpch_q1_style", std::move(q1),
                      {0, 1}, 3, AggregateOp::kSum});
  }
  return shapes;
}

double TimeRun(const Shape& shape, GroupByStrategy strategy, ThreadPool* pool,
               Relation* out) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    GroupByEngineOptions options;
    options.strategy = strategy;
    options.pool = pool;
    WallTimer timer;
    StatusOr<Relation> result = GroupByAggregateParallel(
        shape.data, shape.group_cols, shape.value_col, shape.op, options);
    const double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::printf("FAIL: %s %s: %s\n", shape.name.c_str(),
                  GroupByStrategyName(strategy),
                  result.status().ToString().c_str());
      std::exit(1);
    }
    if (rep == 0) *out = std::move(result).value();
    if (ms < best) best = ms;
  }
  return best;
}

double TimeSeedPath(const Shape& shape, Relation* out) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    StatusOr<Relation> result = GroupByAggregate(
        shape.data, shape.group_cols, shape.value_col, shape.op);
    const double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::printf("FAIL: %s seed path errored\n", shape.name.c_str());
      std::exit(1);
    }
    if (rep == 0) *out = std::move(result).value();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace
}  // namespace mpcqp

int main() {
  using namespace mpcqp;  // NOLINT
  BenchJson json("groupby");
  bool ok = true;

  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const std::vector<Shape> shapes = MakeShapes();

  bench::Banner(
      "Group-by engine vs seed std::map path — four workload shapes, "
      "threads {1, 8}, best of " +
      std::to_string(kReps));
  Table table({"shape", "rows", "groups", "chosen", "seed ms", "adapt t1",
               "adapt t8", "tree t8", "radix t8", "speedup t8"});

  for (const Shape& shape : shapes) {
    Relation seed_out;
    const double seed_ms = TimeSeedPath(shape, &seed_out);

    const GroupByStrategy chosen =
        ChooseGroupByStrategy({RelationView(shape.data)}, shape.group_cols);

    Relation adapt1, adapt8, tree8, radix8;
    const double adapt1_ms =
        TimeRun(shape, GroupByStrategy::kAdaptive, &pool1, &adapt1);
    const double adapt8_ms =
        TimeRun(shape, GroupByStrategy::kAdaptive, &pool8, &adapt8);
    const double tree8_ms =
        TimeRun(shape, GroupByStrategy::kTreeMerge, &pool8, &tree8);
    const double radix8_ms =
        TimeRun(shape, GroupByStrategy::kRadix, &pool8, &radix8);

    // Bit-identical outputs: every strategy, every thread count, and a
    // coarse + fine morsel decomposition must match the seed path.
    for (const Relation* r : {&adapt1, &adapt8, &tree8, &radix8}) {
      if (!(*r == seed_out)) {
        std::printf("FAIL: %s output mismatch vs seed path\n",
                    shape.name.c_str());
        ok = false;
      }
    }
    for (const int64_t morsel : {int64_t{1024}, int64_t{65536}}) {
      GroupByEngineOptions options;
      options.pool = &pool8;
      options.morsel_rows = morsel;
      const StatusOr<Relation> r = GroupByAggregateParallel(
          shape.data, shape.group_cols, shape.value_col, shape.op, options);
      if (!r.ok() || !(r.value() == seed_out)) {
        std::printf("FAIL: %s output mismatch at morsel_rows=%lld\n",
                    shape.name.c_str(), static_cast<long long>(morsel));
        ok = false;
      }
    }

    // The CI gate: adaptive at 8 threads never loses to the seed path.
    if (adapt8_ms > seed_ms) {
      std::printf("FAIL: %s adaptive t8 %.1fms slower than seed %.1fms\n",
                  shape.name.c_str(), adapt8_ms, seed_ms);
      ok = false;
    }

    table.AddRow({shape.name, bench::FmtInt(shape.data.size()),
                  bench::FmtInt(seed_out.size()), GroupByStrategyName(chosen),
                  Fmt(seed_ms, 1), Fmt(adapt1_ms, 1), Fmt(adapt8_ms, 1),
                  Fmt(tree8_ms, 1), Fmt(radix8_ms, 1),
                  Fmt(seed_ms / adapt8_ms, 2)});

    json.Set(shape.name + "_rows", shape.data.size());
    json.Set(shape.name + "_groups", seed_out.size());
    json.Set(shape.name + "_chosen", GroupByStrategyName(chosen));
    json.Set(shape.name + "_seed_ms", seed_ms);
    json.Set(shape.name + "_adaptive_t1_ms", adapt1_ms);
    json.Set(shape.name + "_adaptive_t8_ms", adapt8_ms);
    json.Set(shape.name + "_tree_merge_t8_ms", tree8_ms);
    json.Set(shape.name + "_radix_t8_ms", radix8_ms);
    json.Set(shape.name + "_speedup_t8", seed_ms / adapt8_ms);
  }
  table.Print();

  json.Set("gate_ok", ok ? "pass" : "fail");
  json.Write();
  if (!ok) {
    std::printf("\ngroup-by bench gate FAILED\n");
    return 1;
  }
  std::printf("\ngroup-by bench gate passed: adaptive >= seed on every "
              "shape at t=8, outputs bit-identical\n");
  return 0;
}
