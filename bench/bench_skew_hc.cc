// E9 — deck slides 47-51: SkewHC's residual-query decomposition.
//
// Part 1 regenerates the slide-48..50 triangle table analytically: for
// each heavy/light combination of (x, y, z), the residual query, its τ*,
// the load N/p^{1/τ*}, and the share grid.
// Part 2 executes SkewHcJoin on data with a heavy z attribute and prints
// the residuals it actually ran with their measured sizes, plus the
// slide-51 summary (triangle & bowtie: ψ* loads under skew).

#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "mpc/cluster.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "query/hypergraph_lp.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::Fmt;
using bench::FmtInt;
using bench::Table;

// Residual triangle query for a heavy set: atoms reduced to light vars.
ConjunctiveQuery ResidualTriangle(bool hx, bool hy, bool hz,
                                  bool* all_heavy) {
  const bool heavy[3] = {hx, hy, hz};
  std::vector<int> light;
  std::vector<int> index(3, -1);
  const char* names[] = {"x", "y", "z"};
  std::vector<std::string> light_names;
  for (int v = 0; v < 3; ++v) {
    if (!heavy[v]) {
      index[v] = static_cast<int>(light.size());
      light.push_back(v);
      light_names.push_back(names[v]);
    }
  }
  *all_heavy = light.empty();
  if (light.empty()) {
    // Degenerate: return a placeholder (unused).
    return ConjunctiveQuery::Triangle();
  }
  const int atom_vars[3][2] = {{0, 1}, {1, 2}, {2, 0}};
  const char* atom_names[] = {"R", "S", "T"};
  std::vector<Atom> atoms;
  for (int j = 0; j < 3; ++j) {
    Atom atom;
    atom.name = atom_names[j];
    for (int c = 0; c < 2; ++c) {
      if (index[atom_vars[j][c]] >= 0) {
        atom.vars.push_back(index[atom_vars[j][c]]);
      }
    }
    if (!atom.vars.empty()) atoms.push_back(std::move(atom));
  }
  return ConjunctiveQuery::Make(light_names, atoms);
}

void AnalyticTable() {
  bench::Banner(
      "E9 (slides 48-50): triangle residual-query table, N per atom, "
      "threshold N/p");
  Table table({"x", "y", "z", "residual query", "tau*", "L",
               "shares p1 x p2 x p3"});
  const int p = 64;
  const int64_t n = 1 << 18;
  for (int mask = 0; mask < 8; ++mask) {
    const bool hx = mask & 1;
    const bool hy = mask & 2;
    const bool hz = mask & 4;
    bool all_heavy = false;
    const ConjunctiveQuery residual =
        ResidualTriangle(hx, hy, hz, &all_heavy);
    std::string query_text = "(all heavy: filter-only lookup)";
    std::string tau_text = "-";
    std::string load_text = "O(1)";
    std::string shares_text = "1 x 1 x 1";
    if (!all_heavy) {
      query_text = residual.ToString();
      const auto tau = FractionalEdgePacking(residual);
      if (tau.ok()) {
        tau_text = Fmt(tau->value, 2);
        const double load = static_cast<double>(n) /
                            std::pow(p, 1.0 / tau->value);
        load_text = "N/p^{" + Fmt(1.0 / tau->value, 2) +
                    "} = " + Fmt(load, 0);
      }
      std::vector<int64_t> sizes(residual.num_atoms(), n);
      const IntegerShares shares = ComputeShares(residual, sizes, p);
      // Map light shares back onto (x, y, z) with heavy -> 1.
      int share_xyz[3] = {1, 1, 1};
      int li = 0;
      const bool heavy[3] = {hx, hy, hz};
      for (int v = 0; v < 3; ++v) {
        if (!heavy[v]) share_xyz[v] = shares.shares[li++];
      }
      shares_text = std::to_string(share_xyz[0]) + " x " +
                    std::to_string(share_xyz[1]) + " x " +
                    std::to_string(share_xyz[2]);
    }
    table.AddRow({hx ? "heavy" : "light", hy ? "heavy" : "light",
                  hz ? "heavy" : "light", query_text, tau_text, load_text,
                  shares_text});
  }
  table.Print();
}

void MeasuredRun() {
  bench::Banner(
      "E9 (slide 47-51): measured SkewHC on a triangle with heavy z "
      "(z = 7 in S and T), N=6000 per atom, p=64");
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const int p = 64;
  const int64_t n = 6000;
  Rng data_rng(61);
  std::vector<Relation> atoms = {
      GenerateUniform(data_rng, n, 2, 4000),  // R(x,y).
      GenerateConstantColumn(n, 1, 7),        // S(y,z): z heavy.
      GenerateConstantColumn(n, 0, 7),        // T(z,x): z heavy.
  };
  std::vector<DistRelation> dist;
  for (const Relation& r : atoms) dist.push_back(DistRelation::Scatter(r, p));

  Cluster cluster(p, 7);
  const SkewHcResult result = SkewHcJoin(cluster, q, dist);

  Table table({"heavy vars", "shares", "class sizes (R,S,T)", "outputs"});
  for (const ResidualInfo& info : result.residuals) {
    std::string heavy;
    for (int v : info.heavy_vars) heavy += q.var_name(v) + " ";
    if (heavy.empty()) heavy = "(none)";
    std::string shares;
    for (size_t v = 0; v < info.shares.size(); ++v) {
      if (v > 0) shares += "x";
      shares += std::to_string(info.shares[v]);
    }
    std::string sizes;
    for (size_t j = 0; j < info.class_sizes.size(); ++j) {
      if (j > 0) sizes += ", ";
      sizes += std::to_string(info.class_sizes[j]);
    }
    table.AddRow({heavy, shares, sizes, FmtInt(info.output_size)});
  }
  table.Print();

  // Compare against a plain HyperCube forced to treat z as if light.
  Cluster hc_cluster(p, 7);
  HyperCubeOptions options;
  options.forced_shares = {4, 4, 4};
  HyperCubeJoin(hc_cluster, q, dist, options);
  const bool correct =
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms));
  std::printf(
      "\nSkewHC L = %lld (1 round)  vs plain HyperCube(4x4x4) L = %lld; "
      "theory: N/p^{1/2} = %s vs N/p^{1/3}-ish for the skew-blind grid. "
      "Output correct: %s\n",
      static_cast<long long>(cluster.cost_report().MaxLoadTuples()),
      static_cast<long long>(hc_cluster.cost_report().MaxLoadTuples()),
      Fmt(static_cast<double>(3 * n) / std::sqrt(p), 0).c_str(),
      correct ? "yes" : "NO");
}

void SummaryTable() {
  bench::Banner(
      "E9 (slide 51): 1-round loads — skew-free (tau*) vs skewed (psi*)");
  Table table({"query", "tau*", "no-skew L", "psi*", "skew L"});
  struct Row {
    const char* name;
    ConjunctiveQuery query;
    double psi;
  };
  // ψ*(Q) = max over heavy sets of τ*(residual): 2 for both (slide 51).
  const Row rows[] = {
      {"triangle", ConjunctiveQuery::Triangle(), 2.0},
      {"bowtie R(x),S(x,y),T(y)", ConjunctiveQuery::Bowtie(), 2.0},
  };
  for (const Row& row : rows) {
    const auto tau = FractionalEdgePacking(row.query);
    table.AddRow({row.name, Fmt(tau.ok() ? tau->value : -1, 2),
                  "IN/p^{1/" + Fmt(tau.ok() ? tau->value : 1, 2) + "}",
                  Fmt(row.psi, 2), "IN/p^{1/" + Fmt(row.psi, 2) + "}"});
  }
  table.Print();
}

}  // namespace
}  // namespace mpcqp

int main() {
  mpcqp::AnalyticTable();
  mpcqp::MeasuredRun();
  mpcqp::SummaryTable();
  return 0;
}
