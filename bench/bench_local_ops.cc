// Microbenchmarks (google-benchmark) for the single-node operators that
// every distributed algorithm runs after its shuffle: local joins, sorts,
// semijoins, and the generic multiway evaluator. These are wall-clock
// benchmarks (the MPC model treats local compute as free; here we verify
// it is also cheap in practice).

#include <benchmark/benchmark.h>

#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

Relation MakeInput(int64_t rows, uint64_t domain, uint64_t seed) {
  Rng rng(seed);
  return GenerateUniform(rng, rows, 2, domain);
}

void BM_HashJoinLocal(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Relation left = MakeInput(n, n, 1);
  const Relation right = MakeInput(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashJoinLocal(left, right, {1}, {0}));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_HashJoinLocal)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_SortMergeJoinLocal(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Relation left = MakeInput(n, n, 1);
  const Relation right = MakeInput(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortMergeJoinLocal(left, right, {1}, {0}));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SortMergeJoinLocal)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_SemijoinLocal(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Relation left = MakeInput(n, n, 1);
  const Relation right = MakeInput(n / 4, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SemijoinLocal(left, right, {1}, {0}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SemijoinLocal)->Arg(1 << 10)->Arg(1 << 16);

void BM_SortRows(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Relation input = MakeInput(n, 1u << 31, 3);
  for (auto _ : state) {
    Relation copy = input;
    copy.SortRowsBy({0});
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SortRows)->Arg(1 << 10)->Arg(1 << 16);

void BM_Dedup(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Relation input = MakeInput(n, 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dedup(input));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dedup)->Arg(1 << 10)->Arg(1 << 16);

void BM_EvalTriangleLocal(benchmark::State& state) {
  const int64_t n = state.range(0);
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(5);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(
        rng, n, 2, static_cast<uint64_t>(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalJoinLocal(q, atoms));
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_EvalTriangleLocal)->Arg(1 << 8)->Arg(1 << 11);

void BM_GroupBySum(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Relation input = MakeInput(n, 256, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupBySum(input, {0}, 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupBySum)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace
}  // namespace mpcqp

BENCHMARK_MAIN();
