// Local-compute kernel throughput: the flat arena KeyIndex and the
// parallel sort kernel against embedded "legacy" baselines — the seed
// node-based unordered_map index and the serial std::sort row sorter.
// Both baselines are kept here verbatim (not in src/) so the speedup of
// the kernel overhaul stays measurable release over release, exactly like
// bench_exchange does for the data plane.
//
// Inputs are p=64-scale: the row counts a single server sees in the
// 64-server experiments after a shuffle. Emits BENCH_local_ops.json with
// <kernel>_t<T>_{new,legacy}_tps and _speedup keys; CI runs this binary
// as a Release smoke test and fails if the flat KeyIndex loses to the
// legacy index at 8 threads.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/parallel_sort.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "relation/key_index.h"
#include "relation/relation.h"
#include "relation/relation_view.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

using bench::BenchJson;
using bench::Fmt;
using bench::Table;
using bench::WallTimer;

// The seed index, verbatim: bucket hash -> list of per-key row-index
// groups, one heap node per bucket and per group.
class LegacyKeyIndex {
 public:
  LegacyKeyIndex(RelationView view, std::vector<int> key_cols)
      : view_(view), key_cols_(std::move(key_cols)) {
    std::vector<Value> key(key_cols_.size());
    for (int64_t r = 0; r < view_.size(); ++r) {
      const Value* row = view_.row(r);
      for (size_t i = 0; i < key_cols_.size(); ++i) key[i] = row[key_cols_[i]];
      const uint64_t h = HashKey(key.data());
      std::vector<std::vector<int64_t>>& groups = buckets_[h];
      bool placed = false;
      for (std::vector<int64_t>& group : groups) {
        const Value* rep = view_.row(group.front());
        bool same = true;
        for (int c : key_cols_) {
          if (rep[c] != row[c]) {
            same = false;
            break;
          }
        }
        if (same) {
          group.push_back(r);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({r});
    }
  }

  const std::vector<int64_t>& Lookup(const Value* key) const {
    const auto it = buckets_.find(HashKey(key));
    if (it == buckets_.end()) return empty_;
    for (const std::vector<int64_t>& group : it->second) {
      const Value* rep = view_.row(group.front());
      bool same = true;
      for (size_t i = 0; i < key_cols_.size(); ++i) {
        if (rep[key_cols_[i]] != key[i]) {
          same = false;
          break;
        }
      }
      if (same) return group;
    }
    return empty_;
  }

  int64_t num_distinct_keys() const {
    int64_t n = 0;
    for (const auto& [h, groups] : buckets_) {
      n += static_cast<int64_t>(groups.size());
    }
    return n;
  }

 private:
  uint64_t HashKey(const Value* key) const {
    static const HashFunction kHash(0x1d8af066u);  // == KeyIndex's seed.
    return kHash.HashSpan(key, static_cast<int>(key_cols_.size()));
  }

  RelationView view_;
  std::vector<int> key_cols_;
  std::unordered_map<uint64_t, std::vector<std::vector<int64_t>>> buckets_;
  std::vector<int64_t> empty_;
};

// The seed row sorter, verbatim: serial index sort + serial gather.
void LegacySortRows(int arity, std::vector<Value>& data,
                    const std::vector<int>& key_cols) {
  const int64_t n = static_cast<int64_t>(data.size()) / arity;
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const Value* ra = data.data() + static_cast<size_t>(a) * arity;
    const Value* rb = data.data() + static_cast<size_t>(b) * arity;
    for (int c : key_cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    for (int c = 0; c < arity; ++c) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });
  std::vector<Value> sorted;
  sorted.reserve(data.size());
  for (int64_t i : order) {
    const Value* r = data.data() + static_cast<size_t>(i) * arity;
    sorted.insert(sorted.end(), r, r + arity);
  }
  data = std::move(sorted);
}

// Build + full probe pass through the flat index; returns the probe
// checksum (sum of group sizes) so the work cannot be optimized away.
int64_t RunNewKeyIndex(const Relation& build, const Relation& probe,
                       ThreadPool* pool) {
  KeyIndex index(build, {0}, pool);
  int64_t matched = 0;
  for (int64_t i = 0; i < probe.size(); ++i) {
    matched += static_cast<int64_t>(index.Lookup(probe.row(i)).size());
  }
  return matched;
}

int64_t RunLegacyKeyIndex(const Relation& build, const Relation& probe) {
  LegacyKeyIndex index(build, {0});
  int64_t matched = 0;
  for (int64_t i = 0; i < probe.size(); ++i) {
    matched += static_cast<int64_t>(index.Lookup(probe.row(i)).size());
  }
  return matched;
}

// Best-of-`reps` throughput in rows/sec.
template <typename Fn>
double MeasureTps(int64_t rows, int reps, const Fn& run) {
  double best_ms = -1;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    run();
    const double ms = timer.ElapsedMs();
    if (best_ms < 0 || ms < best_ms) best_ms = ms;
  }
  return static_cast<double>(rows) / (best_ms / 1000.0);
}

}  // namespace
}  // namespace mpcqp

int main() {
  using namespace mpcqp;
  constexpr int kReps = 3;
  constexpr int64_t kRows = 400000;  // p=64-scale local fragment work.
  const int kThreads[] = {1, 8};

  bench::Banner("Local-compute kernels (rows/sec, best of 3)");
  bench::Table table(
      {"kernel", "threads", "new tps", "legacy tps", "speedup"});
  bench::BenchJson json("local_ops");
  json.Set("reps", kReps);
  json.Set("rows", kRows);

  // Build side: ~4 rows per key; probe side: same domain, ~70% hit rate.
  Rng rng(1234);
  const Relation build = GenerateUniform(rng, kRows, 2, kRows / 4);
  const Relation probe = GenerateUniform(rng, kRows, 2, (kRows / 4) * 3 / 2);
  const Relation unsorted = GenerateUniform(rng, kRows, 2, 1u << 31);

  // Sanity: the flat index and the legacy index must agree on the probe
  // checksum and the distinct-key count before any timing matters.
  {
    ThreadPool pool(8);
    const int64_t got = RunNewKeyIndex(build, probe, &pool);
    const int64_t want = RunLegacyKeyIndex(build, probe);
    KeyIndex index(build, {0}, &pool);
    LegacyKeyIndex legacy(build, {0});
    if (got != want ||
        index.num_distinct_keys() != legacy.num_distinct_keys()) {
      std::fprintf(stderr,
                   "FATAL: KeyIndex new/legacy disagree "
                   "(matched %lld vs %lld, keys %lld vs %lld)\n",
                   static_cast<long long>(got), static_cast<long long>(want),
                   static_cast<long long>(index.num_distinct_keys()),
                   static_cast<long long>(legacy.num_distinct_keys()));
      return 1;
    }
  }
  {
    std::vector<Value> a = unsorted.data();
    std::vector<Value> b = unsorted.data();
    ThreadPool pool(8);
    SortRowsBuffer(&pool, 2, a, {0});
    LegacySortRows(2, b, {0});
    if (a != b) {
      std::fprintf(stderr, "FATAL: sort kernel new/legacy outputs differ\n");
      return 1;
    }
  }

  double key_index_speedup_t8 = 0;
  for (const int threads : kThreads) {
    ThreadPool pool(threads);

    // KeyIndex: one build plus one full probe pass per repetition.
    const double new_tps = MeasureTps(2 * kRows, kReps, [&] {
      RunNewKeyIndex(build, probe, &pool);
    });
    const double legacy_tps = MeasureTps(2 * kRows, kReps, [&] {
      RunLegacyKeyIndex(build, probe);
    });
    const double speedup = new_tps / legacy_tps;
    if (threads == 8) key_index_speedup_t8 = speedup;
    table.AddRow({"key_index", std::to_string(threads),
                  bench::Fmt(new_tps / 1e6, 2) + "M",
                  bench::Fmt(legacy_tps / 1e6, 2) + "M",
                  bench::Fmt(speedup, 2) + "x"});
    const std::string key = "key_index_t" + std::to_string(threads);
    json.Set(key + "_new_tps", new_tps);
    json.Set(key + "_legacy_tps", legacy_tps);
    json.Set(key + "_speedup", speedup);

    // Sort kernel: one full row sort per repetition (the copy into the
    // working buffer is inside the timed region for both sides alike).
    const double sort_new_tps = MeasureTps(kRows, kReps, [&] {
      std::vector<Value> data = unsorted.data();
      SortRowsBuffer(&pool, 2, data, {0});
    });
    const double sort_legacy_tps = MeasureTps(kRows, kReps, [&] {
      std::vector<Value> data = unsorted.data();
      LegacySortRows(2, data, {0});
    });
    const double sort_speedup = sort_new_tps / sort_legacy_tps;
    table.AddRow({"sort", std::to_string(threads),
                  bench::Fmt(sort_new_tps / 1e6, 2) + "M",
                  bench::Fmt(sort_legacy_tps / 1e6, 2) + "M",
                  bench::Fmt(sort_speedup, 2) + "x"});
    const std::string skey = "sort_t" + std::to_string(threads);
    json.Set(skey + "_new_tps", sort_new_tps);
    json.Set(skey + "_legacy_tps", sort_legacy_tps);
    json.Set(skey + "_speedup", sort_speedup);
  }

  table.Print();
  json.Write();

  // CI gate: the flat index must not lose to the node-based one with the
  // full pool available.
  if (key_index_speedup_t8 < 1.0) {
    std::fprintf(stderr,
                 "FATAL: flat KeyIndex slower than legacy at 8 threads "
                 "(%.2fx)\n",
                 key_index_speedup_t8);
    return 1;
  }
  return 0;
}
