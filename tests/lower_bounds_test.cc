#include <gtest/gtest.h>

#include <cmath>

#include "mpc/cluster.h"
#include "multiway/hypercube.h"
#include "query/lower_bounds.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

TEST(LowerBoundTest, OneRoundBoundMatchesHyperCubeTheory) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const auto lb = OneRoundLoadLowerBound(q, {4096, 4096, 4096}, 64);
  ASSERT_TRUE(lb.ok());
  // N / p^{2/3} = 4096 / 16.
  EXPECT_NEAR(*lb, 256.0, 1.0);
}

TEST(LowerBoundTest, MeasuredHyperCubeRespectsOneRoundBound) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(1);
  const int64_t n = 4096;
  std::vector<DistRelation> atoms;
  std::vector<int64_t> sizes;
  const int p = 27;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(
        DistRelation::Scatter(GenerateMatchingDegree(rng, n, 1), p));
    sizes.push_back(n);
  }
  Cluster cluster(p, 3);
  HyperCubeJoin(cluster, q, atoms);
  const auto lb = OneRoundLoadLowerBound(q, sizes, p);
  ASSERT_TRUE(lb.ok());
  EXPECT_GE(static_cast<double>(cluster.cost_report().MaxLoadTuples()),
            *lb * 0.99);
}

TEST(LowerBoundTest, MultiRoundBoundShapes) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();  // rho* = 3/2.
  const int64_t out = 1 << 18;
  const auto one_round = MultiRoundLoadLowerBound(q, out, 64, 1);
  const auto four_rounds = MultiRoundLoadLowerBound(q, out, 64, 4);
  ASSERT_TRUE(one_round.ok());
  ASSERT_TRUE(four_rounds.ok());
  // (OUT/p)^{2/3} / r.
  EXPECT_NEAR(*one_round, std::pow(static_cast<double>(out) / 64, 2.0 / 3.0),
              1.0);
  EXPECT_NEAR(*four_rounds, *one_round / 4, 1e-6);
}

TEST(LowerBoundTest, MultiRoundBoundEdgeCases) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  EXPECT_EQ(*MultiRoundLoadLowerBound(q, 0, 8, 2), 0.0);
  EXPECT_FALSE(MultiRoundLoadLowerBound(q, 100, 0, 2).ok());
  EXPECT_FALSE(MultiRoundLoadLowerBound(q, 100, 8, 0).ok());
  EXPECT_FALSE(MultiRoundLoadLowerBound(q, -1, 8, 1).ok());
}

TEST(LowerBoundTest, SortBounds) {
  // r >= log_L N; C >= N log_L N.
  EXPECT_NEAR(SortRoundsLowerBound(1 << 20, 1 << 10), 2.0, 1e-9);
  EXPECT_NEAR(SortCommLowerBound(1 << 20, 1 << 10),
              2.0 * (1 << 20), 1e-3);
  // More load, fewer required rounds.
  EXPECT_LT(SortRoundsLowerBound(1 << 20, 1 << 15),
            SortRoundsLowerBound(1 << 20, 1 << 5));
}

}  // namespace
}  // namespace mpcqp
