#include <gtest/gtest.h>

#include <cmath>

#include "query/ghd.h"
#include "query/query.h"

namespace mpcqp {
namespace {

TEST(AcyclicityTest, PathsAndStarsAreAcyclic) {
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Path(1)));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Path(5)));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Star(4)));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::TwoWayJoin()));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::Bowtie()));
  EXPECT_TRUE(IsAcyclic(ConjunctiveQuery::CartesianProduct()));
}

TEST(AcyclicityTest, TriangleAndCyclesAreCyclic) {
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery::Triangle()));
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery::Cycle(4)));
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery::Cycle(5)));
}

TEST(AcyclicityTest, TriangleWithCoveringAtomIsAcyclic) {
  // Adding U(x,y,z) makes the triangle α-acyclic.
  const auto q =
      ConjunctiveQuery::Parse("R(x,y), S(y,z), T(z,x), U(x,y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(IsAcyclic(*q));
}

TEST(JoinTreeTest, BuildsAndValidatesForAcyclicQueries) {
  for (const ConjunctiveQuery& q :
       {ConjunctiveQuery::Path(6), ConjunctiveQuery::Star(5),
        ConjunctiveQuery::Bowtie()}) {
    const auto tree = BuildJoinTree(q);
    ASSERT_TRUE(tree.ok()) << q.ToString();
    EXPECT_TRUE(tree->Validate(q).ok()) << q.ToString();
    EXPECT_EQ(tree->width(), 1);
    EXPECT_EQ(tree->num_nodes(), q.num_atoms());
  }
}

TEST(JoinTreeTest, RejectsCyclicQueries) {
  EXPECT_FALSE(BuildJoinTree(ConjunctiveQuery::Triangle()).ok());
  EXPECT_FALSE(BuildJoinTree(ConjunctiveQuery::Cycle(6)).ok());
}

TEST(JoinTreeTest, DisconnectedQueryStillBuildsATree) {
  const ConjunctiveQuery q = ConjunctiveQuery::CartesianProduct();
  const auto tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Validate(q).ok());
}

TEST(GhdTest, ChainGhdShape) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(5);
  const Ghd ghd = ChainGhd(q);
  EXPECT_TRUE(ghd.Validate(q).ok());
  EXPECT_EQ(ghd.width(), 1);
  EXPECT_EQ(ghd.depth(), 5);
  EXPECT_EQ(ghd.LevelsFromRoot().size(), 5u);
}

TEST(GhdTest, StarGhdShape) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  const Ghd ghd = StarGhd(q);
  EXPECT_TRUE(ghd.Validate(q).ok());
  EXPECT_EQ(ghd.width(), 1);
  EXPECT_EQ(ghd.depth(), 2);
}

TEST(GhdTest, FlatGhdShape) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(6);
  const Ghd ghd = FlatGhd(q);
  EXPECT_TRUE(ghd.Validate(q).ok());
  EXPECT_EQ(ghd.width(), 6);
  EXPECT_EQ(ghd.depth(), 1);
}

TEST(GhdTest, FlatGhdWorksForCyclicQueries) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const Ghd ghd = FlatGhd(q);
  EXPECT_TRUE(ghd.Validate(q).ok());
}

TEST(GhdTest, BalancedPathGhdWidthAndDepth) {
  for (int n : {1, 2, 3, 4, 7, 15, 31, 64}) {
    const ConjunctiveQuery q = ConjunctiveQuery::Path(n);
    const Ghd ghd = BalancedPathGhd(q);
    EXPECT_TRUE(ghd.Validate(q).ok()) << "n=" << n;
    EXPECT_LE(ghd.width(), 3) << "n=" << n;
    // Depth O(log n): each recursion halves the interval.
    const int bound = 2 * static_cast<int>(std::log2(std::max(2, n))) + 2;
    EXPECT_LE(ghd.depth(), bound) << "n=" << n;
  }
}

TEST(GhdTest, GroupedPathGhdSweepsTheWidthFrontier) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(12);
  for (int w : {1, 2, 3, 4, 6, 12, 20}) {
    const Ghd ghd = GroupedPathGhd(q, w);
    EXPECT_TRUE(ghd.Validate(q).ok()) << "w=" << w;
    EXPECT_EQ(ghd.width(), std::min(w, 12)) << "w=" << w;
    EXPECT_EQ(ghd.depth(), (12 + w - 1) / w) << "w=" << w;
  }
  // Extremes coincide with the dedicated constructors' shapes.
  EXPECT_EQ(GroupedPathGhd(q, 1).depth(), ChainGhd(q).depth());
  EXPECT_EQ(GroupedPathGhd(q, 12).depth(), FlatGhd(q).depth());
}

TEST(GhdTest, ValidateCatchesUnassignedAtom) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  GhdNode only;
  only.atoms = {0};  // Atom 1 missing.
  only.parent = -1;
  const Ghd ghd = Ghd::FromNodes(q, {only});
  EXPECT_FALSE(ghd.Validate(q).ok());
}

TEST(GhdTest, ValidateCatchesRunningIntersectionViolation) {
  // Path-3 with the middle atom at the root and the two end atoms as its
  // children: x1 appears in nodes {R1} and {R2}(root) - fine; but putting
  // R1 and R3 as children of R2 is valid. Instead chain R1 -> R3 -> R2:
  // variable x1 appears in R1's and R2's bags but not R3's (the middle of
  // the chain) - violates RIP.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  std::vector<GhdNode> nodes(3);
  nodes[0].atoms = {0};  // R1(x0,x1) root.
  nodes[0].parent = -1;
  nodes[1].atoms = {2};  // R3(x2,x3) child of R1.
  nodes[1].parent = 0;
  nodes[2].atoms = {1};  // R2(x1,x2) child of R3.
  nodes[2].parent = 1;
  const Ghd ghd = Ghd::FromNodes(q, nodes);
  EXPECT_FALSE(ghd.Validate(q).ok());
}

TEST(GhdTest, LevelsPartitionNodes) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(7);
  const Ghd ghd = BalancedPathGhd(q);
  int total = 0;
  for (const auto& level : ghd.LevelsFromRoot()) {
    total += static_cast<int>(level.size());
  }
  EXPECT_EQ(total, ghd.num_nodes());
}

}  // namespace
}  // namespace mpcqp
