// Thread-count invariance: every algorithm in the library must produce
// bit-identical outputs AND a bit-identical CostReport no matter how many
// OS threads execute the rounds. This is the lock on the determinism
// contract of ClusterOptions::num_threads (DESIGN.md, "Execution model"):
// per-fragment row order, per-round per-server tuple/value counts, and
// round labels are all compared exactly against the single-threaded run.
//
// The morsel-driven exchange adds a second axis to the contract: results
// must also be invariant under ClusterOptions::morsel_rows, the grain of
// the (source, row-range) tiles both exchange phases are scheduled in.
// The MorselBoundary tests sweep thread counts x morsel sizes over the
// tiling edge cases (empty fragments, fragments smaller than one morsel,
// p = 1, more threads than rows, all rows on one source).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "acyclic/gym.h"
#include "common/simd.h"
#include "agg/aggregate.h"
#include "join/broadcast_join.h"
#include "join/cartesian.h"
#include "join/hash_join.h"
#include "join/semi_join.h"
#include "join/skew_join.h"
#include "join/sort_join.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "mpc/stats.h"
#include "multiway/bigjoin.h"
#include "multiway/hypercube.h"
#include "query/ghd.h"
#include "query/query.h"
#include "relation/relation_ops.h"
#include "sort/multi_round_sort.h"
#include "sort/psrs.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// Force real helper threads before the first cluster runs: on a small CI
// machine the spare-core cap would fold every parallel loop down to one
// participant, and the multi-threaded runs below would exercise nothing
// the t=1 baseline doesn't. Scheduling-only — results must be (and are)
// identical either way; that is what this file proves.
[[maybe_unused]] const bool kForceHelpers = [] {
  ::setenv("MPCQP_LOOP_HELPERS", "7", /*overwrite=*/0);
  return true;
}();

constexpr int kServers = 8;
constexpr uint64_t kSeed = 42;
const int kThreadCounts[] = {1, 2, 8};
// Tiny (splits even small fragments into many morsels) vs. default.
const int64_t kMorselSizes[] = {3, ClusterOptions{}.morsel_rows};

struct RunResult {
  std::vector<Relation> fragments;
  CostReport report;
};

// Runs `body` on a fresh cluster with the given thread count (and
// optionally morsel size / server count) and captures the output fragments
// plus the full cost report.
RunResult RunWith(int threads,
                  const std::function<DistRelation(Cluster&)>& body,
                  int64_t morsel_rows = ClusterOptions{}.morsel_rows,
                  int servers = kServers) {
  ClusterOptions options;
  options.num_threads = threads;
  options.morsel_rows = morsel_rows;
  Cluster cluster(servers, kSeed, options);
  const DistRelation out = body(cluster);
  RunResult result;
  for (int s = 0; s < out.num_servers(); ++s) {
    result.fragments.push_back(out.fragment(s));
  }
  result.report = cluster.cost_report();
  return result;
}

void ExpectSameReport(const CostReport& base, const CostReport& got,
                      int threads) {
  ASSERT_EQ(base.num_rounds(), got.num_rounds()) << "threads=" << threads;
  for (int r = 0; r < base.num_rounds(); ++r) {
    const RoundCost& b = base.rounds()[r];
    const RoundCost& g = got.rounds()[r];
    EXPECT_EQ(b.label, g.label) << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.tuples_received, g.tuples_received)
        << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.values_received, g.values_received)
        << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.tuples_sent, g.tuples_sent)
        << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.values_sent, g.values_sent)
        << "round " << r << " threads=" << threads;
  }
}

// Runs `body` once per thread count and checks outputs and costs against
// the single-threaded baseline, fragment by fragment and round by round.
void ExpectThreadCountInvariant(
    const std::function<DistRelation(Cluster&)>& body) {
  const RunResult base = RunWith(1, body);
  EXPECT_GT(base.report.num_rounds(), 0) << "algorithm metered nothing";
  for (const int threads : kThreadCounts) {
    const RunResult got = RunWith(threads, body);
    ASSERT_EQ(base.fragments.size(), got.fragments.size());
    for (size_t s = 0; s < base.fragments.size(); ++s) {
      EXPECT_EQ(base.fragments[s], got.fragments[s])
          << "fragment " << s << " differs at threads=" << threads;
    }
    ExpectSameReport(base.report, got.report, threads);
  }
}

// Runs `body` across thread counts x morsel sizes and checks outputs and
// costs against the single-threaded default-morsel baseline.
void ExpectMorselInvariant(const std::function<DistRelation(Cluster&)>& body,
                           int servers = kServers) {
  const RunResult base =
      RunWith(1, body, ClusterOptions{}.morsel_rows, servers);
  EXPECT_GT(base.report.num_rounds(), 0) << "body metered nothing";
  for (const int threads : kThreadCounts) {
    for (const int64_t morsel_rows : kMorselSizes) {
      const RunResult got = RunWith(threads, body, morsel_rows, servers);
      ASSERT_EQ(base.fragments.size(), got.fragments.size());
      for (size_t s = 0; s < base.fragments.size(); ++s) {
        EXPECT_EQ(base.fragments[s], got.fragments[s])
            << "fragment " << s << " differs at threads=" << threads
            << " morsel_rows=" << morsel_rows;
      }
      ExpectSameReport(base.report, got.report, threads);
    }
  }
}

// Chains every exchange router over `in` so one morsel sweep covers the
// single-destination path (hash/range), the shared-payload path
// (broadcast), the multicast path (0..2 copies per tuple, one of them
// context-derived), and the gather path.
DistRelation ExerciseAllRouters(Cluster& cluster, const DistRelation& in) {
  const int p = cluster.num_servers();
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation hashed =
      HashPartition(cluster, in, {0}, hash, "morsel: hash");
  const DistRelation wide = Broadcast(cluster, hashed, "morsel: broadcast");
  std::vector<Value> splitters;
  for (int i = 1; i < p; ++i) splitters.push_back(i * 8);
  const DistRelation ranged =
      RangePartition(cluster, wide, 0, splitters, "morsel: range");
  const DistRelation multi = RouteWithContext(
      cluster, ranged,
      [p](const RouteContext& ctx, const Value* row, std::vector<int>& dests) {
        if (row[0] % 3 == 0) return;  // Dropped tuples.
        dests.push_back(static_cast<int>(row[0] % p));
        if (row[0] % 3 == 1) {  // A second, context-derived copy.
          dests.push_back(static_cast<int>((ctx.src + ctx.row) % p));
        }
      },
      "morsel: multicast");
  const Relation gathered =
      GatherToServer(cluster, multi, /*dst=*/p / 2, "morsel: gather");
  std::vector<Relation> frags(p, Relation(gathered.arity()));
  frags[p / 2] = gathered;
  return DistRelation::FromFragments(std::move(frags));
}

// Two binary inputs with a mild Zipf skew on the join column: exercises
// both the light (hash) and heavy (grid) paths of the skew-aware join.
void MakeJoinInputs(Relation* left, Relation* right) {
  Rng rng(7);
  *left = GenerateZipf(rng, 600, 2, 40, /*zipf_col=*/0, /*skew=*/1.2);
  *right = GenerateZipf(rng, 600, 2, 40, /*zipf_col=*/0, /*skew=*/1.2);
}

TEST(DeterminismTest, HashJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return ParallelHashJoin(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers), {0},
                            {0});
  });
}

TEST(DeterminismTest, SkewAwareJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(11);
    return SkewAwareJoin(cluster, DistRelation::Scatter(left, kServers),
                         DistRelation::Scatter(right, kServers), 0, 0, rng);
  });
}

TEST(DeterminismTest, SkewAwareJoinMeteredStats) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  SkewJoinOptions options;
  options.metered_statistics = true;
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(11);
    return SkewAwareJoin(cluster, DistRelation::Scatter(left, kServers),
                         DistRelation::Scatter(right, kServers), 0, 0, rng,
                         options);
  });
}

TEST(DeterminismTest, SortJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(13);
    return ParallelSortJoin(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers), 0, 0,
                            rng);
  });
}

TEST(DeterminismTest, CartesianProduct) {
  Rng rng(17);
  const Relation left = GenerateUniform(rng, 120, 2, 50);
  const Relation right = GenerateUniform(rng, 90, 2, 50);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng product_rng(19);
    return CartesianProduct(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers),
                            product_rng);
  });
}

TEST(DeterminismTest, Semijoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return DistributedSemijoin(cluster,
                               DistRelation::Scatter(left, kServers),
                               DistRelation::Scatter(right, kServers), {0},
                               {0});
  });
}

TEST(DeterminismTest, BroadcastSemijoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return BroadcastSemijoin(cluster,
                             DistRelation::Scatter(left, kServers),
                             DistRelation::Scatter(right, kServers), {0},
                             {0});
  });
}

// Broadcast-heavy: the replicated side is p copy-on-write handles to one
// shared payload, probed concurrently by the local joins.
TEST(DeterminismTest, BroadcastJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return BroadcastJoin(cluster, DistRelation::Scatter(left, kServers),
                         DistRelation::Scatter(right, kServers), {0}, {0});
  });
}

// A receiver that mutates its broadcast copy must detach from the shared
// payload without perturbing the other receivers — at every thread count.
TEST(DeterminismTest, WriteAfterBroadcastDetaches) {
  Rng rng(43);
  const Relation input = GenerateUniform(rng, 300, 2, 100);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    DistRelation everywhere =
        Broadcast(cluster, DistRelation::Scatter(input, kServers),
                  "detach test: broadcast");
    // All receivers share one payload before any write.
    for (int s = 1; s < kServers; ++s) {
      EXPECT_TRUE(
          everywhere.fragment(s).SharesPayloadWith(everywhere.fragment(0)));
    }
    // Concurrent writers: even servers sort their copy in place, odd
    // servers append a sentinel row. Each write detaches its handle.
    cluster.pool().ParallelFor(kServers, [&](int64_t s) {
      if (s % 2 == 0) {
        everywhere.fragment(static_cast<int>(s)).SortRowsBy({1});
      } else {
        everywhere.fragment(static_cast<int>(s))
            .AppendRow({static_cast<Value>(s), 7777});
      }
    });
    for (int s = 1; s < kServers; ++s) {
      EXPECT_FALSE(
          everywhere.fragment(s).SharesPayloadWith(everywhere.fragment(0)));
    }
    return everywhere;
  });
}

TEST(DeterminismTest, HyperCubeTriangle) {
  Rng rng(23);
  const Relation edges = GenerateRandomGraph(rng, 60, 500);
  const ConjunctiveQuery q = ConjunctiveQuery::Make(
      {"x", "y", "z"},
      {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    std::vector<DistRelation> atoms(3, DistRelation::Scatter(edges, kServers));
    return HyperCubeJoin(cluster, q, atoms).output;
  });
}

TEST(DeterminismTest, BigJoinTriangle) {
  Rng rng(29);
  const Relation edges = Dedup(GenerateRandomGraph(rng, 50, 400));
  const ConjunctiveQuery q = ConjunctiveQuery::Make(
      {"x", "y", "z"},
      {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    std::vector<DistRelation> atoms(3, DistRelation::Scatter(edges, kServers));
    return BigJoin(cluster, q, atoms).output;
  });
}

TEST(DeterminismTest, PsrsRegularSampling) {
  Rng rng(31);
  const Relation input = GenerateUniform(rng, 800, 2, 1000);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    PsrsOptions options;
    options.key_cols = {0, 1};
    return PsrsSort(cluster, DistRelation::Scatter(input, kServers), options)
        .sorted;
  });
}

TEST(DeterminismTest, PsrsRandomSampling) {
  Rng rng(37);
  const Relation input = GenerateZipf(rng, 800, 2, 200, 0, 1.1);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    PsrsOptions options;
    options.key_cols = {0};
    options.use_sampling = true;
    options.samples_per_server = 12;
    Rng sample_rng(41);
    return PsrsSort(cluster, DistRelation::Scatter(input, kServers), options,
                    &sample_rng)
        .sorted;
  });
}

// Sort-heavy: the final per-server sorts run through the parallel sort
// kernel, whose output must not depend on the thread count.
TEST(DeterminismTest, MultiRoundSort) {
  Rng rng(47);
  const Relation input = GenerateUniform(rng, 900, 2, 500);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng sort_rng(53);
    return MultiRoundSort(cluster, DistRelation::Scatter(input, kServers),
                          /*col=*/0, /*fan_out=*/2, sort_rng)
        .sorted;
  });
}

// Counter-heavy: the per-fragment pre-aggregation and the final sorted
// hitter list exercise the flat counting pass end to end.
TEST(DeterminismTest, DistributedHeavyHitters) {
  Rng rng(59);
  const Relation input = GenerateZipf(rng, 1500, 2, 50, 0, 1.3);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    const std::vector<DistributedHeavyHitter> hitters =
        DetectHeavyHittersDistributed(
            cluster, DistRelation::Scatter(input, kServers), /*col=*/0,
            /*threshold=*/30);
    // Re-encode the (sorted) hitters as a relation so the harness can
    // compare them bit-for-bit across thread counts.
    std::vector<Relation> frags(kServers, Relation(2));
    for (const DistributedHeavyHitter& h : hitters) {
      frags[0].AppendRow({h.value, static_cast<Value>(h.count)});
    }
    return DistRelation::FromFragments(std::move(frags));
  });
}

// The optimized GYM upward phase intersects semijoin copies via per-id
// counting; the intersect survivors must be thread-count invariant.
TEST(DeterminismTest, GymStarOptimized) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng data_rng(61);
  std::vector<Relation> inputs;
  for (int j = 0; j < 4; ++j) {
    inputs.push_back(GenerateUniform(data_rng, 200, 2, 12));
  }
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(67);
    std::vector<DistRelation> atoms;
    for (const Relation& r : inputs) {
      atoms.push_back(DistRelation::Scatter(r, kServers));
    }
    GymOptions options;
    options.optimized = true;
    return GymJoin(cluster, q, StarGhd(q), atoms, rng, options).output;
  });
}

// The invariance also holds for thread counts exceeding the server count
// (idle workers must not perturb anything).
TEST(DeterminismTest, MoreThreadsThanServers) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  auto body = [&](Cluster& cluster) {
    return ParallelHashJoin(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers), {0}, {0});
  };
  const RunResult base = RunWith(1, body);
  const RunResult wide = RunWith(kServers * 2 + 3, body);
  ASSERT_EQ(base.fragments.size(), wide.fragments.size());
  for (size_t s = 0; s < base.fragments.size(); ++s) {
    EXPECT_EQ(base.fragments[s], wide.fragments[s]) << "fragment " << s;
  }
  ExpectSameReport(base.report, wide.report, kServers * 2 + 3);
}

// Mid-sized skewed input through every router: the core morsel-size
// invariance lock (tiny morsels split each fragment ~200 ways).
TEST(DeterminismTest, MorselSizeInvarianceAllRouters) {
  Rng rng(71);
  const Relation input = GenerateZipf(rng, 700, 2, 64, 0, 1.1);
  ExpectMorselInvariant([&](Cluster& cluster) {
    return ExerciseAllRouters(cluster,
                              DistRelation::Scatter(input, kServers));
  });
}

// Half the source fragments are empty: the tiling must skip them without
// perturbing the src-major output order of the survivors.
TEST(DeterminismTest, MorselBoundaryEmptyFragments) {
  Rng rng(73);
  std::vector<Relation> frags(kServers, Relation(2));
  for (int s = 1; s < kServers; s += 2) {
    frags[s] = GenerateUniform(rng, 40 + 13 * s, 2, 30);
  }
  const DistRelation in = DistRelation::FromFragments(std::move(frags));
  ExpectMorselInvariant(
      [&](Cluster& cluster) { return ExerciseAllRouters(cluster, in); });
}

// Every fragment is far smaller than the default morsel: one morsel per
// fragment, and with the tiny size still only a handful.
TEST(DeterminismTest, MorselBoundaryFragmentsSmallerThanOneMorsel) {
  Rng rng(79);
  const Relation input = GenerateUniform(rng, 10, 2, 20);
  ExpectMorselInvariant([&](Cluster& cluster) {
    return ExerciseAllRouters(cluster,
                              DistRelation::Scatter(input, kServers));
  });
}

// p = 1: every router degenerates to a self-copy, which must still be
// metered and tiled identically.
TEST(DeterminismTest, MorselBoundarySingleServer) {
  Rng rng(83);
  const Relation input = GenerateUniform(rng, 200, 2, 20);
  ExpectMorselInvariant(
      [&](Cluster& cluster) {
        return ExerciseAllRouters(cluster, DistRelation::Scatter(input, 1));
      },
      /*servers=*/1);
}

// More threads than input rows: most participants find their deques empty
// immediately and must idle (or steal nothing) without perturbing results.
TEST(DeterminismTest, MorselBoundaryThreadsExceedRows) {
  Rng rng(89);
  const Relation input = GenerateUniform(rng, 5, 2, 20);
  ExpectMorselInvariant([&](Cluster& cluster) {
    return ExerciseAllRouters(cluster,
                              DistRelation::Scatter(input, kServers));
  });
}

// All rows on one source: without morsels this serializes phase 1 and
// phase 2 behind a single per-source task; with them the single fragment
// tiles into ~1000 stealable ranges. Results must not change either way.
TEST(DeterminismTest, MorselBoundarySkewedSingleSource) {
  Rng rng(97);
  std::vector<Relation> frags(kServers, Relation(2));
  frags[0] = GenerateZipf(rng, 3000, 2, 40, 0, 1.4);
  const DistRelation in = DistRelation::FromFragments(std::move(frags));
  ExpectMorselInvariant(
      [&](Cluster& cluster) { return ExerciseAllRouters(cluster, in); });
}

// The adaptive group-by engine runs inside both phases of the distributed
// aggregate (per-fragment combiners, post-shuffle merge). Its strategy
// choice derives only from the data, so output AND cost report must hold
// across thread counts x morsel sizes.
TEST(DeterminismTest, DistributedGroupByAggregate) {
  Rng rng(131);
  const Relation input = GenerateZipf(rng, 4000, 3, 300, 0, 1.2);
  for (const AggregateOp op :
       {AggregateOp::kSum, AggregateOp::kCount, AggregateOp::kMax}) {
    ExpectMorselInvariant([&](Cluster& cluster) {
      return DistributedGroupByAggregate(
                 cluster, DistRelation::Scatter(input, kServers), {0, 1}, 2,
                 op)
          .value();
    });
  }
  // The no-combiner shuffle path routes raw rows through HashPartition.
  ExpectMorselInvariant([&](Cluster& cluster) {
    GroupByOptions options;
    options.use_combiners = false;
    return DistributedGroupByAggregate(cluster,
                                       DistRelation::Scatter(input, kServers),
                                       {0}, 1, AggregateOp::kSum, options)
        .value();
  });
}

// --- Concurrent serving determinism ---
//
// The third axis of the contract (DESIGN.md, "Serving runtime"): with
// several logical clusters ATTACHED TO ONE SHARED POOL, each in-flight
// query's output and CostReport must be bit-identical to its solo run.
// Everything per-query lives in the Cluster (cost shards, the hash-seed
// sequence, metrics), so interleaving morsels from K queries on the same
// workers must be invisible to each of them.

// A mixed bag of per-query workloads — different algorithms, different
// data — so concurrent clusters stress different code paths at once.
std::vector<std::function<DistRelation(Cluster&)>> ConcurrentBodies() {
  std::vector<std::function<DistRelation(Cluster&)>> bodies;
  {
    Rng rng(103);
    const Relation edges = GenerateRandomGraph(rng, 50, 400);
    const ConjunctiveQuery q = ConjunctiveQuery::Make(
        {"x", "y", "z"}, {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
    bodies.push_back([edges, q](Cluster& cluster) {
      std::vector<DistRelation> atoms(
          3, DistRelation::Scatter(edges, cluster.num_servers()));
      return HyperCubeJoin(cluster, q, atoms).output;
    });
  }
  {
    Rng rng(107);
    const Relation left = GenerateZipf(rng, 500, 2, 40, 0, 1.2);
    const Relation right = GenerateZipf(rng, 500, 2, 40, 0, 1.2);
    bodies.push_back([left, right](Cluster& cluster) {
      return ParallelHashJoin(
          cluster, DistRelation::Scatter(left, cluster.num_servers()),
          DistRelation::Scatter(right, cluster.num_servers()), {0}, {0});
    });
  }
  {
    Rng rng(109);
    const Relation left = GenerateZipf(rng, 500, 2, 30, 0, 1.3);
    const Relation right = GenerateZipf(rng, 500, 2, 30, 0, 1.3);
    bodies.push_back([left, right](Cluster& cluster) {
      Rng join_rng(11);
      return SkewAwareJoin(cluster,
                           DistRelation::Scatter(left, cluster.num_servers()),
                           DistRelation::Scatter(right, cluster.num_servers()),
                           0, 0, join_rng);
    });
  }
  {
    Rng rng(113);
    const Relation input = GenerateUniform(rng, 600, 2, 800);
    bodies.push_back([input](Cluster& cluster) {
      PsrsOptions options;
      options.key_cols = {0, 1};
      return PsrsSort(cluster,
                      DistRelation::Scatter(input, cluster.num_servers()),
                      options)
          .sorted;
    });
  }
  {
    Rng rng(115);
    const Relation input = GenerateZipf(rng, 1200, 3, 200, 0, 1.3);
    bodies.push_back([input](Cluster& cluster) {
      return DistributedGroupByAggregate(
                 cluster,
                 DistRelation::Scatter(input, cluster.num_servers()), {0}, 2,
                 AggregateOp::kSum)
          .value();
    });
  }
  return bodies;
}

// Runs each body on its own Cluster attached to `pool` from its own OS
// thread, all truly in flight at once, and returns the per-query results.
std::vector<RunResult> RunConcurrently(
    const std::vector<std::function<DistRelation(Cluster&)>>& bodies,
    const std::shared_ptr<ThreadPool>& pool) {
  std::vector<RunResult> results(bodies.size());
  std::vector<std::thread> clients;
  clients.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    clients.emplace_back([&, i] {
      ClusterOptions options;
      options.shared_pool = pool;
      Cluster cluster(kServers, kSeed, options);
      Cluster::ScopedExecution scope(cluster);
      const DistRelation out = bodies[i](cluster);
      for (int s = 0; s < out.num_servers(); ++s) {
        results[i].fragments.push_back(out.fragment(s));
      }
      results[i].report = cluster.cost_report();
    });
  }
  for (std::thread& t : clients) t.join();
  return results;
}

// K distinct queries on one shared pool, checked fragment-by-fragment and
// round-by-round against their solo runs, at every thread count.
TEST(ConcurrentDeterminismTest, SharedPoolQueriesMatchSoloRuns) {
  const auto bodies = ConcurrentBodies();
  // Solo baselines: each query on its own single-threaded cluster.
  std::vector<RunResult> solo;
  for (const auto& body : bodies) solo.push_back(RunWith(1, body));

  for (const int threads : kThreadCounts) {
    const auto pool = std::make_shared<ThreadPool>(threads);
    const std::vector<RunResult> served = RunConcurrently(bodies, pool);
    ASSERT_EQ(solo.size(), served.size());
    for (size_t i = 0; i < solo.size(); ++i) {
      ASSERT_EQ(solo[i].fragments.size(), served[i].fragments.size())
          << "query " << i << " threads=" << threads;
      for (size_t s = 0; s < solo[i].fragments.size(); ++s) {
        EXPECT_EQ(solo[i].fragments[s], served[i].fragments[s])
            << "query " << i << " fragment " << s
            << " differs at threads=" << threads;
      }
      ExpectSameReport(solo[i].report, served[i].report, threads);
    }
  }
}

// Several clusters running the SAME query concurrently (the stampede
// shape the serving layer coalesces) must also all match the solo run —
// even without coalescing, sharing the pool may not leak state between
// identical queries.
TEST(ConcurrentDeterminismTest, IdenticalQueriesDoNotInterfere) {
  Rng rng(127);
  const Relation left = GenerateZipf(rng, 400, 2, 30, 0, 1.2);
  const Relation right = GenerateZipf(rng, 400, 2, 30, 0, 1.2);
  const auto body = [left, right](Cluster& cluster) {
    Rng join_rng(11);
    return SkewAwareJoin(cluster,
                         DistRelation::Scatter(left, cluster.num_servers()),
                         DistRelation::Scatter(right, cluster.num_servers()),
                         0, 0, join_rng);
  };
  const RunResult solo = RunWith(1, body);

  constexpr int kCopies = 6;
  for (const int threads : kThreadCounts) {
    const auto pool = std::make_shared<ThreadPool>(threads);
    const std::vector<RunResult> served = RunConcurrently(
        std::vector<std::function<DistRelation(Cluster&)>>(kCopies, body),
        pool);
    for (int i = 0; i < kCopies; ++i) {
      ASSERT_EQ(solo.fragments.size(), served[i].fragments.size());
      for (size_t s = 0; s < solo.fragments.size(); ++s) {
        EXPECT_EQ(solo.fragments[s], served[i].fragments[s])
            << "copy " << i << " fragment " << s << " threads=" << threads;
      }
      ExpectSameReport(solo.report, served[i].report, threads);
    }
  }
}

// p large enough to engage the write-combining copy path (p >= 256), for
// both the single-destination and the multicast router: staged + flushed
// rows must land exactly where the direct path would put them.
TEST(DeterminismTest, MorselBoundaryWriteCombiningCopy) {
  static constexpr int kWideServers = 256;
  Rng rng(101);
  const Relation input = GenerateUniform(rng, 6000, 2, 5000);
  ExpectMorselInvariant(
      [&](Cluster& cluster) {
        const HashFunction hash = cluster.NewHashFunction();
        const DistRelation in =
            DistRelation::Scatter(input, kWideServers);
        const DistRelation hashed =
            HashPartition(cluster, in, {0}, hash, "wc: hash");
        return Route(
            cluster, hashed,
            [](const Value* row, std::vector<int>& dests) {
              dests.push_back(static_cast<int>(row[0] % kWideServers));
              dests.push_back(static_cast<int>(row[1] % kWideServers));
            },
            "wc: multicast");
      },
      /*servers=*/kWideServers);
}

// --- Layout invariance ---
//
// The fourth axis of the contract: ClusterOptions::layout selects the
// physical access pattern of the hot kernels (columnar route hashing,
// compacted group-by scans) and must never change outputs, CostReports,
// or strategy choices. The sweeps compare every layout x thread count x
// morsel size against the row-layout single-threaded baseline.

RunResult RunWithLayout(int threads, LayoutMode layout, int64_t morsel_rows,
                        const std::function<DistRelation(Cluster&)>& body) {
  ClusterOptions options;
  options.num_threads = threads;
  options.morsel_rows = morsel_rows;
  options.layout = layout;
  Cluster cluster(kServers, kSeed, options);
  const DistRelation out = body(cluster);
  RunResult result;
  for (int s = 0; s < out.num_servers(); ++s) {
    result.fragments.push_back(out.fragment(s));
  }
  result.report = cluster.cost_report();
  return result;
}

void ExpectLayoutInvariant(
    const std::function<DistRelation(Cluster&)>& body) {
  const RunResult base = RunWithLayout(1, LayoutMode::kRow,
                                       ClusterOptions{}.morsel_rows, body);
  EXPECT_GT(base.report.num_rounds(), 0) << "body metered nothing";
  for (const LayoutMode layout :
       {LayoutMode::kRow, LayoutMode::kColumnar, LayoutMode::kAuto}) {
    for (const int threads : kThreadCounts) {
      for (const int64_t morsel : kMorselSizes) {
        const RunResult got = RunWithLayout(threads, layout, morsel, body);
        ASSERT_EQ(base.fragments.size(), got.fragments.size());
        for (size_t s = 0; s < base.fragments.size(); ++s) {
          EXPECT_EQ(base.fragments[s], got.fragments[s])
              << "fragment " << s << " differs at layout="
              << LayoutModeName(layout) << " threads=" << threads
              << " morsel=" << morsel;
        }
        ExpectSameReport(base.report, got.report, threads);
      }
    }
  }
}

// Wide-arity exchange: rows and arity cross the kAuto route thresholds,
// so all three modes genuinely exercise the extracted-key-column router
// (kRow the fused one), and the shuffled bytes must agree exactly.
TEST(LayoutInvariance, WideExchangeRoute) {
  Rng rng(kSeed);
  const Relation wide = GenerateUniform(rng, 20000, 5, 500);
  ExpectLayoutInvariant([&](Cluster& cluster) {
    const HashFunction hash = cluster.NewHashFunction();
    return HashPartition(cluster,
                         DistRelation::Scatter(wide, kServers),
                         {2}, hash, "layout sweep: route");
  });
}

// Wide-arity group-by, both parallel strategies pinned: the columnar scan
// compaction (tree-merge morsels, radix passes) must reproduce the row
// path bit for bit, including the OutOfRange-free accumulators.
TEST(LayoutInvariance, WideGroupByAggregate) {
  Rng rng(kSeed + 1);
  const Relation wide = GenerateZipf(rng, 12000, 6, 200, 1, 1.1);
  for (const GroupByStrategy strategy :
       {GroupByStrategy::kTreeMerge, GroupByStrategy::kRadix}) {
    ExpectLayoutInvariant([&](Cluster& cluster) {
      GroupByOptions options;
      options.strategy = strategy;
      return DistributedGroupByAggregate(
                 cluster, DistRelation::Scatter(wide, kServers), {1}, 3,
                 AggregateOp::kSum, options)
          .value();
    });
  }
}

// Scalar-group COUNT over wide rows plus the adaptive strategy: layout
// must not leak into the sampled strategy choice either.
TEST(LayoutInvariance, AdaptiveStrategyUnaffectedByLayout) {
  Rng rng(kSeed + 2);
  const Relation wide = GenerateUniform(rng, 9000, 7, 4000);
  ExpectLayoutInvariant([&](Cluster& cluster) {
    return DistributedGroupByAggregate(
               cluster, DistRelation::Scatter(wide, kServers), {0, 2}, 5,
               AggregateOp::kMax)
        .value();
  });
}

// --- SIMD ISA invariance ---
//
// The fifth axis of the contract: the dispatched SIMD level (scalar vs
// the best this hardware offers) selects the instruction sequence of the
// hot kernels — route hashing, range filters, gathers, group hashes,
// radix histograms — and every kernel is bit-identical to its scalar
// reference by construction. These sweeps prove it end to end: outputs
// and CostReports from MPCQP_SIMD=scalar-equivalent runs must match the
// best-ISA runs across exchange, SelectRange, group-by, and semijoin
// paths x thread counts x morsel sizes.

// Both interesting levels: the scalar reference and whatever the box
// actually dispatches (deduped — on a scalar-only box the sweep still
// runs, trivially).
std::vector<simd::IsaLevel> IsaAxis() {
  std::vector<simd::IsaLevel> axis = {simd::IsaLevel::kScalar};
  const simd::IsaLevel best = [] {
    simd::ScopedIsaOverride best_over(simd::DetectedIsa());
    return simd::DispatchedIsa();
  }();
  if (best != simd::IsaLevel::kScalar) axis.push_back(best);
  return axis;
}

void ExpectSimdInvariant(const std::function<DistRelation(Cluster&)>& body,
                         LayoutMode layout = LayoutMode::kAuto) {
  const RunResult base = [&] {
    simd::ScopedIsaOverride over(simd::IsaLevel::kScalar);
    return RunWithLayout(1, layout, ClusterOptions{}.morsel_rows, body);
  }();
  EXPECT_GT(base.report.num_rounds(), 0) << "body metered nothing";
  for (const simd::IsaLevel level : IsaAxis()) {
    simd::ScopedIsaOverride over(level);
    for (const int threads : kThreadCounts) {
      for (const int64_t morsel : kMorselSizes) {
        const RunResult got = RunWithLayout(threads, layout, morsel, body);
        ASSERT_EQ(base.fragments.size(), got.fragments.size());
        for (size_t s = 0; s < base.fragments.size(); ++s) {
          EXPECT_EQ(base.fragments[s], got.fragments[s])
              << "fragment " << s << " differs at isa="
              << simd::IsaLevelName(level) << " threads=" << threads
              << " morsel=" << morsel;
        }
        ExpectSameReport(base.report, got.report, threads);
      }
    }
  }
}

// Every exchange router over a wide relation: HashMany/BucketMany run
// under the single-destination, broadcast, multicast, and gather paths,
// and the shuffled bytes (hence destinations) must agree exactly.
TEST(SimdInvariance, ExchangeAllRouters) {
  Rng rng(kSeed + 10);
  const Relation wide = GenerateUniform(rng, 20000, 5, 500);
  ExpectSimdInvariant([&](Cluster& cluster) {
    return ExerciseAllRouters(cluster,
                              DistRelation::Scatter(wide, kServers));
  });
}

// Semijoin probes: batched KeyIndex hashing (HashMany), the partition
// histogram, and the block gathers all sit under DistributedSemijoin.
TEST(SimdInvariance, Semijoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectSimdInvariant([&](Cluster& cluster) {
    return DistributedSemijoin(cluster, DistRelation::Scatter(left, kServers),
                               DistRelation::Scatter(right, kServers), {0},
                               {0});
  });
}

// Group-by under forced-columnar layout with a single group column: the
// compacted scans batch their hashes through GroupHashMany and the radix
// count pass through HistogramTopBits; both pinned strategies plus the
// adaptive chooser must reproduce the scalar run bit for bit.
TEST(SimdInvariance, GroupByColumnarScans) {
  Rng rng(kSeed + 11);
  const Relation wide = GenerateZipf(rng, 12000, 6, 200, 1, 1.1);
  for (const GroupByStrategy strategy :
       {GroupByStrategy::kTreeMerge, GroupByStrategy::kRadix}) {
    ExpectSimdInvariant(
        [&](Cluster& cluster) {
          GroupByOptions options;
          options.strategy = strategy;
          return DistributedGroupByAggregate(
                     cluster, DistRelation::Scatter(wide, kServers), {1}, 3,
                     AggregateOp::kSum, options)
              .value();
        },
        LayoutMode::kColumnar);
  }
  ExpectSimdInvariant([&](Cluster& cluster) {
    return DistributedGroupByAggregate(cluster,
                                       DistRelation::Scatter(wide, kServers),
                                       {1}, 3, AggregateOp::kSum)
        .value();
  });
}

// SelectRange is a local kernel, so the ISA sweep compares it directly:
// all three entry points (wide row view with the columnar-scan gather, a
// non-contiguous selection view, and a true ColumnarRelation column)
// against the forced-scalar result, across threads x morsel sizes.
TEST(SimdInvariance, SelectRangeAllOverloads) {
  Rng rng(kSeed + 12);
  const Relation wide = GenerateUniform(rng, 30000, 5, 2000);
  const Value lo = 150, hi = 1200;
  const ColumnarRelation columnar = ColumnarRelation::FromRowMajor(wide);
  // A non-contiguous selection over the wide rows (every third row).
  std::vector<int64_t> sel;
  for (int64_t i = 0; i < wide.size(); i += 3) sel.push_back(i);
  const RelationView sel_view(wide, sel);

  const auto run_all = [&](ThreadPool* pool, int64_t morsel) {
    std::vector<std::vector<int64_t>> outs;
    outs.push_back(
        SelectRange(wide, 2, lo, hi, pool, morsel, LayoutMode::kColumnar));
    outs.push_back(
        SelectRange(wide, 2, lo, hi, pool, morsel, LayoutMode::kRow));
    outs.push_back(
        SelectRange(sel_view, 2, lo, hi, pool, morsel, LayoutMode::kAuto));
    outs.push_back(SelectRange(columnar, 2, lo, hi, pool, morsel));
    return outs;
  };

  const std::vector<std::vector<int64_t>> base = [&] {
    simd::ScopedIsaOverride over(simd::IsaLevel::kScalar);
    return run_all(nullptr, ClusterOptions{}.morsel_rows);
  }();
  ASSERT_FALSE(base[0].empty());
  EXPECT_EQ(base[0], base[1]);  // Layout never changes the match list.
  EXPECT_EQ(base[0], base[3]);
  for (const simd::IsaLevel level : IsaAxis()) {
    simd::ScopedIsaOverride over(level);
    for (const int threads : kThreadCounts) {
      ThreadPool pool(threads);
      for (const int64_t morsel : kMorselSizes) {
        const auto got = run_all(&pool, morsel);
        for (size_t k = 0; k < base.size(); ++k) {
          EXPECT_EQ(base[k], got[k])
              << "overload " << k << " differs at isa="
              << simd::IsaLevelName(level) << " threads=" << threads
              << " morsel=" << morsel;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mpcqp
