// Thread-count invariance: every algorithm in the library must produce
// bit-identical outputs AND a bit-identical CostReport no matter how many
// OS threads execute the rounds. This is the lock on the determinism
// contract of ClusterOptions::num_threads (DESIGN.md, "Execution model"):
// per-fragment row order, per-round per-server tuple/value counts, and
// round labels are all compared exactly against the single-threaded run.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "acyclic/gym.h"
#include "join/broadcast_join.h"
#include "join/cartesian.h"
#include "join/hash_join.h"
#include "join/semi_join.h"
#include "join/skew_join.h"
#include "join/sort_join.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "mpc/stats.h"
#include "multiway/bigjoin.h"
#include "multiway/hypercube.h"
#include "query/ghd.h"
#include "query/query.h"
#include "relation/relation_ops.h"
#include "sort/multi_round_sort.h"
#include "sort/psrs.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

constexpr int kServers = 8;
constexpr uint64_t kSeed = 42;
const int kThreadCounts[] = {1, 2, 8};

struct RunResult {
  std::vector<Relation> fragments;
  CostReport report;
};

// Runs `body` on a fresh cluster with the given thread count and captures
// the output fragments plus the full cost report.
RunResult RunWith(int threads,
                  const std::function<DistRelation(Cluster&)>& body) {
  ClusterOptions options;
  options.num_threads = threads;
  Cluster cluster(kServers, kSeed, options);
  const DistRelation out = body(cluster);
  RunResult result;
  for (int s = 0; s < out.num_servers(); ++s) {
    result.fragments.push_back(out.fragment(s));
  }
  result.report = cluster.cost_report();
  return result;
}

void ExpectSameReport(const CostReport& base, const CostReport& got,
                      int threads) {
  ASSERT_EQ(base.num_rounds(), got.num_rounds()) << "threads=" << threads;
  for (int r = 0; r < base.num_rounds(); ++r) {
    const RoundCost& b = base.rounds()[r];
    const RoundCost& g = got.rounds()[r];
    EXPECT_EQ(b.label, g.label) << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.tuples_received, g.tuples_received)
        << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.values_received, g.values_received)
        << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.tuples_sent, g.tuples_sent)
        << "round " << r << " threads=" << threads;
    EXPECT_EQ(b.values_sent, g.values_sent)
        << "round " << r << " threads=" << threads;
  }
}

// Runs `body` once per thread count and checks outputs and costs against
// the single-threaded baseline, fragment by fragment and round by round.
void ExpectThreadCountInvariant(
    const std::function<DistRelation(Cluster&)>& body) {
  const RunResult base = RunWith(1, body);
  EXPECT_GT(base.report.num_rounds(), 0) << "algorithm metered nothing";
  for (const int threads : kThreadCounts) {
    const RunResult got = RunWith(threads, body);
    ASSERT_EQ(base.fragments.size(), got.fragments.size());
    for (size_t s = 0; s < base.fragments.size(); ++s) {
      EXPECT_EQ(base.fragments[s], got.fragments[s])
          << "fragment " << s << " differs at threads=" << threads;
    }
    ExpectSameReport(base.report, got.report, threads);
  }
}

// Two binary inputs with a mild Zipf skew on the join column: exercises
// both the light (hash) and heavy (grid) paths of the skew-aware join.
void MakeJoinInputs(Relation* left, Relation* right) {
  Rng rng(7);
  *left = GenerateZipf(rng, 600, 2, 40, /*zipf_col=*/0, /*skew=*/1.2);
  *right = GenerateZipf(rng, 600, 2, 40, /*zipf_col=*/0, /*skew=*/1.2);
}

TEST(DeterminismTest, HashJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return ParallelHashJoin(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers), {0},
                            {0});
  });
}

TEST(DeterminismTest, SkewAwareJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(11);
    return SkewAwareJoin(cluster, DistRelation::Scatter(left, kServers),
                         DistRelation::Scatter(right, kServers), 0, 0, rng);
  });
}

TEST(DeterminismTest, SkewAwareJoinMeteredStats) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  SkewJoinOptions options;
  options.metered_statistics = true;
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(11);
    return SkewAwareJoin(cluster, DistRelation::Scatter(left, kServers),
                         DistRelation::Scatter(right, kServers), 0, 0, rng,
                         options);
  });
}

TEST(DeterminismTest, SortJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(13);
    return ParallelSortJoin(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers), 0, 0,
                            rng);
  });
}

TEST(DeterminismTest, CartesianProduct) {
  Rng rng(17);
  const Relation left = GenerateUniform(rng, 120, 2, 50);
  const Relation right = GenerateUniform(rng, 90, 2, 50);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng product_rng(19);
    return CartesianProduct(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers),
                            product_rng);
  });
}

TEST(DeterminismTest, Semijoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return DistributedSemijoin(cluster,
                               DistRelation::Scatter(left, kServers),
                               DistRelation::Scatter(right, kServers), {0},
                               {0});
  });
}

TEST(DeterminismTest, BroadcastSemijoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return BroadcastSemijoin(cluster,
                             DistRelation::Scatter(left, kServers),
                             DistRelation::Scatter(right, kServers), {0},
                             {0});
  });
}

// Broadcast-heavy: the replicated side is p copy-on-write handles to one
// shared payload, probed concurrently by the local joins.
TEST(DeterminismTest, BroadcastJoin) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    return BroadcastJoin(cluster, DistRelation::Scatter(left, kServers),
                         DistRelation::Scatter(right, kServers), {0}, {0});
  });
}

// A receiver that mutates its broadcast copy must detach from the shared
// payload without perturbing the other receivers — at every thread count.
TEST(DeterminismTest, WriteAfterBroadcastDetaches) {
  Rng rng(43);
  const Relation input = GenerateUniform(rng, 300, 2, 100);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    DistRelation everywhere =
        Broadcast(cluster, DistRelation::Scatter(input, kServers),
                  "detach test: broadcast");
    // All receivers share one payload before any write.
    for (int s = 1; s < kServers; ++s) {
      EXPECT_TRUE(
          everywhere.fragment(s).SharesPayloadWith(everywhere.fragment(0)));
    }
    // Concurrent writers: even servers sort their copy in place, odd
    // servers append a sentinel row. Each write detaches its handle.
    cluster.pool().ParallelFor(kServers, [&](int64_t s) {
      if (s % 2 == 0) {
        everywhere.fragment(static_cast<int>(s)).SortRowsBy({1});
      } else {
        everywhere.fragment(static_cast<int>(s))
            .AppendRow({static_cast<Value>(s), 7777});
      }
    });
    for (int s = 1; s < kServers; ++s) {
      EXPECT_FALSE(
          everywhere.fragment(s).SharesPayloadWith(everywhere.fragment(0)));
    }
    return everywhere;
  });
}

TEST(DeterminismTest, HyperCubeTriangle) {
  Rng rng(23);
  const Relation edges = GenerateRandomGraph(rng, 60, 500);
  const ConjunctiveQuery q = ConjunctiveQuery::Make(
      {"x", "y", "z"},
      {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    std::vector<DistRelation> atoms(3, DistRelation::Scatter(edges, kServers));
    return HyperCubeJoin(cluster, q, atoms).output;
  });
}

TEST(DeterminismTest, BigJoinTriangle) {
  Rng rng(29);
  const Relation edges = Dedup(GenerateRandomGraph(rng, 50, 400));
  const ConjunctiveQuery q = ConjunctiveQuery::Make(
      {"x", "y", "z"},
      {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    std::vector<DistRelation> atoms(3, DistRelation::Scatter(edges, kServers));
    return BigJoin(cluster, q, atoms).output;
  });
}

TEST(DeterminismTest, PsrsRegularSampling) {
  Rng rng(31);
  const Relation input = GenerateUniform(rng, 800, 2, 1000);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    PsrsOptions options;
    options.key_cols = {0, 1};
    return PsrsSort(cluster, DistRelation::Scatter(input, kServers), options)
        .sorted;
  });
}

TEST(DeterminismTest, PsrsRandomSampling) {
  Rng rng(37);
  const Relation input = GenerateZipf(rng, 800, 2, 200, 0, 1.1);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    PsrsOptions options;
    options.key_cols = {0};
    options.use_sampling = true;
    options.samples_per_server = 12;
    Rng sample_rng(41);
    return PsrsSort(cluster, DistRelation::Scatter(input, kServers), options,
                    &sample_rng)
        .sorted;
  });
}

// Sort-heavy: the final per-server sorts run through the parallel sort
// kernel, whose output must not depend on the thread count.
TEST(DeterminismTest, MultiRoundSort) {
  Rng rng(47);
  const Relation input = GenerateUniform(rng, 900, 2, 500);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng sort_rng(53);
    return MultiRoundSort(cluster, DistRelation::Scatter(input, kServers),
                          /*col=*/0, /*fan_out=*/2, sort_rng)
        .sorted;
  });
}

// Counter-heavy: the per-fragment pre-aggregation and the final sorted
// hitter list exercise the flat counting pass end to end.
TEST(DeterminismTest, DistributedHeavyHitters) {
  Rng rng(59);
  const Relation input = GenerateZipf(rng, 1500, 2, 50, 0, 1.3);
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    const std::vector<DistributedHeavyHitter> hitters =
        DetectHeavyHittersDistributed(
            cluster, DistRelation::Scatter(input, kServers), /*col=*/0,
            /*threshold=*/30);
    // Re-encode the (sorted) hitters as a relation so the harness can
    // compare them bit-for-bit across thread counts.
    std::vector<Relation> frags(kServers, Relation(2));
    for (const DistributedHeavyHitter& h : hitters) {
      frags[0].AppendRow({h.value, static_cast<Value>(h.count)});
    }
    return DistRelation::FromFragments(std::move(frags));
  });
}

// The optimized GYM upward phase intersects semijoin copies via per-id
// counting; the intersect survivors must be thread-count invariant.
TEST(DeterminismTest, GymStarOptimized) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng data_rng(61);
  std::vector<Relation> inputs;
  for (int j = 0; j < 4; ++j) {
    inputs.push_back(GenerateUniform(data_rng, 200, 2, 12));
  }
  ExpectThreadCountInvariant([&](Cluster& cluster) {
    Rng rng(67);
    std::vector<DistRelation> atoms;
    for (const Relation& r : inputs) {
      atoms.push_back(DistRelation::Scatter(r, kServers));
    }
    GymOptions options;
    options.optimized = true;
    return GymJoin(cluster, q, StarGhd(q), atoms, rng, options).output;
  });
}

// The invariance also holds for thread counts exceeding the server count
// (idle workers must not perturb anything).
TEST(DeterminismTest, MoreThreadsThanServers) {
  Relation left, right;
  MakeJoinInputs(&left, &right);
  auto body = [&](Cluster& cluster) {
    return ParallelHashJoin(cluster, DistRelation::Scatter(left, kServers),
                            DistRelation::Scatter(right, kServers), {0}, {0});
  };
  const RunResult base = RunWith(1, body);
  const RunResult wide = RunWith(kServers * 2 + 3, body);
  ASSERT_EQ(base.fragments.size(), wide.fragments.size());
  for (size_t s = 0; s < base.fragments.size(); ++s) {
    EXPECT_EQ(base.fragments[s], wide.fragments[s]) << "fragment " << s;
  }
  ExpectSameReport(base.report, wide.report, kServers * 2 + 3);
}

}  // namespace
}  // namespace mpcqp
