#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "query/hypergraph_lp.h"
#include "query/local_eval.h"
#include "query/query.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

constexpr double kTol = 1e-5;

// ---------- Parsing & construction ----------

TEST(QueryTest, ParseWithHead) {
  const auto q = ConjunctiveQuery::Parse("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 3);
  EXPECT_EQ(q->num_atoms(), 3);
  EXPECT_EQ(q->var_name(0), "x");
  EXPECT_EQ(q->atom(2).name, "T");
  EXPECT_EQ(q->atom(2).vars, (std::vector<int>{2, 0}));
}

TEST(QueryTest, ParseWithoutHead) {
  const auto q = ConjunctiveQuery::Parse("R(a,b), S(b,c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 3);
  EXPECT_EQ(q->var_name(2), "c");
}

TEST(QueryTest, ParseRepeatedVarInAtom) {
  const auto q = ConjunctiveQuery::Parse("R(x,x), S(x,y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atom(0).vars, (std::vector<int>{0, 0}));
}

TEST(QueryTest, ParseErrors) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("").ok());
  EXPECT_FALSE(ConjunctiveQuery::Parse("R(x,").ok());
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(x,y) :- R(x)").ok());  // y unused.
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(x) :- R(x,z)").ok());  // z not head.
  EXPECT_FALSE(ConjunctiveQuery::Parse("Q(x,x) :- R(x)").ok());  // dup head.
  EXPECT_FALSE(ConjunctiveQuery::Parse("R(x,y) garbage").ok());
}

TEST(QueryTest, ToStringRoundTrips) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const auto reparsed = ConjunctiveQuery::Parse(q.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), q.ToString());
}

TEST(QueryTest, StockQueries) {
  EXPECT_EQ(ConjunctiveQuery::Triangle().num_atoms(), 3);
  EXPECT_EQ(ConjunctiveQuery::Path(5).num_vars(), 6);
  EXPECT_EQ(ConjunctiveQuery::Star(4).num_vars(), 5);
  EXPECT_EQ(ConjunctiveQuery::Cycle(4).num_vars(), 4);
  EXPECT_EQ(ConjunctiveQuery::Bowtie().num_atoms(), 3);
  EXPECT_EQ(ConjunctiveQuery::Triangle().AtomsWithVar(0),
            (std::vector<int>{0, 2}));
}

// ---------- Fractional LPs: values from the deck ----------

struct LpCase {
  ConjunctiveQuery query;
  double tau_star;  // Fractional edge packing (slides 41, 51, 53, 61-62).
  double rho_star;  // Fractional edge cover.
};

class HypergraphLpTest : public ::testing::TestWithParam<LpCase> {};

TEST_P(HypergraphLpTest, PackingMatchesDeck) {
  const auto packing = FractionalEdgePacking(GetParam().query);
  ASSERT_TRUE(packing.ok());
  EXPECT_NEAR(packing->value, GetParam().tau_star, kTol);
}

TEST_P(HypergraphLpTest, CoverMatchesDeck) {
  const auto cover = FractionalEdgeCover(GetParam().query);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->value, GetParam().rho_star, kTol);
}

TEST_P(HypergraphLpTest, VertexCoverEqualsPackingByDuality) {
  const auto packing = FractionalEdgePacking(GetParam().query);
  const auto vc = FractionalVertexCover(GetParam().query);
  ASSERT_TRUE(packing.ok());
  ASSERT_TRUE(vc.ok());
  EXPECT_NEAR(packing->value, vc->value, kTol);
}

TEST_P(HypergraphLpTest, PackingWeightsFeasible) {
  const ConjunctiveQuery& q = GetParam().query;
  const auto packing = FractionalEdgePacking(q);
  ASSERT_TRUE(packing.ok());
  for (int v = 0; v < q.num_vars(); ++v) {
    double sum = 0;
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (q.atom(j).ContainsVar(v)) sum += packing->weights[j];
    }
    EXPECT_LE(sum, 1.0 + kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeckQueries, HypergraphLpTest,
    ::testing::Values(
        // Two-way join: τ*=1 (slide 41), ρ*=2.
        LpCase{ConjunctiveQuery::TwoWayJoin(), 1.0, 2.0},
        // Triangle: τ*=3/2, ρ*=3/2 (slides 41, 55).
        LpCase{ConjunctiveQuery::Triangle(), 1.5, 1.5},
        // Bowtie R(x),S(x,y),T(y): τ*=2 (slide 53), ρ*=... cover needs
        // x and y covered: S alone covers both: ρ*=1.
        LpCase{ConjunctiveQuery::Bowtie(), 2.0, 1.0},
        // Path-2 (two joins): τ*=2? No: x1 shared. Packing u1+u2<=1 at x1,
        // ends free: max = 2 with u=(1,1)? x1 violated. τ* = 1 + ... for
        // path-2: u1<=1 (x0), u1+u2<=1 (x1), u2<=1 (x2) -> max sum = 1.
        // Wait - u1=1, u2=0 gives 1; u1=u2=0.5 gives 1. τ*=1? No: the
        // packing may also exceed via... it is exactly 1. Cover: need x0,
        // x1, x2: both atoms weight 1 -> ρ*=2.
        LpCase{ConjunctiveQuery::Path(2), 1.0, 2.0},
        // Path-3: τ*=2 (pack R1, R3), ρ*=2 (cover R1, R3).
        LpCase{ConjunctiveQuery::Path(3), 2.0, 2.0},
        // Path-20: τ*=10 (slide 62). The cover LP matrix of a path is
        // totally unimodular, so ρ* equals the integral minimum edge
        // cover of a 21-vertex path: 11.
        LpCase{ConjunctiveQuery::Path(20), 10.0, 11.0},
        // Star-3: center limits packing... each atom contains x0, so
        // Σu <= 1: τ*=1; cover: every leaf needs its atom: ρ*=3.
        LpCase{ConjunctiveQuery::Star(3), 1.0, 3.0},
        // 4-cycle: τ*=2, ρ*=2.
        LpCase{ConjunctiveQuery::Cycle(4), 2.0, 2.0}));

// ---------- AGM bound ----------

TEST(AgmTest, TriangleEqualSizes) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const auto bound = AgmBound(q, {1000, 1000, 1000});
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(*bound, std::pow(1000.0, 1.5), std::pow(1000.0, 1.5) * 1e-4);
}

TEST(AgmTest, ZeroSizeShortCircuits) {
  const auto bound = AgmBound(ConjunctiveQuery::Triangle(), {1000, 0, 1000});
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 0.0);
}

TEST(AgmTest, TwoWayJoinIsProductBound) {
  const auto bound =
      AgmBound(ConjunctiveQuery::CartesianProduct(), {30, 40});
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(*bound, 1200.0, 1.0);
}

TEST(AgmTest, BoundIsActuallyAnUpperBound) {
  // Random instances: |OUT| <= AGM.
  Rng rng(11);
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Relation> atoms;
    for (int j = 0; j < 3; ++j) {
      atoms.push_back(GenerateUniform(rng, 60, 2, 8));
    }
    const Relation out = EvalJoinLocal(q, atoms);
    const auto bound = AgmBound(q, {60, 60, 60});
    ASSERT_TRUE(bound.ok());
    EXPECT_LE(static_cast<double>(out.size()), *bound + kTol);
  }
}

// ---------- Share exponents and the packing-load duality ----------

TEST(SharesLpTest, TriangleEqualSizesGivesTwoThirdsExponents) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const auto shares = OptimalShareExponents(q, {1000, 1000, 1000}, 64);
  ASSERT_TRUE(shares.ok());
  for (int v = 0; v < 3; ++v) {
    EXPECT_NEAR(shares->exponents[v], 1.0 / 3.0, 1e-4);
  }
  // L = N / p^{2/3} = 1000 / 16.
  EXPECT_NEAR(shares->predicted_load, 1000.0 / 16.0, 0.1);
}

TEST(SharesLpTest, TwoWayJoinPutsAllShareOnJoinVar) {
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  const auto shares = OptimalShareExponents(q, {10000, 10000}, 16);
  ASSERT_TRUE(shares.ok());
  EXPECT_NEAR(shares->exponents[1], 1.0, 1e-4);  // y gets everything.
  EXPECT_NEAR(shares->predicted_load, 10000.0 / 16.0, 0.1);
}

TEST(SharesLpTest, SkewedSizesShiftShares) {
  // Tiny R: broadcasting R (shares on z only) is better.
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const auto shares = OptimalShareExponents(q, {100, 100000, 100000}, 64);
  ASSERT_TRUE(shares.ok());
  // The load is dominated by S and T; exponents on x,y shrink.
  EXPECT_LT(shares->exponents[0] + shares->exponents[1], 0.7);
}

class PackingDualityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PackingDualityTest, MaxPackingLoadEqualsShareLpLoad) {
  const auto [query_id, p] = GetParam();
  ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  std::vector<int64_t> sizes = {1 << 14, 1 << 12, 1 << 13};
  if (query_id == 1) {
    q = ConjunctiveQuery::TwoWayJoin();
    sizes = {1 << 14, 1 << 10};
  } else if (query_id == 2) {
    q = ConjunctiveQuery::Path(4);
    sizes = {1000, 2000, 4000, 8000};
  } else if (query_id == 3) {
    q = ConjunctiveQuery::Star(3);
    sizes = {5000, 5000, 5000};
  }
  const auto share_load = OptimalShareExponents(q, sizes, p);
  const auto packing_load = MaxPackingLoad(q, sizes, p);
  ASSERT_TRUE(share_load.ok());
  ASSERT_TRUE(packing_load.ok());
  // Equal by LP duality, up to bisection/simplex tolerance. The share LP
  // clamps the load at >= 1 tuple, so compare the clamped values.
  const double expected = std::max(1.0, *packing_load);
  EXPECT_NEAR(std::log(share_load->predicted_load), std::log(expected),
              1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    QueriesAndP, PackingDualityTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(4, 16, 64)));

TEST(PackingLoadTest, ExplicitPackingsMatchSlide42Table) {
  // Unequal triangle (slide 42-44): L = max over the 4 packing rows.
  const std::vector<int64_t> sizes = {1 << 10, 1 << 16, 1 << 16};
  const int p = 64;
  const double row1 = LoadForPacking({0.5, 0.5, 0.5}, sizes, p);
  const double row2 = LoadForPacking({1, 0, 0}, sizes, p);
  const double row3 = LoadForPacking({0, 1, 0}, sizes, p);
  const double row4 = LoadForPacking({0, 0, 1}, sizes, p);
  const auto lp = MaxPackingLoad(ConjunctiveQuery::Triangle(), sizes, p);
  ASSERT_TRUE(lp.ok());
  const double best = std::max({row1, row2, row3, row4, 1.0});
  EXPECT_NEAR(std::log(*lp < 1.0 ? 1.0 : *lp), std::log(best), 1e-3);
}

// ---------- Local evaluation ----------

TEST(LocalEvalTest, TriangleByHand) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const Relation r = Relation::FromRows({{1, 2}, {4, 5}});
  const Relation s = Relation::FromRows({{2, 3}, {5, 6}});
  const Relation t = Relation::FromRows({{3, 1}, {6, 9}});
  const Relation out = EvalJoinLocal(q, {r, s, t});
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(0, 1), 2u);
  EXPECT_EQ(out.at(0, 2), 3u);
}

TEST(LocalEvalTest, RepeatedVariableSelects) {
  // R(x,x) keeps only diagonal rows.
  const auto q = ConjunctiveQuery::Parse("Q(x,y) :- R(x,x), S(x,y)");
  ASSERT_TRUE(q.ok());
  const Relation r = Relation::FromRows({{1, 1}, {1, 2}, {3, 3}});
  const Relation s = Relation::FromRows({{1, 7}, {3, 8}, {2, 9}});
  const Relation out = EvalJoinLocal(*q, {r, s});
  EXPECT_EQ(out.size(), 2);
}

TEST(LocalEvalTest, CrossProductQuery) {
  const ConjunctiveQuery q = ConjunctiveQuery::CartesianProduct();
  const Relation r = Relation::FromRows({{1}, {2}});
  const Relation s = Relation::FromRows({{7}, {8}, {9}});
  EXPECT_EQ(EvalJoinLocal(q, {r, s}).size(), 6);
}

TEST(LocalEvalTest, BagSemanticsMultiplicities) {
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  const Relation r = Relation::FromRows({{1, 5}, {1, 5}});
  const Relation s = Relation::FromRows({{5, 2}, {5, 2}, {5, 3}});
  EXPECT_EQ(EvalJoinLocal(q, {r, s}).size(), 6);
}

TEST(LocalEvalTest, MatchesPairwiseJoinsOnRandomData) {
  Rng rng(13);
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Relation> atoms;
    for (int j = 0; j < 3; ++j) {
      atoms.push_back(GenerateUniform(rng, 80, 2, 12));
    }
    // Manual pairwise plan: ((R1 x1 R2) x2 R3).
    const Relation i1 = HashJoinLocal(atoms[0], atoms[1], {1}, {0});
    const Relation i2 = HashJoinLocal(i1, atoms[2], {2}, {0});
    EXPECT_TRUE(MultisetEqual(EvalJoinLocal(q, atoms), i2));
  }
}

TEST(LocalEvalTest, EmptyAtomMeansEmptyResult) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(13);
  const Relation full = GenerateUniform(rng, 50, 2, 5);
  EXPECT_TRUE(EvalJoinLocal(q, {full, Relation(2), full}).empty());
}

// ---------- Canonical query shapes ----------

TEST(QueryTest, CanonicalShapeInvariantUnderIsomorphism) {
  // The same triangle written three ways: different atom order, different
  // variable names, different atom names — one canonical shape.
  const auto a = ConjunctiveQuery::Parse("R(x,y), S(y,z), T(z,x)");
  const auto b = ConjunctiveQuery::Parse("E2(b,c), E1(a,b), E3(c,a)");
  const auto c = ConjunctiveQuery::Parse("T(w,u), R(u,v), S(v,w)");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  const CanonicalQueryShape sa = CanonicalizeShape(*a);
  EXPECT_EQ(sa.shape, CanonicalizeShape(*b).shape);
  EXPECT_EQ(sa.shape, CanonicalizeShape(*c).shape);
}

TEST(QueryTest, CanonicalShapeDistinguishesDifferentShapes) {
  const auto triangle = ConjunctiveQuery::Parse("R(x,y), S(y,z), T(z,x)");
  const auto path = ConjunctiveQuery::Parse("R(x,y), S(y,z), T(z,w)");
  const auto star = ConjunctiveQuery::Parse("R(x,a), S(x,b), T(x,c)");
  ASSERT_TRUE(triangle.ok() && path.ok() && star.ok());
  const std::string st = CanonicalizeShape(*triangle).shape;
  const std::string sp = CanonicalizeShape(*path).shape;
  const std::string ss = CanonicalizeShape(*star).shape;
  EXPECT_NE(st, sp);
  EXPECT_NE(st, ss);
  EXPECT_NE(sp, ss);
}

TEST(QueryTest, CanonicalShapeAtomOrderIsAValidPermutation) {
  const auto q = ConjunctiveQuery::Parse("B(y,z), A(x,y), C(z,x,x)");
  ASSERT_TRUE(q.ok());
  const CanonicalQueryShape shape = CanonicalizeShape(*q);
  ASSERT_EQ(shape.atom_order.size(), 3u);
  std::vector<bool> seen(3, false);
  for (int j : shape.atom_order) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 3);
    EXPECT_FALSE(seen[j]);
    seen[j] = true;
  }
  // atom_order[k] names the original atom at canonical position k: the
  // shape rebuilt by walking atoms in that order must equal the shape.
  EXPECT_FALSE(shape.shape.empty());
}

TEST(QueryTest, CanonicalShapeRecordsRepeatedVariables) {
  // R(x,x) and R(x,y) must canonicalize differently.
  const auto rep = ConjunctiveQuery::Parse("R(x,x)");
  const auto flat = ConjunctiveQuery::Parse("R(x,y)");
  ASSERT_TRUE(rep.ok() && flat.ok());
  EXPECT_NE(CanonicalizeShape(*rep).shape, CanonicalizeShape(*flat).shape);
}

TEST(QueryTest, CanonicalShapeGreedyFallbackPastSevenAtoms) {
  // 8 atoms takes the greedy path; it must still be deterministic and a
  // valid permutation, and isomorphic inputs with identical per-atom
  // signatures still canonicalize equal under the stable greedy order.
  std::string text;
  for (int j = 0; j < 8; ++j) {
    if (j > 0) text += ", ";
    text += "R" + std::to_string(j) + "(v" + std::to_string(j) + ",v" +
            std::to_string(j + 1) + ")";
  }
  const auto q = ConjunctiveQuery::Parse(text);
  ASSERT_TRUE(q.ok());
  const CanonicalQueryShape shape = CanonicalizeShape(*q);
  EXPECT_EQ(shape.atom_order.size(), 8u);
  EXPECT_EQ(shape.shape, CanonicalizeShape(*q).shape);
}

}  // namespace
}  // namespace mpcqp
