// The serving runtime: catalog fingerprints, result cache, in-flight
// coalescing, admission control, memory budgets — and the end-to-end
// guarantee that a served answer is exactly the solo answer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "query/local_eval.h"
#include "query/query.h"
#include "relation/relation_ops.h"
#include "serve/admission.h"
#include "serve/catalog.h"
#include "serve/load_driver.h"
#include "serve/query_server.h"
#include "serve/result_cache.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

Relation SmallRelation(uint64_t seed, int64_t rows = 300) {
  Rng rng(seed);
  return GenerateUniform(rng, rows, 2, 60);
}

// --- Catalog ---

TEST(CatalogTest, FingerprintTracksContent) {
  Catalog catalog;
  const Relation a = SmallRelation(1);
  const Relation b = SmallRelation(2);
  EXPECT_EQ(catalog.Register("R", a), 1);
  Catalog::Entry entry;
  ASSERT_TRUE(catalog.Find("R", &entry));
  const uint64_t first = entry.fingerprint;
  EXPECT_EQ(first, FingerprintRelation(a));

  // Same content re-registered: version bumps, fingerprint stays.
  EXPECT_EQ(catalog.Register("R", a), 2);
  ASSERT_TRUE(catalog.Find("R", &entry));
  EXPECT_EQ(entry.fingerprint, first);

  // New content: fingerprint changes.
  EXPECT_EQ(catalog.Register("R", b), 3);
  ASSERT_TRUE(catalog.Find("R", &entry));
  EXPECT_NE(entry.fingerprint, first);

  EXPECT_FALSE(catalog.Find("missing", &entry));
}

// --- Result cache ---

TEST(ResultCacheTest, LruEvictsOldest) {
  ResultCache cache(/*max_entries=*/2);
  Relation r1(1);
  r1.AppendRow({1});
  Relation r2(1);
  r2.AppendRow({2});
  Relation r3(1);
  r3.AppendRow({3});
  cache.Insert("a", r1);
  cache.Insert("b", r2);
  Relation out;
  ASSERT_TRUE(cache.Lookup("a", &out));  // Refreshes "a".
  EXPECT_EQ(out, r1);
  cache.Insert("c", r3);                 // Evicts "b", not "a".
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(cache.counters().evictions, 1);
}

// --- Admission control ---

TEST(AdmissionTest, BoundsInflightAndRejectsOverflow) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queued=*/0);
  ASSERT_TRUE(admission.Admit(100).ok());
  // Slot taken, queue empty: the next request is rejected immediately.
  const Status rejected = admission.Admit(100);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  admission.Release(100);
  EXPECT_TRUE(admission.Admit(100).ok());
  admission.Release(100);
  const AdmissionController::Counters counters = admission.counters();
  EXPECT_EQ(counters.admitted, 2);
  EXPECT_EQ(counters.rejected_overload, 1);
  EXPECT_EQ(counters.inflight, 0);
  EXPECT_EQ(counters.peak_inflight, 1);
}

TEST(AdmissionTest, QueuedRequestProceedsAfterRelease) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queued=*/4);
  ASSERT_TRUE(admission.Admit(1).ok());
  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(admission.Admit(1).ok());
    second_admitted = true;
    admission.Release(1);
  });
  // The waiter must be blocked, not rejected.
  EXPECT_FALSE(second_admitted.load());
  admission.Release(1);
  waiter.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(admission.counters().rejected_overload, 0);
}

// --- QueryServer ---

ServeOptions TestOptions() {
  ServeOptions options;
  options.num_servers = 8;
  options.max_inflight = 2;
  options.max_queued = 1 << 10;
  return options;
}

TEST(QueryServerTest, AnswersMatchSerialEvaluation) {
  Catalog catalog;
  const Relation r = SmallRelation(11);
  const Relation s = SmallRelation(13);
  catalog.Register("R", r);
  catalog.Register("S", s);
  QueryServer server(&catalog, TestOptions());

  const auto result = server.Execute("R(x,y), S(y,z)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->result_cache_hit);
  EXPECT_GT(result->stats.num_rounds, 0);

  const auto query = ConjunctiveQuery::Parse("R(x,y), S(y,z)");
  const Relation expected = EvalJoinLocal(*query, {r, s});
  EXPECT_TRUE(MultisetEqual(result->output, expected));
}

TEST(QueryServerTest, ErrorsAreTyped) {
  Catalog catalog;
  catalog.Register("R", SmallRelation(11));
  QueryServer server(&catalog, TestOptions());

  EXPECT_EQ(server.Execute("not a query").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Execute("R(x,y), Missing(y,z)").status().code(),
            StatusCode::kNotFound);
  // Arity mismatch between the query and the registered relation.
  EXPECT_EQ(server.Execute("R(x,y,z), R(z,w,v)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServerTest, ResultCacheHitsAndInvalidatesOnRegister) {
  Catalog catalog;
  catalog.Register("R", SmallRelation(11));
  catalog.Register("S", SmallRelation(13));
  QueryServer server(&catalog, TestOptions());

  const auto cold = server.Execute("R(x,y), S(y,z)");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->result_cache_hit);

  const auto warm = server.Execute("R(x,y), S(y,z)");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(warm->output, cold->output);
  EXPECT_EQ(server.counters().executed, 1);

  // New data under the same name: the fingerprint changes, so the key
  // changes and the query re-executes.
  catalog.Register("S", SmallRelation(17));
  const auto after = server.Execute("R(x,y), S(y,z)");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->result_cache_hit);
  EXPECT_EQ(server.counters().executed, 2);

  // Different spelling of the same shape is a different result key (the
  // result cache is exact-text; the plan cache is what handles isomorphs).
  const auto respelled = server.Execute("R(a,b), S(b,c)");
  ASSERT_TRUE(respelled.ok());
  EXPECT_FALSE(respelled->result_cache_hit);
  EXPECT_TRUE(MultisetEqual(respelled->output, after->output));
}

TEST(QueryServerTest, ConcurrentIdenticalQueriesExecuteOnce) {
  Catalog catalog;
  catalog.Register("R", SmallRelation(19, /*rows=*/1500));
  catalog.Register("S", SmallRelation(23, /*rows=*/1500));
  QueryServer server(&catalog, TestOptions());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<StatusOr<QueryResult>> results(kClients,
                                             InvalidArgumentError("unset"));
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&, i] { results[i] = server.Execute("R(x,y), S(y,z)"); });
  }
  for (std::thread& t : clients) t.join();

  int64_t answered = 0;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ++answered;
    EXPECT_EQ(result->output, results[0]->output);
  }
  EXPECT_EQ(answered, kClients);
  // One execution; everyone else coalesced onto it or hit the cache.
  EXPECT_EQ(server.counters().executed, 1);
  EXPECT_EQ(server.counters().coalesced +
                server.result_cache().counters().hits,
            kClients - 1);
}

TEST(QueryServerTest, ServedAnswerIsBitIdenticalToSoloRun) {
  const Relation r = SmallRelation(29);
  const Relation s = SmallRelation(31);

  // Solo: a fresh server with caching off, executing alone.
  ExecutorRegistry::ResetForTesting();
  Catalog solo_catalog;
  solo_catalog.Register("R", r);
  solo_catalog.Register("S", s);
  ServeOptions solo_options = TestOptions();
  solo_options.enable_result_cache = false;
  QueryServer solo(&solo_catalog, solo_options);
  const auto solo_result = solo.Execute("R(x,y), S(y,z)");
  ASSERT_TRUE(solo_result.ok());

  // Concurrent: the same query alongside 7 other in-flight queries on a
  // shared pool. Caching off so every request truly executes.
  ExecutorRegistry::ResetForTesting();
  Catalog catalog;
  catalog.Register("R", r);
  catalog.Register("S", s);
  for (int i = 0; i < 4; ++i) {
    catalog.Register("N" + std::to_string(i), SmallRelation(100 + i));
  }
  ServeOptions options = TestOptions();
  options.enable_result_cache = false;
  options.max_inflight = 8;
  QueryServer server(&catalog, options);

  std::vector<std::thread> noise;
  for (int i = 0; i < 4; ++i) {
    noise.emplace_back([&, i] {
      const std::string name = "N" + std::to_string(i);
      const auto result =
          server.Execute(name + "(x,y), " + name + "(y,z)");
      EXPECT_TRUE(result.ok());
    });
  }
  const auto served = server.Execute("R(x,y), S(y,z)");
  for (std::thread& t : noise) t.join();
  ASSERT_TRUE(served.ok());

  // Bit-identical: same fragments in the same order, not just multiset
  // equality — and the metered cost is identical too.
  EXPECT_EQ(served->output, solo_result->output);
  EXPECT_EQ(served->stats.num_rounds, solo_result->stats.num_rounds);
  EXPECT_EQ(served->stats.max_load_tuples, solo_result->stats.max_load_tuples);
  EXPECT_EQ(served->stats.total_comm_tuples,
            solo_result->stats.total_comm_tuples);
}

TEST(QueryServerTest, MemoryBudgetRejectsBigQueries) {
  Catalog catalog;
  catalog.Register("R", SmallRelation(37, /*rows=*/2000));
  catalog.Register("S", SmallRelation(41, /*rows=*/2000));
  ServeOptions options = TestOptions();
  options.mem_budget_bytes = 1024;  // Absurdly small: everything rejected.
  QueryServer server(&catalog, options);

  const auto result = server.Execute("R(x,y), S(y,z)");
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.counters().rejected_memory, 1);
  EXPECT_EQ(server.counters().executed, 0);
}

TEST(QueryServerTest, EstimateCountsInputsAndOutput) {
  Catalog catalog;
  catalog.Register("R", SmallRelation(43));
  catalog.Register("S", SmallRelation(47));
  const int64_t estimate =
      QueryServer::EstimateQueryBytes("R(x,y), S(y,z)", catalog);
  // At least the inputs twice: 2 relations x 300 rows x 2 cols x 8 bytes.
  EXPECT_GE(estimate, 2 * 2 * 300 * 2 * 8);
}

// --- Load driver ---

TEST(LoadDriverTest, DrivesExactRequestCounts) {
  Catalog catalog;
  catalog.Register("R", SmallRelation(53));
  catalog.Register("S", SmallRelation(59));
  QueryServer server(&catalog, TestOptions());

  LoadOptions load;
  load.clients = 4;
  load.requests = 37;  // Not divisible by clients or queries.
  const LoadReport report = RunLoad(
      server, {"R(x,y), S(y,z)", "S(x,y), R(y,z)"}, load);
  EXPECT_EQ(report.completed, 37);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.executed, 2);  // One per distinct query.
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  // The JSON sink contains the headline numbers.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"completed\": 37"), std::string::npos);
  EXPECT_NE(json.find("\"clients\": 4"), std::string::npos);
}

}  // namespace
}  // namespace mpcqp
