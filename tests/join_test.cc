#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "join/broadcast_join.h"
#include "join/cartesian.h"
#include "join/hash_join.h"
#include "join/heavy_hitters.h"
#include "join/skew_join.h"
#include "join/sort_join.h"
#include "mpc/cluster.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

Relation Reference2Way(const Relation& left, const Relation& right,
                       int left_key, int right_key) {
  return HashJoinLocal(left, right, {left_key}, {right_key});
}

// ---------- Parallel hash join ----------

class ParallelHashJoinTest
    : public ::testing::TestWithParam<std::tuple<int, int, LocalJoinAlgorithm>> {
};

TEST_P(ParallelHashJoinTest, MatchesSerialReference) {
  const auto [p, domain, local] = GetParam();
  Rng rng(101);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(rng, 300, 2, domain);
  const Relation right = GenerateUniform(rng, 200, 2, domain);
  const DistRelation out = ParallelHashJoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {1}, {0}, local);
  EXPECT_TRUE(
      MultisetEqual(out.Collect(), Reference2Way(left, right, 1, 0)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelHashJoinTest,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(10, 1000),
                       ::testing::Values(LocalJoinAlgorithm::kHash,
                                         LocalJoinAlgorithm::kSortMerge,
                                         LocalJoinAlgorithm::kNestedLoop)));

TEST(ParallelHashJoinTest, LoadNearInOverPOnSkewFreeData) {
  const int p = 16;
  Rng rng(7);
  Cluster cluster(p, 5);
  // Every join value appears exactly once per side: no skew at all.
  const Relation left = GenerateMatchingDegree(rng, 16000, 1);
  const Relation right = GenerateMatchingDegree(rng, 16000, 1);
  ParallelHashJoin(cluster, DistRelation::Scatter(left, p),
                   DistRelation::Scatter(right, p), {1}, {1});
  const int64_t load = cluster.cost_report().MaxLoadTuples();
  const int64_t ideal = 32000 / p;
  EXPECT_LT(load, 2 * ideal) << "hash join load far above IN/p";
  EXPECT_GE(load, ideal);
}

TEST(ParallelHashJoinTest, SkewConcentratesLoad) {
  const int p = 16;
  Rng rng(7);
  Cluster cluster(p, 5);
  // All tuples share one join value: everything lands on one server.
  const Relation left = GenerateConstantColumn(4000, 1, 7);
  const Relation right = GenerateConstantColumn(4000, 0, 7);
  ParallelHashJoin(cluster, DistRelation::Scatter(left, p),
                   DistRelation::Scatter(right, p), {1}, {0});
  EXPECT_EQ(cluster.cost_report().MaxLoadTuples(), 8000);
}

TEST(ParallelHashJoinTest, MultiColumnKey) {
  const int p = 8;
  Rng rng(3);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(rng, 200, 3, 6);
  const Relation right = GenerateUniform(rng, 200, 3, 6);
  const DistRelation out = ParallelHashJoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {0, 1}, {1, 2});
  EXPECT_TRUE(MultisetEqual(out.Collect(),
                            HashJoinLocal(left, right, {0, 1}, {1, 2})));
}

// ---------- Broadcast join ----------

TEST(BroadcastJoinTest, MatchesReferenceAndLoadIsSmallSide) {
  const int p = 8;
  Rng rng(5);
  Cluster cluster(p, 5);
  const Relation big = GenerateUniform(rng, 4000, 2, 100);
  const Relation small = GenerateUniform(rng, 64, 2, 100);
  const DistRelation out =
      BroadcastJoin(cluster, DistRelation::Scatter(big, p),
                    DistRelation::Scatter(small, p), {1}, {0});
  EXPECT_TRUE(MultisetEqual(out.Collect(), Reference2Way(big, small, 1, 0)));
  // Load = |small| per server, independent of the big side.
  EXPECT_EQ(cluster.cost_report().MaxLoadTuples(), 64);
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

TEST(BroadcastJoinTest, ImmuneToSkew) {
  const int p = 8;
  Cluster cluster(p, 5);
  const Relation big = GenerateConstantColumn(2000, 1, 3);
  const Relation small = GenerateConstantColumn(32, 0, 3);
  const DistRelation out =
      BroadcastJoin(cluster, DistRelation::Scatter(big, p),
                    DistRelation::Scatter(small, p), {1}, {0});
  EXPECT_EQ(out.TotalSize(), 2000 * 32);
  EXPECT_EQ(cluster.cost_report().MaxLoadTuples(), 32);
}

// ---------- Cartesian product ----------

TEST(CartesianTest, OptimalGridShapeBalances) {
  // Equal sizes: square grid.
  EXPECT_EQ(OptimalGridShape(1000, 1000, 16),
            (std::pair<int, int>{4, 4}));
  // Tiny left: broadcast regime 1 x p.
  EXPECT_EQ(OptimalGridShape(1, 100000, 16),
            (std::pair<int, int>{1, 16}));
  // p = 1.
  EXPECT_EQ(OptimalGridShape(50, 50, 1), (std::pair<int, int>{1, 1}));
}

TEST(CartesianTest, ProductIsComplete) {
  const int p = 12;
  Rng rng(9);
  Rng data_rng(10);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(data_rng, 40, 2, 1000);
  const Relation right = GenerateUniform(data_rng, 70, 1, 1000);
  const DistRelation out =
      CartesianProduct(cluster, DistRelation::Scatter(left, p),
                       DistRelation::Scatter(right, p), rng);
  EXPECT_EQ(out.TotalSize(), 40 * 70);
  EXPECT_EQ(out.arity(), 3);
  EXPECT_TRUE(MultisetEqual(out.Collect(),
                            NestedLoopJoinLocal(left, right, {}, {})));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

TEST(CartesianTest, LoadNearTwoSqrtRSOverP) {
  const int p = 16;
  Rng rng(9);
  Rng data_rng(11);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(data_rng, 2000, 1, 1 << 30);
  const Relation right = GenerateUniform(data_rng, 2000, 1, 1 << 30);
  CartesianProduct(cluster, DistRelation::Scatter(left, p),
                   DistRelation::Scatter(right, p), rng);
  const double optimal = 2.0 * std::sqrt(2000.0 * 2000.0 / p);
  const auto load = static_cast<double>(cluster.cost_report().MaxLoadTuples());
  EXPECT_LT(load, 1.5 * optimal);
  EXPECT_GT(load, 0.9 * optimal);
}

// ---------- Heavy hitters ----------

TEST(HeavyHitterTest, FindsExactlyTheFrequentValues) {
  Relation r(2);
  for (int i = 0; i < 100; ++i) r.AppendRow({static_cast<Value>(i), 1});
  for (int i = 0; i < 40; ++i) r.AppendRow({static_cast<Value>(i), 2});
  for (int i = 0; i < 5; ++i) r.AppendRow({static_cast<Value>(i), 3});
  const DistRelation dist = DistRelation::Scatter(r, 4);
  const auto hitters = FindHeavyHitters(dist, 1, 30);
  ASSERT_EQ(hitters.size(), 2u);
  EXPECT_EQ(hitters[0].value, 1u);
  EXPECT_EQ(hitters[0].count, 100);
  EXPECT_EQ(hitters[1].value, 2u);
  EXPECT_EQ(CountValue(dist, 1, 3), 5);
}

TEST(HeavyHitterTest, ThresholdIsStrict) {
  Relation r(1);
  for (int i = 0; i < 10; ++i) r.AppendRow({7});
  const DistRelation dist = DistRelation::Scatter(r, 2);
  EXPECT_TRUE(FindHeavyHitters(dist, 0, 10).empty());
  EXPECT_EQ(FindHeavyHitters(dist, 0, 9).size(), 1u);
}

// ---------- Skew-aware join ----------

class SkewJoinCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(SkewJoinCorrectnessTest, MatchesReferenceUnderZipf) {
  const auto [p, skew, seed] = GetParam();
  Rng data_rng(seed);
  Rng rng(seed + 100);
  Cluster cluster(p, 5);
  const Relation left = GenerateZipf(data_rng, 1500, 2, 400, 1, skew);
  const Relation right = GenerateZipf(data_rng, 1500, 2, 400, 0, skew);
  const DistRelation out =
      SkewAwareJoin(cluster, DistRelation::Scatter(left, p),
                    DistRelation::Scatter(right, p), 1, 0, rng);
  EXPECT_TRUE(
      MultisetEqual(out.Collect(), Reference2Way(left, right, 1, 0)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkewJoinCorrectnessTest,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(0.0, 1.0, 1.5),
                       ::testing::Values(21u, 22u)));

TEST(SkewJoinTest, ExtremeSkewMatchesReference) {
  const int p = 16;
  Rng rng(23);
  Cluster cluster(p, 5);
  const Relation left = GenerateConstantColumn(800, 1, 7);
  const Relation right = GenerateConstantColumn(800, 0, 7);
  const DistRelation out =
      SkewAwareJoin(cluster, DistRelation::Scatter(left, p),
                    DistRelation::Scatter(right, p), 1, 0, rng);
  EXPECT_EQ(out.TotalSize(), 800 * 800);
}

TEST(SkewJoinTest, BeatsHashJoinOnExtremeSkew) {
  const int p = 16;
  const Relation left = GenerateConstantColumn(4000, 1, 7);
  const Relation right = GenerateConstantColumn(4000, 0, 7);

  Cluster hash_cluster(p, 5);
  ParallelHashJoin(hash_cluster, DistRelation::Scatter(left, p),
                   DistRelation::Scatter(right, p), {1}, {0});
  Rng rng(29);
  Cluster skew_cluster(p, 5);
  SkewAwareJoin(skew_cluster, DistRelation::Scatter(left, p),
                DistRelation::Scatter(right, p), 1, 0, rng);

  // Hash join: everything on one server (8000). Skew join: grid slices,
  // about 2*sqrt(|R||S|/p) = 2000.
  EXPECT_EQ(hash_cluster.cost_report().MaxLoadTuples(), 8000);
  EXPECT_LT(skew_cluster.cost_report().MaxLoadTuples(), 3000);
}

TEST(SkewJoinTest, NoHeavyHittersBehavesLikeHashJoin) {
  const int p = 8;
  Rng data_rng(31);
  Rng rng(32);
  const Relation left = GenerateMatchingDegree(data_rng, 4000, 1);
  const Relation right = GenerateMatchingDegree(data_rng, 4000, 1);

  Cluster cluster(p, 5);
  const DistRelation out =
      SkewAwareJoin(cluster, DistRelation::Scatter(left, p),
                    DistRelation::Scatter(right, p), 1, 1, rng);
  EXPECT_TRUE(
      MultisetEqual(out.Collect(), Reference2Way(left, right, 1, 1)));
  EXPECT_LT(cluster.cost_report().MaxLoadTuples(), 2 * 8000 / p);
}

TEST(SkewJoinTest, MeteredStatisticsSameAnswerExtraRounds) {
  const int p = 16;
  Rng data_rng(35);
  const Relation left = GenerateZipf(data_rng, 2000, 2, 200, 1, 1.4);
  const Relation right = GenerateZipf(data_rng, 2000, 2, 200, 0, 1.4);

  Rng rng_a(36);
  Cluster oracle_cluster(p, 5);
  const DistRelation oracle =
      SkewAwareJoin(oracle_cluster, DistRelation::Scatter(left, p),
                    DistRelation::Scatter(right, p), 1, 0, rng_a);

  Rng rng_b(36);
  Cluster metered_cluster(p, 5);
  SkewJoinOptions options;
  options.metered_statistics = true;
  const DistRelation metered =
      SkewAwareJoin(metered_cluster, DistRelation::Scatter(left, p),
                    DistRelation::Scatter(right, p), 1, 0, rng_b, options);

  EXPECT_TRUE(MultisetEqual(oracle.Collect(), metered.Collect()));
  EXPECT_EQ(oracle_cluster.cost_report().num_rounds(), 1);
  // 2 detection rounds per side + the join round.
  EXPECT_EQ(metered_cluster.cost_report().num_rounds(), 5);
}

TEST(SkewJoinTest, ThresholdFactorChangesHitterSet) {
  const int p = 8;
  Rng data_rng(33);
  Rng rng(34);
  const Relation left = GenerateZipf(data_rng, 2000, 2, 100, 1, 1.5);
  const Relation right = GenerateUniform(data_rng, 2000, 2, 100);
  SkewJoinOptions strict;
  strict.threshold_factor = 4.0;
  Cluster cluster(p, 5);
  const DistRelation out =
      SkewAwareJoin(cluster, DistRelation::Scatter(left, p),
                    DistRelation::Scatter(right, p), 1, 0, rng, strict);
  EXPECT_TRUE(
      MultisetEqual(out.Collect(), Reference2Way(left, right, 1, 0)));
}

// ---------- Parallel sort join ----------

class SortJoinCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SortJoinCorrectnessTest, MatchesReference) {
  const auto [p, skew] = GetParam();
  Rng data_rng(41);
  Rng rng(42);
  Cluster cluster(p, 5);
  const Relation left = GenerateZipf(data_rng, 1200, 2, 300, 1, skew);
  const Relation right = GenerateZipf(data_rng, 1000, 2, 300, 0, skew);
  const DistRelation out =
      ParallelSortJoin(cluster, DistRelation::Scatter(left, p),
                       DistRelation::Scatter(right, p), 1, 0, rng);
  EXPECT_TRUE(
      MultisetEqual(out.Collect(), Reference2Way(left, right, 1, 0)));
  // Constant rounds: 2 for PSRS + at most 1 for crossing keys.
  EXPECT_LE(cluster.cost_report().num_rounds(), 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortJoinCorrectnessTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(0.0, 1.2)));

TEST(SortJoinTest, ExtremeSkewCorrectAndBalanced) {
  const int p = 16;
  Rng rng(51);
  Cluster cluster(p, 5);
  const Relation left = GenerateConstantColumn(2000, 1, 7);
  const Relation right = GenerateConstantColumn(2000, 0, 7);
  const DistRelation out =
      ParallelSortJoin(cluster, DistRelation::Scatter(left, p),
                       DistRelation::Scatter(right, p), 1, 0, rng);
  EXPECT_EQ(out.TotalSize(), 2000 * 2000);
  // The crossing-value grids keep the load near 2 sqrt(|R||S|/p) + IN/p.
  EXPECT_LT(cluster.cost_report().MaxLoadTuples(), 2500);
}

}  // namespace
}  // namespace mpcqp
