#include <gtest/gtest.h>

#include <tuple>

#include "acyclic/gym.h"
#include "acyclic/yannakakis.h"
#include "mpc/cluster.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  out.reserve(atoms.size());
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

// ---------- Serial Yannakakis ----------

TEST(YannakakisTest, MaterializeBagJoinsItsAtoms) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  const Ghd flat = FlatGhd(q);
  Rng rng(1);
  std::vector<Relation> atoms = {GenerateUniform(rng, 100, 2, 8),
                                 GenerateUniform(rng, 100, 2, 8)};
  const Relation bag = MaterializeBag(q, flat.node(flat.root()), atoms);
  EXPECT_TRUE(MultisetEqual(bag, EvalJoinLocal(q, atoms)));
}

class YannakakisTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(YannakakisTest, PathMatchesReferenceAcrossGhds) {
  const auto [n, seed] = GetParam();
  const ConjunctiveQuery q = ConjunctiveQuery::Path(n);
  Rng rng(seed);
  std::vector<Relation> atoms;
  for (int j = 0; j < n; ++j) {
    atoms.push_back(GenerateUniform(rng, 150, 2, 20));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  EXPECT_TRUE(
      MultisetEqual(YannakakisSerial(q, ChainGhd(q), atoms), expected));
  EXPECT_TRUE(
      MultisetEqual(YannakakisSerial(q, BalancedPathGhd(q), atoms), expected));
  EXPECT_TRUE(
      MultisetEqual(YannakakisSerial(q, FlatGhd(q), atoms), expected));
  const auto gyo = BuildJoinTree(q);
  ASSERT_TRUE(gyo.ok());
  EXPECT_TRUE(MultisetEqual(YannakakisSerial(q, *gyo, atoms), expected));
}

INSTANTIATE_TEST_SUITE_P(Sweep, YannakakisTest,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(11u, 12u)));

TEST(YannakakisTest, StarMatchesReference) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng rng(13);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(rng, 120, 2, 15));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  EXPECT_TRUE(MultisetEqual(YannakakisSerial(q, StarGhd(q), atoms), expected));
}

TEST(YannakakisTest, BagSemanticsPreserved) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(2);
  const Relation r = Relation::FromRows({{1, 5}, {1, 5}});
  const Relation s = Relation::FromRows({{5, 2}, {5, 2}, {5, 3}});
  const Relation out = YannakakisSerial(q, ChainGhd(q), {r, s});
  EXPECT_EQ(out.size(), 6);
}

TEST(YannakakisTest, DanglingTuplesEliminated) {
  // Slide 64-77 flavor: tuples with no partners disappear.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  const Relation r1 = Relation::FromRows({{1, 2}, {9, 9}});
  const Relation r2 = Relation::FromRows({{2, 3}, {8, 8}});
  const Relation r3 = Relation::FromRows({{3, 4}, {7, 7}});
  const Relation out = YannakakisSerial(q, ChainGhd(q), {r1, r2, r3});
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(0, 3), 4u);
}

// ---------- Distributed GYM ----------

class GymCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(GymCorrectnessTest, PathMatchesReference) {
  const auto [p, optimized] = GetParam();
  const ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  Rng data_rng(21);
  Rng rng(22);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 150, 2, 18));
  }
  Cluster cluster(p, 5);
  GymOptions options;
  options.optimized = optimized;
  const GymResult result = GymJoin(cluster, q, ChainGhd(q),
                                   Scatter(atoms, p), rng, options);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GymCorrectnessTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(false, true)));

TEST(GymTest, StarFourVanillaTakesNineRounds) {
  // Slides 80-89: vanilla GYM on the star-4 join tree = 3 upward + 3
  // downward + 3 join rounds.
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng data_rng(23);
  Rng rng(24);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 200, 2, 12));
  }
  Cluster cluster(8, 5);
  const GymResult result =
      GymJoin(cluster, q, StarGhd(q), Scatter(atoms, 8), rng);
  EXPECT_EQ(result.rounds, 9);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
}

TEST(GymTest, StarFourOptimizedTakesFourRounds) {
  // Slides 90-94: copies + intersect + downward + SkewHC join = 4 rounds.
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng data_rng(25);
  Rng rng(26);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 200, 2, 12));
  }
  Cluster cluster(8, 5);
  GymOptions options;
  options.optimized = true;
  const GymResult result =
      GymJoin(cluster, q, StarGhd(q), Scatter(atoms, 8), rng, options);
  EXPECT_EQ(result.rounds, 4);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
}

TEST(GymTest, OptimizedRoundsScaleWithDepthNotSize) {
  const int n = 8;
  const ConjunctiveQuery q = ConjunctiveQuery::Path(n);
  Rng data_rng(27);
  std::vector<Relation> atoms;
  for (int j = 0; j < n; ++j) {
    // Sparse joins (rows << domain^2, fanout ~1) keep the 8-way join
    // output small.
    atoms.push_back(GenerateUniform(data_rng, 60, 2, 60));
  }
  GymOptions options;
  options.optimized = true;

  Rng rng_a(28);
  Cluster chain_cluster(8, 5);
  const GymResult chain = GymJoin(chain_cluster, q, ChainGhd(q),
                                  Scatter(atoms, 8), rng_a, options);
  Rng rng_b(28);
  Cluster balanced_cluster(8, 5);
  const GymResult balanced = GymJoin(balanced_cluster, q, BalancedPathGhd(q),
                                     Scatter(atoms, 8), rng_b, options);
  EXPECT_LT(balanced.rounds, chain.rounds);
  EXPECT_TRUE(MultisetEqual(chain.output.Collect(),
                            balanced.output.Collect()));
}

TEST(GymTest, WidthTwoGhdMaterializesBags) {
  // Path-4 with two width-2 bags: {R1,R2} <- {R3,R4}.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  std::vector<GhdNode> nodes(2);
  nodes[0].atoms = {0, 1};
  nodes[0].parent = -1;
  nodes[1].atoms = {2, 3};
  nodes[1].parent = 0;
  const Ghd ghd = Ghd::FromNodes(q, nodes);
  ASSERT_TRUE(ghd.Validate(q).ok());

  Rng data_rng(29);
  Rng rng(30);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 120, 2, 10));
  }
  Cluster cluster(8, 5);
  const GymResult result =
      GymJoin(cluster, q, ghd, Scatter(atoms, 8), rng);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
  EXPECT_GT(result.max_bag_size, 0);
}

TEST(GymTest, GroupedWidthSweepAllCorrect) {
  const int len = 6;
  const ConjunctiveQuery q = ConjunctiveQuery::Path(len);
  Rng data_rng(41);
  std::vector<Relation> atoms;
  for (int j = 0; j < len; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 120, 2, 40));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  for (const int w : {1, 2, 3, 6}) {
    Cluster cluster(8, 5);
    Rng rng(42);
    GymOptions options;
    options.optimized = true;
    const GymResult result = GymJoin(cluster, q, GroupedPathGhd(q, w),
                                     Scatter(atoms, 8), rng, options);
    EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
        << "w=" << w;
  }
}

TEST(GymTest, FlatGhdIsOneBigBag) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng data_rng(31);
  Rng rng(32);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 100, 2, 8));
  }
  Cluster cluster(4, 5);
  const GymResult result =
      GymJoin(cluster, q, FlatGhd(q), Scatter(atoms, 4), rng);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
  // Materialization only: width-1 phases all trivial (single node).
  EXPECT_EQ(result.rounds, 2);
}

// Random acyclic queries: build a random join tree of binary atoms (each
// atom shares one variable with its parent atom and introduces one fresh
// variable), then check Yannakakis and GYM against the serial evaluator.
ConjunctiveQuery RandomAcyclicQuery(Rng& rng, int num_atoms) {
  std::vector<std::string> vars;
  std::vector<Atom> atoms;
  vars.push_back("v0");
  vars.push_back("v1");
  atoms.push_back({"A0", {0, 1}});
  for (int a = 1; a < num_atoms; ++a) {
    // Share a random existing variable, add a fresh one.
    const int shared = static_cast<int>(rng.Uniform(vars.size()));
    const int fresh = static_cast<int>(vars.size());
    vars.push_back("v" + std::to_string(fresh));
    atoms.push_back({"A" + std::to_string(a), {shared, fresh}});
  }
  return ConjunctiveQuery::Make(vars, atoms);
}

class RandomAcyclicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAcyclicTest, YannakakisAndGymMatchSerialReference) {
  Rng shape_rng(GetParam());
  const int num_atoms = 3 + static_cast<int>(shape_rng.Uniform(4));
  const ConjunctiveQuery q = RandomAcyclicQuery(shape_rng, num_atoms);
  ASSERT_TRUE(IsAcyclic(q)) << q.ToString();
  const auto tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.ok()) << q.ToString();

  Rng data_rng(GetParam() + 1000);
  std::vector<Relation> atoms;
  for (int j = 0; j < q.num_atoms(); ++j) {
    atoms.push_back(GenerateUniform(data_rng, 120, 2, 40));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  EXPECT_TRUE(MultisetEqual(YannakakisSerial(q, *tree, atoms), expected))
      << q.ToString();

  for (const bool optimized : {false, true}) {
    Cluster cluster(8, 5);
    Rng rng(GetParam() + 2000);
    GymOptions options;
    options.optimized = optimized;
    const GymResult result =
        GymJoin(cluster, q, *tree, Scatter(atoms, 8), rng, options);
    EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
        << q.ToString() << " optimized=" << optimized;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAcyclicTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(GymTest, LoadStaysNearInPlusOutOverP) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(3);
  Rng data_rng(33);
  Rng rng(34);
  const int64_t n = 3000;
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    // Unique center values: OUT stays small.
    atoms.push_back(GenerateMatchingDegree(data_rng, n, 1));
  }
  const int p = 8;
  Cluster cluster(p, 5);
  GymOptions options;
  options.optimized = true;
  const GymResult result =
      GymJoin(cluster, q, StarGhd(q), Scatter(atoms, p), rng, options);
  const int64_t in = 3 * n;
  const int64_t out = result.output.TotalSize();
  EXPECT_LT(cluster.cost_report().MaxLoadTuples(), 4 * (in + out) / p);
}

}  // namespace
}  // namespace mpcqp
