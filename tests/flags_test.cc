// The table-driven flag parser behind mpcqp_run: both flag spellings,
// checked numeric ranges, repeated key=value flags, aliases, switches,
// unknown-flag errors, and the generated help text.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"

namespace mpcqp {
namespace {

// argv adapter: gtest-side vector of strings -> char** with argv[0].
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("test"));
    for (std::string& arg : args_) {
      pointers_.push_back(arg.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, ParsesBothSpellingsAndTypes) {
  std::string name;
  int count = 0;
  int64_t big = 0;
  uint64_t seed = 0;
  double ratio = 0.0;
  bool toggled = true;
  bool flipped = false;

  FlagSet flags;
  flags.String("name", &name, "a string");
  flags.Int("count", &count, 1, 100, "an int");
  flags.Int64("big", &big, 1, INT64_MAX, "an int64");
  flags.Uint64("seed", &seed, "a uint64");
  flags.Double("ratio", &ratio, 0.0, "a double");
  flags.Bool("toggled", &toggled, "a bool");
  flags.Switch("flipped", &flipped, "a switch");

  Argv argv({"--name", "alpha", "--count=7", "--big", "5000000000",
             "--seed=18446744073709551615", "--ratio", "2.5",
             "--toggled=off", "--flipped"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(name, "alpha");
  EXPECT_EQ(count, 7);
  EXPECT_EQ(big, 5000000000LL);
  EXPECT_EQ(seed, UINT64_MAX);
  EXPECT_DOUBLE_EQ(ratio, 2.5);
  EXPECT_FALSE(toggled);
  EXPECT_TRUE(flipped);
}

TEST(FlagsTest, AliasAndRepeatedKeyValue) {
  int servers = 0;
  std::map<std::string, std::string> gens;
  FlagSet flags;
  flags.Int("servers", &servers, 1, 1 << 20, "cluster size", "-p");
  flags.KeyValue("gen", &gens, "generator specs");

  Argv argv({"-p", "64", "--gen", "R=uniform:10:5", "--gen=S=zipf:9:3:1.1",
             "--gen", "R=uniform:20:7"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(servers, 64);
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens["R"], "uniform:20:7");  // Later occurrence wins.
  EXPECT_EQ(gens["S"], "zipf:9:3:1.1");
}

TEST(FlagsTest, RejectsBadInput) {
  int count = 0;
  FlagSet flags;
  flags.Int("count", &count, 1, 10, "an int");

  {
    Argv argv({"--count", "11"});  // Out of range.
    const Status status = flags.Parse(argv.argc(), argv.argv());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("count"), std::string::npos);
  }
  {
    Argv argv({"--count", "seven"});  // Not a number.
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()).ok());
  }
  {
    Argv argv({"--count"});  // Missing value.
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()).ok());
  }
  {
    Argv argv({"--unknown", "x"});  // Unregistered flag.
    const Status status = flags.Parse(argv.argc(), argv.argv());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("unknown"), std::string::npos);
  }
  {
    Argv argv({"positional"});  // Not a flag at all.
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()).ok());
  }
}

TEST(FlagsTest, SwitchRejectsInlineValue) {
  bool flag = false;
  FlagSet flags;
  flags.Switch("verify", &flag, "a switch");
  Argv argv({"--verify=yes"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()).ok());
}

TEST(FlagsTest, HelpListsEveryFlag) {
  std::string name;
  int count = 0;
  bool quick = false;
  FlagSet flags;
  flags.String("name", &name, "the name to use");
  flags.Int("count", &count, 1, 10, "how many", "-c");
  flags.Switch("quick", &quick, "skip the slow path");

  const std::string help = flags.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("-c"), std::string::npos);
  EXPECT_NE(help.find("--quick"), std::string::npos);
  EXPECT_NE(help.find("the name to use"), std::string::npos);
  EXPECT_NE(help.find("skip the slow path"), std::string::npos);
}

TEST(FlagsTest, SplitKeyValueHelper) {
  std::string key, value;
  EXPECT_TRUE(SplitKeyValue("R=uniform:1:2", &key, &value));
  EXPECT_EQ(key, "R");
  EXPECT_EQ(value, "uniform:1:2");
  // Splits at the FIRST '='; the rest stays in the value.
  EXPECT_TRUE(SplitKeyValue("a=b=c", &key, &value));
  EXPECT_EQ(key, "a");
  EXPECT_EQ(value, "b=c");
  EXPECT_FALSE(SplitKeyValue("noequals", &key, &value));
}

}  // namespace
}  // namespace mpcqp
