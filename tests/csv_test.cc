#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "relation/csv.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

TEST(CsvTest, ParseSimple) {
  const auto rel = ParseCsvText("1,2,3\n4,5,6\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->arity(), 3);
  EXPECT_EQ(rel->size(), 2);
  EXPECT_EQ(rel->at(1, 2), 6u);
}

TEST(CsvTest, ParseHandlesSpacesBlankLinesAndCrlf) {
  const auto rel = ParseCsvText(" 1 , 2 \r\n\n3,4\r\n  \n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2);
  EXPECT_EQ(rel->at(0, 0), 1u);
  EXPECT_EQ(rel->at(1, 1), 4u);
}

TEST(CsvTest, ParseErrors) {
  EXPECT_FALSE(ParseCsvText("1,2\n3\n").ok());          // Ragged arity.
  EXPECT_FALSE(ParseCsvText("1,abc\n").ok());           // Non-numeric.
  EXPECT_FALSE(ParseCsvText("1,-2\n").ok());            // Negative.
  EXPECT_FALSE(ParseCsvText("1,,2\n").ok());            // Empty field.
  EXPECT_FALSE(ParseCsvText("").ok());                  // Unknown arity.
  EXPECT_TRUE(ParseCsvText("", /*expected_arity=*/2).ok());  // Known arity.
  EXPECT_FALSE(ParseCsvText("1,2\n", /*expected_arity=*/3).ok());
}

TEST(CsvTest, RoundTripText) {
  Rng rng(1);
  const Relation rel = GenerateUniform(rng, 500, 3, 1u << 31);
  const auto back = ParseCsvText(ToCsvText(rel));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(rel == *back);
}

TEST(CsvTest, RoundTripFile) {
  Rng rng(2);
  const Relation rel = GenerateUniform(rng, 200, 2, 1000);
  const std::string path = "/tmp/mpcqp_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(rel, path).ok());
  const auto back = ReadCsvFile(path, 2);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(rel == *back);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFile) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nope.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, MaxValueSurvives) {
  const auto rel = ParseCsvText("18446744073709551615\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->at(0, 0), ~Value{0});
}

TEST(CsvTest, OverflowIsAnErrorNamingTheLine) {
  // 2^64 used to wrap silently to 0; it must be rejected, and the error
  // must name the offending line.
  const auto rel = ParseCsvText("1,2\n18446744073709551616,3\n");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rel.status().message().find("line 2"), std::string::npos)
      << rel.status();
  EXPECT_NE(rel.status().message().find("18446744073709551616"),
            std::string::npos)
      << rel.status();
}

TEST(CsvTest, WildlyLongDigitStringIsAnError) {
  const auto rel = ParseCsvText("99999999999999999999999999999999\n");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, BogusExpectedArityIsAnError) {
  // -1 means "infer"; anything below that is a caller bug, not "infer".
  const auto rel = ParseCsvText("1,2\n", /*expected_arity=*/-2);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mpcqp
