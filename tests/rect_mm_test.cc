#include <gtest/gtest.h>

#include <tuple>

#include "matmul/rect_mm.h"
#include "mpc/cluster.h"

namespace mpcqp {
namespace {

class RectMmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(RectMmTest, MatchesSerialOneRound) {
  const auto [m, k, n, p] = GetParam();
  Rng rng(1);
  Cluster cluster(p, 3);
  const Matrix a = RandomMatrix(rng, m, k, 12);
  const Matrix b = RandomMatrix(rng, k, n, 12);
  const RectMmResult result = GeneralRectangleMm(cluster, a, b);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
  EXPECT_LE(result.grid_rows * result.grid_cols, p);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RectMmTest,
    ::testing::Combine(::testing::Values(4, 16, 33), ::testing::Values(8, 24),
                       ::testing::Values(5, 16), ::testing::Values(1, 6, 16)));

TEST(RectMmTest, TallSkinnyGridFollowsShape) {
  // A very tall A (m >> n): the optimal grid splits rows, not columns.
  Rng rng(2);
  Cluster cluster(16, 3);
  const Matrix a = RandomMatrix(rng, 256, 8, 5);
  const Matrix b = RandomMatrix(rng, 8, 4, 5);
  const RectMmResult result = GeneralRectangleMm(cluster, a, b);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
  EXPECT_GT(result.grid_rows, result.grid_cols);
}

TEST(RectMmTest, VectorTimesMatrix) {
  Rng rng(3);
  Cluster cluster(8, 3);
  const Matrix a = RandomMatrix(rng, 1, 32, 9);
  const Matrix b = RandomMatrix(rng, 32, 16, 9);
  const RectMmResult result = GeneralRectangleMm(cluster, a, b);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
  EXPECT_EQ(result.grid_rows, 1);
}

TEST(RectMmTest, SquareCaseAgreesWithSpecializedAlgorithm) {
  Rng rng(4);
  const Matrix a = RandomMatrix(rng, 32, 32, 10);
  const Matrix b = RandomMatrix(rng, 32, 32, 10);
  Cluster cluster(16, 3);
  const RectMmResult result = GeneralRectangleMm(cluster, a, b);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
  // Balanced problem -> balanced grid.
  EXPECT_EQ(result.grid_rows, result.grid_cols);
}

}  // namespace
}  // namespace mpcqp
