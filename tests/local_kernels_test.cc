// Tests for the local-compute kernels behind the free-compute side of the
// MPC model: the flat arena KeyIndex, the parallel sort kernel, and the
// FlatCounter used by the statistics paths. The common thread is the
// determinism contract — every kernel must produce bit-identical results
// for every thread count.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_counter.h"
#include "common/parallel_sort.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "relation/key_index.h"
#include "relation/relation.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<int64_t> ToVec(std::span<const int64_t> s) {
  return std::vector<int64_t>(s.begin(), s.end());
}

// Reference grouping: key -> ascending row indices, by exact key columns.
std::map<std::vector<Value>, std::vector<int64_t>> BruteForceGroups(
    const Relation& rel, const std::vector<int>& key_cols) {
  std::map<std::vector<Value>, std::vector<int64_t>> groups;
  for (int64_t i = 0; i < rel.size(); ++i) {
    std::vector<Value> key;
    for (int c : key_cols) key.push_back(rel.at(i, c));
    groups[key].push_back(i);
  }
  return groups;
}

TEST(KeyIndexTest, LookupReturnsAscendingRowIndices) {
  const Relation rel = Relation::FromRows(
      {{7, 1}, {3, 2}, {7, 3}, {5, 4}, {7, 5}, {3, 6}});
  const KeyIndex index(rel, {0});
  const Value seven = 7;
  EXPECT_EQ(ToVec(index.Lookup(&seven)), (std::vector<int64_t>{0, 2, 4}));
  const Value three = 3;
  EXPECT_EQ(ToVec(index.Lookup(&three)), (std::vector<int64_t>{1, 5}));
  const Value five = 5;
  EXPECT_EQ(ToVec(index.Lookup(&five)), (std::vector<int64_t>{3}));
  const Value missing = 42;
  EXPECT_TRUE(index.Lookup(&missing).empty());
  EXPECT_FALSE(index.Contains(&missing));
  EXPECT_TRUE(index.Contains(&seven));
  EXPECT_EQ(index.num_distinct_keys(), 3);
}

// The seed index documented a footgun: a hit's reference was invalidated
// by the next *missed* probe (the miss inserted nothing but returned a
// shared empty vector... until a rehash moved the buckets). The arena
// index removes the hazard by construction: spans stay valid for the
// index's lifetime across any probe sequence.
TEST(KeyIndexTest, HitSpanSurvivesInterveningMissedProbes) {
  Rng rng(11);
  const Relation rel = GenerateUniform(rng, 5000, 2, 500);
  const KeyIndex index(rel, {0});

  const Value present = rel.at(1234, 0);
  const std::span<const int64_t> hit = index.Lookup(&present);
  ASSERT_FALSE(hit.empty());
  const std::vector<int64_t> snapshot = ToVec(hit);

  // Hammer the index with misses (and more hits) after taking the span.
  for (Value v = 1000000; v < 1002000; ++v) {
    EXPECT_TRUE(index.Lookup(&v).empty());
  }
  for (int64_t i = 0; i < rel.size(); i += 7) {
    const Value v = rel.at(i, 0);
    EXPECT_FALSE(index.Lookup(&v).empty());
  }

  EXPECT_EQ(ToVec(hit), snapshot);  // Still the same arena bytes.
}

// Distinct keys forced onto equal 64-bit hashes must still be grouped by
// exact key, and num_distinct_keys must count keys, not hash values.
TEST(KeyIndexTest, DistinctKeysCollidingOnHashStaySeparate) {
  const Relation rel = Relation::FromRows(
      {{1, 10}, {2, 20}, {1, 11}, {3, 30}, {2, 21}, {1, 12}});
  // Every key hashes to the same value: the whole index is one probe
  // chain, resolved only by exact-key verification.
  const KeyIndex index(
      rel, {0}, [](const Value*, int) -> uint64_t { return 0x1234; });

  const Value one = 1, two = 2, three = 3, missing = 9;
  EXPECT_EQ(ToVec(index.Lookup(&one)), (std::vector<int64_t>{0, 2, 5}));
  EXPECT_EQ(ToVec(index.Lookup(&two)), (std::vector<int64_t>{1, 4}));
  EXPECT_EQ(ToVec(index.Lookup(&three)), (std::vector<int64_t>{3}));
  EXPECT_TRUE(index.Lookup(&missing).empty());
  EXPECT_EQ(index.num_distinct_keys(), 3);
}

// Same, but large enough to cross the partitioned-build threshold and with
// a pool, with hashes that collide in pairs.
TEST(KeyIndexTest, PairwiseCollisionsLargeParallelBuild) {
  Rng rng(13);
  const Relation rel = GenerateUniform(rng, 40000, 2, 1000);
  ThreadPool pool(8);
  const KeyIndex index(
      rel, {0},
      [](const Value* key, int) -> uint64_t { return key[0] / 2; }, &pool);

  const auto groups = BruteForceGroups(rel, {0});
  EXPECT_EQ(index.num_distinct_keys(),
            static_cast<int64_t>(groups.size()));
  for (const auto& [key, rows] : groups) {
    EXPECT_EQ(ToVec(index.Lookup(key.data())), rows);
  }
}

TEST(KeyIndexTest, ParityWithBruteForceAcrossThreadCounts) {
  Rng rng(17);
  // Large enough that the build partitions and morsel-parallelizes.
  const Relation rel = GenerateUniform(rng, 60000, 3, 4000);
  const std::vector<int> key_cols = {1, 2};
  const auto groups = BruteForceGroups(rel, key_cols);

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const KeyIndex index(rel, key_cols, &pool);
    EXPECT_EQ(index.num_distinct_keys(),
              static_cast<int64_t>(groups.size()))
        << "threads=" << threads;
    for (const auto& [key, rows] : groups) {
      ASSERT_EQ(ToVec(index.Lookup(key.data())), rows)
          << "threads=" << threads;
    }
    const std::vector<Value> missing = {5000, 5000};
    EXPECT_TRUE(index.Lookup(missing.data()).empty());
  }
}

TEST(KeyIndexTest, EmptyAndTinyViews) {
  const Relation empty(2);
  const KeyIndex index(empty, {0});
  const Value v = 1;
  EXPECT_TRUE(index.Lookup(&v).empty());
  EXPECT_EQ(index.num_distinct_keys(), 0);

  const Relation one = Relation::FromRows({{9, 9}});
  ThreadPool pool(8);
  const KeyIndex single(one, {0, 1}, &pool);
  const std::vector<Value> key = {9, 9};
  EXPECT_EQ(ToVec(single.Lookup(key.data())), (std::vector<int64_t>{0}));
  EXPECT_EQ(single.num_distinct_keys(), 1);
}

// ---- Parallel sort kernel. ----

std::vector<uint64_t> MakePattern(const std::string& kind, int64_t n) {
  std::vector<uint64_t> v(static_cast<size_t>(n));
  Rng rng(23);
  for (int64_t i = 0; i < n; ++i) {
    if (kind == "duplicate_heavy") {
      v[i] = rng.Uniform(8);  // ~n/8 copies of each value.
    } else if (kind == "presorted") {
      v[i] = static_cast<uint64_t>(i);
    } else if (kind == "reverse") {
      v[i] = static_cast<uint64_t>(n - i);
    } else {
      v[i] = rng.Uniform(1u << 30);
    }
  }
  return v;
}

TEST(ParallelSortTest, MatchesStdSortOnAdversarialPatterns) {
  // Above kParallelSortMinItems so pools > 1 take the chunk+merge path.
  const int64_t n = kParallelSortMinItems * 3 + 1;
  for (const std::string kind :
       {"duplicate_heavy", "presorted", "reverse", "random"}) {
    std::vector<uint64_t> want = MakePattern(kind, n);
    std::sort(want.begin(), want.end());
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      std::vector<uint64_t> got = MakePattern(kind, n);
      ParallelSort(&pool, got, std::less<uint64_t>());
      EXPECT_EQ(got, want) << kind << " threads=" << threads;
    }
  }
}

TEST(ParallelSortTest, SmallInputsAndEdgeSizes) {
  for (const int64_t n : {0, 1, 2, 3, 17}) {
    for (const int threads : {1, 8}) {
      ThreadPool pool(threads);
      std::vector<uint64_t> got = MakePattern("random", n);
      std::vector<uint64_t> want = got;
      std::sort(want.begin(), want.end());
      ParallelSort(&pool, got, std::less<uint64_t>());
      EXPECT_EQ(got, want) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(SortRowsBufferTest, RowSortBitIdenticalAcrossThreadCounts) {
  Rng rng(29);
  // Duplicate-heavy keys: ties are broken by the remaining columns, so the
  // sorted bytes must not depend on chunk layout or thread count.
  const Relation input = GenerateUniform(rng, 50000, 3, 40);

  Relation serial = input;
  serial.SortRowsBy({1});  // No pool: the historic serial path.
  for (int64_t i = 1; i < serial.size(); ++i) {
    EXPECT_LE(serial.at(i - 1, 1), serial.at(i, 1));
  }

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    Relation parallel = input;
    parallel.SortRowsBy({1}, &pool);
    EXPECT_TRUE(parallel == serial) << "threads=" << threads;
  }
}

TEST(SortRowsBufferTest, FullRowSortMatchesSerial) {
  Rng rng(31);
  const Relation input = GenerateUniform(rng, 40000, 2, 100);
  Relation serial = input;
  serial.SortRows();
  ThreadPool pool(8);
  Relation parallel = input;
  parallel.SortRows(&pool);
  EXPECT_TRUE(parallel == serial);
}

// ---- FlatCounter. ----

TEST(FlatCounterTest, MatchesMapSemantics) {
  Rng rng(37);
  FlatCounter counter;  // Default capacity: forces several growths.
  std::map<uint64_t, int64_t> want;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.Uniform(3000);
    counter.Add(key);
    ++want[key];
  }
  counter.Add(7777777, 5);  // Explicit delta.
  want[7777777] += 5;

  EXPECT_EQ(counter.num_keys(), static_cast<int64_t>(want.size()));
  EXPECT_EQ(counter.Get(999999999), 0);  // Never added.
  std::vector<std::pair<uint64_t, int64_t>> want_entries(want.begin(),
                                                         want.end());
  EXPECT_EQ(counter.SortedEntries(), want_entries);
  for (const auto& [key, count] : want_entries) {
    EXPECT_EQ(counter.Get(key), count);
  }
}

TEST(FlatCounterTest, PresizedAndEmpty) {
  const FlatCounter empty;
  EXPECT_EQ(empty.num_keys(), 0);
  EXPECT_TRUE(empty.SortedEntries().empty());

  FlatCounter presized(1000);
  for (uint64_t k = 0; k < 1000; ++k) presized.Add(k, static_cast<int64_t>(k));
  EXPECT_EQ(presized.num_keys(), 1000);
  EXPECT_EQ(presized.Get(0), 0);  // Inserted with count 0.
  EXPECT_EQ(presized.Get(999), 999);
}

}  // namespace
}  // namespace mpcqp
