// Kernel-level tests for common/simd.{h,cc}: every vectorized kernel must
// be bit-identical to a hand-written reference loop at every dispatch
// level this machine can run, across the awkward sizes the vector rewrite
// introduces (count 0, below one lane, non-multiple-of-lane tails) and
// the boundary inputs the lane tricks care about (values straddling the
// sign bit for the flipped unsigned compares, num_buckets = 1, full-range
// masks). The references here are written out longhand on purpose — they
// must not share code with the library's own scalar fallback.

#include "common/simd.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/hash.h"
#include "gtest/gtest.h"

namespace mpcqp {
namespace {

using simd::IsaLevel;

// Every level worth exercising on this machine. Requesting a level above
// what the hardware/compile caps allow clamps down inside the dispatcher,
// so the list dedupes by what actually got dispatched.
std::vector<IsaLevel> LevelsUnderTest() {
  std::vector<IsaLevel> levels;
  for (IsaLevel req : {IsaLevel::kScalar, IsaLevel::kSse4, IsaLevel::kNeon,
                       IsaLevel::kAvx2}) {
    simd::ScopedIsaOverride over(req);
    const IsaLevel got = simd::DispatchedIsa();
    bool seen = false;
    for (IsaLevel l : levels) seen = seen || l == got;
    if (!seen) levels.push_back(got);
  }
  return levels;
}

// Counts that hit every tail shape for 2-, 4-, and 8-wide lanes.
const int64_t kCounts[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 1000};

// A deterministic value stream with sign-bit coverage: weyl-sequence
// values, plus planted extremes at the front.
std::vector<uint64_t> TestValues(int64_t count) {
  std::vector<uint64_t> values(static_cast<size_t>(count));
  const uint64_t extremes[] = {0, 1, std::numeric_limits<uint64_t>::max(),
                               uint64_t{1} << 63, (uint64_t{1} << 63) - 1};
  for (int64_t i = 0; i < count; ++i) {
    values[i] = i < 5 ? extremes[i] : static_cast<uint64_t>(i) *
                                          11400714819323198485ULL;
  }
  return values;
}

uint64_t RefSplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(SplitMix64Test, KnownVectors) {
  // Reference values from the canonical splitmix64 (Steele–Lea–Flood).
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(SplitMix64(0xdeadbeefULL), 0x4adfb90f68c9eb9bULL);
}

TEST(SplitMix64Test, MatchesLonghandReference) {
  for (uint64_t v : TestValues(100)) {
    EXPECT_EQ(SplitMix64(v), RefSplitMix64(v));
  }
}

TEST(IsaLevelTest, ParseRoundTripsEveryName) {
  for (IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSse4, IsaLevel::kNeon,
                         IsaLevel::kAvx2}) {
    IsaLevel parsed = IsaLevel::kScalar;
    ASSERT_TRUE(simd::ParseIsaLevel(simd::IsaLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  IsaLevel ignored;
  EXPECT_FALSE(simd::ParseIsaLevel("", &ignored));
  EXPECT_FALSE(simd::ParseIsaLevel("avx512", &ignored));
  EXPECT_FALSE(simd::ParseIsaLevel("Scalar", &ignored));
}

TEST(IsaLevelTest, OverrideForcesScalarAndClampsOverAsks) {
  {
    simd::ScopedIsaOverride over(IsaLevel::kScalar);
    EXPECT_EQ(simd::DispatchedIsa(), IsaLevel::kScalar);
  }
  {
    // Asking for more than the hardware has must clamp, never fault.
    simd::ScopedIsaOverride over(IsaLevel::kAvx2);
    EXPECT_LE(static_cast<int>(simd::DispatchedIsa()),
              static_cast<int>(simd::DetectedIsa()));
    std::vector<uint64_t> out(8);
    simd::HashMany(TestValues(8).data(), 8, 0x1234, out.data());
  }
  EXPECT_LE(static_cast<int>(simd::DispatchedIsa()),
            static_cast<int>(simd::DetectedIsa()));
}

TEST(SimdKernelTest, HashManyMatchesReferenceAtEveryLevel) {
  const uint64_t whitening = 0xa0761d6478bd642fULL;
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int64_t count : kCounts) {
      const std::vector<uint64_t> values = TestValues(count);
      std::vector<uint64_t> out(static_cast<size_t>(count) + 1, 0xcc);
      simd::HashMany(values.data(), count, whitening, out.data());
      for (int64_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], RefSplitMix64(values[i] ^ whitening))
            << "level " << simd::IsaLevelName(level) << " count " << count
            << " index " << i;
      }
      EXPECT_EQ(out[static_cast<size_t>(count)], 0xccu) << "overwrote tail";
    }
  }
}

TEST(SimdKernelTest, BucketManyMatchesReferenceAtEveryLevel) {
  const uint64_t whitening = 0x1d8af066ULL;
  // num_buckets = 1 (everything lands in 0) and the top of the allowed
  // range stress the multiply-shift reduce.
  const int kBuckets[] = {1, 2, 3, 7, 64, 1000, 1 << 30, 0x7fffffff};
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int64_t count : kCounts) {
      const std::vector<uint64_t> values = TestValues(count);
      std::vector<int32_t> out(static_cast<size_t>(count), -1);
      for (int buckets : kBuckets) {
        simd::BucketMany(values.data(), count, whitening, buckets,
                         out.data());
        for (int64_t i = 0; i < count; ++i) {
          const uint64_t h = RefSplitMix64(values[i] ^ whitening);
          const auto expected = static_cast<int32_t>(
              (static_cast<unsigned __int128>(h) * buckets) >> 64);
          ASSERT_EQ(out[i], expected)
              << "level " << simd::IsaLevelName(level) << " count " << count
              << " buckets " << buckets << " index " << i;
          ASSERT_GE(out[i], 0);
          ASSERT_LT(out[i], buckets);
        }
      }
    }
  }
}

TEST(SimdKernelTest, GroupHashManyMatchesReferenceAtEveryLevel) {
  const uint64_t seed = 0x9e3779b97f4a7c15ULL;
  const uint64_t kMasks[] = {~uint64_t{0}, (uint64_t{1} << 20) - 1, 1, 0};
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int64_t count : kCounts) {
      const std::vector<uint64_t> keys = TestValues(count);
      std::vector<uint64_t> out(static_cast<size_t>(count), 0xcc);
      for (uint64_t mask : kMasks) {
        simd::GroupHashMany(keys.data(), count, seed, mask, out.data());
        for (int64_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i],
                    RefSplitMix64(seed ^ RefSplitMix64(keys[i])) & mask)
              << "level " << simd::IsaLevelName(level) << " count " << count
              << " mask " << mask << " index " << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, CountAndFillInRangeMatchReferenceAtEveryLevel) {
  // Ranges chosen to straddle the sign bit (the vector compare flips it),
  // hit empty (lo > hi), full, and single-value selections.
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  const uint64_t kHalf = uint64_t{1} << 63;
  const struct {
    uint64_t lo, hi;
  } kRanges[] = {{0, kMax},          {1, 0},         {5, 5},
                 {kHalf - 2, kHalf + 2}, {0, kHalf}, {kHalf, kMax},
                 {100, 100000}};
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int64_t count : kCounts) {
      const std::vector<uint64_t> values = TestValues(count);
      for (const auto& range : kRanges) {
        std::vector<int64_t> expected;
        for (int64_t i = 0; i < count; ++i) {
          if (values[i] >= range.lo && values[i] <= range.hi) {
            expected.push_back(1000 + i);
          }
        }
        ASSERT_EQ(simd::CountInRange(values.data(), count, range.lo,
                                     range.hi),
                  static_cast<int64_t>(expected.size()))
            << "level " << simd::IsaLevelName(level) << " count " << count
            << " range [" << range.lo << ", " << range.hi << "]";
        // Exactly-sized output + one canary slot past the end: the
        // capacity contract says the kernel never writes beyond it.
        std::vector<int64_t> out(expected.size() + 1, -7);
        const int64_t written = simd::FillInRange(
            values.data(), count, 1000, range.lo, range.hi, out.data(),
            static_cast<int64_t>(expected.size()));
        ASSERT_EQ(written, static_cast<int64_t>(expected.size()));
        for (size_t i = 0; i < expected.size(); ++i) {
          ASSERT_EQ(out[i], expected[i])
              << "level " << simd::IsaLevelName(level) << " count " << count
              << " range [" << range.lo << ", " << range.hi << "] index "
              << i;
        }
        EXPECT_EQ(out[expected.size()], -7) << "wrote past capacity";
      }
    }
  }
}

TEST(SimdKernelTest, GatherStrideMatchesReferenceAtEveryLevel) {
  const int64_t kStrides[] = {1, 2, 3, 5, 8, 17};
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int64_t count : kCounts) {
      for (int64_t stride : kStrides) {
        const std::vector<uint64_t> data = TestValues(count * stride + 1);
        std::vector<uint64_t> out(static_cast<size_t>(count), 0xcc);
        simd::GatherStride(data.data(), stride, count, out.data());
        for (int64_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i], data[static_cast<size_t>(i * stride)])
              << "level " << simd::IsaLevelName(level) << " count " << count
              << " stride " << stride << " index " << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, GatherIndexedMatchesReferenceAtEveryLevel) {
  const int64_t kStrides[] = {1, 3, 8};
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int64_t count : kCounts) {
      for (int64_t stride : kStrides) {
        for (int64_t offset = 0; offset < stride; offset += stride - 1) {
          const int64_t rows = 2 * count + 3;
          const std::vector<uint64_t> data =
              TestValues(rows * stride + offset);
          // Out-of-order, repeating indices (selection vectors repeat
          // nothing, but the kernel shouldn't care).
          std::vector<int64_t> indices(static_cast<size_t>(count));
          for (int64_t i = 0; i < count; ++i) {
            indices[static_cast<size_t>(i)] = (i * 7 + 3) % rows;
          }
          std::vector<uint64_t> out(static_cast<size_t>(count), 0xcc);
          simd::GatherIndexed(data.data(), indices.data(), count, stride,
                              offset, out.data());
          for (int64_t i = 0; i < count; ++i) {
            ASSERT_EQ(out[i],
                      data[static_cast<size_t>(indices[i] * stride + offset)])
                << "level " << simd::IsaLevelName(level) << " count "
                << count << " stride " << stride << " offset " << offset
                << " index " << i;
          }
          if (stride == 1) break;  // offset loop degenerates at stride 1.
        }
      }
    }
  }
}

TEST(SimdKernelTest, HistogramTopBitsMatchesReferenceAtEveryLevel) {
  for (IsaLevel level : LevelsUnderTest()) {
    simd::ScopedIsaOverride over(level);
    for (int bits : {1, 6, 8}) {
      const int parts = 1 << bits;
      // Cover both the short direct path and the interleaved
      // sub-histogram path (cutover at 1024), plus a skewed stream that
      // hammers one bucket.
      for (int64_t count : {int64_t{0}, int64_t{5}, int64_t{1023},
                            int64_t{1024}, int64_t{5000}}) {
        std::vector<uint64_t> hashes(static_cast<size_t>(count));
        for (int64_t i = 0; i < count; ++i) {
          hashes[static_cast<size_t>(i)] =
              i % 3 == 0 ? ~uint64_t{0}  // Repeated top bucket.
                         : RefSplitMix64(static_cast<uint64_t>(i));
        }
        std::vector<int64_t> expected(static_cast<size_t>(parts), 7);
        for (int64_t i = 0; i < count; ++i) {
          ++expected[static_cast<size_t>(hashes[i] >> (64 - bits))];
        }
        // Accumulation semantics: pre-seeded counts are added to.
        std::vector<int64_t> counts(static_cast<size_t>(parts), 7);
        simd::HistogramTopBits(hashes.data(), count, bits, counts.data());
        ASSERT_EQ(counts, expected)
            << "level " << simd::IsaLevelName(level) << " bits " << bits
            << " count " << count;
      }
    }
  }
}

// The library's own cross-check: whatever the hardware dispatches by
// default must agree with a forced-scalar run on a large mixed workload —
// the same guarantee the determinism suite proves end-to-end, pinned at
// the kernel boundary.
TEST(SimdKernelTest, DefaultDispatchAgreesWithForcedScalar) {
  const int64_t n = 4096 + 3;
  const std::vector<uint64_t> values = TestValues(n);
  std::vector<uint64_t> hashed_default(static_cast<size_t>(n));
  std::vector<int32_t> buckets_default(static_cast<size_t>(n));
  simd::HashMany(values.data(), n, 0xabcdef, hashed_default.data());
  simd::BucketMany(values.data(), n, 0xabcdef, 4999, buckets_default.data());
  const int64_t in_range_default =
      simd::CountInRange(values.data(), n, 1000, uint64_t{1} << 62);

  simd::ScopedIsaOverride over(IsaLevel::kScalar);
  std::vector<uint64_t> hashed_scalar(static_cast<size_t>(n));
  std::vector<int32_t> buckets_scalar(static_cast<size_t>(n));
  simd::HashMany(values.data(), n, 0xabcdef, hashed_scalar.data());
  simd::BucketMany(values.data(), n, 0xabcdef, 4999, buckets_scalar.data());
  EXPECT_EQ(hashed_default, hashed_scalar);
  EXPECT_EQ(buckets_default, buckets_scalar);
  EXPECT_EQ(in_range_default,
            simd::CountInRange(values.data(), n, 1000, uint64_t{1} << 62));
}

}  // namespace
}  // namespace mpcqp
