// Locks the observability layer's contracts:
//   * metrics/tracing never perturb results — CostReports are identical
//     with tracing on or off, and the deterministic StatsReport columns
//     (rounds, labels, tuple/value/byte counts, fragment peaks) agree
//     across thread counts;
//   * MpcMetrics rounds align 1:1 with CostReport rounds;
//   * both JSON sinks (Chrome trace, StatsReport) emit syntactically
//     valid JSON;
//   * a disabled Tracer records nothing;
//   * COW payload detaches bump the process-wide TraceCounters.
//
// Wall times and COW detach counts are intentionally NOT compared across
// thread counts: they are real measurements, not simulated quantities.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/metrics.h"
#include "multiway/hypercube.h"
#include "query/query.h"
#include "relation/relation.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// Minimal recursive-descent JSON syntax checker, enough to reject the
// classic emission bugs (trailing commas, unescaped quotes, bare NaN).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Raw control.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Shared fixture: every test starts with tracing off and an empty buffer
// (the Tracer is process-global).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

StatsReport RunTriangle(int threads, bool tracing) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(7);
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(
        DistRelation::Scatter(GenerateUniform(rng, 600, 2, 300), 8));
  }
  if (tracing) Tracer::Get().Enable();
  ClusterOptions options;
  options.num_threads = threads;
  Cluster cluster(8, 42, options);
  HyperCubeJoin(cluster, q, atoms);
  if (tracing) Tracer::Get().Disable();
  return BuildStatsReport(cluster);
}

TEST_F(TraceTest, StatsDeterministicColumnsAgreeAcrossThreadCounts) {
  const StatsReport a = RunTriangle(/*threads=*/1, /*tracing=*/false);
  const StatsReport b = RunTriangle(/*threads=*/8, /*tracing=*/false);
  ASSERT_EQ(a.num_rounds, b.num_rounds);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.max_load_tuples, b.max_load_tuples);
  EXPECT_EQ(a.max_load_values, b.max_load_values);
  EXPECT_EQ(a.total_comm_tuples, b.total_comm_tuples);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.peak_fragment_rows, b.peak_fragment_rows);
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].label, b.rounds[i].label);
    EXPECT_EQ(a.rounds[i].max_tuples_received, b.rounds[i].max_tuples_received);
    EXPECT_EQ(a.rounds[i].total_tuples_received,
              b.rounds[i].total_tuples_received);
    EXPECT_EQ(a.rounds[i].max_values_received, b.rounds[i].max_values_received);
    EXPECT_EQ(a.rounds[i].total_values_received,
              b.rounds[i].total_values_received);
    EXPECT_EQ(a.rounds[i].bytes_received, b.rounds[i].bytes_received);
    EXPECT_EQ(a.rounds[i].peak_fragment_rows, b.rounds[i].peak_fragment_rows);
  }
}

TEST_F(TraceTest, BytesAreValuesTimesValueWidth) {
  const StatsReport stats = RunTriangle(/*threads=*/1, /*tracing=*/false);
  ASSERT_FALSE(stats.rounds.empty());
  for (const StatsReport::Round& round : stats.rounds) {
    EXPECT_EQ(round.bytes_received,
              round.total_values_received *
                  static_cast<int64_t>(sizeof(Value)));
  }
}

TEST_F(TraceTest, TracingDoesNotPerturbTheCostReport) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(9);
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(
        DistRelation::Scatter(GenerateUniform(rng, 400, 2, 200), 8));
  }
  auto run = [&](bool tracing) {
    if (tracing) Tracer::Get().Enable();
    Cluster cluster(8, 42);
    HyperCubeJoin(cluster, q, atoms);
    if (tracing) Tracer::Get().Disable();
    return cluster.cost_report().ToString();
  };
  const std::string off = run(false);
  const std::string on = run(true);
  EXPECT_EQ(off, on);
  EXPECT_GT(Tracer::Get().event_count(), 0);
}

TEST_F(TraceTest, MetricsRoundsAlignWithCostReportRounds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(11);
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(
        DistRelation::Scatter(GenerateUniform(rng, 300, 2, 150), 8));
  }
  Cluster cluster(8, 42);
  HyperCubeJoin(cluster, q, atoms);
  const CostReport& costs = cluster.cost_report();
  const MpcMetrics& metrics = cluster.metrics();
  ASSERT_EQ(metrics.rounds().size(), costs.rounds().size());
  for (size_t i = 0; i < metrics.rounds().size(); ++i) {
    EXPECT_EQ(metrics.rounds()[i].label, costs.rounds()[i].label);
    EXPECT_GE(metrics.rounds()[i].wall_ms, 0.0);
  }
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::Get().enabled());
  {
    MPCQP_TRACE_SCOPE("should not appear", "test");
    MPCQP_TRACE_SCOPE_ARG("nor this", "test", 3);
    MPCQP_TRACE_COUNTER("nor this counter", 5);
  }
  Tracer::Get().RecordComplete("direct", "test", 0, 10);
  Tracer::Get().RecordCounter("direct counter", 1);
  EXPECT_EQ(Tracer::Get().event_count(), 0);
  // And the empty buffer still renders as valid JSON.
  EXPECT_TRUE(JsonChecker(Tracer::Get().ToChromeJson()).Valid());
}

TEST_F(TraceTest, ChromeJsonIsStructurallyValid) {
  Tracer::Get().Enable();
  {
    MPCQP_TRACE_SCOPE("outer \"quoted\" name", "test");
    MPCQP_TRACE_SCOPE_ARG("inner", "test", 4);
    MPCQP_TRACE_COUNTER("tuples", 123);
  }
  Tracer::Get().Disable();
  EXPECT_GE(Tracer::Get().event_count(), 3);
  const std::string json = Tracer::Get().ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(TraceTest, StatsJsonIsStructurallyValid) {
  const StatsReport stats = RunTriangle(/*threads=*/1, /*tracing=*/false);
  const std::string json = stats.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
}

TEST_F(TraceTest, JsonCheckerRejectsBrokenJson) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, 2.5, -3e2, \"x\\n\"]}").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1,}").Valid());   // Trailing comma.
  EXPECT_FALSE(JsonChecker("{\"a\": nan}").Valid());  // Bare NaN.
  EXPECT_FALSE(JsonChecker("{\"a\" 1}").Valid());     // Missing colon.
  EXPECT_FALSE(JsonChecker("\"unterminated").Valid());
  EXPECT_FALSE(JsonChecker("{} extra").Valid());
}

TEST_F(TraceTest, CowDetachBumpsTheProcessCounters) {
  const int64_t detaches_before =
      TraceCounters::cow_detaches.load(std::memory_order_relaxed);
  const int64_t bytes_before =
      TraceCounters::cow_detach_bytes.load(std::memory_order_relaxed);

  Relation original(2);
  original.AppendRow({1, 2});
  original.AppendRow({3, 4});
  Relation copy = original;        // Shared payload (COW handle).
  copy.AppendRow({5, 6});          // Forces the detach clone.

  const int64_t detaches =
      TraceCounters::cow_detaches.load(std::memory_order_relaxed) -
      detaches_before;
  const int64_t bytes =
      TraceCounters::cow_detach_bytes.load(std::memory_order_relaxed) -
      bytes_before;
  EXPECT_EQ(detaches, 1);
  EXPECT_EQ(bytes, static_cast<int64_t>(4 * sizeof(Value)));
}

}  // namespace
}  // namespace mpcqp
