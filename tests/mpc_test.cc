#include <gtest/gtest.h>

#include <vector>

#include "mpc/cluster.h"
#include "mpc/cost.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// ---------- DistRelation ----------

TEST(DistRelationTest, ScatterSplitsEvenly) {
  Rng rng(1);
  const Relation input = GenerateUniform(rng, 100, 2, 1000);
  const DistRelation dist = DistRelation::Scatter(input, 8);
  EXPECT_EQ(dist.TotalSize(), 100);
  for (int s = 0; s < 8; ++s) {
    EXPECT_GE(dist.fragment(s).size(), 100 / 8);
    EXPECT_LE(dist.fragment(s).size(), 100 / 8 + 1);
  }
  EXPECT_TRUE(MultisetEqual(dist.Collect(), input));
}

TEST(DistRelationTest, ScatterMoreServersThanRows) {
  const Relation input = Relation::FromRows({{1, 2}, {3, 4}});
  const DistRelation dist = DistRelation::Scatter(input, 16);
  EXPECT_EQ(dist.TotalSize(), 2);
  EXPECT_EQ(dist.MaxFragmentSize(), 1);
}

TEST(DistRelationTest, FromFragmentsChecksArity) {
  std::vector<Relation> frags;
  frags.push_back(Relation::FromRows({{1, 2}}));
  frags.push_back(Relation(2));
  const DistRelation dist = DistRelation::FromFragments(std::move(frags));
  EXPECT_EQ(dist.num_servers(), 2);
  EXPECT_EQ(dist.arity(), 2);
}

// ---------- Cluster metering ----------

TEST(ClusterTest, RoundBookkeeping) {
  Cluster cluster(4, 1);
  EXPECT_EQ(cluster.cost_report().num_rounds(), 0);
  cluster.BeginRound("r1");
  cluster.RecordMessage(0, 1, 10, 20);
  cluster.RecordMessage(2, 1, 5, 10);
  cluster.EndRound();
  ASSERT_EQ(cluster.cost_report().num_rounds(), 1);
  const RoundCost& round = cluster.cost_report().rounds()[0];
  EXPECT_EQ(round.label, "r1");
  EXPECT_EQ(round.tuples_received[1], 15);
  EXPECT_EQ(round.values_received[1], 30);
  EXPECT_EQ(round.tuples_sent[0], 10);
  EXPECT_EQ(round.MaxTuplesReceived(), 15);
  EXPECT_EQ(round.TotalTuplesReceived(), 15);
}

TEST(ClusterTest, ReportAggregates) {
  Cluster cluster(2, 1);
  cluster.BeginRound("a");
  cluster.RecordMessage(0, 1, 7, 7);
  cluster.EndRound();
  cluster.BeginRound("b");
  cluster.RecordMessage(1, 0, 3, 3);
  cluster.EndRound();
  EXPECT_EQ(cluster.cost_report().num_rounds(), 2);
  EXPECT_EQ(cluster.cost_report().MaxLoadTuples(), 7);
  EXPECT_EQ(cluster.cost_report().TotalCommTuples(), 10);
  cluster.ResetCosts();
  EXPECT_EQ(cluster.cost_report().num_rounds(), 0);
}

TEST(CostReportTest, ToStringMentionsEveryRound) {
  Cluster cluster(2, 1);
  cluster.BeginRound("alpha");
  cluster.RecordMessage(0, 1, 3, 3);
  cluster.EndRound();
  cluster.BeginRound("beta");
  cluster.EndRound();
  const std::string text = cluster.cost_report().ToString();
  EXPECT_NE(text.find("rounds=2"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("L(tuples)=3"), std::string::npos);
}

TEST(ClusterTest, NewHashFunctionsDiffer) {
  Cluster cluster(2, 42);
  const HashFunction a = cluster.NewHashFunction();
  const HashFunction b = cluster.NewHashFunction();
  int same = 0;
  for (uint64_t v = 0; v < 100; ++v) {
    if (a.Hash(v) == b.Hash(v)) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---------- Exchange primitives ----------

TEST(ExchangeTest, HashPartitionDeliversEveryTupleOnce) {
  Rng rng(7);
  Cluster cluster(8, 3);
  const Relation input = GenerateUniform(rng, 500, 2, 100);
  const DistRelation dist = DistRelation::Scatter(input, 8);
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation parts = HashPartition(cluster, dist, {0}, hash, "test");
  EXPECT_TRUE(MultisetEqual(parts.Collect(), input));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
  // Every tuple moved once -> total received = 500.
  EXPECT_EQ(cluster.cost_report().TotalCommTuples(), 500);
}

TEST(ExchangeTest, HashPartitionColocatesKeys) {
  Rng rng(7);
  Cluster cluster(4, 3);
  const Relation input = GenerateUniform(rng, 200, 2, 10);
  const DistRelation dist = DistRelation::Scatter(input, 4);
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation parts = HashPartition(cluster, dist, {1}, hash, "test");
  // Every key appears on exactly one server.
  for (uint64_t key = 0; key < 10; ++key) {
    int servers_with_key = 0;
    for (int s = 0; s < 4; ++s) {
      const Relation& frag = parts.fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        if (frag.at(i, 1) == key) {
          ++servers_with_key;
          break;
        }
      }
    }
    EXPECT_LE(servers_with_key, 1) << "key " << key;
  }
}

TEST(ExchangeTest, BroadcastReplicatesEverywhere) {
  Rng rng(9);
  Cluster cluster(5, 3);
  const Relation input = GenerateUniform(rng, 40, 2, 100);
  const DistRelation dist = DistRelation::Scatter(input, 5);
  const DistRelation replicated = Broadcast(cluster, dist, "test");
  for (int s = 0; s < 5; ++s) {
    EXPECT_TRUE(MultisetEqual(replicated.fragment(s), input));
  }
  // Load: every server received the whole input.
  EXPECT_EQ(cluster.cost_report().MaxLoadTuples(), 40);
  EXPECT_EQ(cluster.cost_report().TotalCommTuples(), 200);
}

TEST(ExchangeTest, RangePartitionRespectsSplitters) {
  Cluster cluster(3, 3);
  const Relation input =
      Relation::FromRows({{1}, {5}, {10}, {15}, {20}, {10}});
  const DistRelation dist = DistRelation::Scatter(input, 3);
  const DistRelation parts =
      RangePartition(cluster, dist, 0, {10, 20}, "test");
  // splitters {10, 20}: server 0 gets v < 10; 10 goes to server 1
  // (upper_bound), 20 to server 2.
  for (int64_t i = 0; i < parts.fragment(0).size(); ++i) {
    EXPECT_LT(parts.fragment(0).at(i, 0), 10u);
  }
  for (int64_t i = 0; i < parts.fragment(1).size(); ++i) {
    EXPECT_GE(parts.fragment(1).at(i, 0), 10u);
    EXPECT_LT(parts.fragment(1).at(i, 0), 20u);
  }
  EXPECT_TRUE(MultisetEqual(parts.Collect(), input));
}

TEST(ExchangeTest, RouteMulticastCountsEveryCopy) {
  Cluster cluster(4, 3);
  const Relation input = Relation::FromRows({{1}, {2}});
  const DistRelation dist = DistRelation::Scatter(input, 4);
  const DistRelation routed = Route(
      cluster, dist,
      [](const Value*, std::vector<int>& dests) {
        dests.push_back(0);
        dests.push_back(2);
      },
      "multicast");
  EXPECT_EQ(routed.fragment(0).size(), 2);
  EXPECT_EQ(routed.fragment(2).size(), 2);
  EXPECT_EQ(routed.fragment(1).size(), 0);
  EXPECT_EQ(cluster.cost_report().TotalCommTuples(), 4);
}

TEST(ExchangeTest, RouteCanDropTuples) {
  Cluster cluster(2, 3);
  const Relation input = Relation::FromRows({{1}, {2}, {3}});
  const DistRelation dist = DistRelation::Scatter(input, 2);
  const DistRelation routed = Route(
      cluster, dist,
      [](const Value* row, std::vector<int>& dests) {
        if (row[0] != 2) dests.push_back(0);
      },
      "filter");
  EXPECT_EQ(routed.TotalSize(), 2);
}

TEST(ExchangeTest, GatherToServer) {
  Rng rng(5);
  Cluster cluster(4, 3);
  const Relation input = GenerateUniform(rng, 30, 1, 7);
  const DistRelation dist = DistRelation::Scatter(input, 4);
  const Relation gathered = GatherToServer(cluster, dist, 2, "gather");
  EXPECT_TRUE(MultisetEqual(gathered, input));
  const RoundCost& round = cluster.cost_report().rounds()[0];
  EXPECT_EQ(round.tuples_received[2], 30);
  EXPECT_EQ(round.tuples_received[0], 0);
}

TEST(ExchangeTest, MergedRoundViaScope) {
  Rng rng(5);
  Cluster cluster(4, 3);
  const Relation input = GenerateUniform(rng, 16, 2, 50);
  const DistRelation dist = DistRelation::Scatter(input, 4);
  const HashFunction hash = cluster.NewHashFunction();
  cluster.BeginRound("merged");
  HashPartition(cluster, dist, {0}, hash, "");
  HashPartition(cluster, dist, {1}, hash, "");
  cluster.EndRound();
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
  EXPECT_EQ(cluster.cost_report().TotalCommTuples(), 32);
}

TEST(ExchangeTest, SentEqualsReceivedEveryRound) {
  Rng rng(8);
  Cluster cluster(6, 3);
  const Relation input = GenerateUniform(rng, 300, 2, 40);
  const DistRelation dist = DistRelation::Scatter(input, 6);
  const HashFunction hash = cluster.NewHashFunction();
  HashPartition(cluster, dist, {0}, hash, "a");
  Broadcast(cluster, dist, "b");
  for (const RoundCost& round : cluster.cost_report().rounds()) {
    int64_t sent = 0;
    int64_t received = 0;
    int64_t sent_values = 0;
    int64_t received_values = 0;
    for (int s = 0; s < 6; ++s) {
      sent += round.tuples_sent[s];
      received += round.tuples_received[s];
      sent_values += round.values_sent[s];
      received_values += round.values_received[s];
    }
    EXPECT_EQ(sent, received) << round.label;
    EXPECT_EQ(sent_values, received_values) << round.label;
  }
}

TEST(ExchangeTest, DeterministicGivenSeeds) {
  // Same (p, cluster seed, data seed) -> bit-identical fragments and
  // meter readings: the property every bench relies on.
  auto run = [](int64_t* load) {
    Rng rng(9);
    Cluster cluster(8, 77);
    const Relation input = GenerateUniform(rng, 500, 2, 90);
    const HashFunction hash = cluster.NewHashFunction();
    const DistRelation parts = HashPartition(
        cluster, DistRelation::Scatter(input, 8), {1}, hash, "d");
    *load = cluster.cost_report().MaxLoadTuples();
    return parts.Collect();
  };
  int64_t load_a = 0;
  int64_t load_b = 0;
  const Relation a = run(&load_a);
  const Relation b = run(&load_b);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(load_a, load_b);
}

TEST(ExchangeTest, SingleServerClusterWorks) {
  Rng rng(5);
  Cluster cluster(1, 3);
  const Relation input = GenerateUniform(rng, 10, 2, 5);
  const DistRelation dist = DistRelation::Scatter(input, 1);
  const HashFunction hash = cluster.NewHashFunction();
  const DistRelation parts = HashPartition(cluster, dist, {0}, hash, "p1");
  EXPECT_TRUE(MultisetEqual(parts.Collect(), input));
  EXPECT_EQ(cluster.cost_report().MaxLoadTuples(), 10);
}

}  // namespace
}  // namespace mpcqp
