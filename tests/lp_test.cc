#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/simplex.h"

namespace mpcqp {
namespace {

constexpr double kTol = 1e-6;

LpConstraint Row(std::vector<double> coeffs, LpConstraintOp op, double rhs) {
  LpConstraint c;
  c.coeffs = std::move(coeffs);
  c.op = op;
  c.rhs = rhs;
  return c;
}

TEST(SimplexTest, SimpleMaximize) {
  // max x + y s.t. x <= 2, y <= 3, x + y <= 4.
  LpProblem lp;
  lp.num_vars = 2;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {1, 1};
  lp.constraints = {Row({1, 0}, LpConstraintOp::kLessEq, 2),
                    Row({0, 1}, LpConstraintOp::kLessEq, 3),
                    Row({1, 1}, LpConstraintOp::kLessEq, 4)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 4.0, kTol);
}

TEST(SimplexTest, SimpleMinimizeWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1.
  LpProblem lp;
  lp.num_vars = 2;
  lp.sense = LpObjective::kMinimize;
  lp.objective = {2, 3};
  lp.constraints = {Row({1, 1}, LpConstraintOp::kGreaterEq, 4),
                    Row({1, 0}, LpConstraintOp::kGreaterEq, 1)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  // Optimum at x=4, y=0 -> 8.
  EXPECT_NEAR(sol->objective_value, 8.0, kTol);
  EXPECT_NEAR(sol->x[0], 4.0, kTol);
  EXPECT_NEAR(sol->x[1], 0.0, kTol);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x s.t. x + y = 3, x <= 2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {1, 0};
  lp.constraints = {Row({1, 1}, LpConstraintOp::kEqual, 3),
                    Row({1, 0}, LpConstraintOp::kLessEq, 2)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 2.0, kTol);
  EXPECT_NEAR(sol->x[1], 1.0, kTol);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {1};
  lp.constraints = {Row({1}, LpConstraintOp::kLessEq, 1),
                    Row({1}, LpConstraintOp::kGreaterEq, 2)};
  const auto sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x, only constraint y <= 1.
  LpProblem lp;
  lp.num_vars = 2;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {1, 0};
  lp.constraints = {Row({0, 1}, LpConstraintOp::kLessEq, 1)};
  const auto sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // max -x s.t. -x <= -2  (i.e. x >= 2). Optimum x = 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {-1};
  lp.constraints = {Row({-1}, LpConstraintOp::kLessEq, -2)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, kTol);
}

TEST(SimplexTest, DegenerateTiesTerminate) {
  // A classic degenerate instance; Bland's rule must not cycle.
  LpProblem lp;
  lp.num_vars = 4;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {0.75, -150, 0.02, -6};
  lp.constraints = {
      Row({0.25, -60, -0.04, 9}, LpConstraintOp::kLessEq, 0),
      Row({0.5, -90, -0.02, 3}, LpConstraintOp::kLessEq, 0),
      Row({0, 0, 1, 0}, LpConstraintOp::kLessEq, 1)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 0.05, kTol);
}

TEST(SimplexTest, RejectsMalformedInput) {
  LpProblem lp;
  lp.num_vars = 0;
  EXPECT_FALSE(SolveLp(lp).ok());

  lp.num_vars = 2;
  lp.objective = {1};  // Wrong size.
  EXPECT_FALSE(SolveLp(lp).ok());

  lp.objective = {1, 1};
  lp.constraints = {Row({1}, LpConstraintOp::kLessEq, 1)};  // Wrong size.
  EXPECT_FALSE(SolveLp(lp).ok());
}

TEST(SimplexTest, SolutionSatisfiesConstraints) {
  // Fuzz-ish: a batch of fixed small LPs; verify feasibility of the
  // returned point and local optimality versus a grid of feasible points.
  LpProblem lp;
  lp.num_vars = 3;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {3, 1, 2};
  lp.constraints = {Row({1, 1, 3}, LpConstraintOp::kLessEq, 30),
                    Row({2, 2, 5}, LpConstraintOp::kLessEq, 24),
                    Row({4, 1, 2}, LpConstraintOp::kLessEq, 36)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  // Known optimum (CLRS example): z = 28 at (8, 4, 0).
  EXPECT_NEAR(sol->objective_value, 28.0, kTol);
  for (const LpConstraint& c : lp.constraints) {
    double lhs = 0;
    for (int i = 0; i < 3; ++i) lhs += c.coeffs[i] * sol->x[i];
    EXPECT_LE(lhs, c.rhs + kTol);
  }
}

TEST(SimplexTest, MinimizeEqualsNegatedMaximize) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {5, 4};
  lp.constraints = {Row({6, 4}, LpConstraintOp::kLessEq, 24),
                    Row({1, 2}, LpConstraintOp::kLessEq, 6)};
  const auto max_sol = SolveLp(lp);
  ASSERT_TRUE(max_sol.ok());

  LpProblem neg = lp;
  neg.sense = LpObjective::kMinimize;
  neg.objective = {-5, -4};
  const auto min_sol = SolveLp(neg);
  ASSERT_TRUE(min_sol.ok());
  EXPECT_NEAR(max_sol->objective_value, -min_sol->objective_value, kTol);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // x + y = 2 stated twice; phase 1 must cope with the redundant row.
  LpProblem lp;
  lp.num_vars = 2;
  lp.sense = LpObjective::kMaximize;
  lp.objective = {1, 0};
  lp.constraints = {Row({1, 1}, LpConstraintOp::kEqual, 2),
                    Row({1, 1}, LpConstraintOp::kEqual, 2)};
  const auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 2.0, kTol);
}

}  // namespace
}  // namespace mpcqp
