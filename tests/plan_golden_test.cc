// Plan-choice goldens: representative query/data/λ scenarios with the
// planner's chosen family and full EXPLAIN tree pinned in-source. Cost
// model or enumerator changes that silently flip a plan choice, reorder a
// join, or reshape the operator tree fail here loudly.
//
// Regenerating: run with MPCQP_REGEN_GOLDENS=1; each test prints a
// paste-ready golden string and fails (regen runs are never green runs).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mpc/dist_relation.h"
#include "planner/planner.h"
#include "query/query.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

constexpr int kServers = 16;

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

// Golden = "<family>\n<EXPLAIN tree>".
std::string Explain(const ConjunctiveQuery& q, const PlannedQuery& planned) {
  return std::string(PlanAlgorithmName(planned.plan.family)) + "\n" +
         planned.plan.tree.ToString(q);
}

void ExpectMatchesGolden(const std::string& name, const std::string& actual,
                         const std::string& golden) {
  if (std::getenv("MPCQP_REGEN_GOLDENS") != nullptr) {
    std::fprintf(stderr, "const char k%s[] =\n", name.c_str());
    std::string line;
    for (char c : actual) {
      if (c == '\n') {
        std::fprintf(stderr, "    \"%s\\n\"\n", line.c_str());
        line.clear();
      } else {
        line += c;
      }
    }
    if (!line.empty()) std::fprintf(stderr, "    \"%s\"\n", line.c_str());
    std::fprintf(stderr, "    ;\n");
    FAIL() << "MPCQP_REGEN_GOLDENS set: printed actuals, not comparing";
  }
  EXPECT_EQ(actual, golden) << name << " actual:\n" << actual;
}

// ---------- Uniform triangle, rounds free ----------

const char kUniformTriangleFreeRounds[] =
    "binary-plan\n"
    "project [x,y,z]\n"
    "  shuffle-join [x,y] est=1\n"
    "    exchange on [x,y]\n"
    "      shuffle-join [z] est=2118\n"
    "        exchange on [z]\n"
    "          scan T [z,x]\n"
    "        exchange on [z]\n"
    "          scan S [y,z]\n"
    "    exchange on [x,y]\n"
    "      scan R [x,y]\n";

TEST(PlanGoldenTest, UniformTriangleFreeRounds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(51);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 2000, 2, 1 << 14));
  }
  PlannerOptions options;
  options.round_cost_tuples = 0.0;
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, kServers), kServers, options, nullptr);
  ExpectMatchesGolden("UniformTriangleFreeRounds", Explain(q, planned),
                      kUniformTriangleFreeRounds);
}

// ---------- Uniform triangle, rounds prohibitive: one-round HyperCube ----

const char kUniformTriangleCostlyRounds[] =
    "hypercube\n"
    "hypercube(R,S,T)\n";

TEST(PlanGoldenTest, UniformTriangleCostlyRounds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(51);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 2000, 2, 1 << 14));
  }
  PlannerOptions options;
  options.round_cost_tuples = 1e7;
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, kServers), kServers, options, nullptr);
  ExpectMatchesGolden("UniformTriangleCostlyRounds", Explain(q, planned),
                      kUniformTriangleCostlyRounds);
}

// ---------- Skewed triangle, one round forced: SkewHC ----------

const char kSkewedTriangleCostlyRounds[] =
    "skew-hc\n"
    "skew-hc(R,S,T)\n";

TEST(PlanGoldenTest, SkewedTriangleCostlyRounds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(52);
  std::vector<Relation> atoms = {
      GenerateUniform(rng, 2000, 2, 1 << 14),
      GenerateConstantColumn(2000, 1, 7),
      GenerateConstantColumn(2000, 0, 7),
  };
  PlannerOptions options;
  options.round_cost_tuples = 1e7;
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, kServers), kServers, options, nullptr);
  ExpectMatchesGolden("SkewedTriangleCostlyRounds", Explain(q, planned),
                      kSkewedTriangleCostlyRounds);
}

// ---------- Acyclic path, rounds free ----------

const char kAcyclicPathFreeRounds[] =
    "binary-plan\n"
    "project [x0,x1,x2,x3]\n"
    "  shuffle-join [x1] est=4000\n"
    "    exchange on [x1]\n"
    "      shuffle-join [x2] est=4000\n"
    "        exchange on [x2]\n"
    "          scan R3 [x2,x3]\n"
    "        exchange on [x2]\n"
    "          scan R2 [x1,x2]\n"
    "    exchange on [x1]\n"
    "      scan R1 [x0,x1]\n";

TEST(PlanGoldenTest, AcyclicPathFreeRounds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng rng(53);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateMatchingDegree(rng, 4000, 1));
  }
  PlannerOptions options;
  options.round_cost_tuples = 0.0;
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, kServers), kServers, options, nullptr);
  ExpectMatchesGolden("AcyclicPathFreeRounds", Explain(q, planned),
                      kAcyclicPathFreeRounds);
}

// ---------- DP blowup avoidance: join order must skip the A-B prefix ----

const char kDpReorderedPath[] =
    "binary-plan\n"
    "project [x,y,z,w]\n"
    "  shuffle-join(skew) [y] est=8000\n"
    "    exchange on [y]\n"
    "      shuffle-join(skew) [z] est=20\n"
    "        exchange on [z]\n"
    "          scan C [z,w]\n"
    "        exchange on [z]\n"
    "          scan B [y,z]\n"
    "    exchange on [y]\n"
    "      scan A [x,y]\n";

TEST(PlanGoldenTest, DpReorderedPath) {
  const auto parsed = ConjunctiveQuery::Parse("A(x,y), B(y,z), C(z,w)");
  ASSERT_TRUE(parsed.ok());
  const ConjunctiveQuery& q = *parsed;
  // y is one constant in A and B: the identity order explodes to |A|·|B|.
  Relation a(2);
  Relation b(2);
  for (int64_t i = 0; i < 400; ++i) {
    a.AppendRow({Value(1000 + i), Value(7)});
    b.AppendRow({Value(7), Value(i)});
  }
  Relation c(2);
  for (int64_t i = 0; i < 20; ++i) {
    c.AppendRow({Value(i * 20), Value(5000 + i)});
  }
  PlannerOptions options;
  options.allowed = {PlanAlgorithm::kBinaryPlan};
  const PlannedQuery planned = PlanQuery(q, Scatter({a, b, c}, kServers),
                                         kServers, options, nullptr);
  ExpectMatchesGolden("DpReorderedPath", Explain(q, planned),
                      kDpReorderedPath);
}

// ---------- λ sweep: the family sequence across round prices ----------

const char kLambdaSweep[] =
    "lambda=0: binary-plan\n"
    "lambda=10: binary-plan\n"
    "lambda=1000: binary-plan\n"
    "lambda=100000: hypercube\n"
    "lambda=1e+07: hypercube\n";

TEST(PlanGoldenTest, LambdaSweepFamilies) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(54);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 2000, 2, 1 << 14));
  }
  std::string actual;
  for (double lambda : {0.0, 10.0, 1e3, 1e5, 1e7}) {
    PlannerOptions options;
    options.round_cost_tuples = lambda;
    const PlannedQuery planned =
        PlanQuery(q, Scatter(atoms, kServers), kServers, options, nullptr);
    char line[64];
    std::snprintf(line, sizeof(line), "lambda=%g: %s\n", lambda,
                  PlanAlgorithmName(planned.plan.family));
    actual += line;
  }
  ExpectMatchesGolden("LambdaSweep", actual, kLambdaSweep);
}

}  // namespace
}  // namespace mpcqp
