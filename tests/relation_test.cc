#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "relation/columnar.h"
#include "relation/key_index.h"
#include "relation/relation.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// ---------- Relation basics ----------

TEST(RelationTest, AppendAndAccess) {
  Relation r(2);
  r.AppendRow({1, 2});
  r.AppendRow({3, 4});
  EXPECT_EQ(r.size(), 2);
  EXPECT_EQ(r.at(0, 0), 1u);
  EXPECT_EQ(r.at(1, 1), 4u);
}

TEST(RelationTest, FromRows) {
  const Relation r = Relation::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(r.arity(), 2);
  EXPECT_EQ(r.size(), 3);
  EXPECT_EQ(r.at(2, 1), 6u);
}

TEST(RelationTest, NullaryRelationCountsRows) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  r.AppendNullaryRow();
  r.AppendNullaryRow();
  EXPECT_EQ(r.size(), 2);
}

TEST(RelationTest, SortRowsLexicographic) {
  Relation r = Relation::FromRows({{2, 1}, {1, 9}, {1, 3}});
  r.SortRows();
  EXPECT_EQ(r.at(0, 0), 1u);
  EXPECT_EQ(r.at(0, 1), 3u);
  EXPECT_EQ(r.at(1, 1), 9u);
  EXPECT_EQ(r.at(2, 0), 2u);
}

TEST(RelationTest, SortRowsByKeyThenRest) {
  Relation r = Relation::FromRows({{5, 1}, {5, 0}, {2, 7}});
  r.SortRowsBy({0});
  EXPECT_EQ(r.at(0, 0), 2u);
  // Within key 5, the remaining column breaks ties deterministically.
  EXPECT_EQ(r.at(1, 1), 0u);
  EXPECT_EQ(r.at(2, 1), 1u);
}

TEST(RelationTest, EqualityIsExact) {
  const Relation a = Relation::FromRows({{1, 2}, {3, 4}});
  const Relation b = Relation::FromRows({{3, 4}, {1, 2}});
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(MultisetEqual(a, b));
}

// ---------- Unary operators ----------

TEST(OpsTest, ProjectReordersAndRepeats) {
  const Relation r = Relation::FromRows({{1, 2, 3}});
  const Relation p = Project(r, {2, 0, 2});
  EXPECT_EQ(p.arity(), 3);
  EXPECT_EQ(p.at(0, 0), 3u);
  EXPECT_EQ(p.at(0, 1), 1u);
  EXPECT_EQ(p.at(0, 2), 3u);
}

TEST(OpsTest, ProjectToNullary) {
  const Relation r = Relation::FromRows({{1}, {2}});
  const Relation p = Project(r, {});
  EXPECT_EQ(p.arity(), 0);
  EXPECT_EQ(p.size(), 2);
}

TEST(OpsTest, DedupRemovesDuplicates) {
  const Relation r = Relation::FromRows({{1, 2}, {1, 2}, {3, 4}, {1, 2}});
  const Relation d = Dedup(r);
  EXPECT_EQ(d.size(), 2);
}

TEST(OpsTest, FilterKeepsMatching) {
  const Relation r = Relation::FromRows({{1, 2}, {5, 2}, {7, 9}});
  const Relation f =
      Filter(r, [](const Value* row) { return row[1] == 2; });
  EXPECT_EQ(f.size(), 2);
}

TEST(OpsTest, UnionAllKeepsMultiplicity) {
  const Relation a = Relation::FromRows({{1, 1}});
  const Relation b = Relation::FromRows({{1, 1}, {2, 2}});
  const Relation u = UnionAll(a, b);
  EXPECT_EQ(u.size(), 3);
}

TEST(OpsTest, GroupBySum) {
  const Relation r =
      Relation::FromRows({{1, 10}, {1, 5}, {2, 7}, {1, 1}});
  const Relation g = GroupBySum(r, {0}, 1).value();
  ASSERT_EQ(g.size(), 2);
  EXPECT_EQ(g.at(0, 0), 1u);
  EXPECT_EQ(g.at(0, 1), 16u);
  EXPECT_EQ(g.at(1, 1), 7u);
}

TEST(OpsTest, GroupBySumOverflowIsAnError) {
  const Value max = ~Value{0};
  // Exactly the Value range is fine; one more is a typed error, not a wrap.
  const Relation fits = Relation::FromRows({{1, max - 2}, {1, 2}});
  EXPECT_EQ(GroupBySum(fits, {0}, 1).value().at(0, 1), max);
  const Relation wraps = Relation::FromRows({{1, max - 2}, {1, 2}, {1, 1}});
  const auto result = GroupBySum(wraps, {0}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(OpsTest, DegreeCount) {
  const Relation r = Relation::FromRows({{1, 7}, {2, 7}, {3, 9}});
  const Relation d = DegreeCount(r, 1);
  ASSERT_EQ(d.size(), 2);
  EXPECT_EQ(d.at(0, 0), 7u);
  EXPECT_EQ(d.at(0, 1), 2u);
  EXPECT_EQ(d.at(1, 0), 9u);
  EXPECT_EQ(d.at(1, 1), 1u);
}

// ---------- KeyIndex ----------

TEST(KeyIndexTest, LookupFindsAllMatches) {
  const Relation r = Relation::FromRows({{1, 5}, {2, 5}, {3, 6}});
  const KeyIndex index(r, {1});
  const Value key5 = 5;
  EXPECT_EQ(index.Lookup(&key5).size(), 2u);
  const Value key6 = 6;
  EXPECT_EQ(index.Lookup(&key6).size(), 1u);
  const Value key7 = 7;
  EXPECT_TRUE(index.Lookup(&key7).empty());
  EXPECT_EQ(index.num_distinct_keys(), 2);
}

TEST(KeyIndexTest, CompositeKeys) {
  const Relation r = Relation::FromRows({{1, 2, 9}, {1, 3, 9}, {1, 2, 8}});
  const KeyIndex index(r, {0, 1});
  const Value key[] = {1, 2};
  EXPECT_EQ(index.Lookup(key).size(), 2u);
}

TEST(KeyIndexTest, EmptyKeyMatchesEverything) {
  const Relation r = Relation::FromRows({{1}, {2}, {3}});
  const KeyIndex index(r, {});
  EXPECT_EQ(index.Lookup(nullptr).size(), 3u);
}

// ---------- Join family: the three implementations agree ----------

struct JoinCase {
  int64_t left_rows;
  int64_t right_rows;
  uint64_t domain;
};

class JoinAgreementTest
    : public ::testing::TestWithParam<std::tuple<JoinCase, uint64_t>> {};

TEST_P(JoinAgreementTest, HashSortMergeNestedLoopAgree) {
  const auto [spec, seed] = GetParam();
  Rng rng(seed);
  const Relation left = GenerateUniform(rng, spec.left_rows, 2, spec.domain);
  const Relation right = GenerateUniform(rng, spec.right_rows, 2, spec.domain);

  const Relation reference =
      NestedLoopJoinLocal(left, right, {1}, {0});
  EXPECT_TRUE(MultisetEqual(HashJoinLocal(left, right, {1}, {0}), reference));
  EXPECT_TRUE(
      MultisetEqual(SortMergeJoinLocal(left, right, {1}, {0}), reference));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinAgreementTest,
    ::testing::Combine(::testing::Values(JoinCase{50, 50, 10},
                                         JoinCase{100, 20, 5},
                                         JoinCase{30, 30, 100},
                                         JoinCase{1, 50, 3},
                                         JoinCase{64, 64, 1}),
                       ::testing::Values(1u, 2u, 3u)));

TEST(JoinTest, OutputColumnContract) {
  // R(a, b) join S(b, c) on b: output (a, b, c).
  const Relation left = Relation::FromRows({{1, 7}});
  const Relation right = Relation::FromRows({{7, 9}});
  const Relation out = HashJoinLocal(left, right, {1}, {0});
  ASSERT_EQ(out.arity(), 3);
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(0, 1), 7u);
  EXPECT_EQ(out.at(0, 2), 9u);
}

TEST(JoinTest, EmptyKeyIsCrossProduct) {
  const Relation left = Relation::FromRows({{1}, {2}});
  const Relation right = Relation::FromRows({{10}, {20}, {30}});
  const Relation out = HashJoinLocal(left, right, {}, {});
  EXPECT_EQ(out.size(), 6);
  EXPECT_EQ(out.arity(), 2);
}

TEST(JoinTest, EmptyInputsYieldEmptyOutput) {
  const Relation left(2);
  const Relation right = Relation::FromRows({{1, 2}});
  EXPECT_TRUE(HashJoinLocal(left, right, {0}, {0}).empty());
  EXPECT_TRUE(SortMergeJoinLocal(right, left, {0}, {0}).empty());
}

TEST(JoinTest, DuplicatesMultiply) {
  const Relation left = Relation::FromRows({{1, 5}, {2, 5}});
  const Relation right = Relation::FromRows({{5, 8}, {5, 9}, {5, 8}});
  // 2 left x 3 right = 6.
  EXPECT_EQ(HashJoinLocal(left, right, {1}, {0}).size(), 6);
}

TEST(JoinTest, MultiColumnKeys) {
  const Relation left = Relation::FromRows({{1, 2, 3}, {1, 9, 4}});
  const Relation right = Relation::FromRows({{1, 2, 7}, {9, 1, 8}});
  const Relation out = HashJoinLocal(left, right, {0, 1}, {0, 1});
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(out.at(0, 2), 3u);
  EXPECT_EQ(out.at(0, 3), 7u);
}

// ---------- Semijoin / antijoin ----------

TEST(SemijoinTest, PartitionsLeft) {
  const Relation left = Relation::FromRows({{1, 5}, {2, 6}, {3, 5}});
  const Relation right = Relation::FromRows({{5, 0}});
  const Relation semi = SemijoinLocal(left, right, {1}, {0});
  const Relation anti = AntijoinLocal(left, right, {1}, {0});
  EXPECT_EQ(semi.size(), 2);
  EXPECT_EQ(anti.size(), 1);
  EXPECT_EQ(anti.at(0, 0), 2u);
  EXPECT_TRUE(MultisetEqual(UnionAll(semi, anti), left));
}

TEST(SemijoinTest, SemijoinKeepsMultiplicity) {
  const Relation left = Relation::FromRows({{1, 5}, {1, 5}});
  const Relation right = Relation::FromRows({{5, 0}, {5, 1}});
  // Semijoin is a filter: 2 rows stay 2 rows.
  EXPECT_EQ(SemijoinLocal(left, right, {1}, {0}).size(), 2);
}

TEST(SemijoinTest, AntijoinAgainstEmptyRightKeepsAll) {
  const Relation left = Relation::FromRows({{1, 5}});
  const Relation right(2);
  EXPECT_EQ(AntijoinLocal(left, right, {1}, {0}).size(), 1);
  EXPECT_TRUE(SemijoinLocal(left, right, {1}, {0}).empty());
}

// ---------- Columnar layout ----------

TEST(ColumnarTest, RoundTripsRowMajor) {
  Rng rng(7);
  const Relation rel = GenerateUniform(rng, 100, 5, 1000);
  const ColumnarRelation col = ColumnarRelation::FromRowMajor(rel);
  ASSERT_EQ(col.arity(), 5);
  ASSERT_EQ(col.size(), 100);
  for (int64_t r = 0; r < rel.size(); ++r) {
    for (int c = 0; c < rel.arity(); ++c) {
      EXPECT_EQ(col.at(r, c), rel.at(r, c));
      EXPECT_EQ(col.column(c)[r], rel.at(r, c));
    }
  }
  EXPECT_EQ(col.ToRowMajor(), rel);
}

TEST(ColumnarTest, ParallelTransposeMatchesSerial) {
  Rng rng(8);
  const Relation rel = GenerateUniform(rng, 500, 4, 1000);
  ThreadPool pool(4);
  // Every (pool, morsel) combination writes the same bytes, including
  // morsels that do not divide the row count and single-row morsels.
  for (const int64_t morsel : {1, 7, 64, 100000}) {
    const ColumnarRelation col =
        ColumnarRelation::FromRowMajor(rel, &pool, morsel);
    EXPECT_EQ(col, ColumnarRelation::FromRowMajor(rel));
    EXPECT_EQ(col.ToRowMajor(&pool, morsel), rel);
  }
}

TEST(ColumnarTest, EmptyAndNullaryRoundTrip) {
  const Relation empty(3);
  EXPECT_EQ(ColumnarRelation::FromRowMajor(empty).ToRowMajor(), empty);
  Relation nullary(0);
  nullary.AppendNullaryRow();
  nullary.AppendNullaryRow();
  const ColumnarRelation col = ColumnarRelation::FromRowMajor(nullary);
  EXPECT_EQ(col.size(), 2);
  EXPECT_EQ(col.ToRowMajor(), nullary);
}

TEST(ColumnarTest, CopiesShareUntilMutableDetaches) {
  const Relation rel = Relation::FromRows({{1, 2}, {3, 4}});
  const ColumnarRelation a = ColumnarRelation::FromRowMajor(rel);
  ColumnarRelation b = a;
  EXPECT_TRUE(a.SharesPayloadWith(b));
  b.Mutable()[0] = 99;  // Column 0, row 0.
  EXPECT_FALSE(a.SharesPayloadWith(b));
  EXPECT_EQ(a.at(0, 0), 1u);
  EXPECT_EQ(b.at(0, 0), 99u);
}

TEST(ColumnarTest, GatherKeyColumnHonorsSelection) {
  const Relation rel =
      Relation::FromRows({{10, 0}, {11, 1}, {12, 2}, {13, 3}, {14, 4}});
  const std::vector<int64_t> sel = {4, 0, 2};
  const RelationView view(rel, sel);
  std::vector<Value> out(3);
  GatherKeyColumn(view, 0, 0, 3, out.data());
  EXPECT_EQ(out, (std::vector<Value>{14, 10, 12}));
  // Sub-range gathers offset into the selection, not the base rows.
  GatherKeyColumn(view, 0, 1, 3, out.data());
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 12u);
}

TEST(ColumnarTest, SelectRangeAgreesAcrossLayouts) {
  Rng rng(9);
  const Relation rel = GenerateUniform(rng, 3000, 6, 100);
  const Value lo = 10, hi = 60;
  const std::vector<int64_t> reference =
      SelectRange(rel, 2, lo, hi, nullptr, 0, LayoutMode::kRow);
  // Serial reference is the plain predicate scan.
  std::vector<int64_t> expected;
  for (int64_t r = 0; r < rel.size(); ++r) {
    if (rel.at(r, 2) >= lo && rel.at(r, 2) <= hi) expected.push_back(r);
  }
  EXPECT_EQ(reference, expected);
  ThreadPool pool(4);
  for (const LayoutMode layout :
       {LayoutMode::kRow, LayoutMode::kColumnar, LayoutMode::kAuto}) {
    for (const int64_t morsel : {1, 64, 100000}) {
      EXPECT_EQ(SelectRange(rel, 2, lo, hi, &pool, morsel, layout),
                reference);
    }
  }
  const ColumnarRelation col = ColumnarRelation::FromRowMajor(rel);
  EXPECT_EQ(SelectRange(col, 2, lo, hi), reference);
  EXPECT_EQ(SelectRange(col, 2, lo, hi, &pool, 64), reference);
}

TEST(ColumnarTest, SelectRangeOverSelectionViews) {
  const Relation rel =
      Relation::FromRows({{5, 0}, {50, 1}, {15, 2}, {99, 3}, {20, 4}});
  const std::vector<int64_t> sel = {3, 2, 0, 4};
  const RelationView view(rel, sel);
  // Indices are view positions, ascending: view rows 1 (=15) and 3 (=20).
  const std::vector<int64_t> hits = SelectRange(view, 0, 10, 40);
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 3}));
  // Empty selection: no rows, no matches, every layout.
  const std::vector<int64_t> empty_sel;
  const Relation nonempty = Relation::FromRows({{1, 2}});
  const RelationView empty_view(nonempty, empty_sel);
  EXPECT_TRUE(SelectRange(empty_view, 0, 0, ~Value{0}).empty());
  // Single-row fragment.
  const RelationView single(rel, 2, 3);
  EXPECT_EQ(SelectRange(single, 0, 10, 40),
            (std::vector<int64_t>{0}));
}

TEST(ColumnarTest, SemijoinColumnarProbeSurvivesForcedCollisions) {
  // A constant test hash forces every distinct key into one directory
  // chain; batched HashKeys + LookupWithHash must still verify exact keys.
  Rng rng(11);
  const Relation left = GenerateUniform(rng, 400, 2, 40);
  const Relation right = GenerateUniform(rng, 50, 2, 40);
  const KeyIndex normal(right, {0});
  const KeyIndex colliding(
      right, {0}, [](const Value*, int) -> uint64_t { return 42; });
  for (Value k = 0; k < 40; ++k) {
    const std::span<const int64_t> a = normal.Lookup(&k);
    const std::span<const int64_t> b = colliding.Lookup(&k);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    uint64_t h = 0;
    colliding.HashKeys(&k, 1, &h);
    EXPECT_EQ(h, 42u);
    const std::span<const int64_t> c = colliding.LookupWithHash(h, &k);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), c.begin(), c.end()));
  }
  // End-to-end: the probe loop in Semijoin matches the reference filter.
  const Relation semi = SemijoinLocal(left, right, {0}, {0});
  const KeyIndex ref_index(right, {0});
  Relation expected(2);
  for (int64_t i = 0; i < left.size(); ++i) {
    if (ref_index.Contains(left.row(i))) expected.AppendRow(left.row(i));
  }
  EXPECT_EQ(semi, expected);
}

TEST(ColumnarTest, KeyIndexBuildMatchesAcrossThreadCounts) {
  Rng rng(13);
  const Relation rel = GenerateUniform(rng, 2000, 8, 100);
  const KeyIndex serial(rel, {3});
  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    const KeyIndex parallel(rel, {3}, &pool);
    for (Value k = 0; k < 100; ++k) {
      const std::span<const int64_t> a = serial.Lookup(&k);
      const std::span<const int64_t> b = parallel.Lookup(&k);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
}

}  // namespace
}  // namespace mpcqp
