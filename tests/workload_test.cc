#include <gtest/gtest.h>

#include <map>
#include <set>

#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

TEST(GeneratorTest, UniformShape) {
  Rng rng(1);
  const Relation r = GenerateUniform(rng, 1000, 3, 50);
  EXPECT_EQ(r.size(), 1000);
  EXPECT_EQ(r.arity(), 3);
  for (int64_t i = 0; i < r.size(); ++i) {
    for (int c = 0; c < 3; ++c) EXPECT_LT(r.at(i, c), 50u);
  }
}

TEST(GeneratorTest, MatchingDegreeExact) {
  Rng rng(2);
  const Relation r = GenerateMatchingDegree(rng, 1000, 10);
  EXPECT_EQ(r.size(), 1000);
  const Relation degrees = DegreeCount(r, 1);
  EXPECT_EQ(degrees.size(), 100);
  for (int64_t i = 0; i < degrees.size(); ++i) {
    EXPECT_EQ(degrees.at(i, 1), 10u);
  }
  // x-values unique.
  EXPECT_EQ(Dedup(Project(r, {0})).size(), 1000);
}

TEST(GeneratorTest, ZipfSkewsTowardsSmallValues) {
  Rng rng(3);
  const Relation r = GenerateZipf(rng, 20000, 2, 1000, 1, 1.2);
  std::map<Value, int64_t> counts;
  for (int64_t i = 0; i < r.size(); ++i) ++counts[r.at(i, 1)];
  // Value 0 (rank 1) should dominate any mid-range value.
  EXPECT_GT(counts[0], 50 * std::max<int64_t>(1, counts[500]));
  // And the non-zipf column stays roughly uniform.
  std::map<Value, int64_t> other;
  for (int64_t i = 0; i < r.size(); ++i) ++other[r.at(i, 0)];
  EXPECT_LT(other.begin()->second, 200);
}

TEST(GeneratorTest, ZipfZeroSkewIsUniform) {
  Rng rng(4);
  const ZipfDistribution zipf(100, 0.0);
  std::map<uint64_t, int64_t> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 250);
    EXPECT_LT(count, 1000);
  }
}

TEST(GeneratorTest, ConstantColumnExtremeSkew) {
  const Relation r = GenerateConstantColumn(100, 1, 42);
  EXPECT_EQ(r.size(), 100);
  for (int64_t i = 0; i < r.size(); ++i) EXPECT_EQ(r.at(i, 1), 42u);
  EXPECT_EQ(Dedup(Project(r, {0})).size(), 100);
}

TEST(GeneratorTest, RandomGraphDistinctEdgesNoSelfLoops) {
  Rng rng(5);
  const Relation g = GenerateRandomGraph(rng, 50, 300);
  EXPECT_EQ(g.size(), 300);
  std::set<std::pair<Value, Value>> seen;
  for (int64_t i = 0; i < g.size(); ++i) {
    EXPECT_NE(g.at(i, 0), g.at(i, 1));
    EXPECT_TRUE(seen.insert({g.at(i, 0), g.at(i, 1)}).second);
  }
}

TEST(GeneratorTest, AddCliqueAddsAllPairs) {
  Relation g(2);
  const Relation with_clique = AddClique(g, 100, 4);
  EXPECT_EQ(with_clique.size(), 12);  // 4 * 3 ordered pairs.
}

TEST(GeneratorTest, ChainAndStarShapes) {
  Rng rng(6);
  const std::vector<Relation> chain = GenerateChain(rng, 4, 100, 20);
  EXPECT_EQ(chain.size(), 4u);
  for (const Relation& r : chain) {
    EXPECT_EQ(r.size(), 100);
    EXPECT_EQ(r.arity(), 2);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  Rng a(77);
  Rng b(77);
  EXPECT_TRUE(GenerateUniform(a, 50, 2, 10) == GenerateUniform(b, 50, 2, 10));
}

}  // namespace
}  // namespace mpcqp
