#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "agg/aggregate.h"
#include "mpc/cluster.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

class GroupByTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(GroupByTest, MatchesLocalGroupBy) {
  const auto [p, combiners] = GetParam();
  Rng rng(1);
  const Relation rel = GenerateUniform(rng, 3000, 3, 50);
  Cluster cluster(p, 3);
  GroupByOptions options;
  options.use_combiners = combiners;
  const DistRelation result = DistributedGroupBySum(
      cluster, DistRelation::Scatter(rel, p), {0, 1}, 2, options);
  EXPECT_TRUE(MultisetEqual(result.Collect(), GroupBySum(rel, {0, 1}, 2)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupByTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(false, true)));

TEST(GroupByTest, EachGroupOnOneServer) {
  const int p = 8;
  Rng rng(2);
  const Relation rel = GenerateUniform(rng, 2000, 2, 20);
  Cluster cluster(p, 3);
  const DistRelation result = DistributedGroupBySum(
      cluster, DistRelation::Scatter(rel, p), {0}, 1);
  // 20 possible groups; every group key appears in exactly one fragment.
  for (Value g = 0; g < 20; ++g) {
    int holders = 0;
    for (int s = 0; s < p; ++s) {
      const Relation& frag = result.fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        if (frag.at(i, 0) == g) {
          ++holders;
          break;
        }
      }
    }
    EXPECT_LE(holders, 1);
  }
}

TEST(GroupByTest, CombinersCutSkewedShuffleLoad) {
  // One dominant group: without combiners its entire weight lands on one
  // server; with combiners each server sends a single partial.
  const int p = 16;
  const Relation rel = GenerateConstantColumn(8000, 0, 3);  // All group 3.
  GroupByOptions with;
  with.use_combiners = true;
  GroupByOptions without;
  without.use_combiners = false;

  Cluster c1(p, 3);
  DistributedGroupBySum(c1, DistRelation::Scatter(rel, p), {0}, 1, with);
  Cluster c2(p, 3);
  DistributedGroupBySum(c2, DistRelation::Scatter(rel, p), {0}, 1, without);

  EXPECT_EQ(c1.cost_report().MaxLoadTuples(), p);     // One partial each.
  EXPECT_EQ(c2.cost_report().MaxLoadTuples(), 8000);  // The whole group.
}

TEST(GroupByAggregateTest, LocalOpsByHand) {
  const Relation r =
      Relation::FromRows({{1, 10}, {1, 3}, {2, 7}, {1, 5}, {2, 9}});
  const Relation count = GroupByAggregate(r, {0}, 1, AggregateOp::kCount);
  EXPECT_EQ(count.at(0, 1), 3u);
  EXPECT_EQ(count.at(1, 1), 2u);
  const Relation mn = GroupByAggregate(r, {0}, 1, AggregateOp::kMin);
  EXPECT_EQ(mn.at(0, 1), 3u);
  EXPECT_EQ(mn.at(1, 1), 7u);
  const Relation mx = GroupByAggregate(r, {0}, 1, AggregateOp::kMax);
  EXPECT_EQ(mx.at(0, 1), 10u);
  EXPECT_EQ(mx.at(1, 1), 9u);
}

class DistributedAggregateTest
    : public ::testing::TestWithParam<std::tuple<AggregateOp, bool>> {};

TEST_P(DistributedAggregateTest, MatchesLocalReference) {
  const auto [op, combiners] = GetParam();
  const int p = 8;
  Rng rng(6);
  const Relation rel = GenerateUniform(rng, 4000, 2, 64);
  Cluster cluster(p, 3);
  GroupByOptions options;
  options.use_combiners = combiners;
  const DistRelation result = DistributedGroupByAggregate(
      cluster, DistRelation::Scatter(rel, p), {0}, 1, op, options);
  EXPECT_TRUE(MultisetEqual(result.Collect(),
                            GroupByAggregate(rel, {0}, 1, op)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedAggregateTest,
    ::testing::Combine(::testing::Values(AggregateOp::kSum,
                                         AggregateOp::kCount,
                                         AggregateOp::kMin,
                                         AggregateOp::kMax),
                       ::testing::Values(false, true)));

TEST(ScalarSumTest, CorrectAcrossFanIns) {
  Rng rng(4);
  const Relation rel = GenerateUniform(rng, 5000, 1, 1000);
  Value expected = 0;
  for (int64_t i = 0; i < rel.size(); ++i) expected += rel.at(i, 0);
  for (const int p : {1, 7, 16, 64}) {
    for (const int fan_in : {2, 4, 8}) {
      Cluster cluster(p, 3);
      const ScalarAggregateResult result = DistributedSum(
          cluster, DistRelation::Scatter(rel, p), 0, fan_in);
      EXPECT_EQ(result.sum, expected) << "p=" << p << " f=" << fan_in;
      const int expected_rounds =
          p == 1 ? 0
                 : static_cast<int>(std::ceil(std::log(p) /
                                              std::log(fan_in) - 1e-9));
      EXPECT_EQ(result.rounds, expected_rounds)
          << "p=" << p << " f=" << fan_in;
      EXPECT_EQ(cluster.cost_report().num_rounds(), result.rounds);
    }
  }
}

TEST(ScalarSumTest, TreeLoadIsFanIn) {
  const int p = 64;
  Rng rng(5);
  const Relation rel = GenerateUniform(rng, 640, 1, 10);
  Cluster cluster(p, 3);
  DistributedSum(cluster, DistRelation::Scatter(rel, p), 0, 4);
  // Each round a leader receives at most fan_in - 1 partials.
  EXPECT_LE(cluster.cost_report().MaxLoadTuples(), 3);
}

}  // namespace
}  // namespace mpcqp
