#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "agg/aggregate.h"
#include "mpc/cluster.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

class GroupByTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(GroupByTest, MatchesLocalGroupBy) {
  const auto [p, combiners] = GetParam();
  Rng rng(1);
  const Relation rel = GenerateUniform(rng, 3000, 3, 50);
  Cluster cluster(p, 3);
  GroupByOptions options;
  options.use_combiners = combiners;
  const DistRelation result =
      DistributedGroupBySum(cluster, DistRelation::Scatter(rel, p), {0, 1}, 2,
                            options)
          .value();
  EXPECT_TRUE(
      MultisetEqual(result.Collect(), GroupBySum(rel, {0, 1}, 2).value()));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupByTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(false, true)));

TEST(GroupByTest, EachGroupOnOneServer) {
  const int p = 8;
  Rng rng(2);
  const Relation rel = GenerateUniform(rng, 2000, 2, 20);
  Cluster cluster(p, 3);
  const DistRelation result =
      DistributedGroupBySum(cluster, DistRelation::Scatter(rel, p), {0}, 1)
          .value();
  // 20 possible groups; every group key appears in exactly one fragment.
  for (Value g = 0; g < 20; ++g) {
    int holders = 0;
    for (int s = 0; s < p; ++s) {
      const Relation& frag = result.fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        if (frag.at(i, 0) == g) {
          ++holders;
          break;
        }
      }
    }
    EXPECT_LE(holders, 1);
  }
}

TEST(GroupByTest, CombinersCutSkewedShuffleLoad) {
  // One dominant group: without combiners its entire weight lands on one
  // server; with combiners each server sends a single partial.
  const int p = 16;
  const Relation rel = GenerateConstantColumn(8000, 0, 3);  // All group 3.
  GroupByOptions with;
  with.use_combiners = true;
  GroupByOptions without;
  without.use_combiners = false;

  Cluster c1(p, 3);
  ASSERT_TRUE(
      DistributedGroupBySum(c1, DistRelation::Scatter(rel, p), {0}, 1, with)
          .ok());
  Cluster c2(p, 3);
  ASSERT_TRUE(DistributedGroupBySum(c2, DistRelation::Scatter(rel, p), {0}, 1,
                                    without)
                  .ok());

  EXPECT_EQ(c1.cost_report().MaxLoadTuples(), p);     // One partial each.
  EXPECT_EQ(c2.cost_report().MaxLoadTuples(), 8000);  // The whole group.
}

TEST(GroupByAggregateTest, LocalOpsByHand) {
  const Relation r =
      Relation::FromRows({{1, 10}, {1, 3}, {2, 7}, {1, 5}, {2, 9}});
  const Relation count =
      GroupByAggregate(r, {0}, 1, AggregateOp::kCount).value();
  EXPECT_EQ(count.at(0, 1), 3u);
  EXPECT_EQ(count.at(1, 1), 2u);
  // COUNT never reads the value column; -1 skips it entirely.
  EXPECT_EQ(GroupByAggregate(r, {0}, -1, AggregateOp::kCount).value(), count);
  const Relation mn = GroupByAggregate(r, {0}, 1, AggregateOp::kMin).value();
  EXPECT_EQ(mn.at(0, 1), 3u);
  EXPECT_EQ(mn.at(1, 1), 7u);
  const Relation mx = GroupByAggregate(r, {0}, 1, AggregateOp::kMax).value();
  EXPECT_EQ(mx.at(0, 1), 10u);
  EXPECT_EQ(mx.at(1, 1), 9u);
}

TEST(GroupByAggregateTest, ScalarGroupLocal) {
  // Empty group_cols: one all-rows group, output arity 1.
  const Relation r = Relation::FromRows({{4, 10}, {9, 3}, {2, 7}});
  const Relation sum = GroupByAggregate(r, {}, 1, AggregateOp::kSum).value();
  EXPECT_EQ(sum, Relation::FromRows({{20}}));
  const Relation count =
      GroupByAggregate(r, {}, -1, AggregateOp::kCount).value();
  EXPECT_EQ(count, Relation::FromRows({{3}}));
  // An empty input has no groups at all — not a zero row.
  const Relation empty(2);
  EXPECT_TRUE(GroupByAggregate(empty, {}, 1, AggregateOp::kSum)->empty());
}

class DistributedAggregateTest
    : public ::testing::TestWithParam<std::tuple<AggregateOp, bool>> {};

TEST_P(DistributedAggregateTest, MatchesLocalReference) {
  const auto [op, combiners] = GetParam();
  const int p = 8;
  Rng rng(6);
  const Relation rel = GenerateUniform(rng, 4000, 2, 64);
  Cluster cluster(p, 3);
  GroupByOptions options;
  options.use_combiners = combiners;
  const DistRelation result =
      DistributedGroupByAggregate(cluster, DistRelation::Scatter(rel, p), {0},
                                  1, op, options)
          .value();
  EXPECT_TRUE(MultisetEqual(result.Collect(),
                            GroupByAggregate(rel, {0}, 1, op).value()));
}

// The combiner toggle is a pure optimization: on and off must produce the
// same multiset for every op (the regression for the kCount no-combiner
// shape bug, which returned row counts only by accident of arity).
TEST_P(DistributedAggregateTest, CombinersOnOffAgree) {
  const auto [op, combiners] = GetParam();
  if (combiners) GTEST_SKIP() << "pair covered by the combiners=false run";
  const int p = 8;
  Rng rng(7);
  const Relation rel = GenerateZipf(rng, 3000, 2, 100, 0, 1.2);
  GroupByOptions on;
  on.use_combiners = true;
  GroupByOptions off;
  off.use_combiners = false;
  Cluster c1(p, 3);
  Cluster c2(p, 3);
  const DistRelation with =
      DistributedGroupByAggregate(c1, DistRelation::Scatter(rel, p), {0}, 1,
                                  op, on)
          .value();
  const DistRelation without =
      DistributedGroupByAggregate(c2, DistRelation::Scatter(rel, p), {0}, 1,
                                  op, off)
          .value();
  EXPECT_TRUE(MultisetEqual(with.Collect(), without.Collect()));
}

// Distributed and local agree on the scalar (empty group_cols) group —
// the contract divergence the CHECK at the old aggregate.cc:22 left open.
TEST_P(DistributedAggregateTest, ScalarGroupMatchesLocal) {
  const auto [op, combiners] = GetParam();
  const int p = 8;
  Rng rng(8);
  const Relation rel = GenerateUniform(rng, 2000, 2, 64);
  Cluster cluster(p, 3);
  GroupByOptions options;
  options.use_combiners = combiners;
  const DistRelation result =
      DistributedGroupByAggregate(cluster, DistRelation::Scatter(rel, p), {},
                                  1, op, options)
          .value();
  const Relation collected = result.Collect();
  EXPECT_EQ(collected.size(), 1);
  EXPECT_TRUE(
      MultisetEqual(collected, GroupByAggregate(rel, {}, 1, op).value()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedAggregateTest,
    ::testing::Combine(::testing::Values(AggregateOp::kSum,
                                         AggregateOp::kCount,
                                         AggregateOp::kMin,
                                         AggregateOp::kMax),
                       ::testing::Values(false, true)));

TEST(DistributedAggregateTest, CountWithoutCombinersShipsOnlyGroupColumns) {
  const int p = 8;
  Rng rng(9);
  const Relation rel = GenerateUniform(rng, 2000, 3, 40);
  GroupByOptions off;
  off.use_combiners = false;
  Cluster cluster(p, 3);
  ASSERT_TRUE(DistributedGroupByAggregate(cluster,
                                          DistRelation::Scatter(rel, p), {0},
                                          1, AggregateOp::kCount, off)
                  .ok());
  const RoundCost& shuffle = cluster.cost_report().rounds()[0];
  // Every shuffled tuple is exactly the 1-column group key — no value
  // payload rides along for COUNT.
  EXPECT_EQ(shuffle.TotalValuesReceived(), shuffle.TotalTuplesReceived());
}

TEST(DistributedAggregateTest, SumOverflowSurfacesTypedError) {
  const Value half = Value{1} << 63;
  Relation rel(2);
  rel.AppendRow({7, half});
  rel.AppendRow({7, half});  // Exact wrap to 0.
  for (const bool combiners : {false, true}) {
    Cluster cluster(4, 3);
    GroupByOptions options;
    options.use_combiners = combiners;
    const auto result = DistributedGroupByAggregate(
        cluster, DistRelation::Scatter(rel, 4), {0}, 1, AggregateOp::kSum,
        options);
    ASSERT_FALSE(result.ok()) << "combiners=" << combiners;
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(ScalarSumTest, CorrectAcrossFanIns) {
  Rng rng(4);
  const Relation rel = GenerateUniform(rng, 5000, 1, 1000);
  Value expected = 0;
  for (int64_t i = 0; i < rel.size(); ++i) expected += rel.at(i, 0);
  for (const int p : {1, 7, 16, 64}) {
    for (const int fan_in : {2, 4, 8}) {
      Cluster cluster(p, 3);
      const ScalarAggregateResult result =
          DistributedSum(cluster, DistRelation::Scatter(rel, p), 0, fan_in)
              .value();
      EXPECT_EQ(result.sum, expected) << "p=" << p << " f=" << fan_in;
      const int expected_rounds =
          p == 1 ? 0
                 : static_cast<int>(std::ceil(std::log(p) /
                                              std::log(fan_in) - 1e-9));
      EXPECT_EQ(result.rounds, expected_rounds)
          << "p=" << p << " f=" << fan_in;
      EXPECT_EQ(cluster.cost_report().num_rounds(), result.rounds);
    }
  }
}

TEST(ScalarSumTest, TreeLoadIsFanIn) {
  const int p = 64;
  Rng rng(5);
  const Relation rel = GenerateUniform(rng, 640, 1, 10);
  Cluster cluster(p, 3);
  ASSERT_TRUE(
      DistributedSum(cluster, DistRelation::Scatter(rel, p), 0, 4).ok());
  // Each round a leader receives at most fan_in - 1 partials.
  EXPECT_LE(cluster.cost_report().MaxLoadTuples(), 3);
}

TEST(ScalarSumTest, OverflowSurfacesTypedError) {
  // Two fragments whose partials are each fine but whose tree merge wraps.
  const Value half = Value{1} << 63;
  Relation rel(1);
  rel.AppendRow({half});
  rel.AppendRow({half});
  rel.AppendRow({1});
  Cluster cluster(4, 3);
  const auto result =
      DistributedSum(cluster, DistRelation::Scatter(rel, 4), 0, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mpcqp
