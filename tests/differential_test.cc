// Randomized differential testing: random connected conjunctive queries
// (cyclic or not), random data, every parallel algorithm in the library
// cross-checked against the serial evaluator. The single most effective
// guard against silent wrong-result bugs in the exchange/partitioning
// machinery.

#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "multiway/bigjoin.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "query/generic_join.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

ConjunctiveQuery RandomConnectedQuery(Rng& rng) {
  const int num_atoms = 2 + static_cast<int>(rng.Uniform(3));  // 2..4.
  std::vector<std::string> names;
  std::vector<Atom> atoms;
  auto fresh_var = [&]() {
    const int v = static_cast<int>(names.size());
    names.push_back("v" + std::to_string(v));
    return v;
  };
  for (int a = 0; a < num_atoms; ++a) {
    Atom atom;
    atom.name = "A" + std::to_string(a);
    const int arity = 1 + static_cast<int>(rng.Uniform(2));  // 1..2.
    for (int c = 0; c < arity; ++c) {
      // Mostly reuse existing variables (keeps the query connected and
      // occasionally cyclic); sometimes mint a fresh one.
      if (!names.empty() && rng.Uniform(3) != 0) {
        atom.vars.push_back(static_cast<int>(rng.Uniform(names.size())));
      } else {
        atom.vars.push_back(fresh_var());
      }
    }
    atoms.push_back(std::move(atom));
  }
  // Make sure every variable appears (fresh vars always do; reused too).
  return ConjunctiveQuery::Make(names, atoms);
}

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllAlgorithmsAgreeWithSerialReference) {
  Rng shape_rng(GetParam());
  const ConjunctiveQuery q = RandomConnectedQuery(shape_rng);
  SCOPED_TRACE(q.ToString());

  Rng data_rng(GetParam() + 5000);
  std::vector<Relation> atoms;
  for (int j = 0; j < q.num_atoms(); ++j) {
    const int64_t rows = 40 + static_cast<int64_t>(data_rng.Uniform(80));
    atoms.push_back(GenerateUniform(data_rng, rows, q.atom(j).arity(), 25));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  // Guard against pathological blowups keeping the test fast.
  if (expected.size() > 2000000) GTEST_SKIP() << "output too large";

  for (const int p : {4, 9}) {
    {
      Cluster cluster(p, 5);
      const HyperCubeResult result =
          HyperCubeJoin(cluster, q, Scatter(atoms, p));
      EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
          << "hypercube p=" << p;
    }
    {
      Cluster cluster(p, 5);
      const SkewHcResult result = SkewHcJoin(cluster, q, Scatter(atoms, p));
      EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
          << "skew-hc p=" << p;
    }
    {
      Cluster cluster(p, 5);
      Rng rng(GetParam() + 7000);
      const BinaryPlanResult result =
          IterativeBinaryJoin(cluster, q, Scatter(atoms, p), rng);
      EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
          << "binary p=" << p;
    }
  }

  // Set-semantics family on deduplicated inputs.
  std::vector<Relation> deduped;
  for (const Relation& r : atoms) deduped.push_back(Dedup(r));
  const Relation set_expected = Dedup(EvalJoinLocal(q, deduped));
  EXPECT_TRUE(MultisetEqual(EvalJoinWcoj(q, deduped), set_expected))
      << "wcoj";
  {
    Cluster cluster(9, 5);
    const BigJoinResult result = BigJoin(cluster, q, Scatter(deduped, 9));
    EXPECT_TRUE(MultisetEqual(result.output.Collect(), set_expected))
        << "bigjoin";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace mpcqp
