// Randomized differential testing: random connected conjunctive queries
// (cyclic or not), random data, every parallel algorithm in the library
// cross-checked against the serial evaluator. The single most effective
// guard against silent wrong-result bugs in the exchange/partitioning
// machinery.

#include <gtest/gtest.h>

#include <cstdlib>

#include "join/hash_join.h"
#include "join/semi_join.h"
#include "join/skew_join.h"
#include "join/sort_join.h"
#include "acyclic/gym.h"
#include "mpc/cluster.h"
#include "multiway/bigjoin.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "query/generic_join.h"
#include "query/ghd.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// Trial budget: setting MPCQP_HEAVY_TESTS=1 (or any non-zero value) in the
// environment multiplies the random-seed range for soak runs; the default
// keeps the suite fast enough for every CI invocation.
uint64_t TrialSeedEnd() {
  const char* heavy = std::getenv("MPCQP_HEAVY_TESTS");
  const bool on = heavy != nullptr && heavy[0] != '\0' &&
                  !(heavy[0] == '0' && heavy[1] == '\0');
  return on ? 121 : 25;
}

ConjunctiveQuery RandomConnectedQuery(Rng& rng) {
  const int num_atoms = 2 + static_cast<int>(rng.Uniform(3));  // 2..4.
  std::vector<std::string> names;
  std::vector<Atom> atoms;
  auto fresh_var = [&]() {
    const int v = static_cast<int>(names.size());
    names.push_back("v" + std::to_string(v));
    return v;
  };
  for (int a = 0; a < num_atoms; ++a) {
    Atom atom;
    atom.name = "A" + std::to_string(a);
    const int arity = 1 + static_cast<int>(rng.Uniform(3));  // 1..3.
    for (int c = 0; c < arity; ++c) {
      // Mostly reuse existing variables (keeps the query connected and
      // occasionally cyclic); sometimes mint a fresh one.
      if (!names.empty() && rng.Uniform(3) != 0) {
        atom.vars.push_back(static_cast<int>(rng.Uniform(names.size())));
      } else {
        atom.vars.push_back(fresh_var());
      }
    }
    atoms.push_back(std::move(atom));
  }
  // Make sure every variable appears (fresh vars always do; reused too).
  return ConjunctiveQuery::Make(names, atoms);
}

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllAlgorithmsAgreeWithSerialReference) {
  Rng shape_rng(GetParam());
  const ConjunctiveQuery q = RandomConnectedQuery(shape_rng);
  SCOPED_TRACE(q.ToString());

  Rng data_rng(GetParam() + 5000);
  std::vector<Relation> atoms;
  for (int j = 0; j < q.num_atoms(); ++j) {
    const int64_t rows = 40 + static_cast<int64_t>(data_rng.Uniform(80));
    atoms.push_back(GenerateUniform(data_rng, rows, q.atom(j).arity(), 25));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  // Guard against pathological blowups keeping the test fast.
  if (expected.size() > 2000000) GTEST_SKIP() << "output too large";

  for (const int p : {4, 9}) {
    // Odd seeds run the cluster with two OS threads, so this suite also
    // differentially tests the parallel executor against the reference.
    ClusterOptions cluster_options;
    cluster_options.num_threads = (GetParam() % 2 == 1) ? 2 : 1;
    {
      Cluster cluster(p, 5, cluster_options);
      const HyperCubeResult result =
          HyperCubeJoin(cluster, q, Scatter(atoms, p));
      EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
          << "hypercube p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      const SkewHcResult result = SkewHcJoin(cluster, q, Scatter(atoms, p));
      EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
          << "skew-hc p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      Rng rng(GetParam() + 7000);
      const BinaryPlanResult result =
          IterativeBinaryJoin(cluster, q, Scatter(atoms, p), rng);
      EXPECT_TRUE(MultisetEqual(result.output.Collect(), expected))
          << "binary p=" << p;
    }
  }

  // Set-semantics family on deduplicated inputs.
  std::vector<Relation> deduped;
  for (const Relation& r : atoms) deduped.push_back(Dedup(r));
  const Relation set_expected = Dedup(EvalJoinLocal(q, deduped));
  EXPECT_TRUE(MultisetEqual(EvalJoinWcoj(q, deduped), set_expected))
      << "wcoj";
  {
    Cluster cluster(9, 5);
    const BigJoinResult result = BigJoin(cluster, q, Scatter(deduped, 9));
    EXPECT_TRUE(MultisetEqual(result.output.Collect(), set_expected))
        << "bigjoin";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{1}, TrialSeedEnd()));

// Two-way join paths the conjunctive-query drivers do not reach directly:
// the sort-merge local algorithm, the PSRS-based sort join, the
// skew-aware join, and the semijoin/antijoin family, all cross-checked
// against the serial local reference on random (sometimes skewed) data.
class TwoWayDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoWayDifferentialTest, JoinAndSemijoinPathsAgreeWithLocalReference) {
  Rng rng(GetParam() * 977 + 3);
  const int left_arity = 2 + static_cast<int>(rng.Uniform(2));   // 2..3.
  const int right_arity = 2 + static_cast<int>(rng.Uniform(2));  // 2..3.
  const int left_key = static_cast<int>(rng.Uniform(left_arity));
  const int right_key = static_cast<int>(rng.Uniform(right_arity));
  const int64_t rows = 60 + static_cast<int64_t>(rng.Uniform(120));
  // Every third seed uses Zipf-skewed keys to drive the heavy-hitter and
  // crossing-key machinery; the rest stay uniform.
  const bool skewed = GetParam() % 3 == 0;
  const Relation left =
      skewed ? GenerateZipf(rng, rows, left_arity, 30, left_key, 1.3)
             : GenerateUniform(rng, rows, left_arity, 30);
  const Relation right =
      skewed ? GenerateZipf(rng, rows, right_arity, 30, right_key, 1.3)
             : GenerateUniform(rng, rows, right_arity, 30);

  const Relation expected =
      HashJoinLocal(left, right, {left_key}, {right_key});
  const Relation expected_semi =
      SemijoinLocal(left, right, {left_key}, {right_key});
  const Relation expected_anti =
      AntijoinLocal(left, right, {left_key}, {right_key});

  for (const int p : {4, 8}) {
    ClusterOptions cluster_options;
    cluster_options.num_threads = (GetParam() % 2 == 1) ? 2 : 1;
    const DistRelation dl = DistRelation::Scatter(left, p);
    const DistRelation dr = DistRelation::Scatter(right, p);
    {
      Cluster cluster(p, 5, cluster_options);
      const DistRelation result =
          ParallelHashJoin(cluster, dl, dr, {left_key}, {right_key},
                           LocalJoinAlgorithm::kSortMerge);
      EXPECT_TRUE(MultisetEqual(result.Collect(), expected))
          << "hash join (sort-merge local) p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      Rng join_rng(GetParam() + 11000);
      const DistRelation result = ParallelSortJoin(
          cluster, dl, dr, left_key, right_key, join_rng);
      EXPECT_TRUE(MultisetEqual(result.Collect(), expected))
          << "sort join p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      Rng join_rng(GetParam() + 13000);
      const DistRelation result = SkewAwareJoin(
          cluster, dl, dr, left_key, right_key, join_rng);
      EXPECT_TRUE(MultisetEqual(result.Collect(), expected))
          << "skew-aware join p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      const DistRelation result = DistributedSemijoin(
          cluster, dl, dr, {left_key}, {right_key});
      EXPECT_TRUE(MultisetEqual(result.Collect(), expected_semi))
          << "semijoin p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      const DistRelation result = BroadcastSemijoin(
          cluster, dl, dr, {left_key}, {right_key});
      EXPECT_TRUE(MultisetEqual(result.Collect(), expected_semi))
          << "broadcast semijoin p=" << p;
    }
    {
      Cluster cluster(p, 5, cluster_options);
      const DistRelation result = DistributedAntijoin(
          cluster, dl, dr, {left_key}, {right_key});
      EXPECT_TRUE(MultisetEqual(result.Collect(), expected_anti))
          << "antijoin p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoWayDifferentialTest,
                         ::testing::Range(uint64_t{1}, TrialSeedEnd()));

// Planner differential: the planner-picked executable plan vs every
// feasible static driver on the same inputs, across {1, 2, 8} worker
// threads. Inputs are deduplicated, which makes the join output
// duplicate-free, so bag- and set-semantics drivers (including BigJoin)
// are all comparable by multiset equality. When the planner picks the
// binary family, its tree-walking executor is additionally required to be
// fragment-for-fragment identical to IterativeBinaryJoin run with the
// same order and skew flag — the planner must never change results, only
// schedules.
uint64_t PlannerTrialSeedEnd() {
  const char* heavy = std::getenv("MPCQP_HEAVY_TESTS");
  const bool on = heavy != nullptr && heavy[0] != '\0' &&
                  !(heavy[0] == '0' && heavy[1] == '\0');
  return on ? 61 : 13;
}

bool FragmentsIdentical(const DistRelation& a, const DistRelation& b) {
  if (a.num_servers() != b.num_servers() || a.arity() != b.arity()) {
    return false;
  }
  for (int s = 0; s < a.num_servers(); ++s) {
    const Relation& fa = a.fragment(s);
    const Relation& fb = b.fragment(s);
    if (fa.size() != fb.size()) return false;
    for (int64_t i = 0; i < fa.size(); ++i) {
      for (int c = 0; c < fa.arity(); ++c) {
        if (fa.at(i, c) != fb.at(i, c)) return false;
      }
    }
  }
  return true;
}

class PlannerDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerDifferentialTest, PlannedPlanAgreesWithEveryStaticDriver) {
  Rng shape_rng(GetParam() * 131 + 17);
  const ConjunctiveQuery q = RandomConnectedQuery(shape_rng);
  SCOPED_TRACE(q.ToString());

  Rng data_rng(GetParam() + 9000);
  std::vector<Relation> atoms;
  for (int j = 0; j < q.num_atoms(); ++j) {
    const int64_t rows = 40 + static_cast<int64_t>(data_rng.Uniform(80));
    atoms.push_back(
        Dedup(GenerateUniform(data_rng, rows, q.atom(j).arity(), 25)));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  if (expected.size() > 200000) GTEST_SKIP() << "output too large";

  const int p = 8;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ClusterOptions cluster_options;
    cluster_options.num_threads = threads;

    PlanCache cache;
    Cluster cluster(p, 5, cluster_options);
    Rng rng(GetParam() + 7000);
    const PlannedQuery planned =
        PlanQuery(q, Scatter(atoms, p), p, PlannerOptions{}, &cache);
    const DistRelation out =
        ExecutePlannedQuery(cluster, q, Scatter(atoms, p), planned, rng);
    EXPECT_TRUE(MultisetEqual(out.Collect(), expected))
        << "planner chose " << PlanAlgorithmName(planned.plan.family);

    if (planned.plan.family == PlanAlgorithm::kBinaryPlan) {
      // Same cluster seed, same rng seed, same order: the tree walk must
      // reproduce the static driver bit for bit, not just as a multiset.
      Cluster ref_cluster(p, 5, cluster_options);
      Rng ref_rng(GetParam() + 7000);
      BinaryPlanOptions ref_options;
      ref_options.skew_aware = planned.plan.skew_aware;
      ref_options.order = planned.plan.join_order;
      const BinaryPlanResult ref = IterativeBinaryJoin(
          ref_cluster, q, Scatter(atoms, p), ref_rng, ref_options);
      EXPECT_TRUE(FragmentsIdentical(out, ref.output))
          << "tree executor diverged from IterativeBinaryJoin";
    }

    // Every feasible static driver agrees on the same inputs.
    {
      Cluster c2(p, 5, cluster_options);
      EXPECT_TRUE(MultisetEqual(
          HyperCubeJoin(c2, q, Scatter(atoms, p)).output.Collect(), expected))
          << "hypercube";
    }
    {
      Cluster c2(p, 5, cluster_options);
      EXPECT_TRUE(MultisetEqual(
          SkewHcJoin(c2, q, Scatter(atoms, p)).output.Collect(), expected))
          << "skew-hc";
    }
    {
      Cluster c2(p, 5, cluster_options);
      Rng r2(GetParam() + 7000);
      EXPECT_TRUE(MultisetEqual(
          IterativeBinaryJoin(c2, q, Scatter(atoms, p), r2).output.Collect(),
          expected))
          << "binary (identity order)";
    }
    {
      Cluster c2(p, 5, cluster_options);
      EXPECT_TRUE(MultisetEqual(
          BigJoin(c2, q, Scatter(atoms, p)).output.Collect(), expected))
          << "bigjoin";
    }
    if (IsAcyclic(q)) {
      const auto tree = BuildJoinTree(q);
      ASSERT_TRUE(tree.ok());
      Cluster c2(p, 5, cluster_options);
      Rng r2(GetParam() + 7000);
      EXPECT_TRUE(MultisetEqual(
          GymJoin(c2, q, *tree, Scatter(atoms, p), r2).output.Collect(),
          expected))
          << "gym";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialTest,
                         ::testing::Range(uint64_t{1}, PlannerTrialSeedEnd()));

}  // namespace
}  // namespace mpcqp
