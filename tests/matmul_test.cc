#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "matmul/block_mm.h"
#include "matmul/cost_model.h"
#include "matmul/matrix.h"
#include "matmul/sql_mm.h"
#include "mpc/cluster.h"
#include "relation/relation_ops.h"

namespace mpcqp {
namespace {

// ---------- Matrix basics ----------

TEST(MatrixTest, MultiplySerialKnownProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = MultiplySerial(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(MatrixTest, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = RandomMatrix(rng, 8, 8, 100);
  Matrix eye(8, 8);
  for (int i = 0; i < 8; ++i) eye.at(i, i) = 1;
  EXPECT_TRUE(MultiplySerial(a, eye) == a);
  EXPECT_TRUE(MultiplySerial(eye, a) == a);
}

TEST(MatrixTest, ExtractBlockTiles) {
  Rng rng(2);
  const Matrix a = RandomMatrix(rng, 8, 8, 10);
  const Matrix block = ExtractBlock(a, 4, 1, 2);
  EXPECT_EQ(block.rows(), 2);
  EXPECT_EQ(block.at(0, 0), a.at(2, 4));
  EXPECT_EQ(block.at(1, 1), a.at(3, 5));
}

TEST(MatrixTest, RelationRoundTrip) {
  Rng rng(3);
  const Matrix a = RandomMatrix(rng, 6, 6, 50);
  const Relation rel = MatrixToRelation(a);
  EXPECT_TRUE(RelationToMatrix(rel, 6, 6) == a);
}

// ---------- Rectangle-block (1 round) ----------

class RectangleMmTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RectangleMmTest, MatchesSerialInOneRound) {
  const auto [n, p] = GetParam();
  Rng rng(5);
  Cluster cluster(p, 5);
  const Matrix a = RandomMatrix(rng, n, n, 20);
  const Matrix b = RandomMatrix(rng, n, n, 20);
  const OneRoundMmResult result = RectangleBlockMm(cluster, a, b);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RectangleMmTest,
                         ::testing::Combine(::testing::Values(8, 16, 24),
                                            ::testing::Values(1, 4, 16, 30)));

TEST(RectangleMmTest, LoadMatchesTwoNSquaredOverK) {
  const int n = 32;
  const int p = 16;  // K = 4.
  Rng rng(6);
  Cluster cluster(p, 5);
  const Matrix a = RandomMatrix(rng, n, n, 10);
  const Matrix b = RandomMatrix(rng, n, n, 10);
  const OneRoundMmResult result = RectangleBlockMm(cluster, a, b);
  EXPECT_EQ(result.grid_dim, 4);
  EXPECT_EQ(cluster.cost_report().MaxLoadValues(), 2 * n * n / 4);
  // Total communication ~ n^4 / L (cost model sanity).
  const double c = static_cast<double>(
      cluster.cost_report().TotalCommValues());
  EXPECT_NEAR(c, RectBlockComm(n, p), c * 0.01);
}

// ---------- Square-block (multi round) ----------

class SquareMmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SquareMmTest, MatchesSerial) {
  const auto [n, h, p] = GetParam();
  Rng rng(7);
  Cluster cluster(p, 5);
  const Matrix a = RandomMatrix(rng, n, n, 15);
  const Matrix b = RandomMatrix(rng, n, n, 15);
  const SquareBlockMmResult result = SquareBlockMm(cluster, a, b, h);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
  EXPECT_EQ(cluster.cost_report().num_rounds(), result.rounds);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SquareMmTest,
                         ::testing::Combine(::testing::Values(8, 16),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 5, 16, 32)));

TEST(SquareMmTest, SlideExampleOneGroupPerRound) {
  // Slides 115-118: H=4, p=H^2=16 -> one group per round, no aggregation
  // round (partials stay on their server): r = 4.
  const int n = 16;
  Rng rng(8);
  Cluster cluster(16, 5);
  const Matrix a = RandomMatrix(rng, n, n, 10);
  const Matrix b = RandomMatrix(rng, n, n, 10);
  const SquareBlockMmResult result = SquareBlockMm(cluster, a, b, 4);
  EXPECT_EQ(result.rounds, 4);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
}

TEST(SquareMmTest, SlideExampleTwoGroupsPerRound) {
  // Slides 119-121: H=4, p=2H^2=32 -> two groups per round plus a final
  // aggregation round: r = 2 + 1.
  const int n = 16;
  Rng rng(9);
  Cluster cluster(32, 5);
  const Matrix a = RandomMatrix(rng, n, n, 10);
  const Matrix b = RandomMatrix(rng, n, n, 10);
  const SquareBlockMmResult result = SquareBlockMm(cluster, a, b, 4);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_TRUE(result.c == MultiplySerial(a, b));
}

TEST(SquareMmTest, PerRoundLoadIsTwoBlocks) {
  const int n = 32;
  const int h = 4;
  Rng rng(10);
  Cluster cluster(16, 5);
  const Matrix a = RandomMatrix(rng, n, n, 10);
  const Matrix b = RandomMatrix(rng, n, n, 10);
  SquareBlockMm(cluster, a, b, h);
  EXPECT_EQ(cluster.cost_report().MaxLoadValues(), 2 * (n / h) * (n / h));
}

TEST(SquareMmTest, FewerServersMoreRounds) {
  const int n = 16;
  const int h = 4;  // 64 block products.
  Rng rng(11);
  const Matrix a = RandomMatrix(rng, n, n, 10);
  const Matrix b = RandomMatrix(rng, n, n, 10);
  Cluster small(8, 5);
  const auto small_result = SquareBlockMm(small, a, b, h);
  Cluster big(64, 5);
  const auto big_result = SquareBlockMm(big, a, b, h);
  EXPECT_GT(small_result.rounds, big_result.rounds);
  EXPECT_TRUE(small_result.c == big_result.c);
}

// ---------- SQL MM ----------

class SqlMmTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlMmTest, MatchesSerialOnDenseMatrices) {
  const int p = GetParam();
  const int n = 12;
  Rng rng(12);
  Cluster cluster(p, 5);
  // Entries in [1, 20]: no zeros, so the sparse view is total.
  Matrix a = RandomMatrix(rng, n, n, 19);
  Matrix b = RandomMatrix(rng, n, n, 19);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ++a.at(i, j);
      ++b.at(i, j);
    }
  }
  const DistRelation result = SqlMatrixMultiply(
      cluster, DistRelation::Scatter(MatrixToRelation(a), p),
      DistRelation::Scatter(MatrixToRelation(b), p));
  EXPECT_TRUE(RelationToMatrix(result.Collect(), n, n) ==
              MultiplySerial(a, b));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SqlMmTest, ::testing::Values(1, 4, 16));

TEST(SqlMmTest, SparseInputsStaySparse) {
  const int p = 4;
  Cluster cluster(p, 5);
  Matrix a(10, 10);
  a.at(0, 3) = 2;
  a.at(7, 3) = 5;
  Matrix b(10, 10);
  b.at(3, 1) = 4;
  const DistRelation result = SqlMatrixMultiply(
      cluster, DistRelation::Scatter(MatrixToRelation(a), p),
      DistRelation::Scatter(MatrixToRelation(b), p));
  const Relation collected = result.Collect();
  EXPECT_EQ(collected.size(), 2);  // (0,1)=8 and (7,1)=20.
  EXPECT_TRUE(RelationToMatrix(collected, 10, 10) == MultiplySerial(a, b));
}

// ---------- Cost model ----------

TEST(CostModelTest, RectBlockCommGrowsWithP) {
  EXPECT_LT(RectBlockComm(64, 4), RectBlockComm(64, 16));
}

TEST(CostModelTest, SquareBlockBeatsOneRoundForSmallLoads) {
  // The slide-126 frontier: for L well below n^2, the multi-round
  // algorithm moves far less data than any 1-round algorithm.
  const int64_t n = 1 << 10;
  const int64_t load = 1 << 12;
  EXPECT_LT(SquareBlockComm(n, load), OneRoundCommLowerBound(n, load));
}

TEST(CostModelTest, UpperBoundsDominateLowerBounds) {
  for (const int64_t load : {int64_t{1} << 8, int64_t{1} << 12}) {
    const int64_t n = 1 << 9;
    EXPECT_GE(SquareBlockComm(n, load), CommLowerBound(n, load) * 0.5);
    EXPECT_LE(CommLowerBound(n, load), SquareBlockComm(n, load) * 2.0);
  }
}

TEST(CostModelTest, RoundsLowerBoundHasBothRegimes) {
  // Tiny load: the n^3/(p L^{3/2}) term dominates.
  EXPECT_GT(RoundsLowerBound(1 << 10, 4, 1 << 6), 10.0);
  // Big load: the log term dominates and is >= ~1.
  EXPECT_GE(RoundsLowerBound(1 << 10, 1 << 20, 1 << 18), 0.5);
}

}  // namespace
}  // namespace mpcqp
