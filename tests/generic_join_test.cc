#include <gtest/gtest.h>

#include <tuple>

#include "query/generic_join.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// Reference: set-semantics result via the binary evaluator + dedup of
// deduplicated inputs.
Relation SetSemanticsReference(const ConjunctiveQuery& q,
                               const std::vector<Relation>& atoms) {
  std::vector<Relation> deduped;
  for (const Relation& r : atoms) deduped.push_back(Dedup(r));
  return Dedup(EvalJoinLocal(q, deduped));
}

struct WcojCase {
  const char* query;
  int64_t rows;
  uint64_t domain;
};

class GenericJoinTest
    : public ::testing::TestWithParam<std::tuple<WcojCase, uint64_t>> {};

TEST_P(GenericJoinTest, MatchesSetSemanticsReference) {
  const auto [spec, seed] = GetParam();
  const auto q = ConjunctiveQuery::Parse(spec.query);
  ASSERT_TRUE(q.ok());
  Rng rng(seed);
  std::vector<Relation> atoms;
  for (int j = 0; j < q->num_atoms(); ++j) {
    atoms.push_back(
        GenerateUniform(rng, spec.rows, q->atom(j).arity(), spec.domain));
  }
  EXPECT_TRUE(MultisetEqual(EvalJoinWcoj(*q, atoms),
                            SetSemanticsReference(*q, atoms)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GenericJoinTest,
    ::testing::Combine(
        ::testing::Values(WcojCase{"R(x,y), S(y,z), T(z,x)", 200, 15},
                          WcojCase{"R(x,y), S(y,z)", 150, 12},
                          WcojCase{"R(x), S(y)", 20, 30},
                          WcojCase{"A(x,y), B(y,z), C(z,w), D(w,x)", 100, 8},
                          WcojCase{"R(x,y), S(x,z), T(x,w)", 120, 10}),
        ::testing::Values(1u, 2u, 3u)));

TEST(GenericJoinTest, TriangleByHand) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const Relation r = Relation::FromRows({{1, 2}, {4, 5}});
  const Relation s = Relation::FromRows({{2, 3}, {5, 6}});
  const Relation t = Relation::FromRows({{3, 1}, {6, 9}});
  const Relation out = EvalJoinWcoj(q, {r, s, t});
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(0, 1), 2u);
  EXPECT_EQ(out.at(0, 2), 3u);
}

TEST(GenericJoinTest, DuplicatesDoNotMultiply) {
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  const Relation r = Relation::FromRows({{1, 5}, {1, 5}});
  const Relation s = Relation::FromRows({{5, 2}, {5, 2}});
  EXPECT_EQ(EvalJoinWcoj(q, {r, s}).size(), 1);  // Set semantics.
  EXPECT_EQ(EvalJoinLocal(q, {r, s}).size(), 4);  // Bag semantics.
}

TEST(GenericJoinTest, VariableOrderDoesNotChangeResult) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(7);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 150, 2, 10));
  }
  const Relation base = EvalJoinWcoj(q, atoms);
  for (const std::vector<int>& order :
       {std::vector<int>{2, 1, 0}, std::vector<int>{1, 2, 0},
        std::vector<int>{2, 0, 1}}) {
    EXPECT_TRUE(MultisetEqual(EvalJoinWcoj(q, atoms, order), base));
  }
}

TEST(GenericJoinTest, RepeatedVariableAtom) {
  const auto q = ConjunctiveQuery::Parse("Q(x,y) :- R(x,x), S(x,y)");
  ASSERT_TRUE(q.ok());
  const Relation r = Relation::FromRows({{1, 1}, {1, 2}, {3, 3}});
  const Relation s = Relation::FromRows({{1, 7}, {3, 8}, {2, 9}});
  const Relation out = EvalJoinWcoj(*q, {r, s});
  EXPECT_EQ(out.size(), 2);
}

TEST(GenericJoinTest, EmptyAtomShortCircuits) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(8);
  const Relation full = GenerateUniform(rng, 50, 2, 5);
  EXPECT_TRUE(EvalJoinWcoj(q, {full, Relation(2), full}).empty());
}

TEST(GenericJoinTest, AvoidsBinaryPlanBlowup) {
  // The slide-63 adversarial instance: R1 ⋈ R2 is huge, the output is
  // empty. Generic Join never materializes the blow-up, so this finishes
  // instantly even at sizes where the binary intermediate has ~10^6 rows.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng rng(9);
  const Relation r1 = GenerateUniform(rng, 4000, 2, 8);
  const Relation r2 = GenerateUniform(rng, 4000, 2, 8);
  Relation r3(2);
  for (int i = 0; i < 4000; ++i) {
    r3.AppendRow({1000000 + static_cast<Value>(i), 0});
  }
  EXPECT_TRUE(EvalJoinWcoj(q, {r1, r2, r3}).empty());
}

}  // namespace
}  // namespace mpcqp
