#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/shares.h"
#include "multiway/skew_hc.h"
#include "multiway/triangle_hl.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  out.reserve(atoms.size());
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

// ---------- Integer shares ----------

TEST(SharesTest, TriangleEqualSizesNearCubeRoot) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const IntegerShares s = ComputeShares(q, {1000, 1000, 1000}, 64);
  EXPECT_EQ(s.shares, (std::vector<int>{4, 4, 4}));
  EXPECT_NEAR(s.predicted_load, 1000.0 / 16.0, 1.0);
}

TEST(SharesTest, ProductNeverExceedsP) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  for (int p : {1, 2, 3, 7, 10, 33, 100}) {
    const IntegerShares s = ComputeShares(q, {500, 700, 900}, p);
    int64_t product = 1;
    for (int v : s.shares) {
      EXPECT_GE(v, 1);
      product *= v;
    }
    EXPECT_LE(product, p) << "p=" << p;
  }
}

TEST(SharesTest, TwoWayJoinAllShareOnJoinVariable) {
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  const IntegerShares s = ComputeShares(q, {5000, 5000}, 16);
  EXPECT_EQ(s.shares[1], 16);
  EXPECT_EQ(s.shares[0], 1);
  EXPECT_EQ(s.shares[2], 1);
}

TEST(SharesTest, ExhaustiveNeverWorseThanGreedy) {
  for (int p : {4, 8, 27, 60}) {
    for (const auto& sizes :
         {std::vector<int64_t>{1000, 1000, 1000},
          std::vector<int64_t>{100, 10000, 10000},
          std::vector<int64_t>{64, 512, 4096}}) {
      const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
      const IntegerShares greedy =
          ComputeShares(q, sizes, p, ShareRounding::kFloorGreedy);
      const IntegerShares exact =
          ComputeShares(q, sizes, p, ShareRounding::kExhaustive);
      EXPECT_LE(exact.predicted_load, greedy.predicted_load + 1e-9)
          << "p=" << p;
    }
  }
}

TEST(SharesTest, PredictedLoadCountsDistinctVarsOnce) {
  const auto q = ConjunctiveQuery::Parse("Q(x) :- R(x,x)");
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(PredictedLoad(*q, {100}, {4}), 25.0, 1e-9);
}

// ---------- HyperCube ----------

struct HcCase {
  const char* query;
  int64_t rows;
  uint64_t domain;
};

class HyperCubeTest
    : public ::testing::TestWithParam<std::tuple<HcCase, int>> {};

TEST_P(HyperCubeTest, MatchesSerialReference) {
  const auto [spec, p] = GetParam();
  const auto q = ConjunctiveQuery::Parse(spec.query);
  ASSERT_TRUE(q.ok());
  Rng rng(81);
  Cluster cluster(p, 5);
  std::vector<Relation> atoms;
  for (int j = 0; j < q->num_atoms(); ++j) {
    atoms.push_back(
        GenerateUniform(rng, spec.rows, q->atom(j).arity(), spec.domain));
  }
  const HyperCubeResult result =
      HyperCubeJoin(cluster, *q, Scatter(atoms, p));
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(*q, atoms)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HyperCubeTest,
    ::testing::Combine(
        ::testing::Values(
            HcCase{"R(x,y), S(y,z), T(z,x)", 150, 12},
            HcCase{"R(x,y), S(y,z)", 200, 15},
            HcCase{"R(x), S(y)", 30, 50},
            HcCase{"R(x,y), S(y,z), T(z,w)", 120, 8},
            HcCase{"R(x0,x1), S(x0,x2), T(x0,x3)", 100, 6},
            HcCase{"A(x,y), B(y,z), C(z,w), D(w,x)", 80, 6}),
        ::testing::Values(1, 8, 27, 64)));

TEST(HyperCubeTest, RepeatedVariableAtom) {
  const auto q = ConjunctiveQuery::Parse("Q(x,y) :- R(x,x), S(x,y)");
  ASSERT_TRUE(q.ok());
  Rng rng(83);
  Cluster cluster(8, 5);
  std::vector<Relation> atoms = {GenerateUniform(rng, 100, 2, 5),
                                 GenerateUniform(rng, 100, 2, 5)};
  const HyperCubeResult result =
      HyperCubeJoin(cluster, *q, Scatter(atoms, 8));
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(*q, atoms)));
}

TEST(HyperCubeTest, OutputProducedExactlyOnce) {
  // Duplicate-free inputs with a forced non-trivial grid: the distributed
  // output must be duplicate-free too (each result at exactly one server).
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(85);
  Cluster cluster(27, 5);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(Dedup(GenerateUniform(rng, 200, 2, 10)));
  }
  const HyperCubeResult result = HyperCubeJoin(cluster, q, Scatter(atoms, 27));
  const Relation collected = result.output.Collect();
  EXPECT_EQ(collected.size(), Dedup(collected).size());
}

TEST(HyperCubeTest, TriangleLoadScalesAsPToTwoThirds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(87);
  const int64_t n = 3000;
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateMatchingDegree(rng, n, 1));
  }
  double prev_load = 1e18;
  for (int p : {1, 8, 64}) {
    Cluster cluster(p, 5);
    HyperCubeJoin(cluster, q, Scatter(atoms, p));
    const double load =
        static_cast<double>(cluster.cost_report().MaxLoadTuples());
    const double theory = 3.0 * n / std::pow(p, 2.0 / 3.0);
    EXPECT_LT(load, 2.0 * theory) << "p=" << p;
    EXPECT_LT(load, prev_load);
    prev_load = load;
  }
}

TEST(HyperCubeTest, ForcedSharesRespected) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(89);
  Cluster cluster(16, 5);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 100, 2, 9));
  }
  HyperCubeOptions options;
  options.forced_shares = {4, 4, 1};
  const HyperCubeResult result =
      HyperCubeJoin(cluster, q, Scatter(atoms, 16), options);
  EXPECT_EQ(result.shares, options.forced_shares);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
}

TEST(HyperCubeTest, GenericJoinLocalEvaluatorSetSemantics) {
  // Duplicate-free inputs: the WCOJ evaluator must produce exactly the
  // (set-semantics == bag-semantics) reference.
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(93);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(Dedup(GenerateUniform(rng, 250, 2, 12)));
  }
  Cluster cluster(27, 5);
  HyperCubeOptions options;
  options.local = LocalEvaluator::kGenericJoin;
  const HyperCubeResult result =
      HyperCubeJoin(cluster, q, Scatter(atoms, 27), options);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
}

TEST(HyperCubeTest, EmptyAtomGivesEmptyOutput) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(91);
  Cluster cluster(8, 5);
  std::vector<Relation> atoms = {GenerateUniform(rng, 50, 2, 5), Relation(2),
                                 GenerateUniform(rng, 50, 2, 5)};
  const HyperCubeResult result = HyperCubeJoin(cluster, q, Scatter(atoms, 8));
  EXPECT_TRUE(result.output.Collect().empty());
}

// ---------- SkewHC ----------

class SkewHcTest
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(SkewHcTest, MatchesSerialReferenceUnderSkew) {
  const auto [p, skew, seed] = GetParam();
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(seed);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateZipf(rng, 400, 2, 60, j % 2, skew));
  }
  Cluster cluster(p, 5);
  const SkewHcResult result = SkewHcJoin(cluster, q, Scatter(atoms, p));
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkewHcTest,
    ::testing::Combine(::testing::Values(1, 8, 27),
                       ::testing::Values(0.0, 1.0, 2.0),
                       ::testing::Values(93u, 94u)));

TEST(SkewHcTest, NoSkewRunsSingleResidual) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(95);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateMatchingDegree(rng, 1000, 1));
  }
  Cluster cluster(8, 5);
  const SkewHcResult result = SkewHcJoin(cluster, q, Scatter(atoms, 8));
  ASSERT_EQ(result.residuals.size(), 1u);
  EXPECT_TRUE(result.residuals[0].heavy_vars.empty());
}

TEST(SkewHcTest, HeavyValueSpawnsResiduals) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(97);
  // z skewed to a constant in S and T.
  std::vector<Relation> atoms = {
      GenerateUniform(rng, 600, 2, 40),       // R(x,y) uniform.
      GenerateConstantColumn(600, 1, 7),      // S(y,z): z == 7.
      GenerateConstantColumn(600, 0, 7),      // T(z,x): z == 7.
  };
  Cluster cluster(16, 5);
  const SkewHcResult result = SkewHcJoin(cluster, q, Scatter(atoms, 16));
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
  EXPECT_GE(result.residuals.size(), 1u);
  bool has_heavy_combo = false;
  for (const ResidualInfo& info : result.residuals) {
    if (!info.heavy_vars.empty()) has_heavy_combo = true;
  }
  EXPECT_TRUE(has_heavy_combo);
}

TEST(SkewHcTest, BeatsPlainHyperCubeOnSkewedTriangle) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(99);
  const int64_t n = 2000;
  // Heavy z = 7 in both S and T; R uniform. HyperCube's z-dimension is
  // useless for the heavy tuples: they all hash to one z-slab.
  std::vector<Relation> atoms = {
      GenerateMatchingDegree(rng, n, 1),
      GenerateConstantColumn(n, 1, 7),
      GenerateConstantColumn(n, 0, 7),
  };
  const int p = 64;
  Cluster hc_cluster(p, 5);
  HyperCubeOptions options;
  options.forced_shares = {4, 4, 4};
  HyperCubeJoin(hc_cluster, q, Scatter(atoms, p), options);
  Cluster shc_cluster(p, 5);
  SkewHcJoin(shc_cluster, q, Scatter(atoms, p));
  EXPECT_LT(shc_cluster.cost_report().MaxLoadTuples(),
            hc_cluster.cost_report().MaxLoadTuples());
}

TEST(SkewHcTest, WorksForStarQueries) {
  const auto q = ConjunctiveQuery::Parse("R(x,y), S(x,z)");
  ASSERT_TRUE(q.ok());
  Rng rng(101);
  std::vector<Relation> atoms = {GenerateZipf(rng, 500, 2, 50, 0, 1.5),
                                 GenerateZipf(rng, 500, 2, 50, 0, 1.5)};
  Cluster cluster(16, 5);
  const SkewHcResult result = SkewHcJoin(cluster, *q, Scatter(atoms, 16));
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(*q, atoms)));
}

// ---------- Triangle heavy-light + semijoin plan (slide 59) ----------

class TriangleHlTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TriangleHlTest, MatchesSerialReference) {
  const auto [p, skew] = GetParam();
  Rng data_rng(113);
  Rng rng(114);
  std::vector<Relation> atoms = {
      GenerateUniform(data_rng, 500, 2, 60),
      GenerateZipf(data_rng, 500, 2, 60, 1, skew),   // S(y,z): z skewed.
      GenerateZipf(data_rng, 500, 2, 60, 0, skew),   // T(z,x): z skewed.
  };
  Cluster cluster(p, 5);
  const TriangleHlResult result = TriangleHeavyLightJoin(
      cluster, DistRelation::Scatter(atoms[0], p),
      DistRelation::Scatter(atoms[1], p), DistRelation::Scatter(atoms[2], p),
      rng);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(),
                    EvalJoinLocal(ConjunctiveQuery::Triangle(), atoms)));
  EXPECT_EQ(result.overlapped_rounds, 2);
  EXPECT_LE(result.metered_rounds, 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleHlTest,
                         ::testing::Combine(::testing::Values(1, 8, 27),
                                            ::testing::Values(0.0, 1.5)));

TEST(TriangleHlTest, HeavyZDetectedAndLoadBounded) {
  const int p = 64;
  const int64_t n = 4000;
  Rng data_rng(115);
  Rng rng(116);
  std::vector<Relation> atoms = {
      GenerateMatchingDegree(data_rng, n, 1),
      GenerateConstantColumn(n, 1, 7),
      GenerateConstantColumn(n, 0, 7),
  };
  Cluster cluster(p, 5);
  const TriangleHlResult result = TriangleHeavyLightJoin(
      cluster, DistRelation::Scatter(atoms[0], p),
      DistRelation::Scatter(atoms[1], p), DistRelation::Scatter(atoms[2], p),
      rng);
  EXPECT_GE(result.heavy_values, 1);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(),
                    EvalJoinLocal(ConjunctiveQuery::Triangle(), atoms)));
  // Better than the skew-blind hash cascade, which would pay the full
  // heavy degree (n) on one server.
  EXPECT_LT(cluster.cost_report().MaxLoadTuples(), n);
}

// ---------- Iterative binary join plans ----------

class BinaryPlanTest : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(BinaryPlanTest, MatchesSerialReference) {
  const auto [p, skew_aware] = GetParam();
  const ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  Rng data_rng(103);
  Rng rng(104);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 200, 2, 25));
  }
  Cluster cluster(p, 5);
  BinaryPlanOptions options;
  options.skew_aware = skew_aware;
  const BinaryPlanResult result =
      IterativeBinaryJoin(cluster, q, Scatter(atoms, p), rng, options);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
  EXPECT_EQ(result.intermediate_sizes.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinaryPlanTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(false, true)));

TEST(BinaryPlanTest, TriangleViaBinaryJoins) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng data_rng(105);
  Rng rng(106);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 300, 2, 20));
  }
  Cluster cluster(8, 5);
  const BinaryPlanResult result =
      IterativeBinaryJoin(cluster, q, Scatter(atoms, 8), rng);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(q, atoms)));
  // Two join steps, each one round.
  EXPECT_EQ(cluster.cost_report().num_rounds(), 2);
}

TEST(BinaryPlanTest, CartesianStepWhenDisconnected) {
  const ConjunctiveQuery q = ConjunctiveQuery::CartesianProduct();
  Rng data_rng(107);
  Rng rng(108);
  std::vector<Relation> atoms = {GenerateUniform(data_rng, 50, 1, 1000),
                                 GenerateUniform(data_rng, 60, 1, 1000)};
  Cluster cluster(8, 5);
  const BinaryPlanResult result =
      IterativeBinaryJoin(cluster, q, Scatter(atoms, 8), rng);
  EXPECT_EQ(result.output.TotalSize(), 50 * 60);
}

TEST(BinaryPlanTest, CustomOrderChangesIntermediates) {
  // Path-3 where the middle relation is selective: joining it early
  // shrinks intermediates.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng data_rng(109);
  Rng rng(110);
  std::vector<Relation> atoms = {GenerateUniform(data_rng, 400, 2, 10),
                                 GenerateUniform(data_rng, 20, 2, 10),
                                 GenerateUniform(data_rng, 400, 2, 10)};
  Cluster c1(4, 5);
  const auto default_plan =
      IterativeBinaryJoin(c1, q, Scatter(atoms, 4), rng);
  Cluster c2(4, 5);
  BinaryPlanOptions opt;
  opt.order = {1, 0, 2};
  const auto custom_plan =
      IterativeBinaryJoin(c2, q, Scatter(atoms, 4), rng, opt);
  EXPECT_TRUE(MultisetEqual(default_plan.output.Collect(),
                            custom_plan.output.Collect()));
  EXPECT_LE(custom_plan.intermediate_sizes[0],
            default_plan.intermediate_sizes[0]);
}

TEST(BinaryPlanTest, RepeatedVarAtomNormalized) {
  const auto q = ConjunctiveQuery::Parse("Q(x,y) :- R(x,x), S(x,y)");
  ASSERT_TRUE(q.ok());
  Rng data_rng(111);
  Rng rng(112);
  std::vector<Relation> atoms = {GenerateUniform(data_rng, 100, 2, 6),
                                 GenerateUniform(data_rng, 100, 2, 6)};
  Cluster cluster(4, 5);
  const BinaryPlanResult result =
      IterativeBinaryJoin(cluster, *q, Scatter(atoms, 4), rng);
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), EvalJoinLocal(*q, atoms)));
}

}  // namespace
}  // namespace mpcqp
