// Differential suite for the multi-strategy group-by engine
// (agg/groupby_engine.h): every strategy must be bit-identical to the seed
// std::map path of relation_ops::GroupByAggregate — on random and
// adversarial inputs, across thread counts and morsel sizes, including the
// overflow-error outcome.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agg/groupby_engine.h"
#include "common/thread_pool.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

constexpr GroupByStrategy kAllStrategies[] = {
    GroupByStrategy::kSortedMap, GroupByStrategy::kTreeMerge,
    GroupByStrategy::kRadix, GroupByStrategy::kAdaptive};
constexpr AggregateOp kAllOps[] = {AggregateOp::kSum, AggregateOp::kCount,
                                   AggregateOp::kMin, AggregateOp::kMax};
constexpr int kThreadCounts[] = {1, 2, 8};
constexpr int64_t kMorselSizes[] = {3, 8192};

// The seed reference: the serial std::map path over the concatenation.
StatusOr<Relation> Reference(const std::vector<Relation>& inputs,
                             const std::vector<int>& group_cols,
                             int value_col, AggregateOp op) {
  Relation all(inputs.empty() ? 0 : inputs.front().arity());
  for (const Relation& r : inputs) all.Append(r);
  return GroupByAggregate(all, group_cols, value_col, op);
}

// Runs `strategy` under every {threads} x {morsel_rows} combination and
// asserts the result (or error code) is bit-identical to the reference.
void ExpectMatchesReference(const std::vector<Relation>& inputs,
                            const std::vector<int>& group_cols, int value_col,
                            AggregateOp op, GroupByStrategy strategy,
                            int hash_bits = 64) {
  const StatusOr<Relation> expected =
      Reference(inputs, group_cols, value_col, op);
  std::vector<RelationView> views(inputs.begin(), inputs.end());
  for (const int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (const int64_t morsel : kMorselSizes) {
      GroupByEngineOptions options;
      options.strategy = strategy;
      options.pool = &pool;
      options.morsel_rows = morsel;
      options.hash_bits = hash_bits;
      const StatusOr<Relation> got =
          GroupByAggregateParallel(views, group_cols, value_col, op, options);
      ASSERT_EQ(got.ok(), expected.ok())
          << GroupByStrategyName(strategy) << " t=" << threads
          << " morsel=" << morsel;
      if (expected.ok()) {
        EXPECT_EQ(got.value(), expected.value())
            << GroupByStrategyName(strategy) << " t=" << threads
            << " morsel=" << morsel;
      } else {
        EXPECT_EQ(got.status().code(), expected.status().code())
            << GroupByStrategyName(strategy) << " t=" << threads
            << " morsel=" << morsel;
      }
    }
  }
  // And once with no pool at all (the serial entry point).
  GroupByEngineOptions serial;
  serial.strategy = strategy;
  serial.hash_bits = hash_bits;
  const StatusOr<Relation> got =
      GroupByAggregateParallel(views, group_cols, value_col, op, serial);
  ASSERT_EQ(got.ok(), expected.ok());
  if (expected.ok()) {
    EXPECT_EQ(got.value(), expected.value());
  }
}

class GroupByEngineTest : public ::testing::TestWithParam<GroupByStrategy> {};

TEST_P(GroupByEngineTest, RandomUniform) {
  Rng rng(11);
  const Relation rel = GenerateUniform(rng, 5000, 3, 40);
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference({rel}, {0, 1}, 2, op, GetParam());
  }
}

TEST_P(GroupByEngineTest, ZipfSkewed) {
  Rng rng(12);
  const Relation rel = GenerateZipf(rng, 6000, 2, 3000, 0, 1.2);
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference({rel}, {0}, 1, op, GetParam());
  }
}

TEST_P(GroupByEngineTest, AllDistinctKeys) {
  Relation rel(2);
  for (Value i = 0; i < 6000; ++i) rel.AppendRow({i, i % 97});
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference({rel}, {0}, 1, op, GetParam());
  }
}

TEST_P(GroupByEngineTest, OneGiantGroup) {
  const Relation rel = GenerateConstantColumn(6000, 0, 42);
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference({rel}, {0}, 1, op, GetParam());
  }
}

TEST_P(GroupByEngineTest, ForcedHashCollisions) {
  // Masking group hashes to 2 bits puts ~1500 distinct groups behind 4
  // hash values: every probe chain, radix partition, and merge collision
  // path runs. Output must not change.
  Rng rng(13);
  const Relation rel = GenerateUniform(rng, 6000, 2, 1500);
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference({rel}, {0}, 1, op, GetParam(), /*hash_bits=*/2);
  }
}

TEST_P(GroupByEngineTest, MultipleInputFragments) {
  Rng rng(14);
  std::vector<Relation> fragments;
  for (int f = 0; f < 7; ++f) {
    fragments.push_back(GenerateUniform(rng, 800 + 137 * f, 2, 64));
  }
  fragments.push_back(Relation(2));  // One empty fragment in the middle.
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference(fragments, {0}, 1, op, GetParam());
  }
}

TEST_P(GroupByEngineTest, EmptyInput) {
  ExpectMatchesReference({Relation(2)}, {0}, 1, AggregateOp::kSum,
                         GetParam());
  ExpectMatchesReference({}, {}, -1, AggregateOp::kCount, GetParam());
}

TEST_P(GroupByEngineTest, ScalarGroup) {
  Rng rng(15);
  const Relation rel = GenerateUniform(rng, 6000, 2, 1000);
  for (const AggregateOp op : kAllOps) {
    ExpectMatchesReference({rel}, {}, 1, op, GetParam());
  }
}

TEST_P(GroupByEngineTest, CountWithoutValueColumn) {
  Rng rng(16);
  const Relation rel = GenerateUniform(rng, 6000, 2, 50);
  ExpectMatchesReference({rel}, {0}, -1, AggregateOp::kCount, GetParam());
}

TEST_P(GroupByEngineTest, SumOverflowDetectedAtInt64Boundaries) {
  const Value int64_max = (Value{1} << 63) - 1;
  const Value uint64_max = ~Value{0};
  // INT64_MAX + INT64_MAX = 2^64 - 2: still representable as uint64.
  Relation fits(2);
  fits.AppendRow({1, int64_max});
  fits.AppendRow({1, int64_max});
  fits.AppendRow({1, 1});  // Exactly UINT64_MAX in total.
  ExpectMatchesReference({fits}, {0}, 1, AggregateOp::kSum, GetParam());
  EXPECT_EQ(Reference({fits}, {0}, 1, AggregateOp::kSum).value().at(0, 1),
            uint64_max);
  // One more row pushes the group past the Value range in every strategy,
  // in every thread/morsel decomposition.
  Relation wraps = fits;
  wraps.AppendRow({1, 1});
  ExpectMatchesReference({wraps}, {0}, 1, AggregateOp::kSum, GetParam());
  // Other groups are unaffected until they themselves overflow.
  Relation mixed(2);
  mixed.AppendRow({1, uint64_max});
  mixed.AppendRow({2, 2});
  ExpectMatchesReference({mixed}, {0}, 1, AggregateOp::kSum, GetParam());
  mixed.AppendRow({1, 1});
  ExpectMatchesReference({mixed}, {0}, 1, AggregateOp::kSum, GetParam());
}

TEST_P(GroupByEngineTest, OverflowPaddedAcrossManyRows) {
  // 4096 rows of 2^52 per group: overflows only after enough rows meet —
  // exercises detection inside partial merges, not just the local scan.
  Relation rel(2);
  const Value big = Value{1} << 52;
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 4096; ++i) {
      rel.AppendRow({static_cast<Value>(g), big});
    }
  }
  ExpectMatchesReference({rel}, {0}, 1, AggregateOp::kSum, GetParam());
  const auto status = Reference({rel}, {0}, 1, AggregateOp::kSum);
  ASSERT_FALSE(status.ok());  // 4096 * 2^52 = 2^64 wraps.
  EXPECT_EQ(status.status().code(), StatusCode::kOutOfRange);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, GroupByEngineTest,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const auto& info) {
                           std::string name = GroupByStrategyName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(GroupByChooserTest, PicksByDensity) {
  Rng rng(17);
  // Tiny input: not worth leaving the seed path.
  const Relation tiny = GenerateUniform(rng, 1000, 2, 10);
  EXPECT_EQ(ChooseGroupByStrategy({RelationView(tiny)}, {0}),
            GroupByStrategy::kSortedMap);
  // Few dense groups: per-worker partials merge cheaply.
  const Relation dense = GenerateUniform(rng, 100000, 2, 16);
  EXPECT_EQ(ChooseGroupByStrategy({RelationView(dense)}, {0}),
            GroupByStrategy::kTreeMerge);
  // All-distinct keys: the merge would be as big as the data; radix.
  Relation distinct(2);
  for (Value i = 0; i < 100000; ++i) distinct.AppendRow({i, 1});
  EXPECT_EQ(ChooseGroupByStrategy({RelationView(distinct)}, {0}),
            GroupByStrategy::kRadix);
  // The scalar group is the densest possible: tree-merge.
  EXPECT_EQ(ChooseGroupByStrategy({RelationView(distinct)}, {}),
            GroupByStrategy::kTreeMerge);
}

TEST(GroupByEngineDeathTest, RejectsMissingValueColumn) {
  const Relation rel = Relation::FromRows({{1, 2}});
  EXPECT_DEATH(
      GroupByAggregateParallel(rel, {0}, -1, AggregateOp::kSum, {}).value(),
      "");
}

}  // namespace
}  // namespace mpcqp
