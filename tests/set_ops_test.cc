#include <gtest/gtest.h>

#include <tuple>

#include "mpc/cluster.h"
#include "mpc/set_ops.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// Local references.
Relation LocalIntersect(const Relation& a, const Relation& b) {
  std::vector<int> cols(a.arity());
  for (int c = 0; c < a.arity(); ++c) cols[c] = c;
  return SemijoinLocal(Dedup(a), Dedup(b), cols, cols);
}
Relation LocalDifference(const Relation& a, const Relation& b) {
  std::vector<int> cols(a.arity());
  for (int c = 0; c < a.arity(); ++c) cols[c] = c;
  return AntijoinLocal(Dedup(a), Dedup(b), cols, cols);
}

class SetOpsTest : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
};

TEST_P(SetOpsTest, AllOpsMatchLocalReferences) {
  const auto [p, domain] = GetParam();
  Rng rng(1);
  // Small domain: plenty of duplicates and overlap.
  const Relation a = GenerateUniform(rng, 600, 2, domain);
  const Relation b = GenerateUniform(rng, 500, 2, domain);
  const DistRelation da = DistRelation::Scatter(a, p);
  const DistRelation db = DistRelation::Scatter(b, p);

  {
    Cluster cluster(p, 3);
    EXPECT_TRUE(MultisetEqual(
        DistributedDistinct(cluster, da).Collect(), Dedup(a)));
    EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
  }
  {
    Cluster cluster(p, 3);
    EXPECT_TRUE(MultisetEqual(DistributedUnion(cluster, da, db).Collect(),
                              Dedup(UnionAll(a, b))));
  }
  {
    Cluster cluster(p, 3);
    EXPECT_TRUE(MultisetEqual(
        DistributedIntersect(cluster, da, db).Collect(),
        LocalIntersect(a, b)));
  }
  {
    Cluster cluster(p, 3);
    EXPECT_TRUE(MultisetEqual(
        DistributedDifference(cluster, da, db).Collect(),
        LocalDifference(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SetOpsTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(5u, 1000u)));

TEST(SetOpsTest, DistinctLoadBoundedByDistinctValues) {
  // Heavily duplicated input: local pre-dedup keeps the shuffle tiny.
  const int p = 16;
  const Relation rel = GenerateConstantColumn(8000, 1, 7);
  Relation tiny(2);
  for (int i = 0; i < 8000; ++i) tiny.AppendRow({rel.at(i, 0) % 5, 7});
  Cluster cluster(p, 3);
  const DistRelation out =
      DistributedDistinct(cluster, DistRelation::Scatter(tiny, p));
  EXPECT_EQ(out.TotalSize(), 5);
  // Each server ships at most its local distincts (<= 5 each).
  EXPECT_LE(cluster.cost_report().TotalCommTuples(), 5 * p);
}

TEST(SetOpsTest, IdempotentAndDisjointCases) {
  const int p = 4;
  Rng rng(2);
  const Relation a = GenerateUniform(rng, 100, 1, 50);
  Relation disjoint(1);
  for (int i = 0; i < 60; ++i) {
    disjoint.AppendRow({1000 + static_cast<Value>(i)});
  }
  const DistRelation da = DistRelation::Scatter(a, p);
  const DistRelation dd = DistRelation::Scatter(disjoint, p);
  Cluster cluster(p, 3);
  EXPECT_TRUE(DistributedIntersect(cluster, da, dd).Collect().empty());
  EXPECT_TRUE(MultisetEqual(
      DistributedDifference(cluster, da, dd).Collect(), Dedup(a)));
  EXPECT_TRUE(MultisetEqual(DistributedUnion(cluster, da, da).Collect(),
                            Dedup(a)));
}

}  // namespace
}  // namespace mpcqp
