#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"

namespace mpcqp {
namespace {

// ---------- Status / StatusOr ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  const std::vector<int> moved = std::move(v).value();
  EXPECT_EQ(moved.size(), 3u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  MPCQP_ASSIGN_OR_RETURN(*out, Half(x));
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

// ---------- HashFunction ----------

TEST(HashTest, Deterministic) {
  const HashFunction h(7);
  EXPECT_EQ(h.Hash(123), h.Hash(123));
  const HashFunction h2(7);
  EXPECT_EQ(h.Hash(123), h2.Hash(123));
}

TEST(HashTest, SeedsDiffer) {
  const HashFunction a(1);
  const HashFunction b(2);
  int differ = 0;
  for (uint64_t v = 0; v < 100; ++v) {
    if (a.Hash(v) != b.Hash(v)) ++differ;
  }
  EXPECT_GE(differ, 99);
}

TEST(HashTest, BucketInRange) {
  const HashFunction h(3);
  for (uint64_t v = 0; v < 1000; ++v) {
    const int b = h.Bucket(v, 7);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 7);
  }
}

TEST(HashTest, BucketsRoughlyUniform) {
  const HashFunction h(11);
  const int buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int v = 0; v < n; ++v) ++counts[h.Bucket(v, buckets)];
  for (int c : counts) {
    EXPECT_GT(c, n / buckets / 2);
    EXPECT_LT(c, n / buckets * 2);
  }
}

TEST(HashTest, HashSpanSensitiveToEveryPosition) {
  const HashFunction h(5);
  const uint64_t a[] = {1, 2, 3};
  const uint64_t b[] = {1, 2, 4};
  const uint64_t c[] = {0, 2, 3};
  EXPECT_NE(h.HashSpan(a, 3), h.HashSpan(b, 3));
  EXPECT_NE(h.HashSpan(a, 3), h.HashSpan(c, 3));
  EXPECT_EQ(h.HashSpan(a, 3), h.HashSpan(a, 3));
}

// The batched span APIs feed the vectorized exchange route pass; they must
// agree element-for-element with the scalar calls.
TEST(HashTest, HashManyMatchesScalarHash) {
  const HashFunction h(13);
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 1000; ++v) values.push_back(v * 2654435761u + 17);
  std::vector<uint64_t> batched(values.size());
  h.HashMany(values.data(), static_cast<int64_t>(values.size()),
             batched.data());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(batched[i], h.Hash(values[i])) << "index " << i;
  }
}

TEST(HashTest, BucketManyMatchesScalarBucket) {
  const HashFunction h(17);
  const int buckets[] = {1, 2, 7, 64, 1000};
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 1000; ++v) values.push_back(v * 11400714819323198485ull);
  std::vector<int32_t> batched(values.size());
  for (const int p : buckets) {
    h.BucketMany(values.data(), static_cast<int64_t>(values.size()), p,
                 batched.data());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(batched[i], h.Bucket(values[i], p))
          << "index " << i << " buckets " << p;
    }
  }
}

// Edge cases the vectorized rewrite introduced: empty batches, batches
// smaller than one SIMD lane, non-multiple-of-lane tails, and the
// degenerate single-bucket reduce must all match the scalar calls (and
// must not touch memory past the requested count).
TEST(HashTest, HashManyEdgeCountsMatchScalar) {
  const HashFunction h(23);
  const uint64_t values[] = {0,  ~uint64_t{0}, 1ull << 63, 5, 6,
                             7,  8,            9,          10, 11};
  for (int64_t count : {0, 1, 2, 3, 5, 7, 9}) {
    std::vector<uint64_t> out(10, 0xfeed);
    h.HashMany(values, count, out.data());
    for (int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], h.Hash(values[i]))
          << "count " << count << " index " << i;
    }
    for (size_t i = static_cast<size_t>(count); i < out.size(); ++i) {
      ASSERT_EQ(out[i], 0xfeedu) << "wrote past count " << count;
    }
  }
}

TEST(HashTest, BucketManyEdgeCountsAndSingleBucket) {
  const HashFunction h(29);
  const uint64_t values[] = {0,  ~uint64_t{0}, 1ull << 63, 5, 6,
                             7,  8,            9,          10, 11};
  for (int64_t count : {0, 1, 2, 3, 5, 7, 9}) {
    for (int buckets : {1, 3, 1024}) {
      std::vector<int32_t> out(10, -42);
      h.BucketMany(values, count, buckets, out.data());
      for (int64_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)], h.Bucket(values[i], buckets))
            << "count " << count << " buckets " << buckets << " index " << i;
        if (buckets == 1) {
          ASSERT_EQ(out[static_cast<size_t>(i)], 0);
        }
      }
      for (size_t i = static_cast<size_t>(count); i < out.size(); ++i) {
        ASSERT_EQ(out[i], -42) << "wrote past count " << count;
      }
    }
  }
}

TEST(HashFamilyTest, MembersIndependent) {
  const HashFamily family(99, 3);
  ASSERT_EQ(family.size(), 3);
  int collisions = 0;
  for (uint64_t v = 0; v < 200; ++v) {
    if (family.at(0).Bucket(v, 16) == family.at(1).Bucket(v, 16)) {
      ++collisions;
    }
  }
  // Expect ~1/16 agreement, far below half.
  EXPECT_LT(collisions, 50);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

}  // namespace
}  // namespace mpcqp
