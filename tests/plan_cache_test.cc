#include "planner/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mpc/cluster.h"
#include "planner/planner.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

std::vector<Relation> TriangleData(uint64_t seed, int64_t rows) {
  Rng rng(seed);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, rows, 2, 40));
  }
  return atoms;
}

TEST(PlanCacheTest, SecondPlanIsAHitAndSkipsEnumeration) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const std::vector<Relation> atoms = TriangleData(11, 500);
  PlanCache cache;

  const PlannedQuery cold = PlanQuery(q, Scatter(atoms, 8), 8, {}, &cache);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.dp_states, 0);
  EXPECT_EQ(cache.counters().misses, 1);
  EXPECT_EQ(cache.counters().hits, 0);
  EXPECT_EQ(cache.size(), 1);

  const PlannedQuery warm = PlanQuery(q, Scatter(atoms, 8), 8, {}, &cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.dp_states, 0);  // The warm path skipped the DP.
  EXPECT_EQ(cache.counters().hits, 1);
  EXPECT_EQ(cache.counters().misses, 1);

  EXPECT_EQ(warm.plan.family, cold.plan.family);
  EXPECT_EQ(warm.plan.join_order, cold.plan.join_order);
  EXPECT_EQ(warm.plan.skew_aware, cold.plan.skew_aware);
  EXPECT_FALSE(warm.plan.tree.empty());
  EXPECT_EQ(warm.plan.tree.ToString(q), cold.plan.tree.ToString(q));
}

TEST(PlanCacheTest, DifferentOptionsMissSeparately) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const std::vector<Relation> atoms = TriangleData(12, 400);
  PlanCache cache;

  PlannerOptions free_rounds;
  free_rounds.round_cost_tuples = 0.0;
  PlannerOptions costly_rounds;
  costly_rounds.round_cost_tuples = 1e7;

  PlanQuery(q, Scatter(atoms, 8), 8, free_rounds, &cache);
  const PlannedQuery other =
      PlanQuery(q, Scatter(atoms, 8), 8, costly_rounds, &cache);
  EXPECT_FALSE(other.cache_hit);  // λ participates in the key.
  EXPECT_EQ(cache.counters().misses, 2);
  EXPECT_EQ(cache.size(), 2);

  // A different cluster size is a different key too.
  const PlannedQuery other_p =
      PlanQuery(q, Scatter(atoms, 16), 16, free_rounds, &cache);
  EXPECT_FALSE(other_p.cache_hit);
  EXPECT_EQ(cache.size(), 3);
}

TEST(PlanCacheTest, StatsChangeInvalidatesEntry) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const std::vector<Relation> before = TriangleData(13, 500);
  std::vector<Relation> after = before;
  Rng rng(14);
  // Grow one atom: the size fingerprint no longer matches.
  after[1] = UnionAll(after[1], GenerateUniform(rng, 200, 2, 40));

  PlanCache cache;
  PlanQuery(q, Scatter(before, 8), 8, {}, &cache);
  const PlannedQuery replanned = PlanQuery(q, Scatter(after, 8), 8, {}, &cache);
  EXPECT_FALSE(replanned.cache_hit);
  EXPECT_GT(replanned.dp_states, 0);
  EXPECT_EQ(cache.counters().invalidations, 1);
  EXPECT_EQ(cache.counters().misses, 2);
  EXPECT_EQ(cache.counters().hits, 0);

  // The replanned entry is fresh: the same stats now hit.
  const PlannedQuery warm = PlanQuery(q, Scatter(after, 8), 8, {}, &cache);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(PlanCacheTest, IsomorphicQueryHitsAndExecutesCorrectly) {
  // The same triangle spelled with permuted atoms and renamed variables
  // must hit the entry planted by the canonical spelling, and the remapped
  // join order must still compute the right answer.
  const auto first = ConjunctiveQuery::Parse("R(x,y), S(y,z), T(z,x)");
  const auto second = ConjunctiveQuery::Parse("E(b,c), F(c,a), D(a,b)");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  const std::vector<Relation> atoms = TriangleData(15, 400);
  // second's atom k must carry the same data as the matching atom of
  // first under the isomorphism D↔R, E↔S, F↔T (a=x, b=y, c=z).
  const std::vector<Relation> permuted = {atoms[1], atoms[2], atoms[0]};

  PlanCache cache;
  PlanQuery(*first, Scatter(atoms, 8), 8, {}, &cache);
  const PlannedQuery warm =
      PlanQuery(*second, Scatter(permuted, 8), 8, {}, &cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cache.counters().hits, 1);

  Cluster cluster(8, 3);
  Rng rng(5);
  const DistRelation out =
      ExecutePlannedQuery(cluster, *second, Scatter(permuted, 8), warm, rng);
  EXPECT_TRUE(MultisetEqual(out.Collect(), EvalJoinLocal(*second, permuted)));
}

TEST(PlanCacheTest, MetricsReportPlanningAndCacheCounts) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const std::vector<Relation> atoms = TriangleData(16, 300);
  PlanCache cache;

  Cluster cluster(8, 3);
  Rng rng(6);
  const PlannedQuery cold = PlanQuery(q, Scatter(atoms, 8), 8, {}, &cache);
  ExecutePlannedQuery(cluster, q, Scatter(atoms, 8), cold, rng);
  const PlannedQuery warm = PlanQuery(q, Scatter(atoms, 8), 8, {}, &cache);
  ExecutePlannedQuery(cluster, q, Scatter(atoms, 8), warm, rng);

  const StatsReport report = BuildStatsReport(cluster);
  EXPECT_EQ(report.plan_cache_misses, 1);
  EXPECT_EQ(report.plan_cache_hits, 1);
  EXPECT_GE(report.planning_ms, 0.0);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"plan_cache_hits\": 1"), std::string::npos) << json;
}

TEST(PlanCacheTest, ConcurrentPlannersShareOneCacheSafely) {
  // The serving runtime points every in-flight query at ONE PlanCache, so
  // hits, misses, and inserts race by design. Eight threads plan four
  // distinct keys (cluster sizes) over and over; the shards must keep the
  // map and counters coherent: every call is accounted a hit or a miss,
  // exactly four entries exist afterwards, and warm lookups of each key
  // hit. Run under tsan this locks the sharding down as race-free.
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const std::vector<Relation> atoms = TriangleData(18, 300);
  PlanCache cache;

  constexpr int kThreads = 8;
  constexpr int kRounds = 8;
  const int cluster_sizes[] = {4, 8, 16, 32};
  std::atomic<int64_t> planned{0};
  std::atomic<bool> wrong_plan{false};
  std::vector<std::thread> planners;
  for (int t = 0; t < kThreads; ++t) {
    planners.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int p = cluster_sizes[(t + round) % 4];
        const PlannedQuery planned_query =
            PlanQuery(q, Scatter(atoms, p), p, {}, &cache);
        planned.fetch_add(1);
        // Hit or miss, the caller must always receive an executable plan.
        if (planned_query.plan.tree.empty()) wrong_plan = true;
      }
    });
  }
  for (std::thread& t : planners) t.join();

  EXPECT_FALSE(wrong_plan.load());
  EXPECT_EQ(planned.load(), kThreads * kRounds);
  EXPECT_EQ(cache.size(), 4);
  const PlanCache::Counters counters = cache.counters();
  // Two threads may miss the same cold key concurrently, so misses can
  // exceed 4 — but every call is exactly one of hit or miss.
  EXPECT_GE(counters.misses, 4);
  EXPECT_EQ(counters.hits + counters.misses, kThreads * kRounds);

  for (const int p : cluster_sizes) {
    const PlannedQuery warm = PlanQuery(q, Scatter(atoms, p), p, {}, &cache);
    EXPECT_TRUE(warm.cache_hit) << "p=" << p;
  }
}

TEST(PlanCacheTest, ClearEmptiesEntriesButKeepsCounters) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  const std::vector<Relation> atoms = TriangleData(17, 300);
  PlanCache cache;
  PlanQuery(q, Scatter(atoms, 8), 8, {}, &cache);
  ASSERT_EQ(cache.size(), 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  const PlannedQuery replanned = PlanQuery(q, Scatter(atoms, 8), 8, {}, &cache);
  EXPECT_FALSE(replanned.cache_hit);
}

}  // namespace
}  // namespace mpcqp
