#include "common/parse.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace mpcqp {
namespace {

TEST(ParseUint64Test, ParsesPlainDecimals) {
  EXPECT_EQ(ParseUint64("0").value(), 0u);
  EXPECT_EQ(ParseUint64("42").value(), 42u);
  EXPECT_EQ(ParseUint64("18446744073709551615").value(), UINT64_MAX);
}

TEST(ParseUint64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("banana").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());    // Trailing junk.
  EXPECT_FALSE(ParseUint64("x12").ok());    // Leading junk.
  EXPECT_FALSE(ParseUint64(" 12").ok());    // Whitespace.
  EXPECT_FALSE(ParseUint64("12 ").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());     // Signed.
  EXPECT_FALSE(ParseUint64("+1").ok());
  EXPECT_FALSE(ParseUint64("1.5").ok());
}

TEST(ParseUint64Test, OverflowIsAnErrorNotAWrap) {
  // UINT64_MAX + 1: atoi-family helpers would wrap this to 0.
  const auto parsed = ParseUint64("18446744073709551616");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseUint64("99999999999999999999999999").ok());
}

TEST(ParseInt64Test, ParsesSignedDecimals) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(), INT64_MAX);
}

TEST(ParseInt64Test, RejectsOverflowAndGarbage) {
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());   // INT64_MAX + 1.
  EXPECT_FALSE(ParseInt64("-9223372036854775808").ok());  // By contract.
  EXPECT_FALSE(ParseInt64("-").ok());
  EXPECT_FALSE(ParseInt64("--3").ok());
  EXPECT_FALSE(ParseInt64("3-").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(ParseIntInRangeTest, EnforcesBounds) {
  EXPECT_EQ(ParseIntInRange("16", 1, 1024).value(), 16);
  EXPECT_EQ(ParseIntInRange("1", 1, 1024).value(), 1);
  EXPECT_EQ(ParseIntInRange("1024", 1, 1024).value(), 1024);
  EXPECT_FALSE(ParseIntInRange("0", 1, 1024).ok());
  EXPECT_FALSE(ParseIntInRange("-3", 1, 1024).ok());
  EXPECT_FALSE(ParseIntInRange("1025", 1, 1024).ok());
  EXPECT_FALSE(ParseIntInRange("banana", 1, 1024).ok());
}

TEST(ParseInt64InRangeTest, EnforcesBounds) {
  EXPECT_EQ(ParseInt64InRange("-5", -10, 10).value(), -5);
  EXPECT_FALSE(ParseInt64InRange("-11", -10, 10).ok());
  EXPECT_FALSE(ParseInt64InRange("11", -10, 10).ok());
}

TEST(ParseDoubleTest, ParsesFiniteDecimals) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("2").value(), 2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(ParseDoubleTest, RejectsGarbageAndNonFinite) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.x").ok());
  EXPECT_FALSE(ParseDouble("x1").ok());
  EXPECT_FALSE(ParseDouble(" 1.5").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("1e9999").ok());  // Overflows to infinity.
}

TEST(ParseBoolTest, AcceptsAllSpellings) {
  for (const char* text : {"on", "true", "1", "ON", "True"}) {
    EXPECT_TRUE(ParseBool(text).value()) << text;
  }
  for (const char* text : {"off", "false", "0", "OFF", "False"}) {
    EXPECT_FALSE(ParseBool(text).value()) << text;
  }
}

TEST(ParseBoolTest, RejectsGarbage) {
  EXPECT_FALSE(ParseBool("").ok());
  EXPECT_FALSE(ParseBool("yes").ok());
  EXPECT_FALSE(ParseBool("no").ok());
  EXPECT_FALSE(ParseBool("2").ok());
  EXPECT_FALSE(ParseBool(" on").ok());   // Whitespace.
  EXPECT_FALSE(ParseBool("on ").ok());
  EXPECT_FALSE(ParseBool("truee").ok());
}

}  // namespace
}  // namespace mpcqp
