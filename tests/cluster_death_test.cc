// Death tests for API-misuse CHECKs: the library aborts (never corrupts
// the meter) on programmer errors.

#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "multiway/hypercube.h"
#include "relation/relation.h"

namespace mpcqp {
namespace {

TEST(ClusterDeathTest, NestedBeginRoundAborts) {
  Cluster cluster(2, 1);
  cluster.BeginRound("outer");
  EXPECT_DEATH(cluster.BeginRound("inner"), "BeginRound while a round");
}

TEST(ClusterDeathTest, EndRoundWithoutBeginAborts) {
  Cluster cluster(2, 1);
  EXPECT_DEATH(cluster.EndRound(), "EndRound without");
}

TEST(ClusterDeathTest, RecordMessageOutsideRoundAborts) {
  Cluster cluster(2, 1);
  EXPECT_DEATH(cluster.RecordMessage(0, 1, 1, 1), "outside a round");
}

TEST(ClusterDeathTest, RecordMessageBadServerAborts) {
  Cluster cluster(2, 1);
  cluster.BeginRound("r");
  EXPECT_DEATH(cluster.RecordMessage(0, 7, 1, 1), "CHECK failed");
}

TEST(ClusterDeathTest, NewHashFunctionInsideParallelRegionAborts) {
  // The multi-threaded cluster is built inside the death statement so the
  // worker threads exist only in the forked child.
  EXPECT_DEATH(
      {
        ClusterOptions options;
        options.num_threads = 4;
        Cluster cluster(4, 1, options);
        cluster.pool().ParallelFor(
            4, [&](int64_t) { cluster.NewHashFunction(); });
      },
      "inside a parallel region");
}

TEST(ClusterDeathTest, NewHashFunctionInsideSerialParallelForAborts) {
  // The misuse is caught even at num_threads = 1, where ParallelFor runs
  // inline and no actual race exists: determinism would still break at
  // other thread counts.
  Cluster cluster(4, 1);
  EXPECT_DEATH(cluster.pool().ParallelFor(
                   4, [&](int64_t) { cluster.NewHashFunction(); }),
               "inside a parallel region");
}

TEST(ClusterDeathTest, ResetDuringRoundAborts) {
  Cluster cluster(2, 1);
  cluster.BeginRound("r");
  EXPECT_DEATH(cluster.ResetCosts(), "during a round");
}

TEST(RelationDeathTest, ArityMismatchAborts) {
  Relation r(2);
  EXPECT_DEATH(r.AppendRow({1, 2, 3}), "CHECK failed");
}

TEST(RelationDeathTest, OutOfRangeAccessAborts) {
  Relation r = Relation::FromRows({{1, 2}});
  EXPECT_DEATH(r.at(5, 0), "CHECK failed");
  EXPECT_DEATH(r.at(0, 9), "CHECK failed");
}

TEST(ExchangeDeathTest, BadDestinationAborts) {
  Cluster cluster(2, 1);
  const DistRelation dist =
      DistRelation::Scatter(Relation::FromRows({{1}}), 2);
  EXPECT_DEATH(Route(
                   cluster, dist,
                   [](const Value*, std::vector<int>& dests) {
                     dests.push_back(99);
                   },
                   "bad"),
               "CHECK failed");
}

TEST(HyperCubeDeathTest, ForcedSharesExceedingPAbort) {
  Cluster cluster(4, 1);
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  std::vector<DistRelation> atoms = {
      DistRelation::Scatter(Relation::FromRows({{1, 2}}), 4),
      DistRelation::Scatter(Relation::FromRows({{2, 3}}), 4)};
  HyperCubeOptions options;
  options.forced_shares = {2, 2, 2};  // Product 8 > p = 4.
  EXPECT_DEATH(HyperCubeJoin(cluster, q, atoms, options), "CHECK failed");
}

}  // namespace
}  // namespace mpcqp
