// ThreadPool contract tests: FIFO start order, full iteration coverage,
// exception propagation (lowest index wins), deadlock-free nesting, and
// queue-draining shutdown. These are the properties the deterministic
// round executor builds on.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/exec_context.h"

namespace mpcqp {
namespace {

// Force real helper threads before the first pool runs: on a small CI
// machine the spare-core cap would fold every parallel loop down to one
// participant and the work-stealing paths (and their tsan coverage) would
// never execute. Scheduling-only — results are identical either way.
[[maybe_unused]] const bool kForceHelpers = [] {
  ::setenv("MPCQP_LOOP_HELPERS", "7", /*overwrite=*/0);
  return true;
}();

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Submit([&] { seen = std::this_thread::get_id(); }).get();
  EXPECT_EQ(seen, caller);
  int64_t sum = 0;
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });  // Inline: no lock.
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, SubmittedTasksStartInFifoOrder) {
  // One worker (num_threads=2 -> 1 thread): start order == run order.
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Run several times: scheduling varies, the winning exception must not.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> executed{0};
    try {
      pool.ParallelFor(200, [&](int64_t i) {
        executed.fetch_add(1);
        if (i == 13 || i == 77 || i == 150) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 13");
    }
    // All iterations still ran (no early abort mid-loop).
    EXPECT_EQ(executed.load(), 200);
  }
}

TEST(ThreadPoolTest, SubmitFutureRethrows) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer iteration issues an inner ParallelFor while all workers
  // are busy with outer iterations; the caller-participates design must
  // drain these inline instead of waiting for a free worker.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(16, [&](int64_t) {
    pool.ParallelFor(16, [&](int64_t) {
      pool.ParallelFor(4, [&](int64_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 16 * 16 * 4);
}

TEST(ThreadPoolTest, NestedSubmitInsideParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::vector<std::future<void>> futures;
  pool.ParallelFor(8, [&](int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    futures.push_back(pool.Submit([&] { done.fetch_add(1); }));
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ShutdownWhileBusyDrainsQueue) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndInRange) {
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // Main thread.
  std::mutex mu;
  std::set<int> seen;
  pool.ParallelFor(1000, [&](int64_t) {
    const int index = ThreadPool::current_worker_index();
    ASSERT_GE(index, -1);
    ASSERT_LT(index, kThreads - 1);
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(index);
  });
  // At minimum the caller (-1) or some worker ran; all values in range.
  EXPECT_FALSE(seen.empty());
}

TEST(ThreadPoolTest, ZeroAndNegativeIterationCountsAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// --- ParallelForGrained (work-stealing deques) ---

TEST(ThreadPoolTest, GrainedTilesExactlyByGrain) {
  // The chunk decomposition is part of the determinism contract: chunk c
  // must be [c*grain, min(n, (c+1)*grain)) regardless of thread count.
  ThreadPool pool(4);
  constexpr int64_t kN = 257;
  const int64_t grains[] = {1, 3, 7, 100, 1000};
  for (const int64_t grain : grains) {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> ranges;
    pool.ParallelForGrained(kN, grain, [&](int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.push_back({begin, end});
    });
    std::sort(ranges.begin(), ranges.end());
    const int64_t chunks = (kN + grain - 1) / grain;
    ASSERT_EQ(static_cast<int64_t>(ranges.size()), chunks)
        << "grain " << grain;
    for (int64_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(ranges[c].first, c * grain) << "grain " << grain;
      EXPECT_EQ(ranges[c].second, std::min(kN, (c + 1) * grain))
          << "grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, GrainedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForGrained(kN, 37, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, GrainedEdgeCases) {
  ThreadPool pool(4);
  // grain > n: one inline chunk covering everything.
  std::atomic<int> calls{0};
  int64_t begin = -1, end = -1;
  pool.ParallelForGrained(5, 100, [&](int64_t b, int64_t e) {
    calls.fetch_add(1);
    begin = b;
    end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 5);
  // n = 0: no-op.
  pool.ParallelForGrained(0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, GrainedSingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int64_t sum = 0;  // No atomics needed: everything runs on the caller.
  pool.ParallelForGrained(100, 7, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, NestedGrainedDoesNotDeadlock) {
  // Grained loops nested inside grained loops while all workers are busy:
  // the caller-participates/steal design must drain them like ParallelFor.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelForGrained(16, 2, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      pool.ParallelForGrained(64, 5, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 64);
}

TEST(ThreadPoolTest, GrainedRethrowsLowestBeginException) {
  ThreadPool pool(4);
  // Run several times: stealing varies, the winning exception must not.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> covered{0};
    try {
      pool.ParallelForGrained(200, 10, [&](int64_t b, int64_t e) {
        covered.fetch_add(e - b);
        if (b == 40 || b == 120 || b == 190) {
          throw std::runtime_error("boom " + std::to_string(b));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& ex) {
      EXPECT_STREQ(ex.what(), "boom 40");
    }
    // Every chunk still ran (no early abort mid-loop).
    EXPECT_EQ(covered.load(), 200);
  }
}

TEST(ThreadPoolTest, GrainedStealHeavySkewedLoad) {
  // Chunk 0 is a deliberate straggler: the rest of its owner's block must
  // migrate to thieves instead of queueing behind it. Run under tsan this
  // also locks down the deque handoff (owner front-pop vs. thief
  // back-steal) as race-free.
  ThreadPool pool(8);
  constexpr int64_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  const auto start = std::chrono::steady_clock::now();
  pool.ParallelForGrained(kN, 1, [&](int64_t b, int64_t e) {
    if (b == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  (void)start;
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, InParallelRegionDuringGrained) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.in_parallel_region());
  std::atomic<bool> always_in_region{true};
  pool.ParallelForGrained(64, 4, [&](int64_t, int64_t) {
    if (!pool.in_parallel_region()) always_in_region = false;
  });
  EXPECT_TRUE(always_in_region.load());
  EXPECT_FALSE(pool.in_parallel_region());
}

// --- Multi-cluster sharing (the serving-runtime contract) ---

TEST(ThreadPoolTest, InParallelRegionIsThreadScopedNotPoolScoped) {
  // While one thread's loop is in flight, a DIFFERENT thread asking "am I
  // in a parallel region?" must hear no — that's what lets cluster A draw
  // hash functions between its loops while cluster B's loops run on the
  // same pool. A pool-wide counter would fail this.
  ThreadPool pool(4);
  std::atomic<bool> loop_running{false};
  std::atomic<bool> observed{false};
  std::atomic<bool> observer_in_region{true};
  std::thread observer([&] {
    while (!loop_running.load()) std::this_thread::yield();
    observer_in_region = ThreadPool::CallingThreadInParallelRegion();
    observed = true;
  });
  pool.ParallelForGrained(64, 1, [&](int64_t begin, int64_t) {
    EXPECT_TRUE(ThreadPool::CallingThreadInParallelRegion());
    if (begin == 0) {
      loop_running = true;
      while (!observed.load()) std::this_thread::yield();
    }
  });
  observer.join();
  EXPECT_FALSE(observer_in_region.load());
  EXPECT_FALSE(pool.in_parallel_region());
}

TEST(ThreadPoolTest, WorkerIndexStaysPoolScopedAcrossClusters) {
  // Two driver threads ("clusters") hammer the same pool with interleaved
  // grained loops. Every physical thread must report ONE stable index for
  // its lifetime, in [-1, kThreads - 1), no matter whose morsel it is
  // executing — per-cluster shard arrays sized by num_threads() index with
  // worker+1 and would corrupt memory otherwise.
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::map<std::thread::id, std::set<int>> indices;
  auto driver = [&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelForGrained(64, 2, [&](int64_t, int64_t) {
        const int index = ThreadPool::current_worker_index();
        ASSERT_GE(index, -1);
        ASSERT_LT(index, kThreads - 1);
        std::lock_guard<std::mutex> lock(mu);
        indices[std::this_thread::get_id()].insert(index);
      });
    }
  };
  std::thread a(driver);
  std::thread b(driver);
  a.join();
  b.join();
  ASSERT_FALSE(indices.empty());
  for (const auto& [id, seen] : indices) {
    EXPECT_EQ(seen.size(), 1u) << "a thread reported two worker indices";
  }
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // Main thread.
}

// --- ExecContext propagation (per-query attribution on shared workers) ---

TEST(ExecContextTest, DefaultIsNullAndScopesNest) {
  EXPECT_EQ(CurrentExecContext(), nullptr);
  ExecContext outer;
  ExecContext inner;
  {
    ExecContextScope outer_scope(&outer);
    EXPECT_EQ(CurrentExecContext(), &outer);
    {
      ExecContextScope inner_scope(&inner);
      EXPECT_EQ(CurrentExecContext(), &inner);
    }
    EXPECT_EQ(CurrentExecContext(), &outer);
  }
  EXPECT_EQ(CurrentExecContext(), nullptr);
}

TEST(ExecContextTest, PropagatesIntoSubmitAndParallelLoops) {
  ThreadPool pool(4);
  ExecContext context;
  ExecContextScope scope(&context);

  const ExecContext* seen_in_task = nullptr;
  pool.Submit([&] { seen_in_task = CurrentExecContext(); }).get();
  EXPECT_EQ(seen_in_task, &context);

  std::atomic<bool> all_match{true};
  pool.ParallelFor(512, [&](int64_t) {
    if (CurrentExecContext() != &context) all_match = false;
  });
  pool.ParallelForGrained(512, 8, [&](int64_t, int64_t) {
    if (CurrentExecContext() != &context) all_match = false;
  });
  EXPECT_TRUE(all_match.load());
}

TEST(ExecContextTest, ConcurrentLoopsKeepTheirOwnContexts) {
  // Three drivers, each with its own context, fan out onto the SAME pool
  // at once. A worker may execute driver 0's morsel right after driver
  // 2's — each body must still see the context of the loop it belongs to
  // (capture-at-call, not capture-at-thread), and each driver's counter
  // must account for exactly its own iterations.
  ThreadPool pool(4);
  constexpr int kDrivers = 3;
  constexpr int64_t kIters = 4096;
  std::vector<ExecContext> contexts(kDrivers);
  std::vector<std::atomic<int64_t>> counts(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    contexts[d].cow_detaches = &counts[d];
  }
  std::atomic<bool> bleed{false};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      ExecContextScope scope(&contexts[d]);
      pool.ParallelForGrained(kIters, 16, [&, d](int64_t begin, int64_t end) {
        const ExecContext* current = CurrentExecContext();
        if (current != &contexts[d]) {
          bleed = true;
          return;
        }
        current->cow_detaches->fetch_add(end - begin);
      });
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_FALSE(bleed.load());
  for (int d = 0; d < kDrivers; ++d) {
    EXPECT_EQ(counts[d].load(), kIters) << "driver " << d;
  }
}

// --- ExecutorRegistry (the process-wide shared pool) ---

TEST(ExecutorRegistryTest, FirstCallerSizesTheSharedPool) {
  ExecutorRegistry::ResetForTesting();
  EXPECT_EQ(ExecutorRegistry::SharedIfCreated(), nullptr);

  std::shared_ptr<ThreadPool> pool = ExecutorRegistry::Shared(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 3);
  // Later callers get THE pool; their requested count is ignored.
  EXPECT_EQ(ExecutorRegistry::Shared(8), pool);
  EXPECT_EQ(pool->num_threads(), 3);
  EXPECT_EQ(ExecutorRegistry::SharedIfCreated(), pool);

  ExecutorRegistry::ResetForTesting();
  EXPECT_EQ(ExecutorRegistry::SharedIfCreated(), nullptr);
  // Existing handles outlive the reset (shared_ptr, not a raw singleton).
  std::atomic<int64_t> sum{0};
  pool->ParallelForGrained(100, 7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950);

  std::shared_ptr<ThreadPool> fresh = ExecutorRegistry::Shared(2);
  EXPECT_NE(fresh, pool);
  EXPECT_EQ(fresh->num_threads(), 2);
  ExecutorRegistry::ResetForTesting();
}

}  // namespace
}  // namespace mpcqp
