// ThreadPool contract tests: FIFO start order, full iteration coverage,
// exception propagation (lowest index wins), deadlock-free nesting, and
// queue-draining shutdown. These are the properties the deterministic
// round executor builds on.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mpcqp {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Submit([&] { seen = std::this_thread::get_id(); }).get();
  EXPECT_EQ(seen, caller);
  int64_t sum = 0;
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });  // Inline: no lock.
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, SubmittedTasksStartInFifoOrder) {
  // One worker (num_threads=2 -> 1 thread): start order == run order.
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Run several times: scheduling varies, the winning exception must not.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> executed{0};
    try {
      pool.ParallelFor(200, [&](int64_t i) {
        executed.fetch_add(1);
        if (i == 13 || i == 77 || i == 150) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 13");
    }
    // All iterations still ran (no early abort mid-loop).
    EXPECT_EQ(executed.load(), 200);
  }
}

TEST(ThreadPoolTest, SubmitFutureRethrows) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer iteration issues an inner ParallelFor while all workers
  // are busy with outer iterations; the caller-participates design must
  // drain these inline instead of waiting for a free worker.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(16, [&](int64_t) {
    pool.ParallelFor(16, [&](int64_t) {
      pool.ParallelFor(4, [&](int64_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 16 * 16 * 4);
}

TEST(ThreadPoolTest, NestedSubmitInsideParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::vector<std::future<void>> futures;
  pool.ParallelFor(8, [&](int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    futures.push_back(pool.Submit([&] { done.fetch_add(1); }));
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ShutdownWhileBusyDrainsQueue) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndInRange) {
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // Main thread.
  std::mutex mu;
  std::set<int> seen;
  pool.ParallelFor(1000, [&](int64_t) {
    const int index = ThreadPool::current_worker_index();
    ASSERT_GE(index, -1);
    ASSERT_LT(index, kThreads - 1);
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(index);
  });
  // At minimum the caller (-1) or some worker ran; all values in range.
  EXPECT_FALSE(seen.empty());
}

TEST(ThreadPoolTest, ZeroAndNegativeIterationCountsAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace mpcqp
