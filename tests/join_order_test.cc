#include <gtest/gtest.h>

#include "mpc/bsp_time.h"
#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "multiway/join_order.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

TEST(JoinOrderTest, StartsFromSmallestAtom) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng rng(1);
  std::vector<Relation> atoms = {GenerateUniform(rng, 500, 2, 40),
                                 GenerateUniform(rng, 30, 2, 40),
                                 GenerateUniform(rng, 500, 2, 40)};
  const std::vector<int> order = GreedyJoinOrder(q, Scatter(atoms, 4));
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order.size(), 3u);
}

TEST(JoinOrderTest, OrderIsAPermutation) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng rng(2);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(rng, 100 + 50 * j, 2, 30));
  }
  std::vector<int> order = GreedyJoinOrder(q, Scatter(atoms, 4));
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(JoinOrderTest, GreedyBeatsOrMatchesDefaultOnSelectiveMiddle) {
  // Path-3 with a selective middle atom: greedy should place it early and
  // produce intermediates no larger than the default order's.
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng rng(3);
  std::vector<Relation> atoms = {GenerateUniform(rng, 400, 2, 10),
                                 GenerateUniform(rng, 20, 2, 10),
                                 GenerateUniform(rng, 400, 2, 10)};
  const int p = 4;
  const std::vector<int> greedy = GreedyJoinOrder(q, Scatter(atoms, p));

  Cluster c1(p, 5);
  Rng rng1(4);
  BinaryPlanOptions greedy_options;
  greedy_options.order = greedy;
  const auto greedy_run =
      IterativeBinaryJoin(c1, q, Scatter(atoms, p), rng1, greedy_options);

  Cluster c2(p, 5);
  Rng rng2(4);
  const auto default_run = IterativeBinaryJoin(c2, q, Scatter(atoms, p), rng2);

  EXPECT_TRUE(MultisetEqual(greedy_run.output.Collect(),
                            default_run.output.Collect()));
  int64_t greedy_max = 0;
  int64_t default_max = 0;
  for (int64_t s : greedy_run.intermediate_sizes) {
    greedy_max = std::max(greedy_max, s);
  }
  for (int64_t s : default_run.intermediate_sizes) {
    default_max = std::max(default_max, s);
  }
  EXPECT_LE(greedy_max, default_max);
}

TEST(JoinOrderTest, EstimatesTrackActualsWithinAnOrderOfMagnitude) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  Rng rng(5);
  std::vector<Relation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(GenerateUniform(rng, 300, 2, 30));
  }
  const int p = 4;
  const std::vector<int> order = GreedyJoinOrder(q, Scatter(atoms, p));
  const std::vector<double> estimates =
      EstimateIntermediates(q, Scatter(atoms, p), order);
  Cluster cluster(p, 5);
  Rng run_rng(6);
  BinaryPlanOptions options;
  options.order = order;
  const auto run =
      IterativeBinaryJoin(cluster, q, Scatter(atoms, p), run_rng, options);
  ASSERT_EQ(estimates.size(), run.intermediate_sizes.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    const double actual =
        std::max<double>(1.0, static_cast<double>(run.intermediate_sizes[i]));
    EXPECT_LT(estimates[i] / actual, 10.0) << "step " << i;
    EXPECT_GT(estimates[i] / actual, 0.1) << "step " << i;
  }
}

TEST(BspTimeTest, ChargesLoadAndLatencyPerRound) {
  Cluster cluster(4, 1);
  cluster.BeginRound("a");
  cluster.RecordMessage(0, 1, 1000, 1000);
  cluster.EndRound();
  cluster.BeginRound("b");
  cluster.RecordMessage(1, 2, 500, 500);
  cluster.EndRound();
  BspParameters params;
  params.seconds_per_tuple = 0.001;
  params.round_latency_seconds = 2.0;
  // (1000*0.001 + 2) + (500*0.001 + 2) = 5.5.
  EXPECT_NEAR(EstimateBspSeconds(cluster.cost_report(), params), 5.5, 1e-9);
  EXPECT_FALSE(BspBreakdown(cluster.cost_report(), params).empty());
}

TEST(BspTimeTest, LatencyFlipsTheOneRoundVsMultiRoundChoice) {
  // Two synthetic reports: 1 round at load 3000 vs 3 rounds at load 500.
  Cluster one(2, 1);
  one.BeginRound("r");
  one.RecordMessage(0, 1, 3000, 3000);
  one.EndRound();
  Cluster many(2, 1);
  for (int r = 0; r < 3; ++r) {
    many.BeginRound("r");
    many.RecordMessage(0, 1, 500, 500);
    many.EndRound();
  }
  BspParameters fast_net;
  fast_net.seconds_per_tuple = 1e-3;
  fast_net.round_latency_seconds = 0.0;
  EXPECT_GT(EstimateBspSeconds(one.cost_report(), fast_net),
            EstimateBspSeconds(many.cost_report(), fast_net));
  BspParameters slow_sync = fast_net;
  slow_sync.round_latency_seconds = 10.0;
  EXPECT_LT(EstimateBspSeconds(one.cost_report(), slow_sync),
            EstimateBspSeconds(many.cost_report(), slow_sync));
}

}  // namespace
}  // namespace mpcqp
