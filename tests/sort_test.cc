#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mpc/cluster.h"
#include "relation/relation_ops.h"
#include "sort/band_join.h"
#include "sort/multi_round_sort.h"
#include "sort/psrs.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

class PsrsTest : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(PsrsTest, SortsAndPreservesMultiset) {
  const auto [p, n] = GetParam();
  Rng rng(61);
  Cluster cluster(p, 5);
  const Relation input = GenerateUniform(rng, n, 2, 1 << 20);
  PsrsOptions options;
  options.key_cols = {0};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 2);
  EXPECT_EQ(static_cast<int>(result.splitters.size()), p - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsrsTest,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(int64_t{0}, int64_t{17},
                                         int64_t{5000})));

TEST(PsrsTest, LoadNearNOverPWithRegularSampling) {
  const int p = 8;
  Rng rng(62);
  Cluster cluster(p, 5);
  const int64_t n = 32000;
  const Relation input = GenerateUniform(rng, n, 1, 1 << 30);
  PsrsOptions options;
  options.key_cols = {0};
  PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  // PSRS guarantees no server gets more than ~2N/p after partitioning.
  const int64_t load = cluster.cost_report().MaxLoadTuples();
  EXPECT_LT(load, 2 * n / p + p * p);
}

TEST(PsrsTest, CompositeKeySort) {
  const int p = 4;
  Rng rng(63);
  Cluster cluster(p, 5);
  const Relation input = GenerateUniform(rng, 2000, 2, 10);
  PsrsOptions options;
  options.key_cols = {0, 1};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0, 1}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
}

TEST(PsrsTest, SamplingModeAlsoSorts) {
  const int p = 8;
  Rng rng(64);
  Rng sample_rng(65);
  Cluster cluster(p, 5);
  const Relation input = GenerateUniform(rng, 8000, 1, 1 << 30);
  PsrsOptions options;
  options.key_cols = {0};
  options.use_sampling = true;
  options.samples_per_server = 32;
  const PsrsResult result = PsrsSort(cluster, DistRelation::Scatter(input, p),
                                     options, &sample_rng);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
}

TEST(PsrsTest, AllEqualKeysStillSorted) {
  const int p = 4;
  Cluster cluster(p, 5);
  const Relation input = GenerateConstantColumn(1000, 0, 9);
  PsrsOptions options;
  options.key_cols = {0};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_EQ(result.sorted.TotalSize(), 1000);
}

TEST(PsrsTest, AlreadySortedInputIsFine) {
  const int p = 4;
  Cluster cluster(p, 5);
  Relation input(1);
  for (int i = 0; i < 1000; ++i) input.AppendRow({static_cast<Value>(i)});
  PsrsOptions options;
  options.key_cols = {0};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  // Near-perfect balance on uniform ranks.
  EXPECT_LT(result.sorted.MaxFragmentSize(), 2 * 1000 / p);
}

TEST(PsrsTest, ReverseSortedInput) {
  const int p = 8;
  Cluster cluster(p, 5);
  Relation input(1);
  for (int i = 4000; i > 0; --i) input.AppendRow({static_cast<Value>(i)});
  PsrsOptions options;
  options.key_cols = {0};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
  EXPECT_LT(result.sorted.MaxFragmentSize(), 2 * 4000 / p);
}

TEST(PsrsTest, FewDistinctKeys) {
  const int p = 8;
  Rng rng(66);
  Cluster cluster(p, 5);
  const Relation input = GenerateUniform(rng, 4000, 1, 3);
  PsrsOptions options;
  options.key_cols = {0};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
  // Value-based splitters put each key on one server: with 3 keys the
  // heaviest server carries that key's full multiplicity.
  EXPECT_GE(result.sorted.MaxFragmentSize(), 4000 / 3);
}

TEST(PsrsTest, SkewedZipfInputStillSorted) {
  const int p = 16;
  Rng rng(67);
  Cluster cluster(p, 5);
  const Relation input = GenerateZipf(rng, 8000, 1, 1 << 16, 0, 1.2);
  PsrsOptions options;
  options.key_cols = {0};
  const PsrsResult result =
      PsrsSort(cluster, DistRelation::Scatter(input, p), options);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
}

// ---------- Multi-round sort ----------

class MultiRoundSortTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiRoundSortTest, SortsWithExpectedRounds) {
  const auto [p, fan_out] = GetParam();
  Rng data_rng(71);
  Rng rng(72);
  Cluster cluster(p, 5);
  const Relation input = GenerateUniform(data_rng, 6000, 1, 1 << 30);
  const MultiRoundSortResult result = MultiRoundSort(
      cluster, DistRelation::Scatter(input, p), 0, fan_out, rng);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
  EXPECT_TRUE(MultisetEqual(result.sorted.Collect(), input));
  // rounds = ceil(log_fan_out(p)).
  const int expected =
      static_cast<int>(std::ceil(std::log(p) / std::log(fan_out) - 1e-9));
  EXPECT_EQ(result.rounds, std::max(expected, 0));
  EXPECT_EQ(cluster.cost_report().num_rounds(), result.rounds);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiRoundSortTest,
                         ::testing::Combine(::testing::Values(4, 16, 32),
                                            ::testing::Values(2, 4, 8)));

TEST(MultiRoundSortTest, SmallerFanOutMeansMoreRoundsLowerSplitterTraffic) {
  Rng data_rng(73);
  const Relation input = GenerateUniform(data_rng, 4000, 1, 1 << 30);
  const int p = 16;

  Rng rng_a(74);
  Cluster wide(p, 5);
  const auto wide_result =
      MultiRoundSort(wide, DistRelation::Scatter(input, p), 0, 16, rng_a);

  Rng rng_b(74);
  Cluster narrow(p, 5);
  const auto narrow_result =
      MultiRoundSort(narrow, DistRelation::Scatter(input, p), 0, 2, rng_b);

  EXPECT_LT(wide_result.rounds, narrow_result.rounds);
  EXPECT_TRUE(IsGloballySorted(wide_result.sorted, {0}));
  EXPECT_TRUE(IsGloballySorted(narrow_result.sorted, {0}));
}

// ---------- Band (similarity) join ----------

Relation BandJoinReference(const Relation& left, const Relation& right,
                           int lc, int rc, Value eps) {
  Relation out(left.arity() + right.arity());
  std::vector<Value> scratch(out.arity());
  for (int64_t i = 0; i < left.size(); ++i) {
    for (int64_t j = 0; j < right.size(); ++j) {
      const Value a = left.at(i, lc);
      const Value b = right.at(j, rc);
      const Value diff = a > b ? a - b : b - a;
      if (diff <= eps) {
        std::copy(left.row(i), left.row(i) + left.arity(), scratch.begin());
        std::copy(right.row(j), right.row(j) + right.arity(),
                  scratch.begin() + left.arity());
        out.AppendRow(scratch.data());
      }
    }
  }
  return out;
}

class BandJoinTest
    : public ::testing::TestWithParam<std::tuple<int, Value>> {};

TEST_P(BandJoinTest, MatchesNestedLoopReference) {
  const auto [p, eps] = GetParam();
  Rng rng(81);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(rng, 600, 2, 5000);
  const Relation right = GenerateUniform(rng, 500, 2, 5000);
  const DistRelation out =
      BandJoin(cluster, DistRelation::Scatter(left, p),
               DistRelation::Scatter(right, p), 0, 1, eps);
  EXPECT_TRUE(MultisetEqual(out.Collect(),
                            BandJoinReference(left, right, 0, 1, eps)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BandJoinTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(Value{0},
                                                              Value{3},
                                                              Value{100})));

TEST(BandJoinTest, EpsilonZeroIsEquiJoin) {
  const int p = 8;
  Rng rng(82);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(rng, 400, 2, 50);
  const Relation right = GenerateUniform(rng, 400, 2, 50);
  const DistRelation out =
      BandJoin(cluster, DistRelation::Scatter(left, p),
               DistRelation::Scatter(right, p), 0, 0, 0);
  // Same multiset as the hash join modulo column order: left all + right
  // all vs left all + right-minus-key. Compare against the reference.
  EXPECT_TRUE(MultisetEqual(out.Collect(),
                            BandJoinReference(left, right, 0, 0, 0)));
}

TEST(BandJoinTest, BoundaryValuesNotDuplicated) {
  // Keys sitting exactly on splitters must not produce duplicate pairs.
  const int p = 4;
  Relation left(1);
  Relation right(1);
  for (Value v = 0; v < 400; ++v) {
    left.AppendRow({v});
    right.AppendRow({v});
  }
  Cluster cluster(p, 5);
  const DistRelation out =
      BandJoin(cluster, DistRelation::Scatter(left, p),
               DistRelation::Scatter(right, p), 0, 0, 1);
  // Each v pairs with v-1, v, v+1 (except the two ends): 3*400 - 2.
  EXPECT_EQ(out.TotalSize(), 3 * 400 - 2);
}

TEST(BandJoinTest, HugeEpsilonIsCrossProduct) {
  const int p = 4;
  Rng rng(83);
  Cluster cluster(p, 5);
  const Relation left = GenerateUniform(rng, 80, 1, 1000);
  const Relation right = GenerateUniform(rng, 90, 1, 1000);
  const DistRelation out =
      BandJoin(cluster, DistRelation::Scatter(left, p),
               DistRelation::Scatter(right, p), 0, 0, ~Value{0});
  EXPECT_EQ(out.TotalSize(), 80 * 90);
}

TEST(MultiRoundSortTest, SingleServerNoRounds) {
  Rng data_rng(75);
  Rng rng(76);
  Cluster cluster(1, 5);
  const Relation input = GenerateUniform(data_rng, 500, 1, 100);
  const auto result =
      MultiRoundSort(cluster, DistRelation::Scatter(input, 1), 0, 2, rng);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_TRUE(IsGloballySorted(result.sorted, {0}));
}

}  // namespace
}  // namespace mpcqp
