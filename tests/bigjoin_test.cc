#include <gtest/gtest.h>

#include <tuple>

#include "mpc/cluster.h"
#include "multiway/bigjoin.h"
#include "query/generic_join.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

// Set-semantics reference.
Relation Reference(const ConjunctiveQuery& q,
                   const std::vector<Relation>& atoms) {
  return EvalJoinWcoj(q, atoms);
}

struct BigJoinCase {
  const char* query;
  int64_t rows;
  uint64_t domain;
};

class BigJoinTest
    : public ::testing::TestWithParam<std::tuple<BigJoinCase, int>> {};

TEST_P(BigJoinTest, MatchesWcojReference) {
  const auto [spec, p] = GetParam();
  const auto q = ConjunctiveQuery::Parse(spec.query);
  ASSERT_TRUE(q.ok());
  Rng rng(21);
  std::vector<Relation> atoms;
  for (int j = 0; j < q->num_atoms(); ++j) {
    atoms.push_back(
        GenerateUniform(rng, spec.rows, q->atom(j).arity(), spec.domain));
  }
  Cluster cluster(p, 5);
  const BigJoinResult result = BigJoin(cluster, *q, Scatter(atoms, p));
  EXPECT_TRUE(
      MultisetEqual(result.output.Collect(), Reference(*q, atoms)));
  EXPECT_GT(result.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BigJoinTest,
    ::testing::Combine(
        ::testing::Values(
            BigJoinCase{"R(x,y), S(y,z), T(z,x)", 200, 15},
            BigJoinCase{"R(x,y), S(y,z)", 180, 12},
            BigJoinCase{"R(x), S(y)", 25, 40},
            BigJoinCase{"A(x,y), B(y,z), C(z,w), D(w,x)", 100, 8},
            BigJoinCase{"R(x0,x1), S(x0,x2), T(x0,x3)", 100, 6}),
        ::testing::Values(1, 4, 16)));

TEST(BigJoinTest, SkewedTriangleStillCorrect) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(22);
  std::vector<Relation> atoms = {
      GenerateUniform(rng, 500, 2, 100),
      GenerateZipf(rng, 500, 2, 100, 1, 1.5),
      GenerateZipf(rng, 500, 2, 100, 0, 1.5),
  };
  Cluster cluster(16, 5);
  const BigJoinResult result = BigJoin(cluster, q, Scatter(atoms, 16));
  EXPECT_TRUE(MultisetEqual(result.output.Collect(), Reference(q, atoms)));
}

TEST(BigJoinTest, CustomVariableOrder) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(23);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 250, 2, 14));
  }
  BigJoinOptions options;
  options.var_order = {2, 0, 1};
  Cluster cluster(8, 5);
  const BigJoinResult result =
      BigJoin(cluster, q, Scatter(atoms, 8), options);
  EXPECT_TRUE(MultisetEqual(result.output.Collect(), Reference(q, atoms)));
}

TEST(BigJoinTest, EmptyAtomGivesEmptyOutput) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(24);
  const Relation full = GenerateUniform(rng, 60, 2, 6);
  Cluster cluster(8, 5);
  const BigJoinResult result = BigJoin(
      cluster, q, Scatter({full, Relation(2), full}, 8));
  EXPECT_TRUE(result.output.Collect().empty());
}

TEST(BigJoinTest, RoundsScaleWithVarsNotData) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(25);
  std::vector<Relation> small_atoms;
  std::vector<Relation> big_atoms;
  for (int j = 0; j < 3; ++j) {
    small_atoms.push_back(GenerateUniform(rng, 100, 2, 10));
    big_atoms.push_back(GenerateUniform(rng, 2000, 2, 60));
  }
  Cluster c1(8, 5);
  const int small_rounds = BigJoin(c1, q, Scatter(small_atoms, 8)).rounds;
  Cluster c2(8, 5);
  const int big_rounds = BigJoin(c2, q, Scatter(big_atoms, 8)).rounds;
  EXPECT_EQ(small_rounds, big_rounds);
}

}  // namespace
}  // namespace mpcqp
