// Golden CostReport regression: one representative run of each algorithm
// family, with every round's metered per-server loads pinned to in-source
// goldens. The data plane is free to change how bytes move (copy-on-write
// payloads, two-phase routing, shared broadcast buffers) but never what is
// metered — any refactor that silently changes a round label, a per-server
// tuple/value count, or the round structure fails here loudly.
//
// Regenerating: run with MPCQP_REGEN_GOLDENS=1 in the environment; each
// test prints a paste-ready C++ initializer for its golden table and
// fails (so regen runs are never mistaken for green runs).

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "acyclic/gym.h"
#include "join/hash_join.h"
#include "join/skew_join.h"
#include "matmul/block_mm.h"
#include "matmul/matrix.h"
#include "mpc/cluster.h"
#include "mpc/cost.h"
#include "mpc/dist_relation.h"
#include "mpc/stats.h"
#include "multiway/hypercube.h"
#include "query/ghd.h"
#include "query/query.h"
#include "sort/multi_round_sort.h"
#include "sort/psrs.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

// One round's golden: the label plus aggregate loads for quick diagnosis
// and an FNV-1a checksum over all four per-server vectors for exactness.
struct GoldenRound {
  const char* label;
  int64_t max_tuples_received;
  int64_t total_tuples_received;
  uint64_t checksum;
};

uint64_t Fnv1a(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v);
  return h * 0x100000001b3ULL;
}

uint64_t RoundChecksum(const RoundCost& round) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto* vec :
       {&round.tuples_received, &round.values_received, &round.tuples_sent,
        &round.values_sent}) {
    for (int64_t v : *vec) h = Fnv1a(h, v);
  }
  return h;
}

void PrintActual(const std::string& name, const CostReport& report) {
  std::fprintf(stderr, "const GoldenRound k%s[] = {\n", name.c_str());
  for (const RoundCost& round : report.rounds()) {
    std::fprintf(stderr, "    {\"%s\", %" PRId64 ", %" PRId64
                         ", 0x%016" PRIx64 "ULL},\n",
                 round.label.c_str(), round.MaxTuplesReceived(),
                 round.TotalTuplesReceived(), RoundChecksum(round));
  }
  std::fprintf(stderr, "};\n");
}

template <size_t N>
void ExpectMatchesGolden(const std::string& name, const CostReport& report,
                         const GoldenRound (&golden)[N]) {
  if (std::getenv("MPCQP_REGEN_GOLDENS") != nullptr) {
    PrintActual(name, report);
    FAIL() << "MPCQP_REGEN_GOLDENS set: printed actuals, not comparing";
  }
  ASSERT_EQ(report.num_rounds(), static_cast<int>(N)) << name;
  for (size_t r = 0; r < N; ++r) {
    const RoundCost& round = report.rounds()[r];
    EXPECT_EQ(round.label, golden[r].label) << name << " round " << r;
    EXPECT_EQ(round.MaxTuplesReceived(), golden[r].max_tuples_received)
        << name << " round " << r << " (" << round.label << ")";
    EXPECT_EQ(round.TotalTuplesReceived(), golden[r].total_tuples_received)
        << name << " round " << r << " (" << round.label << ")";
    EXPECT_EQ(RoundChecksum(round), golden[r].checksum)
        << name << " round " << r << " (" << round.label << ")";
  }
  if (::testing::Test::HasFailure()) PrintActual(name, report);
}

constexpr int kServers = 8;
constexpr uint64_t kSeed = 42;

// ---------- Parallel hash join ----------

const GoldenRound kHashJoin[] = {
    {"parallel hash join: shuffle", 495, 1200, 0xb064fa0cc129e675ULL},
};

TEST(CostGoldenTest, HashJoin) {
  Rng rng(7);
  const Relation left = GenerateZipf(rng, 600, 2, 40, 0, 1.2);
  const Relation right = GenerateZipf(rng, 600, 2, 40, 0, 1.2);
  Cluster cluster(kServers, kSeed);
  ParallelHashJoin(cluster, DistRelation::Scatter(left, kServers),
                   DistRelation::Scatter(right, kServers), {0}, {0});
  ExpectMatchesGolden("HashJoin", cluster.cost_report(), kHashJoin);
}

// ---------- Skew-aware join ----------

const GoldenRound kSkewJoin[] = {
    {"skew-aware join: shuffle", 358, 1943, 0x388e686a85a617d9ULL},
};

TEST(CostGoldenTest, SkewJoin) {
  Rng data_rng(7);
  const Relation left = GenerateZipf(data_rng, 600, 2, 40, 0, 1.2);
  const Relation right = GenerateZipf(data_rng, 600, 2, 40, 0, 1.2);
  Cluster cluster(kServers, kSeed);
  Rng rng(11);
  SkewAwareJoin(cluster, DistRelation::Scatter(left, kServers),
                DistRelation::Scatter(right, kServers), 0, 0, rng);
  ExpectMatchesGolden("SkewJoin", cluster.cost_report(), kSkewJoin);
}

// ---------- HyperCube triangle ----------

const GoldenRound kHyperCubeTriangle[] = {
    {"hypercube: multicast", 431, 3000, 0xc22b198caf9028c1ULL},
};

TEST(CostGoldenTest, HyperCubeTriangle) {
  Rng rng(23);
  const Relation edges = GenerateRandomGraph(rng, 60, 500);
  const ConjunctiveQuery q = ConjunctiveQuery::Make(
      {"x", "y", "z"}, {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
  Cluster cluster(kServers, kSeed);
  std::vector<DistRelation> atoms(3, DistRelation::Scatter(edges, kServers));
  HyperCubeJoin(cluster, q, atoms);
  ExpectMatchesGolden("HyperCubeTriangle", cluster.cost_report(),
                      kHyperCubeTriangle);
}

// ---------- GYM on a path query ----------

const GoldenRound kGym[] = {
    {"gym: upward semijoin", 66, 300, 0x4aebeb0d4d26bebbULL},
    {"gym: upward semijoin", 54, 300, 0x5527dc826924ff73ULL},
    {"gym: upward semijoin", 85, 300, 0xf7786fafa0e3a099ULL},
    {"gym: downward semijoin", 66, 300, 0x3b23d93fb2fa6fc3ULL},
    {"gym: downward semijoin", 93, 300, 0xbe0e6cbf5595ab0fULL},
    {"gym: downward semijoin", 78, 300, 0x43e5f73abd6d8783ULL},
    {"gym: join step", 88, 300, 0x920b6c9e37742bc3ULL},
    {"gym: join step", 316, 1369, 0xeb8e18f55f7f7bc1ULL},
    {"gym: join step", 2691, 10356, 0x5a252682c99c5f9bULL},
};

TEST(CostGoldenTest, Gym) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(4);
  Rng data_rng(21);
  Rng rng(22);
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(DistRelation::Scatter(
        GenerateUniform(data_rng, 150, 2, 18), kServers));
  }
  Cluster cluster(kServers, kSeed);
  GymJoin(cluster, q, ChainGhd(q), atoms, rng);
  ExpectMatchesGolden("Gym", cluster.cost_report(), kGym);
}

// ---------- PSRS ----------

const GoldenRound kPsrs[] = {
    {"psrs: sample broadcast", 56, 448, 0x25742bb6200495a5ULL},
    {"psrs: range partition", 141, 800, 0xa2e7e15395d40645ULL},
};

TEST(CostGoldenTest, Psrs) {
  Rng rng(31);
  const Relation input = GenerateUniform(rng, 800, 2, 1000);
  Cluster cluster(kServers, kSeed);
  PsrsOptions options;
  options.key_cols = {0, 1};
  PsrsSort(cluster, DistRelation::Scatter(input, kServers), options);
  ExpectMatchesGolden("Psrs", cluster.cost_report(), kPsrs);
}

// ---------- Multi-round distribution sort ----------

const GoldenRound kMultiRoundSort[] = {
    {"multi-round sort: split level 1", 246, 1824, 0x0200f3f86c4e9cfdULL},
    {"multi-round sort: split level 2", 190, 1312, 0x813e7da5722d0625ULL},
    {"multi-round sort: split level 3", 188, 1056, 0x735f75de1913405bULL},
};

TEST(CostGoldenTest, MultiRoundSort) {
  Rng rng(31);
  const Relation input = GenerateUniform(rng, 800, 2, 1000);
  Cluster cluster(kServers, kSeed);
  Rng sort_rng(33);
  MultiRoundSort(cluster, DistRelation::Scatter(input, kServers), /*col=*/0,
                 /*fan_out=*/2, sort_rng);
  ExpectMatchesGolden("MultiRoundSort", cluster.cost_report(),
                      kMultiRoundSort);
}

// ---------- Distributed heavy-hitter detection ----------

const GoldenRound kHeavyHitters[] = {
    {"stats: count shuffle", 61, 330, 0x100c29561e7a02e9ULL},
    {"stats: hitter broadcast", 10, 80, 0x5d0a0abd294599e5ULL},
};

TEST(CostGoldenTest, DistributedHeavyHitters) {
  Rng rng(7);
  const Relation input = GenerateZipf(rng, 2000, 2, 60, 0, 1.3);
  Cluster cluster(kServers, kSeed);
  DetectHeavyHittersDistributed(cluster,
                                DistRelation::Scatter(input, kServers),
                                /*col=*/0, /*threshold=*/40);
  ExpectMatchesGolden("HeavyHitters", cluster.cost_report(), kHeavyHitters);
}

// ---------- Optimized GYM on a star query (intersect path) ----------

const GoldenRound kGymStarOptimized[] = {
    {"gym: upward semijoin level", 288, 1200, 0xbbfdc9ac20c58935ULL},
    {"gym: upward semijoin intersect", 87, 600, 0xf6311042248c0221ULL},
    {"gym: downward semijoin level", 254, 1200, 0xa1baeeaf845d4489ULL},
    {"skew-hc: multicast residual classes", 281, 800, 0x0d665ea38711ad11ULL},
};

TEST(CostGoldenTest, GymStarOptimized) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(4);
  Rng data_rng(25);
  Rng rng(26);
  std::vector<DistRelation> atoms;
  for (int j = 0; j < 4; ++j) {
    atoms.push_back(DistRelation::Scatter(
        GenerateUniform(data_rng, 200, 2, 12), kServers));
  }
  Cluster cluster(kServers, kSeed);
  GymOptions options;
  options.optimized = true;
  GymJoin(cluster, q, StarGhd(q), atoms, rng, options);
  ExpectMatchesGolden("GymStarOptimized", cluster.cost_report(),
                      kGymStarOptimized);
}

// ---------- Square-block matrix multiplication ----------

const GoldenRound kBlockMm[] = {
    {"square-block MM: compute round 1", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 2", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 3", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 4", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 5", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 6", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 7", 32, 256, 0x68b9c8dd6f90d5a5ULL},
    {"square-block MM: compute round 8", 32, 256, 0x68b9c8dd6f90d5a5ULL},
};

TEST(CostGoldenTest, BlockMm) {
  Rng rng(7);
  const Matrix a = RandomMatrix(rng, 16, 16, 20);
  const Matrix b = RandomMatrix(rng, 16, 16, 20);
  Cluster cluster(kServers, kSeed);
  SquareBlockMm(cluster, a, b, /*block_dim=*/4);
  ExpectMatchesGolden("BlockMm", cluster.cost_report(), kBlockMm);
}

}  // namespace
}  // namespace mpcqp
