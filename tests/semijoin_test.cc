#include <gtest/gtest.h>

#include <tuple>

#include "join/semi_join.h"
#include "mpc/cluster.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

class DistributedSemijoinTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DistributedSemijoinTest, MatchesLocalSemijoin) {
  const auto [p, domain] = GetParam();
  Rng rng(1);
  const Relation left = GenerateUniform(rng, 800, 2, domain);
  const Relation right = GenerateUniform(rng, 300, 2, domain);
  Cluster cluster(p, 3);
  const DistRelation semi = DistributedSemijoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {1}, {0});
  EXPECT_TRUE(MultisetEqual(semi.Collect(),
                            SemijoinLocal(left, right, {1}, {0})));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedSemijoinTest,
                         ::testing::Combine(::testing::Values(1, 4, 16),
                                            ::testing::Values(10u, 5000u)));

TEST(DistributedSemijoinTest, AntijoinComplements) {
  const int p = 8;
  Rng rng(2);
  const Relation left = GenerateUniform(rng, 500, 2, 50);
  const Relation right = GenerateUniform(rng, 100, 2, 50);
  Cluster cluster(p, 3);
  const DistRelation semi = DistributedSemijoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {1}, {0});
  const DistRelation anti = DistributedAntijoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {1}, {0});
  EXPECT_TRUE(MultisetEqual(UnionAll(semi.Collect(), anti.Collect()), left));
}

TEST(DistributedSemijoinTest, LoadStaysLinearEvenWhenJoinWouldExplode) {
  // Both sides share one key value: the join is |L|x|R| but the semijoin
  // moves only |L|/p + distinct-keys tuples per server... the heavy key
  // concentrates the left side, but the dedup'd right side is 1 tuple.
  const int p = 16;
  const Relation left = GenerateConstantColumn(4000, 1, 7);
  const Relation right = GenerateConstantColumn(4000, 0, 7);
  Cluster cluster(p, 3);
  const DistRelation semi = DistributedSemijoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {1}, {0});
  EXPECT_EQ(semi.TotalSize(), 4000);
  // The filter side contributed p tuples total (1 distinct key per
  // server), not 4000: semijoin reduction in action.
  EXPECT_LE(cluster.cost_report().TotalCommTuples(), 4000 + p);
}

TEST(BroadcastSemijoinTest, LeftNeverMoves) {
  const int p = 8;
  Rng rng(3);
  const Relation left = GenerateUniform(rng, 2000, 2, 100);
  const Relation right = GenerateUniform(rng, 40, 2, 100);
  Cluster cluster(p, 3);
  const DistRelation semi = BroadcastSemijoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {1}, {0});
  EXPECT_TRUE(MultisetEqual(semi.Collect(),
                            SemijoinLocal(left, right, {1}, {0})));
  // Only the (deduplicated) filter keys were broadcast.
  EXPECT_LE(cluster.cost_report().MaxLoadTuples(), 40);
}

TEST(DistributedSemijoinTest, MultiColumnKeys) {
  const int p = 4;
  Rng rng(4);
  const Relation left = GenerateUniform(rng, 400, 3, 8);
  const Relation right = GenerateUniform(rng, 100, 3, 8);
  Cluster cluster(p, 3);
  const DistRelation semi = DistributedSemijoin(
      cluster, DistRelation::Scatter(left, p),
      DistRelation::Scatter(right, p), {0, 2}, {1, 2});
  EXPECT_TRUE(MultisetEqual(semi.Collect(),
                            SemijoinLocal(left, right, {0, 2}, {1, 2})));
}

}  // namespace
}  // namespace mpcqp
