#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "planner/planner.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

TEST(PlannerTest, CyclicQueryCannotUseGym) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(1);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 500, 2, 100));
  }
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 16), 16);
  for (const CandidatePlan& plan : choice.candidates) {
    if (plan.algorithm == PlanAlgorithm::kGym) {
      EXPECT_FALSE(plan.feasible);
    }
  }
  EXPECT_NE(choice.chosen.algorithm, PlanAlgorithm::kGym);
}

TEST(PlannerTest, HighRoundCostFavorsOneRoundPlans) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(2);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 2000, 2, 1 << 14));
  }
  PlannerOptions cheap_rounds;
  cheap_rounds.round_cost_tuples = 0.0;
  PlannerOptions expensive_rounds;
  expensive_rounds.round_cost_tuples = 1e7;
  const PlanChoice flexible =
      ChoosePlan(q, Scatter(atoms, 64), 64, cheap_rounds);
  const PlanChoice latency_bound =
      ChoosePlan(q, Scatter(atoms, 64), 64, expensive_rounds);
  EXPECT_EQ(latency_bound.chosen.estimated_rounds, 1);
  EXPECT_LE(flexible.chosen.estimated_load,
            latency_bound.chosen.estimated_load + 1e-9);
}

TEST(PlannerTest, DetectsSkewAndPrefersSkewResilientPlan) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(3);
  std::vector<Relation> atoms = {
      GenerateUniform(rng, 2000, 2, 1 << 14),
      GenerateConstantColumn(2000, 1, 7),
      GenerateConstantColumn(2000, 0, 7),
  };
  PlannerOptions options;
  options.round_cost_tuples = 1e7;  // Force a one-round plan.
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 64), 64, options);
  EXPECT_TRUE(choice.input_is_skewed);
  EXPECT_EQ(choice.chosen.algorithm, PlanAlgorithm::kSkewHc);
}

TEST(PlannerTest, AcyclicSelectiveQueryPicksGymWhenRoundsAreFree) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(3);
  Rng rng(4);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    // Sparse center: OUT stays near IN.
    atoms.push_back(GenerateMatchingDegree(rng, 4000, 1));
  }
  PlannerOptions options;
  options.round_cost_tuples = 0.0;
  options.allowed = {PlanAlgorithm::kHyperCube, PlanAlgorithm::kGym};
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 64), 64, options);
  // Star-3 has tau* = 1: HyperCube's one-round load is ~IN/p^{1/1}... but
  // the whole star concentrates on the center dimension, so its load
  // estimate is ~IN/p too; GYM wins or ties. Either way both must beat
  // broadcast-level loads; assert GYM is feasible and cost-ranked sanely.
  for (const CandidatePlan& plan : choice.candidates) {
    if (plan.algorithm == PlanAlgorithm::kGym) {
      EXPECT_TRUE(plan.feasible);
      EXPECT_LT(plan.estimated_load, 4.0 * 3 * 4000 / 64 + 1000);
    }
  }
}

TEST(PlannerTest, BigJoinInfeasibleWithDuplicateInputs) {
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  Relation dup = Relation::FromRows({{1, 2}, {1, 2}});
  Relation clean = Relation::FromRows({{2, 3}});
  const PlanChoice choice =
      ChoosePlan(q, Scatter({dup, clean}, 4), 4);
  for (const CandidatePlan& plan : choice.candidates) {
    if (plan.algorithm == PlanAlgorithm::kBigJoin) {
      EXPECT_FALSE(plan.feasible);
    }
  }
}

TEST(PlannerTest, ExecutePlanMatchesReferenceForEveryAlgorithm) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng data_rng(5);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(Dedup(GenerateUniform(data_rng, 300, 2, 15)));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  for (const PlanAlgorithm algorithm :
       {PlanAlgorithm::kHyperCube, PlanAlgorithm::kSkewHc,
        PlanAlgorithm::kBinaryPlan, PlanAlgorithm::kBigJoin}) {
    PlannerOptions options;
    options.allowed = {algorithm};
    const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 8), 8, options);
    ASSERT_TRUE(choice.chosen.feasible)
        << PlanAlgorithmName(algorithm) << ": " << choice.chosen.rationale;
    Cluster cluster(8, 5);
    Rng rng(6);
    const DistRelation out =
        ExecutePlan(cluster, q, Scatter(atoms, 8), choice, rng);
    EXPECT_TRUE(MultisetEqual(out.Collect(), expected))
        << PlanAlgorithmName(algorithm);
  }
}

TEST(PlannerTest, ExecuteGymPlanOnAcyclicQuery) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng data_rng(7);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 200, 2, 25));
  }
  PlannerOptions options;
  options.allowed = {PlanAlgorithm::kGym};
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 8), 8, options);
  ASSERT_TRUE(choice.chosen.feasible);
  Cluster cluster(8, 5);
  Rng rng(8);
  const DistRelation out =
      ExecutePlan(cluster, q, Scatter(atoms, 8), choice, rng);
  EXPECT_TRUE(MultisetEqual(out.Collect(), EvalJoinLocal(q, atoms)));
}

TEST(PlannerTest, RationalesAndNamesPopulated) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(9);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 100, 2, 20));
  }
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 4), 4);
  EXPECT_EQ(choice.candidates.size(), 5u);
  for (const CandidatePlan& plan : choice.candidates) {
    EXPECT_FALSE(plan.rationale.empty());
    EXPECT_NE(std::string(PlanAlgorithmName(plan.algorithm)), "unknown");
  }
}

}  // namespace
}  // namespace mpcqp
