#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "multiway/binary_plan.h"
#include "planner/calibration.h"
#include "planner/enumerator.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

std::vector<DistRelation> Scatter(const std::vector<Relation>& atoms, int p) {
  std::vector<DistRelation> out;
  for (const Relation& r : atoms) out.push_back(DistRelation::Scatter(r, p));
  return out;
}

TEST(PlannerTest, CyclicQueryCannotUseGym) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(1);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 500, 2, 100));
  }
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 16), 16);
  for (const CandidatePlan& plan : choice.candidates) {
    if (plan.algorithm == PlanAlgorithm::kGym) {
      EXPECT_FALSE(plan.feasible);
    }
  }
  EXPECT_NE(choice.chosen.algorithm, PlanAlgorithm::kGym);
}

TEST(PlannerTest, HighRoundCostFavorsOneRoundPlans) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(2);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 2000, 2, 1 << 14));
  }
  PlannerOptions cheap_rounds;
  cheap_rounds.round_cost_tuples = 0.0;
  PlannerOptions expensive_rounds;
  expensive_rounds.round_cost_tuples = 1e7;
  const PlanChoice flexible =
      ChoosePlan(q, Scatter(atoms, 64), 64, cheap_rounds);
  const PlanChoice latency_bound =
      ChoosePlan(q, Scatter(atoms, 64), 64, expensive_rounds);
  EXPECT_EQ(latency_bound.chosen.estimated_rounds, 1);
  EXPECT_LE(flexible.chosen.estimated_load,
            latency_bound.chosen.estimated_load + 1e-9);
}

TEST(PlannerTest, DetectsSkewAndPrefersSkewResilientPlan) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(3);
  std::vector<Relation> atoms = {
      GenerateUniform(rng, 2000, 2, 1 << 14),
      GenerateConstantColumn(2000, 1, 7),
      GenerateConstantColumn(2000, 0, 7),
  };
  PlannerOptions options;
  options.round_cost_tuples = 1e7;  // Force a one-round plan.
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 64), 64, options);
  EXPECT_TRUE(choice.input_is_skewed);
  EXPECT_EQ(choice.chosen.algorithm, PlanAlgorithm::kSkewHc);
}

TEST(PlannerTest, AcyclicSelectiveQueryPicksGymWhenRoundsAreFree) {
  const ConjunctiveQuery q = ConjunctiveQuery::Star(3);
  Rng rng(4);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    // Sparse center: OUT stays near IN.
    atoms.push_back(GenerateMatchingDegree(rng, 4000, 1));
  }
  PlannerOptions options;
  options.round_cost_tuples = 0.0;
  options.allowed = {PlanAlgorithm::kHyperCube, PlanAlgorithm::kGym};
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 64), 64, options);
  // Star-3 has tau* = 1: HyperCube's one-round load is ~IN/p^{1/1}... but
  // the whole star concentrates on the center dimension, so its load
  // estimate is ~IN/p too; GYM wins or ties. Either way both must beat
  // broadcast-level loads; assert GYM is feasible and cost-ranked sanely.
  for (const CandidatePlan& plan : choice.candidates) {
    if (plan.algorithm == PlanAlgorithm::kGym) {
      EXPECT_TRUE(plan.feasible);
      EXPECT_LT(plan.estimated_load, 4.0 * 3 * 4000 / 64 + 1000);
    }
  }
}

TEST(PlannerTest, BigJoinInfeasibleWithDuplicateInputs) {
  const ConjunctiveQuery q = ConjunctiveQuery::TwoWayJoin();
  Relation dup = Relation::FromRows({{1, 2}, {1, 2}});
  Relation clean = Relation::FromRows({{2, 3}});
  const PlanChoice choice =
      ChoosePlan(q, Scatter({dup, clean}, 4), 4);
  for (const CandidatePlan& plan : choice.candidates) {
    if (plan.algorithm == PlanAlgorithm::kBigJoin) {
      EXPECT_FALSE(plan.feasible);
    }
  }
}

TEST(PlannerTest, ExecutePlanMatchesReferenceForEveryAlgorithm) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng data_rng(5);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(Dedup(GenerateUniform(data_rng, 300, 2, 15)));
  }
  const Relation expected = EvalJoinLocal(q, atoms);
  for (const PlanAlgorithm algorithm :
       {PlanAlgorithm::kHyperCube, PlanAlgorithm::kSkewHc,
        PlanAlgorithm::kBinaryPlan, PlanAlgorithm::kBigJoin}) {
    PlannerOptions options;
    options.allowed = {algorithm};
    const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 8), 8, options);
    ASSERT_TRUE(choice.chosen.feasible)
        << PlanAlgorithmName(algorithm) << ": " << choice.chosen.rationale;
    Cluster cluster(8, 5);
    Rng rng(6);
    const DistRelation out =
        ExecutePlan(cluster, q, Scatter(atoms, 8), choice, rng);
    EXPECT_TRUE(MultisetEqual(out.Collect(), expected))
        << PlanAlgorithmName(algorithm);
  }
}

TEST(PlannerTest, ExecuteGymPlanOnAcyclicQuery) {
  const ConjunctiveQuery q = ConjunctiveQuery::Path(3);
  Rng data_rng(7);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(data_rng, 200, 2, 25));
  }
  PlannerOptions options;
  options.allowed = {PlanAlgorithm::kGym};
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 8), 8, options);
  ASSERT_TRUE(choice.chosen.feasible);
  Cluster cluster(8, 5);
  Rng rng(8);
  const DistRelation out =
      ExecutePlan(cluster, q, Scatter(atoms, 8), choice, rng);
  EXPECT_TRUE(MultisetEqual(out.Collect(), EvalJoinLocal(q, atoms)));
}

// ---------- Cost-based enumeration (PlanQuery) ----------

// Path query A(x,y) ⋈ B(y,z) ⋈ C(z,w) where y is a single constant in A
// and B: the identity order materializes the full |A|·|B| cross product on
// y before C can cut it down. The DP must not start with A ⋈ B.
std::vector<Relation> BlowupPathData(int64_t rows) {
  Rng rng(41);
  Relation a(2);
  Relation b(2);
  for (int64_t i = 0; i < rows; ++i) {
    a.AppendRow({Value(1000 + i), Value(7)});
    b.AppendRow({Value(7), Value(i)});
  }
  // C keeps only a sliver of B's z values: the selective edge.
  Relation c(2);
  for (int64_t i = 0; i < rows / 20; ++i) {
    c.AppendRow({Value(i * 20), Value(5000 + i)});
  }
  return {a, b, c};
}

TEST(PlannerTest, DpAvoidsBlowupJoinOrder) {
  const auto parsed = ConjunctiveQuery::Parse("A(x,y), B(y,z), C(z,w)");
  ASSERT_TRUE(parsed.ok());
  const ConjunctiveQuery& q = *parsed;
  const std::vector<Relation> atoms = BlowupPathData(300);

  PlannerOptions options;
  options.allowed = {PlanAlgorithm::kBinaryPlan};
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, 8), 8, options, nullptr);
  ASSERT_EQ(planned.plan.family, PlanAlgorithm::kBinaryPlan);
  ASSERT_EQ(planned.plan.join_order.size(), 3u);
  // The first joined pair must not be {A, B} (the blowup pair).
  const int first = planned.plan.join_order[0];
  const int second = planned.plan.join_order[1];
  EXPECT_FALSE((first == 0 && second == 1) || (first == 1 && second == 0))
      << "DP kept the exploding A-B prefix";
  EXPECT_GT(planned.dp_states, 0);
  EXPECT_FALSE(planned.plan.tree.empty());

  // The reordered plan still computes the right answer.
  Cluster cluster(8, 5);
  Rng rng(6);
  const DistRelation out =
      ExecutePlannedQuery(cluster, q, Scatter(atoms, 8), planned, rng);
  EXPECT_TRUE(MultisetEqual(out.Collect(), EvalJoinLocal(q, atoms)));
}

TEST(PlannerTest, TreeExecutorBitIdenticalToBinaryDriver) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng data_rng(17);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateZipf(data_rng, 400, 2, 30, 0, 1.1));
  }
  PlannerOptions options;
  options.allowed = {PlanAlgorithm::kBinaryPlan};
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, 8), 8, options, nullptr);
  ASSERT_EQ(planned.plan.family, PlanAlgorithm::kBinaryPlan);

  Cluster tree_cluster(8, 9);
  Rng tree_rng(12);
  const DistRelation via_tree = ExecutePlannedQuery(
      tree_cluster, q, Scatter(atoms, 8), planned, tree_rng);

  Cluster ref_cluster(8, 9);
  Rng ref_rng(12);
  BinaryPlanOptions ref;
  ref.skew_aware = planned.plan.skew_aware;
  ref.order = planned.plan.join_order;
  const BinaryPlanResult expected =
      IterativeBinaryJoin(ref_cluster, q, Scatter(atoms, 8), ref_rng, ref);

  ASSERT_EQ(via_tree.num_servers(), expected.output.num_servers());
  for (int s = 0; s < via_tree.num_servers(); ++s) {
    const Relation& got = via_tree.fragment(s);
    const Relation& want = expected.output.fragment(s);
    ASSERT_EQ(got.size(), want.size()) << "server " << s;
    for (int64_t i = 0; i < got.size(); ++i) {
      for (int c = 0; c < got.arity(); ++c) {
        ASSERT_EQ(got.at(i, c), want.at(i, c))
            << "server " << s << " row " << i << " col " << c;
      }
    }
  }
  // And the metered cost reports agree round for round.
  EXPECT_EQ(tree_cluster.cost_report().num_rounds(),
            ref_cluster.cost_report().num_rounds());
}

TEST(PlannerTest, CalibrationProducesUsableCoefficients) {
  const CostCoefficients c = CalibrateCostModel(4, 1);
  EXPECT_TRUE(c.calibrated);
  EXPECT_GT(c.route_us_per_tuple, 0.0);
  EXPECT_GT(c.copy_us_per_value, 0.0);
  EXPECT_GT(c.local_us_per_tuple, 0.0);
  EXPECT_GE(c.round_overhead_us, 1.0);
  EXPECT_FALSE(c.ToString().empty());
  EXPECT_EQ(c.ToString().find("uncalibrated"), std::string::npos);
}

TEST(PlannerTest, CalibratedPricingIsMonotoneInLoadAndRounds) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  PlannerOptions options;
  options.cost.calibrated = true;  // Defaults give positive coefficients.
  const double cheap = PriceCandidate(1000, 1, q, options);
  const double heavier = PriceCandidate(2000, 1, q, options);
  const double more_rounds = PriceCandidate(1000, 3, q, options);
  EXPECT_LT(cheap, heavier);
  EXPECT_LT(cheap, more_rounds);
}

TEST(PlannerTest, UncalibratedPricingMatchesLegacyLambdaFormula) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  PlannerOptions options;
  options.round_cost_tuples = 250.0;
  EXPECT_DOUBLE_EQ(PriceCandidate(1000, 2, q, options), 1000 + 2 * 250.0);
}

TEST(PlannerTest, PlanQueryMatchesChoosePlanWhenEnumerationIsOff) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(19);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 600, 2, 40));
  }
  PlannerOptions options;
  options.enumerate_join_orders = false;
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 16), 16, options);
  const PlannedQuery planned =
      PlanQuery(q, Scatter(atoms, 16), 16, options, nullptr);
  EXPECT_EQ(planned.plan.family, choice.chosen.algorithm);
  EXPECT_EQ(planned.dp_states, 0);
}

TEST(PlannerTest, RationalesAndNamesPopulated) {
  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();
  Rng rng(9);
  std::vector<Relation> atoms;
  for (int j = 0; j < 3; ++j) {
    atoms.push_back(GenerateUniform(rng, 100, 2, 20));
  }
  const PlanChoice choice = ChoosePlan(q, Scatter(atoms, 4), 4);
  EXPECT_EQ(choice.candidates.size(), 5u);
  for (const CandidatePlan& plan : choice.candidates) {
    EXPECT_FALSE(plan.rationale.empty());
    EXPECT_NE(std::string(PlanAlgorithmName(plan.algorithm)), "unknown");
  }
}

}  // namespace
}  // namespace mpcqp
