#include <gtest/gtest.h>

#include "join/heavy_hitters.h"
#include "mpc/cluster.h"
#include "mpc/stats.h"
#include "relation/relation_ops.h"
#include "workload/generator.h"

namespace mpcqp {
namespace {

TEST(DistributedStatsTest, MatchesExactOracle) {
  const int p = 8;
  Rng rng(1);
  const Relation rel = GenerateZipf(rng, 5000, 2, 500, 1, 1.3);
  const DistRelation dist = DistRelation::Scatter(rel, p);
  const int64_t threshold = 5000 / p;

  Cluster cluster(p, 3);
  const auto distributed =
      DetectHeavyHittersDistributed(cluster, dist, 1, threshold);
  const auto exact = FindHeavyHitters(dist, 1, threshold);

  ASSERT_EQ(distributed.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(distributed[i].value, exact[i].value);
    EXPECT_EQ(distributed[i].count, exact[i].count);
  }
}

TEST(DistributedStatsTest, CostsTwoRounds) {
  const int p = 8;
  Rng rng(2);
  const Relation rel = GenerateZipf(rng, 4000, 2, 300, 1, 1.2);
  Cluster cluster(p, 3);
  DetectHeavyHittersDistributed(cluster, DistRelation::Scatter(rel, p), 1,
                                4000 / p);
  EXPECT_EQ(cluster.cost_report().num_rounds(), 2);
  // Round 1 moves at most one partial per (server, distinct value); round
  // 2 broadcasts at most ~p hitters per server. Both far below IN.
  EXPECT_LT(cluster.cost_report().MaxLoadTuples(), 4000 / p + p * p);
}

TEST(DistributedStatsTest, NoHittersMeansEmptyAndCheapRound2) {
  const int p = 4;
  Rng rng(3);
  const Relation rel = GenerateMatchingDegree(rng, 1000, 1);
  Cluster cluster(p, 3);
  const auto hitters = DetectHeavyHittersDistributed(
      cluster, DistRelation::Scatter(rel, p), 1, 1000 / p);
  EXPECT_TRUE(hitters.empty());
  EXPECT_EQ(cluster.cost_report().rounds()[1].TotalTuplesReceived(), 0);
}

TEST(DistributedStatsTest, DegreeTableMatchesLocalCount) {
  const int p = 8;
  Rng rng(4);
  const Relation rel = GenerateUniform(rng, 3000, 2, 40);
  Cluster cluster(p, 3);
  const Relation table =
      DistributedDegreeTable(cluster, DistRelation::Scatter(rel, p), 1);
  EXPECT_TRUE(MultisetEqual(table, DegreeCount(rel, 1)));
  EXPECT_EQ(cluster.cost_report().num_rounds(), 2);
}

TEST(DistributedStatsTest, SingleServer) {
  Rng rng(5);
  const Relation rel = GenerateConstantColumn(100, 1, 9);
  Cluster cluster(1, 3);
  const auto hitters = DetectHeavyHittersDistributed(
      cluster, DistRelation::Scatter(rel, 1), 1, 10);
  ASSERT_EQ(hitters.size(), 1u);
  EXPECT_EQ(hitters[0].value, 9u);
  EXPECT_EQ(hitters[0].count, 100);
}

}  // namespace
}  // namespace mpcqp
