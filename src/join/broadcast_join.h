#ifndef MPCQP_JOIN_BROADCAST_JOIN_H_
#define MPCQP_JOIN_BROADCAST_JOIN_H_

#include <vector>

#include "join/hash_join.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Broadcast (a.k.a. map-side / replicated) join, deck slide 32: when one
// input is much smaller, replicate it to every server and leave the big
// input in place. One round; load |small| per server, independent of skew.
//
// `left` stays in place; `right` is broadcast. Output contract matches
// ParallelHashJoin.
DistRelation BroadcastJoin(
    Cluster& cluster, const DistRelation& left, const DistRelation& right,
    const std::vector<int>& left_keys, const std::vector<int>& right_keys,
    LocalJoinAlgorithm local = LocalJoinAlgorithm::kHash);

}  // namespace mpcqp

#endif  // MPCQP_JOIN_BROADCAST_JOIN_H_
