#ifndef MPCQP_JOIN_HASH_JOIN_H_
#define MPCQP_JOIN_HASH_JOIN_H_

#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "relation/relation_view.h"

namespace mpcqp {

// Which single-node algorithm computes the per-server join after the
// shuffle. Orthogonal to the parallel algorithm (deck slide 32).
enum class LocalJoinAlgorithm {
  kHash,
  kSortMerge,
  kNestedLoop,
};

// The parallel (partitioned) hash join of deck slide 23: one round that
// sends every tuple of both inputs to server h(join key), then a local
// join per server.
//
// Output contract (shared by every two-way join in the library): columns of
// `left`, then the non-key columns of `right`; fragments live where the
// join was computed.
//
// Load: O(IN/p) w.h.p. on skew-free inputs; degrades to Θ(d) when a join
// value has degree d >> IN/p (slides 24-26).
DistRelation ParallelHashJoin(
    Cluster& cluster, const DistRelation& left, const DistRelation& right,
    const std::vector<int>& left_keys, const std::vector<int>& right_keys,
    LocalJoinAlgorithm local = LocalJoinAlgorithm::kHash);

// Runs `local` on one server's fragments (shared helper). Takes views:
// callers pass fragments (or spans of them) without materializing.
Relation RunLocalJoin(RelationView left, RelationView right,
                      const std::vector<int>& left_keys,
                      const std::vector<int>& right_keys,
                      LocalJoinAlgorithm local);

}  // namespace mpcqp

#endif  // MPCQP_JOIN_HASH_JOIN_H_
