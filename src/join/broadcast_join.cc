#include "join/broadcast_join.h"

#include "common/check.h"
#include "mpc/exchange.h"

namespace mpcqp {

DistRelation BroadcastJoin(Cluster& cluster, const DistRelation& left,
                           const DistRelation& right,
                           const std::vector<int>& left_keys,
                           const std::vector<int>& right_keys,
                           LocalJoinAlgorithm local) {
  MPCQP_CHECK_EQ(left_keys.size(), right_keys.size());
  const int p = cluster.num_servers();

  DistRelation replicated =
      Broadcast(cluster, right, "broadcast join: replicate small side");

  // Local joins: one pool task per server, each writing its own slot. The
  // replicated fragments are COW handles to one shared payload; probing
  // them concurrently is read-only and race-free.
  std::vector<Relation> outputs(p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    outputs[s] = RunLocalJoin(left.fragment(s), replicated.fragment(s),
                              left_keys, right_keys, local);
  });
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
