#ifndef MPCQP_JOIN_SEMI_JOIN_H_
#define MPCQP_JOIN_SEMI_JOIN_H_

#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// Distributed semijoin left ⋉ right and antijoin left ▷ right: one round
// (both sides hash-partitioned on the key), local filter. The building
// block of Yannakakis/GYM (deck slides 58, 64-95): it removes dangling
// tuples without ever growing the data, so L = O(IN/p) regardless of how
// large the corresponding join would be.
//
// Output: the surviving tuples of `left` (arity unchanged), partitioned by
// the key hash.
DistRelation DistributedSemijoin(Cluster& cluster, const DistRelation& left,
                                 const DistRelation& right,
                                 const std::vector<int>& left_keys,
                                 const std::vector<int>& right_keys);

DistRelation DistributedAntijoin(Cluster& cluster, const DistRelation& left,
                                 const DistRelation& right,
                                 const std::vector<int>& left_keys,
                                 const std::vector<int>& right_keys);

// Broadcast variant: `right` is replicated instead of co-partitioned, so
// `left` does not move at all. One round of load |right| per server —
// preferable when the filter side is small (the broadcast-join analogue).
DistRelation BroadcastSemijoin(Cluster& cluster, const DistRelation& left,
                               const DistRelation& right,
                               const std::vector<int>& left_keys,
                               const std::vector<int>& right_keys);

}  // namespace mpcqp

#endif  // MPCQP_JOIN_SEMI_JOIN_H_
