#include "join/heavy_hitters.h"

#include "common/check.h"
#include "common/flat_counter.h"

namespace mpcqp {

std::vector<HeavyHitter> FindHeavyHitters(const DistRelation& rel, int col,
                                          int64_t threshold) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  FlatCounter counts;
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) counts.Add(frag.at(i, col));
  }
  std::vector<HeavyHitter> result;
  for (const auto& [value, count] : counts.SortedEntries()) {
    if (count > threshold) result.push_back({value, count});
  }
  return result;
}

int64_t CountValue(const DistRelation& rel, int col, Value value) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  int64_t count = 0;
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) {
      if (frag.at(i, col) == value) ++count;
    }
  }
  return count;
}

}  // namespace mpcqp
