#include "join/heavy_hitters.h"

#include <utility>
#include <vector>

#include "agg/groupby_engine.h"
#include "common/check.h"

namespace mpcqp {

std::vector<HeavyHitter> FindHeavyHitters(const DistRelation& rel, int col,
                                          int64_t threshold,
                                          ThreadPool* pool) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  // COUNT(*) GROUP BY col over all fragments at once — the engine output
  // is (value, count) sorted by value, exactly the order the old serial
  // FlatCounter scan produced.
  std::vector<RelationView> inputs;
  inputs.reserve(static_cast<size_t>(rel.num_servers()));
  for (int s = 0; s < rel.num_servers(); ++s) {
    inputs.push_back(rel.fragment(s));
  }
  GroupByEngineOptions options;
  options.pool = pool;
  StatusOr<Relation> counts = GroupByAggregateParallel(
      inputs, {col}, /*value_col=*/-1, AggregateOp::kCount, options);
  // COUNT cannot overflow here: the total is bounded by the row count.
  MPCQP_CHECK(counts.ok()) << counts.status();
  const Relation& table = counts.value();
  std::vector<HeavyHitter> result;
  for (int64_t i = 0; i < table.size(); ++i) {
    const int64_t count = static_cast<int64_t>(table.at(i, 1));
    if (count > threshold) {
      result.push_back({table.at(i, 0), count});
    }
  }
  return result;
}

int64_t CountValue(const DistRelation& rel, int col, Value value) {
  MPCQP_CHECK_GE(col, 0);
  MPCQP_CHECK_LT(col, rel.arity());
  int64_t count = 0;
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) {
      if (frag.at(i, col) == value) ++count;
    }
  }
  return count;
}

}  // namespace mpcqp
