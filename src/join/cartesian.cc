#include "join/cartesian.h"

#include <algorithm>

#include "common/check.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

std::pair<int, int> OptimalGridShape(int64_t left_size, int64_t right_size,
                                     int p) {
  MPCQP_CHECK_GE(p, 1);
  // Exact search: for each row count, use the largest column count that
  // fits. Loads use ceil-free real division; sizes 0 behave (load 0).
  int best_rows = 1;
  int best_cols = p;
  double best_load = -1.0;
  for (int rows = 1; rows <= p; ++rows) {
    const int cols = p / rows;
    if (cols < 1) break;
    const double load = static_cast<double>(left_size) / rows +
                        static_cast<double>(right_size) / cols;
    if (best_load < 0 || load < best_load) {
      best_load = load;
      best_rows = rows;
      best_cols = cols;
    }
  }
  return {best_rows, best_cols};
}

void ScatterForProduct(Cluster& cluster, const DistRelation& left,
                       const DistRelation& right,
                       const std::vector<int>& servers, int rows, int cols,
                       Rng& rng, DistRelation* left_out,
                       DistRelation* right_out) {
  MPCQP_CHECK_GE(rows, 1);
  MPCQP_CHECK_GE(cols, 1);
  MPCQP_CHECK_LE(static_cast<size_t>(rows) * cols, servers.size());
  MPCQP_CHECK(left_out != nullptr && right_out != nullptr);
  MPCQP_CHECK_EQ(left_out->num_servers(), cluster.num_servers());
  MPCQP_CHECK_EQ(right_out->num_servers(), cluster.num_servers());

  RoundScope scope(cluster, "cartesian product scatter");

  // Grid placement hashes the tuple's source coordinates (seeded by `rng`)
  // instead of drawing sequentially: routing runs concurrently across
  // source fragments, and placement must not depend on visit order.
  const HashFunction left_place(rng.Next());
  const HashFunction right_place(rng.Next());
  auto place_key = [](const RouteContext& ctx) {
    return (static_cast<uint64_t>(ctx.src) << 42) ^
           static_cast<uint64_t>(ctx.row);
  };

  // Left tuple -> one pseudo-random row slice, replicated across that row.
  {
    DistRelation routed = RouteWithContext(
        cluster, left,
        [&](const RouteContext& ctx, const Value*, std::vector<int>& dests) {
          const int r = left_place.Bucket(place_key(ctx), rows);
          for (int c = 0; c < cols; ++c) {
            dests.push_back(servers[r * cols + c]);
          }
        },
        "");
    for (int s = 0; s < cluster.num_servers(); ++s) {
      left_out->fragment(s).Append(routed.fragment(s));
    }
  }
  // Right tuple -> one pseudo-random column slice, replicated down it.
  {
    DistRelation routed = RouteWithContext(
        cluster, right,
        [&](const RouteContext& ctx, const Value*, std::vector<int>& dests) {
          const int c = right_place.Bucket(place_key(ctx), cols);
          for (int r = 0; r < rows; ++r) {
            dests.push_back(servers[r * cols + c]);
          }
        },
        "");
    for (int s = 0; s < cluster.num_servers(); ++s) {
      right_out->fragment(s).Append(routed.fragment(s));
    }
  }
}

DistRelation CartesianProduct(Cluster& cluster, const DistRelation& left,
                              const DistRelation& right, Rng& rng) {
  const int p = cluster.num_servers();
  const auto [rows, cols] =
      OptimalGridShape(left.TotalSize(), right.TotalSize(), p);
  std::vector<int> servers(p);
  for (int s = 0; s < p; ++s) servers[s] = s;

  DistRelation left_parts(left.arity(), p);
  DistRelation right_parts(right.arity(), p);
  ScatterForProduct(cluster, left, right, servers, rows, cols, rng,
                    &left_parts, &right_parts);

  // Empty key list: a pure cross product per server, one pool task each.
  std::vector<Relation> outputs(p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    outputs[s] =
        HashJoinLocal(left_parts.fragment(s), right_parts.fragment(s),
                      /*left_keys=*/{}, /*right_keys=*/{});
  });
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
