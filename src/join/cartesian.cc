#include "join/cartesian.h"

#include <algorithm>

#include "common/check.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

std::pair<int, int> OptimalGridShape(int64_t left_size, int64_t right_size,
                                     int p) {
  MPCQP_CHECK_GE(p, 1);
  // Exact search: for each row count, use the largest column count that
  // fits. Loads use ceil-free real division; sizes 0 behave (load 0).
  int best_rows = 1;
  int best_cols = p;
  double best_load = -1.0;
  for (int rows = 1; rows <= p; ++rows) {
    const int cols = p / rows;
    if (cols < 1) break;
    const double load = static_cast<double>(left_size) / rows +
                        static_cast<double>(right_size) / cols;
    if (best_load < 0 || load < best_load) {
      best_load = load;
      best_rows = rows;
      best_cols = cols;
    }
  }
  return {best_rows, best_cols};
}

void ScatterForProduct(Cluster& cluster, const DistRelation& left,
                       const DistRelation& right,
                       const std::vector<int>& servers, int rows, int cols,
                       Rng& rng, DistRelation* left_out,
                       DistRelation* right_out) {
  MPCQP_CHECK_GE(rows, 1);
  MPCQP_CHECK_GE(cols, 1);
  MPCQP_CHECK_LE(static_cast<size_t>(rows) * cols, servers.size());
  MPCQP_CHECK(left_out != nullptr && right_out != nullptr);
  MPCQP_CHECK_EQ(left_out->num_servers(), cluster.num_servers());
  MPCQP_CHECK_EQ(right_out->num_servers(), cluster.num_servers());

  RoundScope scope(cluster, "cartesian product scatter");

  // Left tuple -> one random row slice, replicated across that row.
  {
    DistRelation routed = Route(
        cluster, left,
        [&](const Value*, std::vector<int>& dests) {
          const int r = static_cast<int>(rng.Uniform(rows));
          for (int c = 0; c < cols; ++c) {
            dests.push_back(servers[r * cols + c]);
          }
        },
        "");
    for (int s = 0; s < cluster.num_servers(); ++s) {
      const Relation& frag = routed.fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        left_out->fragment(s).AppendRowFrom(frag, i);
      }
    }
  }
  // Right tuple -> one random column slice, replicated down that column.
  {
    DistRelation routed = Route(
        cluster, right,
        [&](const Value*, std::vector<int>& dests) {
          const int c = static_cast<int>(rng.Uniform(cols));
          for (int r = 0; r < rows; ++r) {
            dests.push_back(servers[r * cols + c]);
          }
        },
        "");
    for (int s = 0; s < cluster.num_servers(); ++s) {
      const Relation& frag = routed.fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        right_out->fragment(s).AppendRowFrom(frag, i);
      }
    }
  }
}

DistRelation CartesianProduct(Cluster& cluster, const DistRelation& left,
                              const DistRelation& right, Rng& rng) {
  const int p = cluster.num_servers();
  const auto [rows, cols] =
      OptimalGridShape(left.TotalSize(), right.TotalSize(), p);
  std::vector<int> servers(p);
  for (int s = 0; s < p; ++s) servers[s] = s;

  DistRelation left_parts(left.arity(), p);
  DistRelation right_parts(right.arity(), p);
  ScatterForProduct(cluster, left, right, servers, rows, cols, rng,
                    &left_parts, &right_parts);

  std::vector<Relation> outputs;
  outputs.reserve(p);
  for (int s = 0; s < p; ++s) {
    // Empty key list: a pure cross product per server.
    outputs.push_back(
        HashJoinLocal(left_parts.fragment(s), right_parts.fragment(s),
                      /*left_keys=*/{}, /*right_keys=*/{}));
  }
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
