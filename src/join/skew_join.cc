#include "join/skew_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "join/cartesian.h"
#include "join/hash_join.h"
#include "join/heavy_hitters.h"
#include "mpc/stats.h"
#include "mpc/exchange.h"

namespace mpcqp {

namespace {

// Placement of one heavy hitter's exclusive Cartesian grid: servers
// (start + i) mod p for i in [0, rows*cols).
struct HeavyGrid {
  int start = 0;
  int rows = 1;
  int cols = 1;
};

}  // namespace

DistRelation SkewAwareJoin(Cluster& cluster, const DistRelation& left,
                           const DistRelation& right, int left_key,
                           int right_key, Rng& rng,
                           const SkewJoinOptions& options) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_GE(left_key, 0);
  MPCQP_CHECK_LT(left_key, left.arity());
  MPCQP_CHECK_GE(right_key, 0);
  MPCQP_CHECK_LT(right_key, right.arity());

  const int64_t in = left.TotalSize() + right.TotalSize();
  const int64_t threshold = std::max<int64_t>(
      1, static_cast<int64_t>(options.threshold_factor *
                              static_cast<double>(in) / p));

  // Degrees of every value that is heavy on either side.
  std::unordered_map<Value, std::pair<int64_t, int64_t>> heavy_degrees;
  if (options.metered_statistics) {
    for (const DistributedHeavyHitter& h :
         DetectHeavyHittersDistributed(cluster, left, left_key, threshold)) {
      heavy_degrees[h.value].first = h.count;
    }
    for (const DistributedHeavyHitter& h : DetectHeavyHittersDistributed(
             cluster, right, right_key, threshold)) {
      heavy_degrees[h.value].second = h.count;
    }
  } else {
    for (const HeavyHitter& h :
         FindHeavyHitters(left, left_key, threshold, &cluster.pool())) {
      heavy_degrees[h.value].first = h.count;
    }
    for (const HeavyHitter& h : FindHeavyHitters(right, right_key, threshold,
                                                 &cluster.pool())) {
      heavy_degrees[h.value].second = h.count;
    }
  }
  for (auto& [value, degrees] : heavy_degrees) {
    if (degrees.first == 0) {
      degrees.first = CountValue(left, left_key, value);
    }
    if (degrees.second == 0) {
      degrees.second = CountValue(right, right_key, value);
    }
  }

  // Allocate exclusive server slices proportional to each hitter's share
  // of the output, sqrt(dL * dR). Hitters with no partner side produce no
  // output; the degree statistics let us drop their tuples outright.
  std::unordered_map<Value, HeavyGrid> grids;
  {
    double total_weight = 0.0;
    for (const auto& [value, degrees] : heavy_degrees) {
      total_weight += std::sqrt(static_cast<double>(degrees.first) *
                                static_cast<double>(degrees.second));
    }
    int cursor = 0;
    for (const auto& [value, degrees] : heavy_degrees) {
      const auto [dl, dr] = degrees;
      if (dl == 0 || dr == 0) continue;
      const double weight =
          std::sqrt(static_cast<double>(dl) * static_cast<double>(dr));
      int budget = total_weight > 0
                       ? static_cast<int>(p * weight / total_weight)
                       : 1;
      budget = std::max(1, std::min(budget, p));
      HeavyGrid grid;
      grid.start = cursor;
      std::tie(grid.rows, grid.cols) = OptimalGridShape(dl, dr, budget);
      cursor = (cursor + grid.rows * grid.cols) % p;
      grids[value] = grid;
    }
  }

  const HashFunction hash = cluster.NewHashFunction();
  auto light_dest = [&](Value key) {
    return hash.Bucket(key, p);
  };
  // Heavy tuples spread over their grid by a hash of the tuple's source
  // coordinates rather than a sequential rng draw: routing runs
  // concurrently across source fragments, and a draw-per-visit would make
  // placement (and load) depend on visit order. `rng` seeds the hash, so
  // different rng states still yield different placements.
  const HashFunction left_place(rng.Next());
  const HashFunction right_place(rng.Next());
  auto place_key = [](const RouteContext& ctx) {
    return (static_cast<uint64_t>(ctx.src) << 42) ^
           static_cast<uint64_t>(ctx.row);
  };

  cluster.BeginRound("skew-aware join: shuffle");
  DistRelation left_parts = RouteWithContext(
      cluster, left,
      [&](const RouteContext& ctx, const Value* row,
          std::vector<int>& dests) {
        const Value key = row[left_key];
        const auto it = grids.find(key);
        if (it == grids.end()) {
          if (heavy_degrees.count(key) == 0) dests.push_back(light_dest(key));
          // Heavy but partnerless: dropped (cannot contribute output).
          return;
        }
        const HeavyGrid& g = it->second;
        const int r = left_place.Bucket(place_key(ctx), g.rows);
        for (int c = 0; c < g.cols; ++c) {
          dests.push_back((g.start + r * g.cols + c) % p);
        }
      },
      "");
  DistRelation right_parts = RouteWithContext(
      cluster, right,
      [&](const RouteContext& ctx, const Value* row,
          std::vector<int>& dests) {
        const Value key = row[right_key];
        const auto it = grids.find(key);
        if (it == grids.end()) {
          if (heavy_degrees.count(key) == 0) dests.push_back(light_dest(key));
          return;
        }
        const HeavyGrid& g = it->second;
        const int c = right_place.Bucket(place_key(ctx), g.cols);
        for (int r = 0; r < g.rows; ++r) {
          dests.push_back((g.start + r * g.cols + c) % p);
        }
      },
      "");
  cluster.EndRound();

  std::vector<Relation> outputs(p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    outputs[s] = RunLocalJoin(left_parts.fragment(s),
                              right_parts.fragment(s), {left_key},
                              {right_key}, LocalJoinAlgorithm::kHash);
  });
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
