#include "join/semi_join.h"

#include "common/check.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

enum class FilterKind { kSemi, kAnti };

DistRelation PartitionedFilter(Cluster& cluster, const DistRelation& left,
                               const DistRelation& right,
                               const std::vector<int>& left_keys,
                               const std::vector<int>& right_keys,
                               FilterKind kind) {
  MPCQP_CHECK_EQ(left_keys.size(), right_keys.size());
  MPCQP_CHECK(!left_keys.empty());
  const int p = cluster.num_servers();

  const HashFunction hash = cluster.NewHashFunction();
  cluster.BeginRound(kind == FilterKind::kSemi ? "distributed semijoin"
                                               : "distributed antijoin");
  // The filter side only needs its distinct keys: project + dedup locally
  // before shuffling (the classic semijoin-reduction trick).
  DistRelation right_keys_only(static_cast<int>(right_keys.size()), p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    right_keys_only.fragment(s) =
        Dedup(Project(right.fragment(s), right_keys));
  });
  std::vector<int> key_cols(right_keys.size());
  for (size_t i = 0; i < key_cols.size(); ++i) {
    key_cols[i] = static_cast<int>(i);
  }
  const DistRelation left_parts =
      HashPartition(cluster, left, left_keys, hash, "");
  const DistRelation right_parts =
      HashPartition(cluster, right_keys_only, key_cols, hash, "");
  cluster.EndRound();

  std::vector<Relation> outputs(p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    outputs[s] =
        kind == FilterKind::kSemi
            ? SemijoinLocal(left_parts.fragment(s), right_parts.fragment(s),
                            left_keys, key_cols)
            : AntijoinLocal(left_parts.fragment(s), right_parts.fragment(s),
                            left_keys, key_cols);
  });
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace

DistRelation DistributedSemijoin(Cluster& cluster, const DistRelation& left,
                                 const DistRelation& right,
                                 const std::vector<int>& left_keys,
                                 const std::vector<int>& right_keys) {
  return PartitionedFilter(cluster, left, right, left_keys, right_keys,
                           FilterKind::kSemi);
}

DistRelation DistributedAntijoin(Cluster& cluster, const DistRelation& left,
                                 const DistRelation& right,
                                 const std::vector<int>& left_keys,
                                 const std::vector<int>& right_keys) {
  return PartitionedFilter(cluster, left, right, left_keys, right_keys,
                           FilterKind::kAnti);
}

DistRelation BroadcastSemijoin(Cluster& cluster, const DistRelation& left,
                               const DistRelation& right,
                               const std::vector<int>& left_keys,
                               const std::vector<int>& right_keys) {
  MPCQP_CHECK_EQ(left_keys.size(), right_keys.size());
  MPCQP_CHECK(!left_keys.empty());
  const int p = cluster.num_servers();
  DistRelation right_keys_only(static_cast<int>(right_keys.size()), p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    right_keys_only.fragment(s) =
        Dedup(Project(right.fragment(s), right_keys));
  });
  const DistRelation everywhere =
      Broadcast(cluster, right_keys_only, "broadcast semijoin");
  std::vector<int> key_cols(right_keys.size());
  for (size_t i = 0; i < key_cols.size(); ++i) {
    key_cols[i] = static_cast<int>(i);
  }
  std::vector<Relation> outputs(p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    outputs[s] = SemijoinLocal(left.fragment(s), everywhere.fragment(s),
                               left_keys, key_cols);
  });
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
