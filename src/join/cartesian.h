#ifndef MPCQP_JOIN_CARTESIAN_H_
#define MPCQP_JOIN_CARTESIAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// The one-round Cartesian product algorithm of deck slide 28: arrange
// servers in a rows × cols grid; each left tuple goes to one random row
// (replicated across that row's servers), each right tuple to one random
// column. Every (l, r) pair meets at exactly one server.
//
// With the optimal grid shape the load is 2·sqrt(|R||S|/p), which is
// optimal; when |R| << |S| the shape degenerates to 1 × p, i.e. a
// broadcast of R.

// Grid shape minimizing |left_size|/rows + |right_size|/cols over integer
// grids with rows*cols <= p.
std::pair<int, int> OptimalGridShape(int64_t left_size, int64_t right_size,
                                     int p);

// Full product on all servers with the optimal grid. Output columns: left
// then right (all columns of both).
DistRelation CartesianProduct(Cluster& cluster, const DistRelation& left,
                              const DistRelation& right, Rng& rng);

// Product on an explicit server subset with an explicit grid; the grid
// occupies servers[0 .. rows*cols). Used by the skew-aware joins, which
// give each heavy hitter an exclusive slice of the cluster. The exchange
// merges into the caller's open round, if any.
//
// Rather than materializing output rows here, each grid server's received
// fragments are returned so the caller can run its own local join (the
// fragments land on the global DistRelations `left_out`/`right_out`).
void ScatterForProduct(Cluster& cluster, const DistRelation& left,
                       const DistRelation& right,
                       const std::vector<int>& servers, int rows, int cols,
                       Rng& rng, DistRelation* left_out,
                       DistRelation* right_out);

}  // namespace mpcqp

#endif  // MPCQP_JOIN_CARTESIAN_H_
