#ifndef MPCQP_JOIN_HEAVY_HITTERS_H_
#define MPCQP_JOIN_HEAVY_HITTERS_H_

#include <cstdint>
#include <vector>

#include "mpc/dist_relation.h"

namespace mpcqp {

class ThreadPool;

// A join value and its frequency in a relation column.
struct HeavyHitter {
  Value value = 0;
  int64_t count = 0;

  friend bool operator==(const HeavyHitter& a, const HeavyHitter& b) {
    return a.value == b.value && a.count == b.count;
  }
};

// Values of column `col` with frequency STRICTLY greater than `threshold`,
// sorted by value. The deck's threshold is IN/p (slide 29).
//
// Degree detection is exact here. In a deployment it is one cheap extra
// round (per-server partial counts of candidate values, each server
// holding at most p candidates above IN/p locally); the simulator computes
// it directly and the algorithms treat it as free statistics, matching the
// theory's assumption that degrees are known.
//
// Counting runs through the adaptive group-by engine over all fragments
// at once; a non-null `pool` morsel-parallelizes the scan (the result is
// identical — same determinism contract as the engine).
std::vector<HeavyHitter> FindHeavyHitters(const DistRelation& rel, int col,
                                          int64_t threshold,
                                          ThreadPool* pool = nullptr);

// Frequency of one value in a column (exact, across all fragments).
int64_t CountValue(const DistRelation& rel, int col, Value value);

}  // namespace mpcqp

#endif  // MPCQP_JOIN_HEAVY_HITTERS_H_
