#include "join/hash_join.h"

#include "common/check.h"
#include "common/trace.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "relation/relation_ops.h"

namespace mpcqp {

Relation RunLocalJoin(RelationView left, RelationView right,
                      const std::vector<int>& left_keys,
                      const std::vector<int>& right_keys,
                      LocalJoinAlgorithm local) {
  switch (local) {
    case LocalJoinAlgorithm::kHash:
      return HashJoinLocal(left, right, left_keys, right_keys);
    case LocalJoinAlgorithm::kSortMerge:
      return SortMergeJoinLocal(left, right, left_keys, right_keys);
    case LocalJoinAlgorithm::kNestedLoop:
      return NestedLoopJoinLocal(left, right, left_keys, right_keys);
  }
  MPCQP_CHECK(false) << "unknown local join algorithm";
  return Relation(0);
}

DistRelation ParallelHashJoin(Cluster& cluster, const DistRelation& left,
                              const DistRelation& right,
                              const std::vector<int>& left_keys,
                              const std::vector<int>& right_keys,
                              LocalJoinAlgorithm local) {
  MPCQP_CHECK_EQ(left_keys.size(), right_keys.size());
  MPCQP_CHECK(!left_keys.empty());
  MPCQP_TRACE_SCOPE("hash_join", "algorithm");
  const int p = cluster.num_servers();

  // Both shuffles share one hash function (same key, same server) and one
  // MPC round.
  const HashFunction hash = cluster.NewHashFunction();
  cluster.BeginRound("parallel hash join: shuffle");
  DistRelation left_parts =
      HashPartition(cluster, left, left_keys, hash, "");
  DistRelation right_parts =
      HashPartition(cluster, right, right_keys, hash, "");
  cluster.EndRound();

  // Local joins: one pool task per server, each writing its own slot.
  std::vector<Relation> outputs(p);
  ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    MPCQP_TRACE_SCOPE_ARG("local join", "compute", s);
    outputs[s] = RunLocalJoin(left_parts.fragment(s),
                              right_parts.fragment(s), left_keys,
                              right_keys, local);
  });
  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
