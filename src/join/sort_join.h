#ifndef MPCQP_JOIN_SORT_JOIN_H_
#define MPCQP_JOIN_SORT_JOIN_H_

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// The parallel sort-based join of deck slide 31 (Hu et al. '17 style):
//
//   1. Tag and union the two inputs, then PSRS-sort the union by
//      (join key, unique tiebreaker) — so runs of one key may split
//      across adjacent servers.
//   2. Keys entirely inside one server join locally.
//   3. Keys crossing a server boundary (at most p-1 of them) are re-routed
//      to per-key Cartesian grids, exactly like the heavy hitters of the
//      skew-aware join.
//
// Three rounds total (two for PSRS, one for the crossing keys); load
// O(sqrt(OUT/p) + IN/p) like the skew-aware hash join, with sortedness as
// a bonus. Single-column keys; output contract matches ParallelHashJoin.
DistRelation ParallelSortJoin(Cluster& cluster, const DistRelation& left,
                              const DistRelation& right, int left_key,
                              int right_key, Rng& rng);

}  // namespace mpcqp

#endif  // MPCQP_JOIN_SORT_JOIN_H_
