#ifndef MPCQP_JOIN_SKEW_JOIN_H_
#define MPCQP_JOIN_SKEW_JOIN_H_

#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"

namespace mpcqp {

// The skew-resilient two-way join of deck slides 29-30, combining the
// parallel hash join (light values) with per-heavy-hitter Cartesian
// product grids (heavy values):
//
//   1. A value of the join key is heavy if it occurs more than
//      threshold_factor * IN/p times in `left` or in `right`.
//   2. Light tuples are hash-partitioned as usual.
//   3. For each heavy value b, the tuples of left/right with key b join
//      via a Cartesian grid on an exclusive slice of servers, sized
//      proportionally to sqrt(dL(b) * dR(b)) (its output share).
//
// Everything is one exchange round; local joins follow. Load:
// O(sqrt(OUT/p) + IN/p), versus Θ(max-degree) for the plain hash join.
//
// Single-column join keys (the deck's setting). Output contract matches
// ParallelHashJoin: left columns then non-key right columns.
struct SkewJoinOptions {
  // Multiplies the IN/p heavy-hitter threshold (ablation knob A2).
  double threshold_factor = 1.0;
  // If true, heavy hitters are found by the metered two-round protocol of
  // mpc/stats.h (the cost a deployment actually pays) instead of the free
  // exact oracle the theory assumes. Adds 2·2 rounds (one detection per
  // side); the hitters found are identical. Partner-side degrees of the
  // detected hitters are still read exactly — in practice they piggyback
  // on the detection round at no extra asymptotic cost.
  bool metered_statistics = false;
};

DistRelation SkewAwareJoin(Cluster& cluster, const DistRelation& left,
                           const DistRelation& right, int left_key,
                           int right_key, Rng& rng,
                           const SkewJoinOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_JOIN_SKEW_JOIN_H_
