#include "join/sort_join.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "join/cartesian.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"
#include "sort/psrs.h"

namespace mpcqp {

namespace {

// Union-tuple layout: [key, side, tie, payload (original tuple, padded)].
constexpr int kKeyCol = 0;
constexpr int kSideCol = 1;
constexpr int kTieCol = 2;
constexpr int kPayloadCol = 3;
constexpr Value kSideLeft = 0;
constexpr Value kSideRight = 1;

// Extracts the side's original tuples from a union fragment, optionally
// restricted by a key predicate.
Relation ExtractSide(const Relation& frag, Value side, int arity,
                     const std::set<Value>* only_keys,
                     bool exclude_instead = false) {
  Relation out(arity);
  for (int64_t i = 0; i < frag.size(); ++i) {
    const Value* row = frag.row(i);
    if (row[kSideCol] != side) continue;
    if (only_keys != nullptr) {
      const bool present = only_keys->count(row[kKeyCol]) > 0;
      if (present == exclude_instead) continue;
    }
    out.AppendRow(row + kPayloadCol);
  }
  return out;
}

}  // namespace

DistRelation ParallelSortJoin(Cluster& cluster, const DistRelation& left,
                              const DistRelation& right, int left_key,
                              int right_key, Rng& rng) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_GE(left_key, 0);
  MPCQP_CHECK_LT(left_key, left.arity());
  MPCQP_CHECK_GE(right_key, 0);
  MPCQP_CHECK_LT(right_key, right.arity());

  const int pad_arity = std::max(left.arity(), right.arity());
  const int union_arity = kPayloadCol + pad_arity;

  // Local compute: tag + union the inputs (no communication; the tuples
  // stay on their servers). One pool task per server; the tie counter is
  // derived from (server, position), so it is identical for any thread
  // count.
  DistRelation tagged(union_arity, p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    std::vector<Value> row(union_arity, 0);
    Value tie = (static_cast<Value>(s) << 40);
    const Relation& lf = left.fragment(s);
    for (int64_t i = 0; i < lf.size(); ++i) {
      std::fill(row.begin(), row.end(), 0);
      row[kKeyCol] = lf.at(i, left_key);
      row[kSideCol] = kSideLeft;
      row[kTieCol] = tie++;
      std::copy(lf.row(i), lf.row(i) + left.arity(),
                row.begin() + kPayloadCol);
      tagged.fragment(s).AppendRow(row.data());
    }
    const Relation& rf = right.fragment(s);
    for (int64_t i = 0; i < rf.size(); ++i) {
      std::fill(row.begin(), row.end(), 0);
      row[kKeyCol] = rf.at(i, right_key);
      row[kSideCol] = kSideRight;
      row[kTieCol] = tie++;
      std::copy(rf.row(i), rf.row(i) + right.arity(),
                row.begin() + kPayloadCol);
      tagged.fragment(s).AppendRow(row.data());
    }
  });

  // Rounds 1-2: PSRS by (key, tie) — the tiebreaker lets one key's run
  // split across servers instead of melting one server under skew.
  PsrsOptions options;
  options.key_cols = {kKeyCol, kTieCol};
  PsrsResult sorted = PsrsSort(cluster, tagged, options);

  // Keys crossing a fragment boundary: last key of fragment s == first key
  // of fragment s' (next non-empty). In a deployment each server announces
  // its boundary keys (O(p) values); negligible and not metered.
  std::set<Value> crossing;
  Value prev_last = 0;
  bool have_prev = false;
  for (int s = 0; s < p; ++s) {
    const Relation& frag = sorted.sorted.fragment(s);
    if (frag.empty()) continue;
    const Value first = frag.at(0, kKeyCol);
    const Value last = frag.at(frag.size() - 1, kKeyCol);
    if (have_prev && prev_last == first) crossing.insert(first);
    prev_last = last;
    have_prev = true;
  }

  // Local join of non-crossing keys (one pool task per server).
  std::vector<Relation> outputs(p);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    const Relation& frag = sorted.sorted.fragment(s);
    const Relation lf = ExtractSide(frag, kSideLeft, left.arity(), &crossing,
                                    /*exclude_instead=*/true);
    const Relation rf = ExtractSide(frag, kSideRight, right.arity(),
                                    &crossing, /*exclude_instead=*/true);
    outputs[s] = SortMergeJoinLocal(lf, rf, {left_key}, {right_key});
  });

  // Round 3: crossing keys via per-key Cartesian grids, sized by their
  // output share (as in the skew-aware join).
  if (!crossing.empty()) {
    std::unordered_map<Value, std::pair<int64_t, int64_t>> degrees;
    for (int s = 0; s < p; ++s) {
      const Relation& frag = sorted.sorted.fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        const Value key = frag.at(i, kKeyCol);
        if (crossing.count(key) == 0) continue;
        auto& d = degrees[key];
        (frag.at(i, kSideCol) == kSideLeft ? d.first : d.second)++;
      }
    }
    double total_weight = 0.0;
    for (const auto& [key, d] : degrees) {
      total_weight += std::sqrt(static_cast<double>(d.first) *
                                static_cast<double>(d.second));
    }
    struct Grid {
      int start;
      int rows;
      int cols;
    };
    std::unordered_map<Value, Grid> grids;
    int cursor = 0;
    for (const auto& [key, d] : degrees) {
      if (d.first == 0 || d.second == 0) continue;
      const double weight = std::sqrt(static_cast<double>(d.first) *
                                      static_cast<double>(d.second));
      int budget =
          total_weight > 0 ? static_cast<int>(p * weight / total_weight) : 1;
      budget = std::max(1, std::min(budget, p));
      const auto [rows, cols] = OptimalGridShape(d.first, d.second, budget);
      grids[key] = {cursor, rows, cols};
      cursor = (cursor + rows * cols) % p;
    }

    // Grid placement hashes the tuple's unique tie value (seeded by `rng`)
    // instead of drawing sequentially: routing runs concurrently across
    // source fragments, and placement must not depend on visit order.
    const HashFunction place(rng.Next());
    DistRelation routed = Route(
        cluster, sorted.sorted,
        [&](const Value* urow, std::vector<int>& dests) {
          const auto it = grids.find(urow[kKeyCol]);
          if (it == grids.end()) return;
          const Grid& g = it->second;
          if (urow[kSideCol] == kSideLeft) {
            const int r = place.Bucket(urow[kTieCol], g.rows);
            for (int c = 0; c < g.cols; ++c) {
              dests.push_back((g.start + r * g.cols + c) % p);
            }
          } else {
            const int c = place.Bucket(urow[kTieCol], g.cols);
            for (int r = 0; r < g.rows; ++r) {
              dests.push_back((g.start + r * g.cols + c) % p);
            }
          }
        },
        "sort join: crossing keys");
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      const Relation& frag = routed.fragment(s);
      const Relation lf =
          ExtractSide(frag, kSideLeft, left.arity(), nullptr);
      const Relation rf =
          ExtractSide(frag, kSideRight, right.arity(), nullptr);
      const Relation joined =
          SortMergeJoinLocal(lf, rf, {left_key}, {right_key});
      outputs[s].Append(joined);
    });
  }

  return DistRelation::FromFragments(std::move(outputs));
}

}  // namespace mpcqp
