#ifndef MPCQP_COMMON_SIMD_H_
#define MPCQP_COMMON_SIMD_H_

#include <cstdint>
#include <string>

// Runtime-dispatched SIMD kernels for the columnar hot loops.
//
// The columnar data plane (PR 9) turned the hottest loops — route hashing,
// bucket routing, predicate filters, key gathers, group-by scans — into
// contiguous single-column passes. This library supplies explicitly
// vectorized implementations of exactly those loop shapes, behind a
// one-time runtime ISA dispatch:
//
//   - the instruction-set level is detected once at first use (CPUID via
//     __builtin_cpu_supports on x86; NEON is baseline on aarch64),
//   - the `MPCQP_SIMD` environment variable (scalar|sse4|avx2|neon) caps
//     the dispatched level below what the hardware supports,
//   - the CMake cache variable `MPCQP_SIMD_LEVEL` caps it at compile time
//     (and compiles the higher-ISA code paths out entirely), which is how
//     CI keeps the portable fallback green on machines without AVX2.
//
// Determinism contract: every kernel is BIT-IDENTICAL to its scalar
// reference for every input. All operations are exact integer arithmetic
// (splitmix64 mixing is element-wise, filters emit match indices in
// ascending order, gathers and histograms are pure data movement), so the
// dispatched level can never change outputs, CostReports, adaptive
// strategy choices, or plan goldens — only wall time. The determinism
// suite locks this with a {scalar, best-detected} ISA axis on top of the
// existing thread-count/morsel/layout sweeps.
//
// Adding a kernel (see DESIGN.md "SIMD kernels"): write the scalar
// reference, add a function pointer to KernelTable, implement per-ISA
// variants guarded by MPCQP_SIMD_LEVEL_CAP, and extend simd_test's
// cross-level parity sweep plus bench_simd's embedded-baseline gate.

namespace mpcqp::simd {

// Instruction-set levels. Numeric values are ranks: a level is eligible
// when its rank is <= the detected hardware's rank, the compile-time
// MPCQP_SIMD_LEVEL_CAP, and the MPCQP_SIMD env cap. The two architecture
// families never coexist on one box, so the cross-family ordering only
// matters for cap semantics (capping at "sse4" on aarch64 yields scalar).
enum class IsaLevel {
  kScalar = 0,
  kSse4 = 1,  // x86 SSE4.2 (128-bit lanes).
  kNeon = 2,  // aarch64 NEON (128-bit lanes; baseline on AArch64).
  kAvx2 = 3,  // x86 AVX2 (256-bit lanes).
};

const char* IsaLevelName(IsaLevel level);
// Parses "scalar" / "sse4" / "avx2" / "neon"; returns false otherwise.
bool ParseIsaLevel(const std::string& text, IsaLevel* out);

// The best level this hardware supports (ignoring every cap). Detected
// once; constant for the process lifetime.
IsaLevel DetectedIsa();

// The level the kernels below actually run at: DetectedIsa() capped by
// the compile-time MPCQP_SIMD_LEVEL and the MPCQP_SIMD env var (both read
// once, at first kernel use). Reported by --stats and BENCH_*.json so
// measurements are comparable across boxes.
IsaLevel DispatchedIsa();

// ---- Kernels ----
// All counts may be zero; tails shorter than one SIMD lane are handled
// inside each kernel. Input and output spans must not overlap.

// out[i] = SplitMix64(values[i] ^ whitening) — the exchange route pass's
// hash loop (HashFunction::HashMany with whitening = the seed-derived
// xor constant).
void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
              uint64_t* out);

// out[i] = high 64 bits of (SplitMix64(values[i] ^ whitening) *
// num_buckets) — the multiply-shift bucket reduce of
// HashFunction::BucketMany. num_buckets must be in [1, 2^31).
void BucketMany(const uint64_t* values, int64_t count, uint64_t whitening,
                int num_buckets, int32_t* out);

// out[i] = SplitMix64(seed ^ SplitMix64(keys[i])) & mask — the group-by
// engine's single-column key hash (HashKey over width-1 keys), fused into
// one pass over the compacted key column.
void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                   uint64_t mask, uint64_t* out);

// Number of i in [0, count) with lo <= values[i] <= hi (unsigned
// comparisons) — the counting pass of SelectRange.
int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                     uint64_t hi);

// Writes index_base + i, in ascending i order, for every i in [0, count)
// with lo <= values[i] <= hi; returns the number written. `capacity` MUST
// be the exact match count (from CountInRange over the same range): the
// vector path compresses matches with full-width stores while more than
// one vector of slack remains and finishes scalar, so it never writes
// past out + capacity.
int64_t FillInRange(const uint64_t* values, int64_t count, int64_t index_base,
                    uint64_t lo, uint64_t hi, int64_t* out, int64_t capacity);

// out[i] = base[i * stride] — the strided key-column gather behind
// GatherKeyColumn. stride >= 1 (stride 1 is a plain copy).
void GatherStride(const uint64_t* base, int64_t stride, int64_t count,
                  uint64_t* out);

// out[i] = base[indices[i] * stride + offset] — the selection-vector
// gather (GatherKeyColumn over a selection view).
void GatherIndexed(const uint64_t* base, const int64_t* indices,
                   int64_t count, int64_t stride, int64_t offset,
                   uint64_t* out);

// counts[hashes[i] >> (64 - bits)] += 1 for every i — the radix top-byte
// histogram of the group-by engine (bits = 8) and the KeyIndex partition
// count (bits = part_bits). bits must be in [1, 8]; counts has (1 << bits)
// entries and is accumulated into, not overwritten. Interleaved
// sub-histograms break the store-to-load dependency chain on repeated
// buckets; the final per-bucket sums are order-independent, so the result
// equals the naive sequential loop exactly.
void HistogramTopBits(const uint64_t* hashes, int64_t count, int bits,
                      int64_t* counts);

// Test/bench hook: forces the dispatched level for the current process
// until destruction (clamped to what the hardware and compile cap allow —
// requesting more than DetectedIsa() is safe and clamps down). The
// constructor forces dispatch resolution first, so a concurrent
// first-use Table() call can never publish the default table over an
// installed override. Kernel calls from unrelated threads during the
// override's lifetime are safe (every level is bit-identical) but run at
// the overridden level, so install before spawning parallel work and
// restore after it drains when per-level timing matters. The determinism
// suite's ISA axis and bench_simd's per-level timings use this;
// production code never should.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(IsaLevel level);
  ~ScopedIsaOverride();

  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  const void* prev_;  // The KernelTable in effect before the override.
};

}  // namespace mpcqp::simd

#endif  // MPCQP_COMMON_SIMD_H_
