#ifndef MPCQP_COMMON_FLAGS_H_
#define MPCQP_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace mpcqp {

// Small table-driven command-line flag parser for the tools and benches:
// register each flag once with its destination, range, and help line, then
// Parse() handles both the "--flag value" and "--flag=value" spellings,
// checked numeric parsing (common/parse.h), repeated NAME=VALUE flags, and
// unknown-flag errors. Help() renders the registered table, so the usage
// text can never drift from the flags that actually parse.
class FlagSet {
 public:
  // Value-taking flags. `alias` is an optional short spelling ("-p").
  void String(const std::string& name, std::string* out,
              const std::string& help, const std::string& alias = "");
  void Int(const std::string& name, int* out, int min_value, int max_value,
           const std::string& help, const std::string& alias = "");
  void Int64(const std::string& name, int64_t* out, int64_t min_value,
             int64_t max_value, const std::string& help);
  void Uint64(const std::string& name, uint64_t* out, const std::string& help);
  // Requires value >= min_value.
  void Double(const std::string& name, double* out, double min_value,
              const std::string& help);
  // "--flag on|off" (or true/false/1/0, via ParseBool).
  void Bool(const std::string& name, bool* out, const std::string& help);
  // Valueless switch: "--flag" sets *out = true.
  void Switch(const std::string& name, bool* out, const std::string& help);
  // Repeated "--flag NAME=VALUE"; each occurrence inserts into `out`
  // (later occurrences of the same NAME overwrite).
  void KeyValue(const std::string& name,
                std::map<std::string, std::string>* out,
                const std::string& help);

  // Parses argv[1..argc). On the first problem returns an
  // InvalidArgumentError naming the flag; `out` state already assigned by
  // earlier flags is left in place (callers exit on error anyway).
  Status Parse(int argc, char** argv) const;

  // One "  --name VALUE  help" line per registered flag, in registration
  // order (the generated body of a usage message).
  std::string Help() const;

 private:
  struct Flag {
    std::string name;   // Without the leading dashes.
    std::string alias;  // Optional alternate spelling, with dashes ("-p").
    bool takes_value = true;
    std::string value_hint;  // "N", "FILE", ... for the help line.
    std::string help;
    std::function<Status(const std::string&)> apply;
  };

  void Add(Flag flag);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
};

// Splits "NAME=VALUE" at the first '='; returns false if there is none.
bool SplitKeyValue(const std::string& arg, std::string* key,
                   std::string* value);

}  // namespace mpcqp

#endif  // MPCQP_COMMON_FLAGS_H_
