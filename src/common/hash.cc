#include "common/hash.h"

#include "common/check.h"
#include "common/simd.h"

namespace mpcqp {

HashFunction::HashFunction(uint64_t seed)
    : seed_(seed), xor_(SplitMix64(seed ^ 0xa0761d6478bd642fULL)) {}

uint64_t HashFunction::Hash(uint64_t value) const {
  return SplitMix64(value ^ xor_);
}

int HashFunction::Bucket(uint64_t value, int num_buckets) const {
  MPCQP_CHECK_GT(num_buckets, 0);
  // Multiply-shift range reduction avoids modulo bias on small ranges.
  return static_cast<int>(
      (static_cast<unsigned __int128>(Hash(value)) * num_buckets) >> 64);
}

void HashFunction::HashMany(const uint64_t* values, int64_t count,
                            uint64_t* out) const {
  simd::HashMany(values, count, xor_, out);
}

void HashFunction::BucketMany(const uint64_t* values, int64_t count,
                              int num_buckets, int32_t* out) const {
  MPCQP_CHECK_GT(num_buckets, 0);
  simd::BucketMany(values, count, xor_, num_buckets, out);
}

uint64_t HashFunction::HashSpan(const uint64_t* values, int count) const {
  uint64_t acc = xor_;
  for (int i = 0; i < count; ++i) {
    acc = SplitMix64(acc ^ values[i]);
  }
  return acc;
}

HashFamily::HashFamily(uint64_t base_seed, int count) {
  MPCQP_CHECK_GE(count, 0);
  functions_.reserve(count);
  for (int i = 0; i < count; ++i) {
    functions_.emplace_back(
        SplitMix64(base_seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
  }
}

const HashFunction& HashFamily::at(int index) const {
  MPCQP_CHECK_GE(index, 0);
  MPCQP_CHECK_LT(index, size());
  return functions_[index];
}

}  // namespace mpcqp
