#include "common/hash.h"

#include "common/check.h"

namespace mpcqp {

namespace {

// splitmix64 finalizer; full-avalanche 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HashFunction::HashFunction(uint64_t seed)
    : seed_(seed), xor_(Mix64(seed ^ 0xa0761d6478bd642fULL)) {}

uint64_t HashFunction::Hash(uint64_t value) const {
  return Mix64(value ^ xor_);
}

int HashFunction::Bucket(uint64_t value, int num_buckets) const {
  MPCQP_CHECK_GT(num_buckets, 0);
  // Multiply-shift range reduction avoids modulo bias on small ranges.
  return static_cast<int>(
      (static_cast<unsigned __int128>(Hash(value)) * num_buckets) >> 64);
}

void HashFunction::HashMany(const uint64_t* values, int64_t count,
                            uint64_t* out) const {
  const uint64_t x = xor_;
  for (int64_t i = 0; i < count; ++i) {
    out[i] = Mix64(values[i] ^ x);
  }
}

void HashFunction::BucketMany(const uint64_t* values, int64_t count,
                              int num_buckets, int32_t* out) const {
  MPCQP_CHECK_GT(num_buckets, 0);
  const uint64_t x = xor_;
  const auto p = static_cast<unsigned __int128>(num_buckets);
  for (int64_t i = 0; i < count; ++i) {
    out[i] = static_cast<int32_t>((Mix64(values[i] ^ x) * p) >> 64);
  }
}

uint64_t HashFunction::HashSpan(const uint64_t* values, int count) const {
  uint64_t acc = xor_;
  for (int i = 0; i < count; ++i) {
    acc = Mix64(acc ^ values[i]);
  }
  return acc;
}

HashFamily::HashFamily(uint64_t base_seed, int count) {
  MPCQP_CHECK_GE(count, 0);
  functions_.reserve(count);
  for (int i = 0; i < count; ++i) {
    functions_.emplace_back(Mix64(base_seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
  }
}

const HashFunction& HashFamily::at(int index) const {
  MPCQP_CHECK_GE(index, 0);
  MPCQP_CHECK_LT(index, size());
  return functions_[index];
}

}  // namespace mpcqp
