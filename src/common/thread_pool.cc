#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/parse.h"
#include "common/trace.h"

namespace mpcqp {

namespace {

thread_local int tls_worker_index = -1;
// Open parallel-loop bodies on this thread (nested loops stack). The
// thread-scoped counterpart of the old pool-wide counter: with many
// clusters sharing one pool, "am I inside a parallel region" must be a
// property of the calling thread, not of the pool.
thread_local int tls_loop_depth = 0;

// RAII bump of the calling thread's loop depth; exception-safe.
class ScopedLoopDepth {
 public:
  ScopedLoopDepth() { ++tls_loop_depth; }
  ~ScopedLoopDepth() { --tls_loop_depth; }

  ScopedLoopDepth(const ScopedLoopDepth&) = delete;
  ScopedLoopDepth& operator=(const ScopedLoopDepth&) = delete;
};

// Parallel loops never enqueue more helpers than there are spare cores:
// the caller already occupies one, and on an oversubscribed pool (threads
// > cores) every extra helper is pure context-switch overhead. This caps
// the execution fan-out only — iteration/chunk decomposition and results
// are identical for every thread count. MPCQP_LOOP_HELPERS overrides the
// detected count (the concurrency test binaries use it to force the
// multi-participant steal path even on single-core machines).
int64_t MaxLoopHelpers() {
  static const int64_t spare = [] {
    if (const char* env = std::getenv("MPCQP_LOOP_HELPERS")) {
      const auto parsed = ParseInt64InRange(env, 0, INT64_MAX);
      if (parsed.ok()) return *parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? INT64_MAX : static_cast<int64_t>(hw) - 1;
  }();
  return spare;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::current_worker_index() { return tls_worker_index; }

bool ThreadPool::CallingThreadInParallelRegion() {
  return tls_loop_depth > 0;
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPCQP_CHECK(!stopping_) << "task submitted to a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  if (num_threads_ <= 1) {
    (*packaged)();
    return result;
  }
  // Charge the task to the submitter's query even though it runs on a
  // shared worker (see the class comment on ExecContext propagation).
  const ExecContext* context = CurrentExecContext();
  Enqueue([packaged, context] {
    ExecContextScope scope(context);
    (*packaged)();
  });
  return result;
}

void ThreadPool::WorkerMain(int index) {
  tls_worker_index = index;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Stopping and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  MPCQP_TRACE_SCOPE_ARG("parallel_for", "pool", n);
  // The region is marked active on the inline paths too, so misuse (e.g.
  // drawing a new hash function from a loop body) is caught at every
  // thread count, not only when it would actually race.
  ScopedLoopDepth in_region;
  if (num_threads_ <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Participants (the caller plus enqueued helper tasks) claim iterations
  // from a shared counter; the loop is done when every claimed iteration
  // has finished, not merely when the counter is exhausted.
  struct LoopState {
    std::atomic<int64_t> next{0};
    int64_t n = 0;
    const std::function<void(int64_t)>* body = nullptr;
    const ExecContext* context = nullptr;  // The issuing query's context.
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t done = 0;          // Guarded by mu.
    int64_t error_index = -1;  // Guarded by mu.
    std::exception_ptr error;  // Guarded by mu.
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->body = &body;
  state->context = CurrentExecContext();

  const auto drain = [](const std::shared_ptr<LoopState>& s) {
    ExecContextScope context_scope(s->context);
    ScopedLoopDepth in_body;
    int64_t finished = 0;
    while (true) {
      const int64_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) break;
      try {
        (*s->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (s->error_index < 0 || i < s->error_index) {
          s->error_index = i;
          s->error = std::current_exception();
        }
      }
      ++finished;
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->done += finished;
      if (s->done == s->n) s->done_cv.notify_all();
    }
  };

  const int64_t helpers = std::min(
      {static_cast<int64_t>(num_threads_) - 1, n - 1, MaxLoopHelpers()});
  for (int64_t h = 0; h < helpers; ++h) {
    Enqueue([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::ParallelForGrained(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  MPCQP_CHECK_GE(grain, 1);
  if (n <= 0) return;
  MPCQP_TRACE_SCOPE_ARG("parallel_for_grained", "pool", n);
  ScopedLoopDepth in_region;
  const int64_t chunks = (n + grain - 1) / grain;
  if (num_threads_ <= 1 || chunks == 1) {
    for (int64_t c = 0; c < chunks; ++c) {
      body(c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }

  // Each participant owns a contiguous block of chunks in its own deque:
  // deque i holds [i * chunks / P, (i+1) * chunks / P). Owners pop from
  // the FRONT (sequential chunk order — prefetch-friendly) and thieves
  // steal from the BACK, so an owner and a thief only collide on the last
  // chunk of a deque. The deques are tiny (two indices), so a per-deque
  // mutex costs one uncontended lock per claimed chunk — noise at morsel
  // granularity — and keeps the pool trivially TSan-clean.
  struct Deque {
    std::mutex mu;
    int64_t head = 0;  // Next chunk the owner takes.
    int64_t tail = 0;  // One past the last unclaimed chunk.
  };
  struct LoopState {
    int64_t n = 0;
    int64_t grain = 0;
    int64_t chunks = 0;
    int participants = 0;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    const ExecContext* context = nullptr;  // The issuing query's context.
    std::vector<Deque> deques;
    std::atomic<int> next_slot{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t done_chunks = 0;    // Guarded by mu.
    int64_t error_begin = -1;   // Guarded by mu.
    std::exception_ptr error;   // Guarded by mu.
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->chunks = chunks;
  state->participants = static_cast<int>(std::min(
      {static_cast<int64_t>(num_threads_), chunks, MaxLoopHelpers() + 1}));
  if (state->participants <= 1) {
    // The core cap squeezed a multi-threaded pool down to one participant
    // (threads > cores). Unlike the threads==1 serial path above, this
    // pool promises the multi-threaded exception contract: every chunk
    // runs, and the surviving exception is the lowest-begin one — which
    // in ascending chunk order is simply the first.
    std::exception_ptr error;
    for (int64_t c = 0; c < chunks; ++c) {
      try {
        body(c * grain, std::min(n, (c + 1) * grain));
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  state->body = &body;
  state->context = CurrentExecContext();
  state->deques = std::vector<Deque>(state->participants);
  for (int i = 0; i < state->participants; ++i) {
    state->deques[i].head = i * chunks / state->participants;
    state->deques[i].tail = (i + 1) * chunks / state->participants;
  }

  const auto drain = [](const std::shared_ptr<LoopState>& s) {
    ExecContextScope context_scope(s->context);
    ScopedLoopDepth in_body;
    const int slot = s->next_slot.fetch_add(1, std::memory_order_relaxed);
    const int P = s->participants;
    int64_t finished = 0;
    const auto run_chunk = [&](int64_t c) {
      const int64_t begin = c * s->grain;
      const int64_t end = std::min(s->n, begin + s->grain);
      try {
        (*s->body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (s->error_begin < 0 || begin < s->error_begin) {
          s->error_begin = begin;
          s->error = std::current_exception();
        }
      }
      ++finished;
    };
    // Own deque first, front to back.
    Deque& mine = s->deques[slot % P];
    while (true) {
      int64_t c;
      {
        std::lock_guard<std::mutex> lock(mine.mu);
        if (mine.head >= mine.tail) break;
        c = mine.head++;
      }
      run_chunk(c);
    }
    // Then steal from the back of the other deques until nothing is left.
    for (int offset = 1; offset < P; ++offset) {
      Deque& victim = s->deques[(slot + offset) % P];
      while (true) {
        int64_t c;
        {
          std::lock_guard<std::mutex> lock(victim.mu);
          if (victim.head >= victim.tail) break;
          c = --victim.tail;
        }
        run_chunk(c);
      }
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->done_chunks += finished;
      if (s->done_chunks == s->chunks) s->done_cv.notify_all();
    }
  };

  for (int h = 0; h < state->participants - 1; ++h) {
    Enqueue([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&state] { return state->done_chunks == state->chunks; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::shared_ptr<ThreadPool>& RegistrySlot() {
  static std::shared_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

std::shared_ptr<ThreadPool> ExecutorRegistry::Shared(int num_threads) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::shared_ptr<ThreadPool>& slot = RegistrySlot();
  if (!slot) slot = std::make_shared<ThreadPool>(num_threads);
  return slot;
}

std::shared_ptr<ThreadPool> ExecutorRegistry::SharedIfCreated() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return RegistrySlot();
}

void ExecutorRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  RegistrySlot().reset();
}

}  // namespace mpcqp
