#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/trace.h"

namespace mpcqp {

namespace {

thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::current_worker_index() { return tls_worker_index; }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPCQP_CHECK(!stopping_) << "task submitted to a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  if (num_threads_ <= 1) {
    (*packaged)();
    return result;
  }
  Enqueue([packaged] { (*packaged)(); });
  return result;
}

void ThreadPool::WorkerMain(int index) {
  tls_worker_index = index;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Stopping and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// RAII bump of an atomic counter; exception-safe.
class ScopedCount {
 public:
  explicit ScopedCount(std::atomic<int>& counter) : counter_(counter) {
    counter_.fetch_add(1, std::memory_order_acq_rel);
  }
  ~ScopedCount() { counter_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<int>& counter_;
};

}  // namespace

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  MPCQP_TRACE_SCOPE_ARG("parallel_for", "pool", n);
  // The region is marked active on the inline paths too, so misuse (e.g.
  // drawing a new hash function from a loop body) is caught at every
  // thread count, not only when it would actually race.
  ScopedCount in_region(active_parallel_);
  if (num_threads_ <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Participants (the caller plus enqueued helper tasks) claim iterations
  // from a shared counter; the loop is done when every claimed iteration
  // has finished, not merely when the counter is exhausted.
  struct LoopState {
    std::atomic<int64_t> next{0};
    int64_t n = 0;
    const std::function<void(int64_t)>* body = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t done = 0;          // Guarded by mu.
    int64_t error_index = -1;  // Guarded by mu.
    std::exception_ptr error;  // Guarded by mu.
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->body = &body;

  const auto drain = [](const std::shared_ptr<LoopState>& s) {
    int64_t finished = 0;
    while (true) {
      const int64_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) break;
      try {
        (*s->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (s->error_index < 0 || i < s->error_index) {
          s->error_index = i;
          s->error = std::current_exception();
        }
      }
      ++finished;
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->done += finished;
      if (s->done == s->n) s->done_cv.notify_all();
    }
  };

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(num_threads_) - 1, n - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    Enqueue([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace mpcqp
