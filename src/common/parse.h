#ifndef MPCQP_COMMON_PARSE_H_
#define MPCQP_COMMON_PARSE_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace mpcqp {

// Checked numeric parsing for command-line flags and text fields.
//
// The std::atoi family silently turns garbage into 0 and wraps on
// overflow; every flag and generator-spec parse in the repo goes through
// these helpers instead. All of them require the ENTIRE string to be a
// valid literal (no leading/trailing junk, no whitespace, empty input is
// an error) and return InvalidArgument naming the offending text
// otherwise.

// Unsigned decimal; rejects sign characters. Overflow is an error, not a
// wrap.
StatusOr<uint64_t> ParseUint64(const std::string& text);

// Optional leading '-'; overflow (including INT64_MIN edge) is an error.
StatusOr<int64_t> ParseInt64(const std::string& text);

// ParseInt64 plus an inclusive range check.
StatusOr<int64_t> ParseInt64InRange(const std::string& text, int64_t min_value,
                                    int64_t max_value);

// Narrowing convenience for int-typed flags (servers, threads, fan-out).
StatusOr<int> ParseIntInRange(const std::string& text, int min_value,
                              int max_value);

// Finite decimal floating point (strtod grammar); inf/nan and partial
// parses are errors.
StatusOr<double> ParseDouble(const std::string& text);

// Boolean flag value: accepts on/off, true/false, 1/0 (case-insensitive);
// anything else is InvalidArgument.
StatusOr<bool> ParseBool(const std::string& text);

}  // namespace mpcqp

#endif  // MPCQP_COMMON_PARSE_H_
