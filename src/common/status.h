#ifndef MPCQP_COMMON_STATUS_H_
#define MPCQP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mpcqp {

// Error codes used across the library. Modeled on the usual canonical set,
// trimmed to what a query-processing library needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kUnavailable = 8,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

// A lightweight error-or-success result. The library is built without
// exceptions (per the style guide); fallible operations return Status or
// StatusOr<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);

}  // namespace mpcqp

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define MPCQP_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::mpcqp::Status _status = (expr);                 \
    if (!_status.ok()) return _status;                \
  } while (false)

#endif  // MPCQP_COMMON_STATUS_H_
