#ifndef MPCQP_COMMON_RANDOM_H_
#define MPCQP_COMMON_RANDOM_H_

#include <cstdint>

namespace mpcqp {

// Deterministic, seedable PRNG (xoshiro256**). All randomized components of
// the library draw from an explicit Rng so that simulations and tests are
// reproducible; nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound). bound > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

 private:
  uint64_t state_[4];
};

}  // namespace mpcqp

#endif  // MPCQP_COMMON_RANDOM_H_
