#ifndef MPCQP_COMMON_HASH_H_
#define MPCQP_COMMON_HASH_H_

#include <cstdint>
#include <vector>

namespace mpcqp {

// The splitmix64 finalizer: a full-avalanche 64-bit mixer. This is THE
// shared definition — HashFunction, FlatCounter, the group-by engine's key
// hash, and the SIMD scalar fallbacks all mix with exactly these constants,
// and the vectorized kernels in common/simd.cc must stay bit-identical to
// this function. Keeping one copy means the constants can never drift.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A seeded family of 64-bit hash functions over 64-bit values, used to
// partition tuples across servers. Different seeds give (empirically)
// independent functions, which the HyperCube algorithm requires, one per
// query variable.
//
// The mixer is the splitmix64 finalizer, which has full avalanche; keys are
// first xored with a seed-derived constant so distinct seeds decorrelate.
class HashFunction {
 public:
  explicit HashFunction(uint64_t seed);

  // Hashes a single value.
  uint64_t Hash(uint64_t value) const;

  // Hashes a value into a bucket in [0, num_buckets). num_buckets > 0.
  int Bucket(uint64_t value, int num_buckets) const;

  // Hashes a composite key (e.g. a multi-attribute join key).
  uint64_t HashSpan(const uint64_t* values, int count) const;

  // Batched spans: out[i] == Hash(values[i]) / Bucket(values[i], ...) for
  // every i in [0, count). One out-of-line call per span instead of one
  // per value, and the splitmix64 mix runs as a straight element-wise
  // loop the compiler can vectorize — this is the route pass's hot loop.
  void HashMany(const uint64_t* values, int64_t count, uint64_t* out) const;
  void BucketMany(const uint64_t* values, int64_t count, int num_buckets,
                  int32_t* out) const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  uint64_t xor_;  // Seed-derived whitening constant.
};

// A family of independent hash functions indexed by dimension; HyperCube
// uses function i for query variable i.
class HashFamily {
 public:
  // Creates `count` functions derived from `base_seed`.
  HashFamily(uint64_t base_seed, int count);

  const HashFunction& at(int index) const;
  int size() const { return static_cast<int>(functions_.size()); }

 private:
  std::vector<HashFunction> functions_;
};

}  // namespace mpcqp

#endif  // MPCQP_COMMON_HASH_H_
