#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/hash.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MPCQP_SIMD_X86 1
#else
#define MPCQP_SIMD_X86 0
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define MPCQP_SIMD_NEON 1
#else
#define MPCQP_SIMD_NEON 0
#endif

// Compile-time cap (IsaLevel rank): 0 = scalar only, 1 adds SSE4.2,
// 2 adds NEON, 3 adds AVX2. Set by the CMake cache variable
// MPCQP_SIMD_LEVEL; defaults to uncapped. Capped sections are compiled
// out entirely, so a scalar-capped build carries no vector code at all.
#ifndef MPCQP_SIMD_LEVEL_CAP
#define MPCQP_SIMD_LEVEL_CAP 3
#endif

// The build intentionally has no global -mavx2/-msse4.2 flags (the binary
// must run on any x86-64); every vector function instead carries a
// function-level target attribute, and its helpers are force-inlined into
// it so the whole kernel compiles under one target.
#if MPCQP_SIMD_X86
#define MPCQP_TARGET_SSE4 __attribute__((target("sse4.2")))
#define MPCQP_TARGET_AVX2 __attribute__((target("avx2")))
#define MPCQP_TARGET_SSE4_INLINE \
  __attribute__((target("sse4.2"), always_inline)) inline
#define MPCQP_TARGET_AVX2_INLINE \
  __attribute__((target("avx2"), always_inline)) inline
#endif

namespace mpcqp::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These ARE the semantics: every vector variant
// below must be bit-identical to them for every input, which is what lets
// the dispatcher swap levels without perturbing outputs or CostReports.
// ---------------------------------------------------------------------------

namespace scalar {

void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
              uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = SplitMix64(values[i] ^ whitening);
  }
}

void BucketMany(const uint64_t* values, int64_t count, uint64_t whitening,
                int num_buckets, int32_t* out) {
  const auto p = static_cast<unsigned __int128>(num_buckets);
  for (int64_t i = 0; i < count; ++i) {
    out[i] =
        static_cast<int32_t>((SplitMix64(values[i] ^ whitening) * p) >> 64);
  }
}

void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                   uint64_t mask, uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = SplitMix64(seed ^ SplitMix64(keys[i])) & mask;
  }
}

int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                     uint64_t hi) {
  int64_t hits = 0;
  for (int64_t i = 0; i < count; ++i) {
    hits += values[i] >= lo && values[i] <= hi;
  }
  return hits;
}

int64_t FillInRange(const uint64_t* values, int64_t count, int64_t index_base,
                    uint64_t lo, uint64_t hi, int64_t* out, int64_t capacity) {
  (void)capacity;  // The scalar path only ever writes true matches.
  int64_t written = 0;
  for (int64_t i = 0; i < count; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      out[written++] = index_base + i;
    }
  }
  return written;
}

void GatherStride(const uint64_t* base, int64_t stride, int64_t count,
                  uint64_t* out) {
  const uint64_t* src = base;
  for (int64_t i = 0; i < count; ++i) {
    out[i] = *src;
    src += stride;
  }
}

void GatherIndexed(const uint64_t* base, const int64_t* indices, int64_t count,
                   int64_t stride, int64_t offset, uint64_t* out) {
  for (int64_t i = 0; i < count; ++i) {
    out[i] = base[indices[i] * stride + offset];
  }
}

// Shared by every level: the histogram is scatter-shaped, which SIMD ISAs
// without scatter can't express directly — the win instead comes from four
// interleaved sub-histograms that break the store-to-load forwarding stall
// on repeated buckets (skewed keys hammer one counter otherwise). Integer
// per-bucket sums commute, so the merged result equals the naive loop.
void HistogramTopBits(const uint64_t* hashes, int64_t count, int bits,
                      int64_t* counts) {
  const int shift = 64 - bits;
  if (count < 1024) {  // Not worth zeroing 6KB of sub-histograms.
    for (int64_t i = 0; i < count; ++i) {
      ++counts[hashes[i] >> shift];
    }
    return;
  }
  int64_t sub[3][256] = {};
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    ++counts[hashes[i] >> shift];
    ++sub[0][hashes[i + 1] >> shift];
    ++sub[1][hashes[i + 2] >> shift];
    ++sub[2][hashes[i + 3] >> shift];
  }
  for (; i < count; ++i) {
    ++counts[hashes[i] >> shift];
  }
  const int num_buckets = 1 << bits;
  for (int b = 0; b < num_buckets; ++b) {
    counts[b] += sub[0][b] + sub[1][b] + sub[2][b];
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// SSE4.2 kernels (x86, 128-bit = 2 uint64 lanes).
// ---------------------------------------------------------------------------

#if MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 1
namespace sse4 {

// 64x64 -> low-64 multiply from 32-bit partial products:
// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32). _mm_mul_epu32
// multiplies the low 32 bits of each 64-bit lane into a full 64-bit
// product; the high-high partial only feeds bits >= 64 and is dropped.
MPCQP_TARGET_SSE4_INLINE __m128i MulLo64(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(a, _mm_srli_epi64(b, 32)),
                                      _mm_mul_epu32(_mm_srli_epi64(a, 32), b));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

// splitmix64 over both lanes; bit-identical to SplitMix64 per lane.
MPCQP_TARGET_SSE4_INLINE __m128i Mix64(__m128i x) {
  x = _mm_add_epi64(x, _mm_set1_epi64x(0x9e3779b97f4a7c15LL));
  x = MulLo64(_mm_xor_si128(x, _mm_srli_epi64(x, 30)),
              _mm_set1_epi64x(0xbf58476d1ce4e5b9LL));
  x = MulLo64(_mm_xor_si128(x, _mm_srli_epi64(x, 27)),
              _mm_set1_epi64x(0x94d049bb133111ebLL));
  return _mm_xor_si128(x, _mm_srli_epi64(x, 31));
}

// bucket = hi64(hash * p) for p < 2^31, decomposed exactly as
// (hi32(h)*p + (lo32(h)*p >> 32)) >> 32 — both partials fit 64 bits and
// the discarded low bits of lo32(h)*p cannot carry into bit 64.
MPCQP_TARGET_SSE4_INLINE __m128i BucketReduce(__m128i h, __m128i p) {
  const __m128i hi_prod = _mm_mul_epu32(_mm_srli_epi64(h, 32), p);
  const __m128i lo_prod = _mm_srli_epi64(_mm_mul_epu32(h, p), 32);
  return _mm_srli_epi64(_mm_add_epi64(hi_prod, lo_prod), 32);
}

MPCQP_TARGET_SSE4
void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
              uint64_t* out) {
  const __m128i w = _mm_set1_epi64x(static_cast<int64_t>(whitening));
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     Mix64(_mm_xor_si128(v, w)));
  }
  for (; i < count; ++i) {
    out[i] = SplitMix64(values[i] ^ whitening);
  }
}

MPCQP_TARGET_SSE4
void BucketMany(const uint64_t* values, int64_t count, uint64_t whitening,
                int num_buckets, int32_t* out) {
  const __m128i w = _mm_set1_epi64x(static_cast<int64_t>(whitening));
  const __m128i p = _mm_set1_epi64x(num_buckets);
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const __m128i b = BucketReduce(Mix64(_mm_xor_si128(v, w)), p);
    // Each lane's bucket is < 2^31 in the low 32 bits; pack lanes {0,2}
    // of the 32-bit view into one 8-byte store of two int32 buckets.
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                     _mm_shuffle_epi32(b, _MM_SHUFFLE(3, 1, 2, 0)));
  }
  const auto p128 = static_cast<unsigned __int128>(num_buckets);
  for (; i < count; ++i) {
    out[i] =
        static_cast<int32_t>((SplitMix64(values[i] ^ whitening) * p128) >> 64);
  }
}

MPCQP_TARGET_SSE4
void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                   uint64_t mask, uint64_t* out) {
  const __m128i s = _mm_set1_epi64x(static_cast<int64_t>(seed));
  const __m128i m = _mm_set1_epi64x(static_cast<int64_t>(mask));
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const __m128i h = Mix64(_mm_xor_si128(s, Mix64(k)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(h, m));
  }
  for (; i < count; ++i) {
    out[i] = SplitMix64(seed ^ SplitMix64(keys[i])) & mask;
  }
}

// All-ones per lane when lo <= v <= hi (unsigned): Value is uint64_t but
// x86 only compares signed 64-bit, so both sides are sign-bit-flipped
// first, which is an order-preserving bijection into the signed range.
MPCQP_TARGET_SSE4_INLINE __m128i InRangeMask(__m128i v, __m128i lo_f,
                                             __m128i hi_f, __m128i flip,
                                             __m128i ones) {
  const __m128i vf = _mm_xor_si128(v, flip);
  const __m128i lt_lo = _mm_cmpgt_epi64(lo_f, vf);
  const __m128i gt_hi = _mm_cmpgt_epi64(vf, hi_f);
  return _mm_andnot_si128(_mm_or_si128(lt_lo, gt_hi), ones);
}

MPCQP_TARGET_SSE4
int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                     uint64_t hi) {
  const __m128i flip = _mm_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  const __m128i lo_f =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<int64_t>(lo)), flip);
  const __m128i hi_f =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<int64_t>(hi)), flip);
  const __m128i ones = _mm_set1_epi64x(-1);
  int64_t hits = 0;
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const int mask = _mm_movemask_pd(
        _mm_castsi128_pd(InRangeMask(v, lo_f, hi_f, flip, ones)));
    hits += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < count; ++i) {
    hits += values[i] >= lo && values[i] <= hi;
  }
  return hits;
}

}  // namespace sse4
#endif  // MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 1

// ---------------------------------------------------------------------------
// AVX2 kernels (x86, 256-bit = 4 uint64 lanes). The performance tier the
// bench gates hold to >= 1.3x over scalar.
// ---------------------------------------------------------------------------

#if MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 3
namespace avx2 {

MPCQP_TARGET_AVX2_INLINE __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

MPCQP_TARGET_AVX2_INLINE __m256i Mix64(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15LL));
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
              _mm256_set1_epi64x(0xbf58476d1ce4e5b9LL));
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
              _mm256_set1_epi64x(0x94d049bb133111ebLL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

// See sse4::BucketReduce for the exactness argument.
MPCQP_TARGET_AVX2_INLINE __m256i BucketReduce(__m256i h, __m256i p) {
  const __m256i hi_prod = _mm256_mul_epu32(_mm256_srli_epi64(h, 32), p);
  const __m256i lo_prod = _mm256_srli_epi64(_mm256_mul_epu32(h, p), 32);
  return _mm256_srli_epi64(_mm256_add_epi64(hi_prod, lo_prod), 32);
}

MPCQP_TARGET_AVX2
void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
              uint64_t* out) {
  const __m256i w = _mm256_set1_epi64x(static_cast<int64_t>(whitening));
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        Mix64(_mm256_xor_si256(v, w)));
  }
  for (; i < count; ++i) {
    out[i] = SplitMix64(values[i] ^ whitening);
  }
}

MPCQP_TARGET_AVX2
void BucketMany(const uint64_t* values, int64_t count, uint64_t whitening,
                int num_buckets, int32_t* out) {
  const __m256i w = _mm256_set1_epi64x(static_cast<int64_t>(whitening));
  const __m256i p = _mm256_set1_epi64x(num_buckets);
  // Picks the even 32-bit lane (the bucket) out of each 64-bit lane.
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i b = BucketReduce(Mix64(_mm256_xor_si256(v, w)), p);
    const __m128i packed =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(b, pack));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), packed);
  }
  const auto p128 = static_cast<unsigned __int128>(num_buckets);
  for (; i < count; ++i) {
    out[i] =
        static_cast<int32_t>((SplitMix64(values[i] ^ whitening) * p128) >> 64);
  }
}

MPCQP_TARGET_AVX2
void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                   uint64_t mask, uint64_t* out) {
  const __m256i s = _mm256_set1_epi64x(static_cast<int64_t>(seed));
  const __m256i m = _mm256_set1_epi64x(static_cast<int64_t>(mask));
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i h = Mix64(_mm256_xor_si256(s, Mix64(k)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(h, m));
  }
  for (; i < count; ++i) {
    out[i] = SplitMix64(seed ^ SplitMix64(keys[i])) & mask;
  }
}

// See sse4::InRangeMask: unsigned compare via sign-bit flip.
MPCQP_TARGET_AVX2_INLINE __m256i InRangeMask(__m256i v, __m256i lo_f,
                                             __m256i hi_f, __m256i flip,
                                             __m256i ones) {
  const __m256i vf = _mm256_xor_si256(v, flip);
  const __m256i lt_lo = _mm256_cmpgt_epi64(lo_f, vf);
  const __m256i gt_hi = _mm256_cmpgt_epi64(vf, hi_f);
  return _mm256_andnot_si256(_mm256_or_si256(lt_lo, gt_hi), ones);
}

MPCQP_TARGET_AVX2
int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                     uint64_t hi) {
  const __m256i flip = _mm256_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  const __m256i lo_f =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(lo)), flip);
  const __m256i hi_f =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(hi)), flip);
  const __m256i ones = _mm256_set1_epi64x(-1);
  int64_t hits = 0;
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(InRangeMask(v, lo_f, hi_f, flip, ones)));
    hits += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < count; ++i) {
    hits += values[i] >= lo && values[i] <= hi;
  }
  return hits;
}

// For each 4-bit lane mask, the 32-bit-lane permutation that left-packs
// the selected 64-bit lanes (lane j contributes 32-bit lanes 2j, 2j+1).
alignas(32) constexpr int32_t kLeftPack[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0, 0, 0},
    {2, 3, 0, 0, 0, 0, 0, 0}, {0, 1, 2, 3, 0, 0, 0, 0},
    {4, 5, 0, 0, 0, 0, 0, 0}, {0, 1, 4, 5, 0, 0, 0, 0},
    {2, 3, 4, 5, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5, 0, 0},
    {6, 7, 0, 0, 0, 0, 0, 0}, {0, 1, 6, 7, 0, 0, 0, 0},
    {2, 3, 6, 7, 0, 0, 0, 0}, {0, 1, 2, 3, 6, 7, 0, 0},
    {4, 5, 6, 7, 0, 0, 0, 0}, {0, 1, 4, 5, 6, 7, 0, 0},
    {2, 3, 4, 5, 6, 7, 0, 0}, {0, 1, 2, 3, 4, 5, 6, 7},
};

MPCQP_TARGET_AVX2
int64_t FillInRange(const uint64_t* values, int64_t count, int64_t index_base,
                    uint64_t lo, uint64_t hi, int64_t* out, int64_t capacity) {
  const __m256i flip = _mm256_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  const __m256i lo_f =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(lo)), flip);
  const __m256i hi_f =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(hi)), flip);
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i iota = _mm256_setr_epi64x(0, 1, 2, 3);
  int64_t written = 0;
  int64_t i = 0;
  // Full-width compressed stores write up to 4 slots but advance by the
  // lane popcount; the `written + 4 <= capacity` guard keeps the overhang
  // inside the caller's exactly-sized region (per-morsel fill regions are
  // adjacent and filled concurrently, so overrunning would race).
  for (; i + 4 <= count && written + 4 <= capacity; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(InRangeMask(v, lo_f, hi_f, flip, ones)));
    if (mask == 0) continue;
    const __m256i indices =
        _mm256_add_epi64(_mm256_set1_epi64x(index_base + i), iota);
    const __m256i pattern = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kLeftPack[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + written),
                        _mm256_permutevar8x32_epi32(indices, pattern));
    written += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < count; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      out[written++] = index_base + i;
    }
  }
  return written;
}

MPCQP_TARGET_AVX2
void GatherStride(const uint64_t* base, int64_t stride, int64_t count,
                  uint64_t* out) {
  const __m256i step = _mm256_set1_epi64x(4 * stride);
  __m256i vindex = _mm256_setr_epi64x(0, stride, 2 * stride, 3 * stride);
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base), vindex, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    vindex = _mm256_add_epi64(vindex, step);
  }
  const uint64_t* src = base + i * stride;
  for (; i < count; ++i) {
    out[i] = *src;
    src += stride;
  }
}

MPCQP_TARGET_AVX2
void GatherIndexed(const uint64_t* base, const int64_t* indices, int64_t count,
                   int64_t stride, int64_t offset, uint64_t* out) {
  const __m256i s = _mm256_set1_epi64x(stride);
  const __m256i off = _mm256_set1_epi64x(offset);
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices + i));
    const __m256i vindex = _mm256_add_epi64(MulLo64(idx, s), off);
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base), vindex, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < count; ++i) {
    out[i] = base[indices[i] * stride + offset];
  }
}

}  // namespace avx2
#endif  // MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 3

// ---------------------------------------------------------------------------
// NEON kernels (aarch64, 128-bit = 2 uint64 lanes). NEON is baseline on
// AArch64, so no function-level target attributes are needed.
// ---------------------------------------------------------------------------

#if MPCQP_SIMD_NEON && MPCQP_SIMD_LEVEL_CAP >= 2
namespace neon {

// 64x64 -> low-64 multiply from 32-bit halves (NEON has no 64-bit mul):
// vmull_u32 widens 32x32 -> 64 exactly like _mm_mul_epu32.
inline uint64x2_t MulLo64(uint64x2_t a, uint64x2_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t lo = vmull_u32(a_lo, b_lo);
  const uint64x2_t cross = vmlal_u32(vmull_u32(a_lo, b_hi), a_hi, b_lo);
  return vaddq_u64(lo, vshlq_n_u64(cross, 32));
}

inline uint64x2_t Mix64(uint64x2_t x) {
  x = vaddq_u64(x, vdupq_n_u64(0x9e3779b97f4a7c15ULL));
  x = MulLo64(veorq_u64(x, vshrq_n_u64(x, 30)),
              vdupq_n_u64(0xbf58476d1ce4e5b9ULL));
  x = MulLo64(veorq_u64(x, vshrq_n_u64(x, 27)),
              vdupq_n_u64(0x94d049bb133111ebULL));
  return veorq_u64(x, vshrq_n_u64(x, 31));
}

inline void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
                     uint64_t* out) {
  const uint64x2_t w = vdupq_n_u64(whitening);
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    vst1q_u64(out + i, Mix64(veorq_u64(vld1q_u64(values + i), w)));
  }
  for (; i < count; ++i) {
    out[i] = SplitMix64(values[i] ^ whitening);
  }
}

inline void BucketMany(const uint64_t* values, int64_t count,
                       uint64_t whitening, int num_buckets, int32_t* out) {
  const uint64x2_t w = vdupq_n_u64(whitening);
  const uint32x2_t p = vdup_n_u32(static_cast<uint32_t>(num_buckets));
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t h = Mix64(veorq_u64(vld1q_u64(values + i), w));
    // hi64(h * p) = (hi32(h)*p + (lo32(h)*p >> 32)) >> 32, as in the x86
    // BucketReduce; both partials are exact 32x32 -> 64 products.
    const uint64x2_t hi_prod = vmull_u32(vshrn_n_u64(h, 32), p);
    const uint64x2_t lo_prod = vshrq_n_u64(vmull_u32(vmovn_u64(h), p), 32);
    const uint64x2_t bucket = vshrq_n_u64(vaddq_u64(hi_prod, lo_prod), 32);
    vst1_s32(out + i, vreinterpret_s32_u32(vmovn_u64(bucket)));
  }
  const auto p128 = static_cast<unsigned __int128>(num_buckets);
  for (; i < count; ++i) {
    out[i] =
        static_cast<int32_t>((SplitMix64(values[i] ^ whitening) * p128) >> 64);
  }
}

inline void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                          uint64_t mask, uint64_t* out) {
  const uint64x2_t s = vdupq_n_u64(seed);
  const uint64x2_t m = vdupq_n_u64(mask);
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t h = Mix64(veorq_u64(s, Mix64(vld1q_u64(keys + i))));
    vst1q_u64(out + i, vandq_u64(h, m));
  }
  for (; i < count; ++i) {
    out[i] = SplitMix64(seed ^ SplitMix64(keys[i])) & mask;
  }
}

inline int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                            uint64_t hi) {
  const uint64x2_t lo_v = vdupq_n_u64(lo);
  const uint64x2_t hi_v = vdupq_n_u64(hi);
  uint64x2_t acc = vdupq_n_u64(0);
  int64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t v = vld1q_u64(values + i);
    // NEON has native unsigned 64-bit compares; each matching lane is
    // all-ones == -1, so subtracting the mask adds 1 per match.
    const uint64x2_t in =
        vandq_u64(vcgeq_u64(v, lo_v), vcleq_u64(v, hi_v));
    acc = vsubq_u64(acc, in);
  }
  int64_t hits = static_cast<int64_t>(vgetq_lane_u64(acc, 0) +
                                      vgetq_lane_u64(acc, 1));
  for (; i < count; ++i) {
    hits += values[i] >= lo && values[i] <= hi;
  }
  return hits;
}

}  // namespace neon
#endif  // MPCQP_SIMD_NEON && MPCQP_SIMD_LEVEL_CAP >= 2

// ---------------------------------------------------------------------------
// Dispatch: one KernelTable per compiled-in level, resolved once.
// ---------------------------------------------------------------------------

struct KernelTable {
  IsaLevel level;
  void (*hash_many)(const uint64_t*, int64_t, uint64_t, uint64_t*);
  void (*bucket_many)(const uint64_t*, int64_t, uint64_t, int, int32_t*);
  void (*group_hash_many)(const uint64_t*, int64_t, uint64_t, uint64_t,
                          uint64_t*);
  int64_t (*count_in_range)(const uint64_t*, int64_t, uint64_t, uint64_t);
  int64_t (*fill_in_range)(const uint64_t*, int64_t, int64_t, uint64_t,
                           uint64_t, int64_t*, int64_t);
  void (*gather_stride)(const uint64_t*, int64_t, int64_t, uint64_t*);
  void (*gather_indexed)(const uint64_t*, const int64_t*, int64_t, int64_t,
                         int64_t, uint64_t*);
  void (*histogram_top_bits)(const uint64_t*, int64_t, int, int64_t*);
};

constexpr KernelTable kScalarTable = {
    IsaLevel::kScalar,      scalar::HashMany,      scalar::BucketMany,
    scalar::GroupHashMany,  scalar::CountInRange,  scalar::FillInRange,
    scalar::GatherStride,   scalar::GatherIndexed, scalar::HistogramTopBits,
};

#if MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 1
// SSE4.2 has no cheap 64-bit left-pack or gather; those shapes stay on the
// scalar reference (still bit-identical, just not faster).
constexpr KernelTable kSse4Table = {
    IsaLevel::kSse4,        sse4::HashMany,        sse4::BucketMany,
    sse4::GroupHashMany,    sse4::CountInRange,    scalar::FillInRange,
    scalar::GatherStride,   scalar::GatherIndexed, scalar::HistogramTopBits,
};
#endif

#if MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 3
constexpr KernelTable kAvx2Table = {
    IsaLevel::kAvx2,        avx2::HashMany,        avx2::BucketMany,
    avx2::GroupHashMany,    avx2::CountInRange,    avx2::FillInRange,
    avx2::GatherStride,     avx2::GatherIndexed,   scalar::HistogramTopBits,
};
#endif

#if MPCQP_SIMD_NEON && MPCQP_SIMD_LEVEL_CAP >= 2
constexpr KernelTable kNeonTable = {
    IsaLevel::kNeon,        neon::HashMany,        neon::BucketMany,
    neon::GroupHashMany,    neon::CountInRange,    scalar::FillInRange,
    scalar::GatherStride,   scalar::GatherIndexed, scalar::HistogramTopBits,
};
#endif

IsaLevel DetectHardware() {
#if MPCQP_SIMD_NEON
  return IsaLevel::kNeon;  // NEON is architecturally baseline on AArch64.
#elif MPCQP_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return IsaLevel::kSse4;
  return IsaLevel::kScalar;
#else
  return IsaLevel::kScalar;
#endif
}

// The best table whose level is <= `requested`, further clamped to what
// the hardware supports and what was compiled in — an over-ask (e.g.
// ScopedIsaOverride{kAvx2} on a NEON box, or MPCQP_SIMD=avx2 under a
// scalar-capped build) clamps down instead of faulting.
const KernelTable* TableFor(IsaLevel requested) {
  const int rank = std::min(static_cast<int>(requested),
                            static_cast<int>(DetectedIsa()));
#if MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 3
  if (rank >= static_cast<int>(IsaLevel::kAvx2)) return &kAvx2Table;
#endif
#if MPCQP_SIMD_NEON && MPCQP_SIMD_LEVEL_CAP >= 2
  if (rank >= static_cast<int>(IsaLevel::kNeon)) return &kNeonTable;
#endif
#if MPCQP_SIMD_X86 && MPCQP_SIMD_LEVEL_CAP >= 1
  if (rank >= static_cast<int>(IsaLevel::kSse4)) return &kSse4Table;
#endif
  (void)rank;
  return &kScalarTable;
}

// The level the MPCQP_SIMD env var caps dispatch to. Read once at first
// kernel use. An unparsable value gets a loud warning and no cap —
// silently falling back to best-detected would let a benchmark run the
// user believes is ISA-pinned float to whatever the box supports.
IsaLevel EnvRequestedLevel() {
  const char* env = std::getenv("MPCQP_SIMD");
  IsaLevel level = IsaLevel::kAvx2;  // Highest rank == "no env cap".
  if (env != nullptr && *env != '\0' && !ParseIsaLevel(env, &level)) {
    std::fprintf(stderr,
                 "mpcqp: invalid MPCQP_SIMD=\"%s\" (expected scalar|sse4|"
                 "neon|avx2); dispatching at best detected level\n",
                 env);
  }
  return level;
}

std::atomic<const KernelTable*> g_table{nullptr};

// One-time lazy resolution. compare_exchange (not a plain store) so a
// thread that loaded nullptr before a ScopedIsaOverride was installed can
// never publish the default table over the override afterward; whichever
// table lands first wins, and losers adopt it.
const KernelTable* Table() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    const KernelTable* resolved = TableFor(EnvRequestedLevel());
    if (g_table.compare_exchange_strong(table, resolved,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      table = resolved;
    }
  }
  return table;
}

}  // namespace

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse4:
      return "sse4";
    case IsaLevel::kNeon:
      return "neon";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseIsaLevel(const std::string& text, IsaLevel* out) {
  if (text == "scalar") {
    *out = IsaLevel::kScalar;
  } else if (text == "sse4") {
    *out = IsaLevel::kSse4;
  } else if (text == "neon") {
    *out = IsaLevel::kNeon;
  } else if (text == "avx2") {
    *out = IsaLevel::kAvx2;
  } else {
    return false;
  }
  return true;
}

IsaLevel DetectedIsa() {
  static const IsaLevel detected = DetectHardware();
  return detected;
}

IsaLevel DispatchedIsa() { return Table()->level; }

void HashMany(const uint64_t* values, int64_t count, uint64_t whitening,
              uint64_t* out) {
  Table()->hash_many(values, count, whitening, out);
}

void BucketMany(const uint64_t* values, int64_t count, uint64_t whitening,
                int num_buckets, int32_t* out) {
  MPCQP_CHECK_GT(num_buckets, 0);
  Table()->bucket_many(values, count, whitening, num_buckets, out);
}

void GroupHashMany(const uint64_t* keys, int64_t count, uint64_t seed,
                   uint64_t mask, uint64_t* out) {
  Table()->group_hash_many(keys, count, seed, mask, out);
}

int64_t CountInRange(const uint64_t* values, int64_t count, uint64_t lo,
                     uint64_t hi) {
  return Table()->count_in_range(values, count, lo, hi);
}

int64_t FillInRange(const uint64_t* values, int64_t count, int64_t index_base,
                    uint64_t lo, uint64_t hi, int64_t* out, int64_t capacity) {
  return Table()->fill_in_range(values, count, index_base, lo, hi, out,
                                capacity);
}

void GatherStride(const uint64_t* base, int64_t stride, int64_t count,
                  uint64_t* out) {
  Table()->gather_stride(base, stride, count, out);
}

void GatherIndexed(const uint64_t* base, const int64_t* indices, int64_t count,
                   int64_t stride, int64_t offset, uint64_t* out) {
  Table()->gather_indexed(base, indices, count, stride, offset, out);
}

void HistogramTopBits(const uint64_t* hashes, int64_t count, int bits,
                      int64_t* counts) {
  MPCQP_CHECK_GE(bits, 1);
  MPCQP_CHECK_LE(bits, 8);
  Table()->histogram_top_bits(hashes, count, bits, counts);
}

ScopedIsaOverride::ScopedIsaOverride(IsaLevel level) {
  // Force lazy resolution first: paired with the compare_exchange in
  // Table(), this guarantees no concurrent first-use can publish the
  // default table over the override we are about to install.
  Table();
  prev_ = g_table.exchange(TableFor(level), std::memory_order_acq_rel);
}

ScopedIsaOverride::~ScopedIsaOverride() {
  g_table.store(static_cast<const KernelTable*>(prev_),
                std::memory_order_release);
}

}  // namespace mpcqp::simd
