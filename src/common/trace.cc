#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"

namespace mpcqp {

std::atomic<int64_t> TraceCounters::cow_detaches{0};
std::atomic<int64_t> TraceCounters::cow_detach_bytes{0};

namespace {

// One buffered event; `kind` distinguishes complete spans ("X") from
// counter samples ("C").
struct Event {
  char kind;
  std::string name;
  const char* category;
  int64_t start_ns;
  int64_t dur_ns;
  int64_t arg;
  int tid;
  int64_t value;
};

int CurrentTid() {
  // Pool workers get 1..num_threads-1; the main (or any non-pool) thread
  // gets 0, matching the shard numbering in Cluster.
  return ThreadPool::current_worker_index() + 1;
}

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<Event> events;  // Guarded by mu.
};

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

int64_t Tracer::NowNanos() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Tracer::Clear() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
}

void Tracer::RecordComplete(const std::string& name, const char* category,
                            int64_t start_ns, int64_t dur_ns, int64_t arg) {
  if (!enabled()) return;
  Event event{'X', name, category, start_ns, dur_ns, arg, CurrentTid(), 0};
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.push_back(std::move(event));
}

void Tracer::RecordCounter(const char* name, int64_t value) {
  if (!enabled()) return;
  Event event{'C', name, "counter", NowNanos(), 0, -1, CurrentTid(), value};
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.push_back(std::move(event));
}

int64_t Tracer::event_count() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  return static_cast<int64_t>(state.events.size());
}

std::string Tracer::ToChromeJson() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const Event& event : state.events) {
    if (!first) json += ",";
    first = false;
    json += "\n{\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
            event.category + "\",\"ph\":\"" + event.kind + "\",\"pid\":0";
    // Chrome-trace timestamps are microseconds; keep nanosecond precision
    // with a fractional part.
    std::snprintf(buf, sizeof(buf), ",\"tid\":%d,\"ts\":%.3f", event.tid,
                  static_cast<double>(event.start_ns) / 1000.0);
    json += buf;
    if (event.kind == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      json += buf;
      if (event.arg >= 0) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"arg\":%lld}",
                      static_cast<long long>(event.arg));
        json += buf;
      }
    } else {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%lld}",
                    static_cast<long long>(event.value));
      json += buf;
    }
    json += "}";
  }
  json += "\n]}\n";
  return json;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return InternalError("cannot write trace to " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return InternalError("short write to " + path);
  }
  return OkStatus();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mpcqp
