#ifndef MPCQP_COMMON_CHECK_H_
#define MPCQP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mpcqp {
namespace internal_check {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the MPCQP_CHECK* macros below; invariant violations are
// programmer errors and terminate immediately (no exceptions).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns the streamed expression into void so the macro can sit in the
// false branch of a ternary. operator& binds looser than operator<<.
struct Voidify {
  void operator&(CheckFailureStream&&) {}
  void operator&(CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace mpcqp

// Aborts with a message if `condition` is false. Additional context can be
// streamed: MPCQP_CHECK(x > 0) << "x=" << x;
#define MPCQP_CHECK(condition)                               \
  (condition) ? (void)0                                      \
              : ::mpcqp::internal_check::Voidify() &         \
                    ::mpcqp::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

#define MPCQP_CHECK_EQ(a, b) MPCQP_CHECK((a) == (b))
#define MPCQP_CHECK_NE(a, b) MPCQP_CHECK((a) != (b))
#define MPCQP_CHECK_LT(a, b) MPCQP_CHECK((a) < (b))
#define MPCQP_CHECK_LE(a, b) MPCQP_CHECK((a) <= (b))
#define MPCQP_CHECK_GT(a, b) MPCQP_CHECK((a) > (b))
#define MPCQP_CHECK_GE(a, b) MPCQP_CHECK((a) >= (b))

#endif  // MPCQP_COMMON_CHECK_H_
