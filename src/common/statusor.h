#ifndef MPCQP_COMMON_STATUSOR_H_
#define MPCQP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace mpcqp {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing the value of a non-OK StatusOr aborts the process
// (the library does not use exceptions).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so functions can `return value;` or
  // `return SomeError(...)`, matching absl::StatusOr ergonomics.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MPCQP_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    MPCQP_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MPCQP_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MPCQP_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ has a value.
  std::optional<T> value_;
};

}  // namespace mpcqp

// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
// its status from the enclosing function.
#define MPCQP_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  MPCQP_ASSIGN_OR_RETURN_IMPL_(                                  \
      MPCQP_STATUS_MACROS_CONCAT_(_statusor, __LINE__), lhs, rexpr)

#define MPCQP_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                 \
  if (!statusor.ok()) return statusor.status();            \
  lhs = std::move(statusor).value()

#define MPCQP_STATUS_MACROS_CONCAT_(x, y) MPCQP_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define MPCQP_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // MPCQP_COMMON_STATUSOR_H_
