#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace mpcqp {

namespace {

Status BadNumber(const std::string& text, const char* kind) {
  return InvalidArgumentError(std::string("expected ") + kind + ", got '" +
                              text + "'");
}

}  // namespace

StatusOr<uint64_t> ParseUint64(const std::string& text) {
  if (text.empty()) return BadNumber(text, "an unsigned integer");
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return BadNumber(text, "an unsigned integer");
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > kMax / 10 || (value == kMax / 10 && digit > kMax % 10)) {
      return InvalidArgumentError("integer overflow in '" + text + "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

StatusOr<int64_t> ParseInt64(const std::string& text) {
  const bool negative = !text.empty() && text[0] == '-';
  auto magnitude = ParseUint64(negative ? text.substr(1) : text);
  if (!magnitude.ok()) {
    if (magnitude.status().message().rfind("integer overflow", 0) == 0) {
      return InvalidArgumentError("integer overflow in '" + text + "'");
    }
    return BadNumber(text, "an integer");
  }
  constexpr uint64_t kMaxMagnitude =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  // -2^63 is representable but its magnitude is kMaxMagnitude + 1; keep
  // the check symmetric (reject it) so negation below cannot overflow.
  if (*magnitude > kMaxMagnitude) {
    return InvalidArgumentError("integer overflow in '" + text + "'");
  }
  const int64_t value = static_cast<int64_t>(*magnitude);
  return negative ? -value : value;
}

StatusOr<int64_t> ParseInt64InRange(const std::string& text, int64_t min_value,
                                    int64_t max_value) {
  auto value = ParseInt64(text);
  if (!value.ok()) return value.status();
  if (*value < min_value || *value > max_value) {
    return InvalidArgumentError("value " + text + " out of range [" +
                                std::to_string(min_value) + ", " +
                                std::to_string(max_value) + "]");
  }
  return value;
}

StatusOr<int> ParseIntInRange(const std::string& text, int min_value,
                              int max_value) {
  auto value = ParseInt64InRange(text, min_value, max_value);
  if (!value.ok()) return value.status();
  return static_cast<int>(*value);
}

StatusOr<double> ParseDouble(const std::string& text) {
  // strtod skips leading whitespace; reject it up front to keep the
  // whole-string contract.
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))) {
    return BadNumber(text, "a number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return BadNumber(text, "a finite number");
  }
  return value;
}

StatusOr<bool> ParseBool(const std::string& text) {
  std::string lower;
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "on" || lower == "true" || lower == "1") return true;
  if (lower == "off" || lower == "false" || lower == "0") return false;
  return InvalidArgumentError("expected on/off, true/false or 1/0, got '" +
                              text + "'");
}

}  // namespace mpcqp
