#include "common/parallel_sort.h"

#include <numeric>

namespace mpcqp {

void SortRowsBuffer(ThreadPool* pool, int arity, std::vector<uint64_t>& data,
                    const std::vector<int>& key_cols) {
  const int64_t n = static_cast<int64_t>(data.size()) / arity;
  if (n <= 1) return;
  MPCQP_TRACE_SCOPE_ARG("sort_rows", "compute", n);

  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const uint64_t* rows = data.data();
  ParallelSort(pool, order, [&](int64_t a, int64_t b) {
    const uint64_t* ra = rows + static_cast<size_t>(a) * arity;
    const uint64_t* rb = rows + static_cast<size_t>(b) * arity;
    for (int c : key_cols) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    for (int c = 0; c < arity; ++c) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  });

  std::vector<uint64_t> sorted(data.size());
  const auto gather = [&](int64_t begin, int64_t end) {
    uint64_t* out = sorted.data() + static_cast<size_t>(begin) * arity;
    for (int64_t i = begin; i < end; ++i) {
      const uint64_t* r = rows + static_cast<size_t>(order[i]) * arity;
      out = std::copy(r, r + arity, out);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 &&
      n >= kParallelSortMinItems) {
    const int64_t chunks = pool->num_threads();
    const std::vector<int64_t> bounds =
        parallel_sort_internal::RunBounds(n, chunks);
    pool->ParallelFor(chunks,
                      [&](int64_t c) { gather(bounds[c], bounds[c + 1]); });
  } else {
    gather(0, n);
  }
  data = std::move(sorted);
}

}  // namespace mpcqp
