#ifndef MPCQP_COMMON_PARALLEL_SORT_H_
#define MPCQP_COMMON_PARALLEL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace mpcqp {

// The local-compute sort kernel: parallel chunk-sort + k-way (pairwise
// tree) merge over a ThreadPool, falling back to plain std::sort for small
// inputs or single-threaded pools. The MPC cost model charges only
// communication, so local sorts are free to use every idle worker.
//
// Determinism contract: the kernel guarantees a sorted permutation of the
// input, deterministic for a fixed (input, comparator) pair — but the
// relative order of *distinct* items that compare equal may differ from
// std::sort's and may depend on the chunk layout. Callers that need
// thread-count-invariant bytes must use comparators under which ties are
// interchangeable (the row sorts below compare every column, so tied rows
// are byte-identical — the same argument Relation::SortRowsBy always
// relied on, since std::sort is itself unstable).

// Inputs below this size are sorted serially: chunk + merge overhead only
// pays for itself when there is real work to split.
inline constexpr int64_t kParallelSortMinItems = int64_t{1} << 14;

namespace parallel_sort_internal {

// Chunk boundaries for splitting [0, n) into `chunks` contiguous runs.
inline std::vector<int64_t> RunBounds(int64_t n, int64_t chunks) {
  std::vector<int64_t> bounds(static_cast<size_t>(chunks) + 1);
  for (int64_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;
  return bounds;
}

}  // namespace parallel_sort_internal

template <typename T, typename Less>
void ParallelSort(ThreadPool* pool, std::vector<T>& items, Less less) {
  const int64_t n = static_cast<int64_t>(items.size());
  if (pool == nullptr || pool->num_threads() <= 1 ||
      n < kParallelSortMinItems) {
    std::sort(items.begin(), items.end(), less);
    return;
  }

  // One run per pool thread: fewer runs means a shallower merge tree, and
  // the chunk sorts already saturate the pool.
  const int64_t chunks =
      std::min<int64_t>(pool->num_threads(), std::max<int64_t>(1, n / 2));
  std::vector<int64_t> bounds = parallel_sort_internal::RunBounds(n, chunks);

  {
    MPCQP_TRACE_SCOPE_ARG("sort chunks", "compute", chunks);
    pool->ParallelFor(chunks, [&](int64_t c) {
      std::sort(items.begin() + bounds[c], items.begin() + bounds[c + 1],
                less);
    });
  }

  // Pairwise merge passes, ping-ponging between the input and a scratch
  // buffer. std::merge takes from the first run on ties, so every pass is
  // deterministic for a fixed chunk layout.
  MPCQP_TRACE_SCOPE_ARG("sort merge", "compute", chunks);
  std::vector<T> scratch(items.size());
  T* src = items.data();
  T* dst = scratch.data();
  while (bounds.size() > 2) {
    const int64_t runs = static_cast<int64_t>(bounds.size()) - 1;
    const int64_t out_runs = (runs + 1) / 2;
    std::vector<int64_t> next(static_cast<size_t>(out_runs) + 1);
    for (int64_t i = 0; i < out_runs; ++i) next[i] = bounds[2 * i];
    next[out_runs] = bounds[runs];
    pool->ParallelFor(out_runs, [&](int64_t i) {
      const int64_t lo = bounds[2 * i];
      if (2 * i + 2 <= runs) {
        const int64_t mid = bounds[2 * i + 1];
        const int64_t hi = bounds[2 * i + 2];
        std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, less);
      } else {
        // Odd run out: carried over verbatim.
        std::copy(src + lo, src + bounds[2 * i + 1], dst + lo);
      }
    });
    std::swap(src, dst);
    bounds = std::move(next);
  }
  if (src != items.data()) {
    std::copy(src, src + n, items.data());
  }
}

// Sorts the flat row-major buffer of an arity-`arity` relation by
// `key_cols` then all columns (the Relation::SortRowsBy comparator),
// using the parallel kernel for both the permutation sort and the gather.
void SortRowsBuffer(ThreadPool* pool, int arity, std::vector<uint64_t>& data,
                    const std::vector<int>& key_cols);

}  // namespace mpcqp

#endif  // MPCQP_COMMON_PARALLEL_SORT_H_
