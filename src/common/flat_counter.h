#ifndef MPCQP_COMMON_FLAT_COUNTER_H_
#define MPCQP_COMMON_FLAT_COUNTER_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace mpcqp {

// An open-addressing uint64 -> int64 counter for the statistics hot paths
// (degree counts, heavy-hitter detection, semijoin-copy intersection).
// Counting is O(1) per key with no per-node allocation; the deterministic
// sorted output the old std::map counters produced is recovered by one
// final sort over the distinct keys (SortedEntries), which is cheaper than
// paying a red-black-tree rebalance per input row.
class FlatCounter {
 public:
  explicit FlatCounter(int64_t expected_keys = 0) {
    int64_t cap = 16;
    while (cap < 2 * expected_keys) cap <<= 1;
    slots_.resize(static_cast<size_t>(cap));
  }

  // counts[key] += delta, inserting the key at count 0 first.
  void Add(uint64_t key, int64_t delta = 1) { Slot(key)->count += delta; }

  // Pre-grows the table so `expected_keys` distinct keys insert without a
  // rehash (bulk counting passes size once instead of doubling log times).
  void Reserve(int64_t expected_keys) {
    int64_t cap = static_cast<int64_t>(slots_.size());
    while (cap < 2 * expected_keys) cap <<= 1;
    if (cap > static_cast<int64_t>(slots_.size())) Rehash(cap);
  }

  // counts[key] += other.counts[key] for every key of `other` — the merge
  // step of per-worker partial counters (tree-merge aggregation, partial
  // degree counts). Order-insensitive: integer sums commute, so merging
  // in any order yields the same table contents.
  void MergeFrom(const FlatCounter& other) {
    Reserve(num_keys_ + other.num_keys_);
    for (const SlotEntry& s : other.slots_) {
      if (s.used) Add(s.key, s.count);
    }
  }

  // The count for `key`, or 0 if it was never added.
  int64_t Get(uint64_t key) const {
    const uint64_t mask = slots_.size() - 1;
    for (uint64_t i = Mix(key) & mask;; i = (i + 1) & mask) {
      const SlotEntry& s = slots_[i];
      if (!s.used) return 0;
      if (s.key == key) return s.count;
    }
  }

  int64_t num_keys() const { return num_keys_; }

  // All (key, count) pairs sorted by key — the iteration order of the
  // std::map-based counters this class replaces.
  std::vector<std::pair<uint64_t, int64_t>> SortedEntries() const {
    std::vector<std::pair<uint64_t, int64_t>> entries;
    entries.reserve(static_cast<size_t>(num_keys_));
    for (const SlotEntry& s : slots_) {
      if (s.used) entries.push_back({s.key, s.count});
    }
    std::sort(entries.begin(), entries.end());
    return entries;
  }

 private:
  struct SlotEntry {
    uint64_t key = 0;
    int64_t count = 0;
    bool used = false;
  };

  // SplitMix64's full avalanche keeps linear probing short even on
  // structured keys (sequential ids, strided values).
  static uint64_t Mix(uint64_t x) { return SplitMix64(x); }

  SlotEntry* Slot(uint64_t key) {
    if (2 * (num_keys_ + 1) > static_cast<int64_t>(slots_.size())) Grow();
    const uint64_t mask = slots_.size() - 1;
    for (uint64_t i = Mix(key) & mask;; i = (i + 1) & mask) {
      SlotEntry& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        ++num_keys_;
        return &s;
      }
      if (s.key == key) return &s;
    }
  }

  void Grow() { Rehash(static_cast<int64_t>(slots_.size()) * 2); }

  void Rehash(int64_t cap) {
    std::vector<SlotEntry> old = std::move(slots_);
    slots_.assign(static_cast<size_t>(cap), SlotEntry{});
    const uint64_t mask = slots_.size() - 1;
    for (const SlotEntry& s : old) {
      if (!s.used) continue;
      for (uint64_t i = Mix(s.key) & mask;; i = (i + 1) & mask) {
        if (!slots_[i].used) {
          slots_[i] = s;
          break;
        }
      }
    }
  }

  std::vector<SlotEntry> slots_;
  int64_t num_keys_ = 0;
};

}  // namespace mpcqp

#endif  // MPCQP_COMMON_FLAT_COUNTER_H_
