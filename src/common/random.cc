#include "common/random.h"

#include "common/check.h"

namespace mpcqp {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the xoshiro state with splitmix64, per the generator's reference
  // implementation guidance (avoids the all-zero state).
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  MPCQP_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MPCQP_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace mpcqp
