#ifndef MPCQP_COMMON_EXEC_CONTEXT_H_
#define MPCQP_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>

namespace mpcqp {

// Per-query execution attribution for the multi-query serving runtime.
//
// When several logical Clusters share one physical ThreadPool, hot paths
// that have no Cluster parameter in reach (e.g. Relation's copy-on-write
// detach) still need to charge their work to the query that caused it.
// An ExecContext is a tiny bag of counter pointers owned by one query's
// Cluster; the query's driver thread installs it with ExecContextScope,
// and ThreadPool propagates it into every helper task and morsel a
// parallel loop fans out — so a pool worker executing cluster A's morsel
// charges cluster A even if the very next task it picks up belongs to
// cluster B.
//
// The pointed-to counters must outlive every task running under the
// context; Cluster owns both the context and the counters (inside its
// MpcMetrics), so keeping the Cluster alive for the duration of its query
// — which every driver already does — is sufficient.
struct ExecContext {
  // Incremented on each COW payload clone forced while this context is
  // installed (mirrors TraceCounters::cow_detaches, which stays
  // process-wide).
  std::atomic<int64_t>* cow_detaches = nullptr;
  std::atomic<int64_t>* cow_detach_bytes = nullptr;
};

// The context installed on the calling thread, or nullptr.
const ExecContext* CurrentExecContext();

// Installs `context` (may be nullptr) on the calling thread for the
// scope's lifetime and restores the previous one on destruction. Scopes
// nest; the innermost wins.
class ExecContextScope {
 public:
  explicit ExecContextScope(const ExecContext* context);
  ~ExecContextScope();

  ExecContextScope(const ExecContextScope&) = delete;
  ExecContextScope& operator=(const ExecContextScope&) = delete;

 private:
  const ExecContext* previous_;
};

}  // namespace mpcqp

#endif  // MPCQP_COMMON_EXEC_CONTEXT_H_
