#ifndef MPCQP_COMMON_THREAD_POOL_H_
#define MPCQP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mpcqp {

// Fixed-size worker pool driving the simulator's parallel round execution.
//
// `num_threads` is the total degree of parallelism: the pool spawns
// num_threads - 1 worker threads, and ParallelFor additionally runs loop
// bodies on the calling thread. A pool of 1 spawns no threads and executes
// everything inline on the caller, which makes `threads=1` exactly the
// historic serial execution (no locks taken, no scheduling).
//
// Guarantees:
//  - Submit: tasks start in FIFO submission order (one shared queue); the
//    returned future observes completion and rethrows any exception the
//    task escaped with. With num_threads == 1 the task runs synchronously
//    inside Submit.
//  - ParallelFor: the calling thread participates in draining the
//    iteration space, so a ParallelFor issued from inside a pool task can
//    never deadlock even when every worker is busy — the nested call
//    simply runs its whole iteration space inline. Every iteration runs
//    exactly once; if bodies throw, the exception raised by the lowest
//    iteration index is rethrown after all iterations have finished.
//  - Destruction: every task already submitted completes before the
//    workers join (shutdown-while-busy drains the queue, it does not
//    cancel).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues `task` for execution on a worker (FIFO start order).
  std::future<void> Submit(std::function<void()> task);

  // Runs body(i) for every i in [0, n); see the class comment for the
  // participation, nesting, and exception contract.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  // Index of the calling pool worker thread in [0, num_threads() - 1), or
  // -1 when the caller is not a pool worker (e.g. the main thread).
  static int current_worker_index();

  // True while any ParallelFor issued through this pool is still running
  // (including single-threaded and nested inline runs, so the answer does
  // not depend on num_threads). Lets callers reject operations that are
  // unsafe — or would lose determinism — inside a parallel region, e.g.
  // Cluster::NewHashFunction.
  bool in_parallel_region() const {
    return active_parallel_.load(std::memory_order_acquire) > 0;
  }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerMain(int index);

  int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // Guarded by mu_.
  bool stopping_ = false;                    // Guarded by mu_.
  std::atomic<int> active_parallel_{0};      // Open ParallelFor calls.
  std::vector<std::thread> workers_;
};

}  // namespace mpcqp

#endif  // MPCQP_COMMON_THREAD_POOL_H_
