#ifndef MPCQP_COMMON_THREAD_POOL_H_
#define MPCQP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/exec_context.h"

namespace mpcqp {

// Fixed-size worker pool driving the simulator's parallel round execution.
//
// `num_threads` is the total degree of parallelism: the pool spawns
// num_threads - 1 worker threads, and ParallelFor additionally runs loop
// bodies on the calling thread. A pool of 1 spawns no threads and executes
// everything inline on the caller, which makes `threads=1` exactly the
// historic serial execution (no locks taken, no scheduling). Parallel
// loops fan out to at most the machine's core count (the caller plus
// spare cores): past that, helper tasks only add context switches. The
// cap affects scheduling only — results are identical either way — and
// the MPCQP_LOOP_HELPERS env var overrides the detected spare-core count.
//
// Guarantees:
//  - Submit: tasks start in FIFO submission order (one shared queue); the
//    returned future observes completion and rethrows any exception the
//    task escaped with. With num_threads == 1 the task runs synchronously
//    inside Submit.
//  - ParallelFor: the calling thread participates in draining the
//    iteration space, so a ParallelFor issued from inside a pool task can
//    never deadlock even when every worker is busy — the nested call
//    simply runs its whole iteration space inline. Every iteration runs
//    exactly once; if bodies throw, the exception raised by the lowest
//    iteration index is rethrown after all iterations have finished.
//  - ParallelForGrained: the morsel-driven variant. The iteration space
//    [0, n) is cut into chunks of `grain` iterations; each participant
//    (caller + helpers) owns a contiguous block of chunks in a per-worker
//    deque, drains it front to back (sequential memory order), and when
//    empty steals half-open work from the BACK of a victim's deque — the
//    classic work-stealing layout, so a straggler chunk never serializes
//    the loop behind one task. Same nesting/participation/exception
//    contract as ParallelFor (the winning exception is the one from the
//    chunk with the lowest begin; every chunk still runs).
//  - Destruction: every task already submitted completes before the
//    workers join (shutdown-while-busy drains the queue, it does not
//    cancel).
//
// Sharing one pool across many logical clusters (the serving runtime):
// a ThreadPool has no per-client state, so any number of Clusters — and
// therefore any number of concurrently executing queries — may issue
// Submit / ParallelFor / ParallelForGrained calls from their own driver
// threads at once. Helper tasks from different loops interleave FIFO in
// the shared queue (morsel-level interleaving across queries); each
// loop's completion is tracked by its own call-scoped state, so loops
// never observe each other. Two things make the sharing sound:
//  - current_worker_index() is POOL-scoped, not loop- or cluster-scoped:
//    a worker executing a morsel for cluster A inside a task submitted by
//    cluster B still reports its stable pool index, so per-cluster shard
//    arrays sized by num_threads() always index correctly.
//  - in_parallel_region() is CALLING-THREAD-scoped (a thread-local loop
//    depth, not a pool-wide counter): it answers "is this thread inside a
//    parallel loop body of any pool", so cluster A's driver can draw hash
//    functions between loops while cluster B's loops are in flight, while
//    a draw from inside a loop body is still caught at every thread
//    count. The MPCQP_LOOP_HELPERS fan-out cap is process-wide and
//    per-loop: each loop independently fans out to at most the spare-core
//    count, regardless of which cluster issued it.
//
// ExecContext propagation: every Submit/ParallelFor/ParallelForGrained
// call captures the calling thread's ExecContext (see
// common/exec_context.h) and installs it around each helper task or
// stolen morsel, so per-query attribution survives the hop onto shared
// workers.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues `task` for execution on a worker (FIFO start order).
  std::future<void> Submit(std::function<void()> task);

  // Runs body(i) for every i in [0, n); see the class comment for the
  // participation, nesting, and exception contract.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  // Runs body(begin, end) over disjoint ranges tiling [0, n), each at most
  // `grain` long (grain >= 1; the final chunk may be shorter). Ranges are
  // claimed through work-stealing per-worker deques; see the class
  // comment. The decomposition depends only on (n, grain) — never on the
  // thread count — so callers that aggregate per-chunk state in chunk
  // order get thread-count-independent results.
  void ParallelForGrained(int64_t n, int64_t grain,
                          const std::function<void(int64_t, int64_t)>& body);

  // Index of the calling pool worker thread in [0, num_threads() - 1), or
  // -1 when the caller is not a pool worker (e.g. the main thread or a
  // query driver thread). Pool-scoped and stable: the index never depends
  // on which cluster's work the worker happens to be executing.
  static int current_worker_index();

  // True while the CALLING THREAD is inside a parallel loop body (of any
  // pool; including single-threaded and nested inline runs, so the answer
  // does not depend on num_threads). Lets callers reject operations that
  // are unsafe — or would lose determinism — inside a parallel region,
  // e.g. Cluster::NewHashFunction. Deliberately thread-scoped rather than
  // pool-scoped: when several clusters share one pool, cluster A's driver
  // calling this between its own loops must not observe cluster B's loops
  // (a pool-wide counter would make NewHashFunction fail spuriously under
  // concurrent queries).
  bool in_parallel_region() const { return CallingThreadInParallelRegion(); }

  // Static spelling of the same thread-scoped predicate.
  static bool CallingThreadInParallelRegion();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerMain(int index);

  int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // Guarded by mu_.
  bool stopping_ = false;                    // Guarded by mu_.
  std::vector<std::thread> workers_;
};

// Process-wide shared-pool handle for the multi-query serving runtime.
// The first Shared() call creates THE process pool with the requested
// thread count; every later call returns the same pool (the count is
// fixed by the first caller — one work-stealing pool, not one per
// configuration). Callers that genuinely want a private pool (tests,
// single-query tools) construct a ThreadPool or shared_ptr directly.
class ExecutorRegistry {
 public:
  static std::shared_ptr<ThreadPool> Shared(int num_threads);
  // The current shared pool without creating one (nullptr if none).
  static std::shared_ptr<ThreadPool> SharedIfCreated();
  // Drops the registry's reference (tests; the pool itself survives while
  // any Cluster still holds it).
  static void ResetForTesting();
};

}  // namespace mpcqp

#endif  // MPCQP_COMMON_THREAD_POOL_H_
