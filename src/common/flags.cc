#include "common/flags.h"

#include <utility>

#include "common/check.h"
#include "common/parse.h"

namespace mpcqp {

bool SplitKeyValue(const std::string& arg, std::string* key,
                   std::string* value) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  *key = arg.substr(0, eq);
  *value = arg.substr(eq + 1);
  return true;
}

void FlagSet::Add(Flag flag) {
  MPCQP_CHECK(Find("--" + flag.name) == nullptr)
      << "duplicate flag --" << flag.name;
  flags_.push_back(std::move(flag));
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (name == "--" + flag.name || (!flag.alias.empty() && name == flag.alias))
      return &flag;
  }
  return nullptr;
}

namespace {

Status FlagError(const std::string& name, const std::string& message) {
  return InvalidArgumentError("--" + name + ": " + message);
}

}  // namespace

void FlagSet::String(const std::string& name, std::string* out,
                     const std::string& help, const std::string& alias) {
  Flag flag;
  flag.name = name;
  flag.alias = alias;
  flag.value_hint = "S";
  flag.help = help;
  flag.apply = [out](const std::string& text) {
    *out = text;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::Int(const std::string& name, int* out, int min_value,
                  int max_value, const std::string& help,
                  const std::string& alias) {
  Flag flag;
  flag.name = name;
  flag.alias = alias;
  flag.value_hint = "N";
  flag.help = help;
  flag.apply = [name, out, min_value, max_value](const std::string& text) {
    const auto parsed = ParseIntInRange(text, min_value, max_value);
    if (!parsed.ok()) return FlagError(name, parsed.status().message());
    *out = *parsed;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::Int64(const std::string& name, int64_t* out, int64_t min_value,
                    int64_t max_value, const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.value_hint = "N";
  flag.help = help;
  flag.apply = [name, out, min_value, max_value](const std::string& text) {
    const auto parsed = ParseInt64InRange(text, min_value, max_value);
    if (!parsed.ok()) return FlagError(name, parsed.status().message());
    *out = *parsed;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::Uint64(const std::string& name, uint64_t* out,
                     const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.value_hint = "N";
  flag.help = help;
  flag.apply = [name, out](const std::string& text) {
    const auto parsed = ParseUint64(text);
    if (!parsed.ok()) return FlagError(name, parsed.status().message());
    *out = *parsed;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::Double(const std::string& name, double* out, double min_value,
                     const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.value_hint = "X";
  flag.help = help;
  flag.apply = [name, out, min_value](const std::string& text) {
    const auto parsed = ParseDouble(text);
    if (!parsed.ok()) return FlagError(name, parsed.status().message());
    if (*parsed < min_value) {
      return FlagError(name, "must be >= " + std::to_string(min_value));
    }
    *out = *parsed;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::Bool(const std::string& name, bool* out,
                   const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.value_hint = "on|off";
  flag.help = help;
  flag.apply = [name, out](const std::string& text) {
    const auto parsed = ParseBool(text);
    if (!parsed.ok()) return FlagError(name, parsed.status().message());
    *out = *parsed;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::Switch(const std::string& name, bool* out,
                     const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.takes_value = false;
  flag.help = help;
  flag.apply = [out](const std::string&) {
    *out = true;
    return OkStatus();
  };
  Add(std::move(flag));
}

void FlagSet::KeyValue(const std::string& name,
                       std::map<std::string, std::string>* out,
                       const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.value_hint = "NAME=VALUE";
  flag.help = help;
  flag.apply = [name, out](const std::string& text) {
    std::string key;
    std::string value;
    if (!SplitKeyValue(text, &key, &value) || key.empty()) {
      return FlagError(name, "expected NAME=VALUE, got '" + text + "'");
    }
    (*out)[key] = value;
    return OkStatus();
  };
  Add(std::move(flag));
}

Status FlagSet::Parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept the --flag=value spelling by splitting at the first '='.
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    const Flag* flag = Find(arg);
    if (flag == nullptr) return InvalidArgumentError("unknown flag " + arg);
    if (!flag->takes_value) {
      if (has_inline_value) {
        return FlagError(flag->name, "does not take a value");
      }
      const Status applied = flag->apply("");
      if (!applied.ok()) return applied;
      continue;
    }
    std::string value;
    if (has_inline_value) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) return FlagError(flag->name, "missing value");
      value = argv[++i];
    }
    const Status applied = flag->apply(value);
    if (!applied.ok()) return applied;
  }
  return OkStatus();
}

std::string FlagSet::Help() const {
  std::string out;
  for (const Flag& flag : flags_) {
    std::string line = "  --" + flag.name;
    if (flag.takes_value) line += " " + flag.value_hint;
    if (!flag.alias.empty()) line += " (" + flag.alias + ")";
    while (line.size() < 28) line += ' ';
    out += line + " " + flag.help + "\n";
  }
  return out;
}

}  // namespace mpcqp
