#ifndef MPCQP_COMMON_TRACE_H_
#define MPCQP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

// Compile-time tracing gate. Build with -DMPCQP_TRACING=0 to compile every
// MPCQP_TRACE_* macro down to a no-op that still type-checks its arguments
// (inside an unevaluated sizeof), so a tracing call site can never rot in a
// tracing-disabled build.
#ifndef MPCQP_TRACING
#define MPCQP_TRACING 1
#endif

namespace mpcqp {

// Process-wide monotonic counters incremented from hot paths that have no
// Cluster in reach (e.g. Relation's copy-on-write detach). Metrics readers
// snapshot-and-diff; the counters are never reset.
struct TraceCounters {
  // Number of payload clones forced by mutating a shared COW relation.
  static std::atomic<int64_t> cow_detaches;
  // Bytes copied by those clones.
  static std::atomic<int64_t> cow_detach_bytes;
};

// Global trace-event collector emitting Chrome-trace ("chrome://tracing" /
// Perfetto "Trace Event Format") JSON.
//
// Disabled by default. When disabled, recording entry points reduce to one
// relaxed atomic load (ScopedTrace stores nothing); when enabled, events go
// to a mutex-guarded buffer — acceptable for a simulator whose traced
// sections are parallel regions of whole server fragments, not per-tuple
// work. Timestamps are steady-clock nanoseconds since process start;
// thread ids are pool worker indices (0 = main/non-pool thread).
//
// Tracing never feeds back into results: outputs and CostReports are
// byte-identical with tracing on or off (tests/trace_test.cc pins this).
class Tracer {
 public:
  static Tracer& Get();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  // Drops all buffered events.
  void Clear();

  // Nanoseconds since process start (steady clock).
  static int64_t NowNanos();

  // A completed span [start_ns, start_ns + dur_ns). `arg` >= 0 is emitted
  // as args:{"arg":N} (typically a server or task id). No-ops when
  // disabled.
  void RecordComplete(const std::string& name, const char* category,
                      int64_t start_ns, int64_t dur_ns, int64_t arg = -1);
  // A counter sample (Chrome "C" event), plotted as a time series.
  void RecordCounter(const char* name, int64_t value);

  int64_t event_count() const;

  // The full buffer as {"traceEvents":[...]} JSON.
  std::string ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;

  std::atomic<bool> enabled_{false};
};

// RAII span: records a complete event covering its own lifetime. Name and
// category must outlive the scope (string literals in practice).
class ScopedTrace {
 public:
  ScopedTrace(const char* name, const char* category, int64_t arg = -1)
      : active_(Tracer::Get().enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      arg_ = arg;
      start_ns_ = Tracer::NowNanos();
    }
  }
  ~ScopedTrace() {
    if (active_) {
      Tracer::Get().RecordComplete(name_, category_, start_ns_,
                                   Tracer::NowNanos() - start_ns_, arg_);
    }
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool active_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  int64_t arg_ = -1;
  int64_t start_ns_ = 0;
};

// Escapes `text` for embedding inside a JSON string literal (quotes,
// backslashes, control characters). Shared by the trace and stats sinks.
std::string JsonEscape(const std::string& text);

}  // namespace mpcqp

#define MPCQP_TRACE_CONCAT_INNER(a, b) a##b
#define MPCQP_TRACE_CONCAT(a, b) MPCQP_TRACE_CONCAT_INNER(a, b)

#if MPCQP_TRACING
// Span covering the rest of the enclosing block.
#define MPCQP_TRACE_SCOPE(name, category) \
  ::mpcqp::ScopedTrace MPCQP_TRACE_CONCAT(mpcqp_trace_, __LINE__)( \
      (name), (category))
// Same, with one integer arg (server / task id) attached to the event.
#define MPCQP_TRACE_SCOPE_ARG(name, category, arg) \
  ::mpcqp::ScopedTrace MPCQP_TRACE_CONCAT(mpcqp_trace_, __LINE__)( \
      (name), (category), static_cast<int64_t>(arg))
#define MPCQP_TRACE_COUNTER(name, value)                                 \
  do {                                                                   \
    if (::mpcqp::Tracer::Get().enabled()) {                              \
      ::mpcqp::Tracer::Get().RecordCounter((name),                       \
                                           static_cast<int64_t>(value)); \
    }                                                                    \
  } while (0)
#else
// Compile-time-checked no-ops: arguments are type-checked but never
// evaluated, and no code is generated.
#define MPCQP_TRACE_SCOPE(name, category)                   \
  do {                                                      \
    (void)sizeof(::mpcqp::ScopedTrace((name), (category))); \
  } while (0)
#define MPCQP_TRACE_SCOPE_ARG(name, category, arg)                 \
  do {                                                             \
    (void)sizeof(::mpcqp::ScopedTrace((name), (category),          \
                                      static_cast<int64_t>(arg))); \
  } while (0)
#define MPCQP_TRACE_COUNTER(name, value)                          \
  do {                                                            \
    (void)sizeof((name));                                         \
    (void)sizeof(static_cast<int64_t>(value));                    \
  } while (0)
#endif  // MPCQP_TRACING

#endif  // MPCQP_COMMON_TRACE_H_
