#include "common/exec_context.h"

namespace mpcqp {

namespace {

thread_local const ExecContext* tls_exec_context = nullptr;

}  // namespace

const ExecContext* CurrentExecContext() { return tls_exec_context; }

ExecContextScope::ExecContextScope(const ExecContext* context)
    : previous_(tls_exec_context) {
  tls_exec_context = context;
}

ExecContextScope::~ExecContextScope() { tls_exec_context = previous_; }

}  // namespace mpcqp
