#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace mpcqp {

Relation GenerateUniform(Rng& rng, int64_t rows, int arity, uint64_t domain) {
  MPCQP_CHECK_GT(arity, 0);
  MPCQP_CHECK_GT(domain, 0u);
  Relation out(arity);
  out.Reserve(rows);
  std::vector<Value> row(arity);
  for (int64_t i = 0; i < rows; ++i) {
    for (int c = 0; c < arity; ++c) row[c] = rng.Uniform(domain);
    out.AppendRow(row.data());
  }
  return out;
}

Relation GenerateMatchingDegree(Rng& rng, int64_t rows, int64_t degree) {
  MPCQP_CHECK_GE(degree, 1);
  MPCQP_CHECK_EQ(rows % degree, 0);
  const int64_t distinct = rows / degree;
  Relation out(2);
  out.Reserve(rows);
  // Shuffle the y-values so that value identity is uncorrelated with
  // insertion order.
  std::vector<Value> ys(distinct);
  for (int64_t i = 0; i < distinct; ++i) ys[i] = static_cast<Value>(i);
  for (int64_t i = distinct - 1; i > 0; --i) {
    std::swap(ys[i], ys[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
  }
  Value x = 0;
  for (int64_t d = 0; d < distinct; ++d) {
    for (int64_t k = 0; k < degree; ++k) {
      out.AppendRow({x++, ys[d]});
    }
  }
  return out;
}

ZipfDistribution::ZipfDistribution(uint64_t domain, double skew)
    : domain_(domain), skew_(skew) {
  MPCQP_CHECK_GT(domain, 0u);
  MPCQP_CHECK_GE(skew, 0.0);
  cdf_.resize(domain);
  double total = 0.0;
  for (uint64_t r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf_[r] = total;
  }
  for (double& v : cdf_) v /= total;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

Relation GenerateZipf(Rng& rng, int64_t rows, int arity, uint64_t domain,
                      int zipf_col, double skew) {
  MPCQP_CHECK_GE(zipf_col, 0);
  MPCQP_CHECK_LT(zipf_col, arity);
  const ZipfDistribution zipf(domain, skew);
  Relation out(arity);
  out.Reserve(rows);
  std::vector<Value> row(arity);
  for (int64_t i = 0; i < rows; ++i) {
    for (int c = 0; c < arity; ++c) {
      row[c] = (c == zipf_col) ? zipf.Sample(rng) : rng.Uniform(domain);
    }
    out.AppendRow(row.data());
  }
  return out;
}

Relation GenerateConstantColumn(int64_t rows, int col, Value value) {
  MPCQP_CHECK(col == 0 || col == 1);
  Relation out(2);
  out.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    const Value unique = static_cast<Value>(i);
    if (col == 0) {
      out.AppendRow({value, unique});
    } else {
      out.AppendRow({unique, value});
    }
  }
  return out;
}

Relation GenerateRandomGraph(Rng& rng, uint64_t nodes, int64_t edges) {
  MPCQP_CHECK_GE(nodes, 2u);
  MPCQP_CHECK_LE(static_cast<uint64_t>(edges), nodes * (nodes - 1));
  std::unordered_set<uint64_t> seen;
  Relation out(2);
  out.Reserve(edges);
  while (static_cast<int64_t>(seen.size()) < edges) {
    const uint64_t src = rng.Uniform(nodes);
    const uint64_t dst = rng.Uniform(nodes);
    if (src == dst) continue;
    const uint64_t code = src * nodes + dst;
    if (seen.insert(code).second) {
      out.AppendRow({src, dst});
    }
  }
  return out;
}

Relation AddClique(const Relation& graph, uint64_t first_node,
                   uint64_t clique_nodes) {
  MPCQP_CHECK_EQ(graph.arity(), 2);
  Relation out = graph;
  for (uint64_t a = 0; a < clique_nodes; ++a) {
    for (uint64_t b = 0; b < clique_nodes; ++b) {
      if (a == b) continue;
      out.AppendRow({first_node + a, first_node + b});
    }
  }
  return out;
}

std::vector<Relation> GenerateChain(Rng& rng, int num_atoms, int64_t rows,
                                    uint64_t domain) {
  MPCQP_CHECK_GE(num_atoms, 1);
  std::vector<Relation> atoms;
  atoms.reserve(num_atoms);
  for (int i = 0; i < num_atoms; ++i) {
    atoms.push_back(GenerateUniform(rng, rows, 2, domain));
  }
  return atoms;
}

std::vector<Relation> GenerateStar(Rng& rng, int num_atoms, int64_t rows,
                                   uint64_t domain) {
  return GenerateChain(rng, num_atoms, rows, domain);
}

}  // namespace mpcqp
