#ifndef MPCQP_WORKLOAD_GENERATOR_H_
#define MPCQP_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "relation/relation.h"

namespace mpcqp {

// Synthetic data generators for the experiments. Every generator takes an
// explicit Rng so workloads are reproducible.

// `rows` tuples of the given arity; each value uniform in [0, domain).
Relation GenerateUniform(Rng& rng, int64_t rows, int arity, uint64_t domain);

// Binary relation (x, y) with `rows` tuples in which every present y-value
// occurs exactly `degree` times (the "every value appears exactly d times"
// model of slide 25). x-values are unique. Requires degree >= 1 and
// degree | rows.
Relation GenerateMatchingDegree(Rng& rng, int64_t rows, int64_t degree);

// Samples from a Zipf(s) distribution over {0, ..., domain-1}: rank-r value
// has probability proportional to 1/(r+1)^s. Ranks are identity-mapped to
// values (value 0 is the most frequent), which keeps degree inspection easy.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t domain, double skew);

  uint64_t Sample(Rng& rng) const;
  uint64_t domain() const { return domain_; }
  double skew() const { return skew_; }

 private:
  uint64_t domain_;
  double skew_;
  std::vector<double> cdf_;
};

// `rows` tuples of the given arity; column `zipf_col` is Zipf(s) over
// [0, domain), other columns uniform over [0, domain).
Relation GenerateZipf(Rng& rng, int64_t rows, int arity, uint64_t domain,
                      int zipf_col, double skew);

// Binary relation where ALL rows share one join value (column `col` is the
// constant `value`), the other column taking unique values: the extreme
// skew of slide 27.
Relation GenerateConstantColumn(int64_t rows, int col, Value value);

// A simple random directed graph as an edge relation (src, dst) with
// `edges` distinct edges, no self-loops. nodes >= 2.
Relation GenerateRandomGraph(Rng& rng, uint64_t nodes, int64_t edges);

// Adds `clique_nodes` fully connected nodes to `graph` (both directions),
// guaranteeing a rich triangle count; returns the combined edge relation.
Relation AddClique(const Relation& graph, uint64_t first_node,
                   uint64_t clique_nodes);

// Data for a path (chain) query R1(x0,x1), R2(x1,x2), ..., Rk(x_{k-1},x_k):
// one binary relation per atom, `rows` tuples each, values uniform in
// [0, domain). Small domains make joins dense, large domains sparse.
std::vector<Relation> GenerateChain(Rng& rng, int num_atoms, int64_t rows,
                                    uint64_t domain);

// Data for a star query R1(x0,x1), R2(x0,x2), ..., Rk(x0,xk): the center
// variable x0 is drawn uniform in [0, domain) in every relation.
std::vector<Relation> GenerateStar(Rng& rng, int num_atoms, int64_t rows,
                                   uint64_t domain);

}  // namespace mpcqp

#endif  // MPCQP_WORKLOAD_GENERATOR_H_
