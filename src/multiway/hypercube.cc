#include "multiway/hypercube.h"

#include <algorithm>

#include "common/check.h"
#include "common/trace.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "query/generic_join.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Drops rows of an atom instance that violate intra-atom repeated
// variables (they can never join; filtering locally is free and saves
// communication).
Relation PrefilterRepeats(const Atom& atom, const Relation& rel) {
  bool has_repeats = false;
  for (int c = 0; c < atom.arity(); ++c) {
    for (int d = c + 1; d < atom.arity(); ++d) {
      if (atom.vars[c] == atom.vars[d]) has_repeats = true;
    }
  }
  if (!has_repeats) return rel;
  return Filter(rel, [&](const Value* row) {
    for (int c = 0; c < atom.arity(); ++c) {
      for (int d = c + 1; d < atom.arity(); ++d) {
        if (atom.vars[c] == atom.vars[d] && row[c] != row[d]) return false;
      }
    }
    return true;
  });
}

}  // namespace

HyperCubeResult HyperCubeJoin(Cluster& cluster, const ConjunctiveQuery& q,
                              const std::vector<DistRelation>& atoms,
                              const HyperCubeOptions& options) {
  const int p = cluster.num_servers();
  const int k = q.num_vars();
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) {
    MPCQP_CHECK_EQ(atoms[j].arity(), q.atom(j).arity());
    MPCQP_CHECK_EQ(atoms[j].num_servers(), p);
  }

  // Shares: forced, or optimized for the observed sizes.
  std::vector<int> shares;
  if (!options.forced_shares.empty()) {
    MPCQP_CHECK_EQ(static_cast<int>(options.forced_shares.size()), k);
    shares = options.forced_shares;
    int64_t product = 1;
    for (int s : shares) {
      MPCQP_CHECK_GE(s, 1);
      product *= s;
    }
    MPCQP_CHECK_LE(product, p);
  } else {
    std::vector<int64_t> sizes;
    sizes.reserve(q.num_atoms());
    for (const DistRelation& a : atoms) sizes.push_back(a.TotalSize());
    shares = ComputeShares(q, sizes, p, options.rounding).shares;
  }

  // Mixed-radix strides: coordinate c = (c_0..c_{k-1}) lives on server
  // Σ c_i * stride_i; only the first Π shares servers are used.
  std::vector<int64_t> strides(k, 1);
  for (int v = 1; v < k; ++v) strides[v] = strides[v - 1] * shares[v - 1];

  // One independent hash function per variable.
  std::vector<HashFunction> hashes;
  hashes.reserve(k);
  for (int v = 0; v < k; ++v) hashes.push_back(cluster.NewHashFunction());

  MPCQP_TRACE_SCOPE("hypercube", "algorithm");
  // Round 1 (the only round): multicast every atom.
  cluster.BeginRound("hypercube: multicast");
  std::vector<DistRelation> routed;
  routed.reserve(q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) {
    const Atom& atom = q.atom(j);
    // Fixed dimensions: first-occurrence column per distinct variable.
    std::vector<std::pair<int, int>> var_cols;  // (var, column).
    for (int c = 0; c < atom.arity(); ++c) {
      const int v = atom.vars[c];
      bool first = true;
      for (int d = 0; d < c; ++d) {
        if (atom.vars[d] == v) first = false;
      }
      if (first) var_cols.push_back({v, c});
    }
    std::vector<bool> is_fixed(k, false);
    for (const auto& [v, c] : var_cols) is_fixed[v] = true;
    std::vector<int> free_vars;
    for (int v = 0; v < k; ++v) {
      if (!is_fixed[v]) free_vars.push_back(v);
    }

    DistRelation prefiltered(atoms[j].arity(), p);
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      prefiltered.fragment(s) = PrefilterRepeats(atom, atoms[j].fragment(s));
    });

    routed.push_back(Route(
        cluster, prefiltered,
        [&, free_vars, var_cols](const Value* row, std::vector<int>& dests) {
          int64_t base = 0;
          for (const auto& [v, c] : var_cols) {
            base += static_cast<int64_t>(
                        hashes[v].Bucket(row[c], shares[v])) *
                    strides[v];
          }
          // Enumerate all combinations of the free dimensions.
          dests.push_back(static_cast<int>(base));
          for (int v : free_vars) {
            const size_t count = dests.size();
            for (int coord = 1; coord < shares[v]; ++coord) {
              for (size_t i = 0; i < count; ++i) {
                dests.push_back(
                    static_cast<int>(dests[i] + coord * strides[v]));
              }
            }
          }
        },
        ""));
  }
  cluster.EndRound();

  // Local evaluation on every (used) server: one pool task per server,
  // each with its own atom scratch.
  std::vector<Relation> outputs(p);
  ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
  cluster.pool().ParallelFor(p, [&](int64_t s) {
    MPCQP_TRACE_SCOPE_ARG("local eval", "compute", s);
    std::vector<Relation> local_atoms(q.num_atoms());
    bool any = false;
    for (int j = 0; j < q.num_atoms(); ++j) {
      local_atoms[j] = routed[j].fragment(s);
      if (!local_atoms[j].empty()) any = true;
    }
    outputs[s] = any ? (options.local == LocalEvaluator::kBinaryJoins
                            ? EvalJoinLocal(q, local_atoms)
                            : EvalJoinWcoj(q, local_atoms))
                     : Relation(k);
  });
  return HyperCubeResult{DistRelation::FromFragments(std::move(outputs)),
                         std::move(shares)};
}

}  // namespace mpcqp
