#ifndef MPCQP_MULTIWAY_SKEW_HC_H_
#define MPCQP_MULTIWAY_SKEW_HC_H_

#include <cstdint>
#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "multiway/shares.h"
#include "query/query.h"

namespace mpcqp {

// The SkewHC algorithm (deck slides 46-51): a one-round multiway join that
// is worst-case optimal on skewed inputs, with load IN/p^{1/ψ*}.
//
// A value is heavy for variable x if its degree exceeds
// threshold_factor·IN/p in some atom containing x. The input splits into
// residual queries, one per heavy/light combination over the variables:
// heavy variables are removed from the hashing dimensions (their values
// "ride along" in the tuples and keep share 1), atoms reduced to their
// light variables form the residual hypergraph whose own share LP picks
// the grid, and atoms left with no light variable become broadcast
// filters. All residual queries execute in parallel in the same round;
// each output tuple is produced by exactly one residual at exactly one
// server.
struct SkewHcOptions {
  // Multiplies the IN/p heavy threshold (ablation knob A2).
  double threshold_factor = 1.0;
  ShareRounding rounding = ShareRounding::kFloorGreedy;
};

// Book-keeping about one executed residual query (a heavy/light combo),
// e.g. to print the slide-48..50 table.
struct ResidualInfo {
  std::vector<int> heavy_vars;       // Variable ids marked heavy.
  std::vector<int> shares;           // Per original variable (heavy -> 1).
  std::vector<int64_t> class_sizes;  // Per atom: tuples routed under combo.
  int64_t output_size = 0;
};

struct SkewHcResult {
  DistRelation output;  // Columns = query variables in id order.
  std::vector<ResidualInfo> residuals;  // Executed combos only.
};

SkewHcResult SkewHcJoin(Cluster& cluster, const ConjunctiveQuery& q,
                        const std::vector<DistRelation>& atoms,
                        const SkewHcOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_SKEW_HC_H_
