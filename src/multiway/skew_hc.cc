#include "multiway/skew_hc.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/check.h"
#include "common/flat_counter.h"
#include "common/trace.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "query/hypergraph_lp.h"
#include "query/local_eval.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// First-occurrence column of each distinct variable of an atom.
std::vector<std::pair<int, int>> DistinctVarCols(const Atom& atom) {
  std::vector<std::pair<int, int>> var_cols;
  for (int c = 0; c < atom.arity(); ++c) {
    const int v = atom.vars[c];
    bool first = true;
    for (int d = 0; d < c; ++d) {
      if (atom.vars[d] == v) first = false;
    }
    if (first) var_cols.push_back({v, c});
  }
  return var_cols;
}

// Heaviness signature of a row restricted to the atom's variables: bit v
// set iff the row's value for v is heavy.
uint32_t RowSignature(const Value* row,
                      const std::vector<std::pair<int, int>>& var_cols,
                      const std::vector<std::unordered_set<Value>>& heavy) {
  uint32_t sig = 0;
  for (const auto& [v, c] : var_cols) {
    if (heavy[v].count(row[c]) > 0) sig |= (1u << v);
  }
  return sig;
}

}  // namespace

SkewHcResult SkewHcJoin(Cluster& cluster, const ConjunctiveQuery& q,
                        const std::vector<DistRelation>& atoms,
                        const SkewHcOptions& options) {
  const int p = cluster.num_servers();
  const int k = q.num_vars();
  MPCQP_TRACE_SCOPE("skew_hc", "algorithm");
  MPCQP_CHECK_LE(k, 30) << "SkewHC uses a bitmask over variables";
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) {
    MPCQP_CHECK_EQ(atoms[j].arity(), q.atom(j).arity());
    MPCQP_CHECK_EQ(atoms[j].num_servers(), p);
  }

  int64_t total_in = 0;
  for (const DistRelation& a : atoms) total_in += a.TotalSize();
  const int64_t threshold = std::max<int64_t>(
      1, static_cast<int64_t>(options.threshold_factor *
                              static_cast<double>(total_in) / p));

  // Heavy sets per variable: degree > threshold in any atom containing it.
  std::vector<std::unordered_set<Value>> heavy(k);
  for (int j = 0; j < q.num_atoms(); ++j) {
    for (const auto& [v, c] : DistinctVarCols(q.atom(j))) {
      FlatCounter counts;
      for (int s = 0; s < p; ++s) {
        const Relation& frag = atoms[j].fragment(s);
        for (int64_t i = 0; i < frag.size(); ++i) counts.Add(frag.at(i, c));
      }
      for (const auto& [value, count] : counts.SortedEntries()) {
        if (count > threshold) heavy[v].insert(value);
      }
    }
  }

  uint32_t heavy_capable = 0;
  for (int v = 0; v < k; ++v) {
    if (!heavy[v].empty()) heavy_capable |= (1u << v);
  }

  // Per-atom class sizes by signature (over the atom's own variables).
  std::vector<std::map<uint32_t, int64_t>> class_sizes(q.num_atoms());
  std::vector<std::vector<std::pair<int, int>>> atom_var_cols;
  for (int j = 0; j < q.num_atoms(); ++j) {
    atom_var_cols.push_back(DistinctVarCols(q.atom(j)));
    for (int s = 0; s < p; ++s) {
      const Relation& frag = atoms[j].fragment(s);
      for (int64_t i = 0; i < frag.size(); ++i) {
        ++class_sizes[j][RowSignature(frag.row(i), atom_var_cols[j], heavy)];
      }
    }
  }
  std::vector<uint32_t> atom_var_mask(q.num_atoms(), 0);
  for (int j = 0; j < q.num_atoms(); ++j) {
    for (const auto& [v, c] : atom_var_cols[j]) {
      atom_var_mask[j] |= (1u << v);
    }
  }

  // Enumerate combos (subsets of heavy-capable variables); plan each.
  struct ComboPlan {
    uint32_t combo = 0;
    std::vector<int> shares;      // Per original variable; heavy -> 1.
    std::vector<int64_t> sizes;   // Per atom class size.
    int64_t grid_size = 1;        // Π shares.
    int offset = 0;               // Rotation into [0, p).
  };
  std::vector<ComboPlan> plans;
  std::vector<uint32_t> combos;
  // Standard submask enumeration of heavy_capable (includes 0).
  for (uint32_t sub = heavy_capable;; sub = (sub - 1) & heavy_capable) {
    combos.push_back(sub);
    if (sub == 0) break;
  }
  std::sort(combos.begin(), combos.end());
  for (uint32_t combo : combos) {
    ComboPlan plan;
    plan.combo = combo;
    plan.sizes.resize(q.num_atoms());
    bool viable = true;
    for (int j = 0; j < q.num_atoms(); ++j) {
      const uint32_t sig = combo & atom_var_mask[j];
      const auto it = class_sizes[j].find(sig);
      plan.sizes[j] = it == class_sizes[j].end() ? 0 : it->second;
      if (plan.sizes[j] == 0) viable = false;
    }
    if (!viable) continue;

    // Residual query over light variables.
    std::vector<int> light_vars;
    for (int v = 0; v < k; ++v) {
      if ((combo & (1u << v)) == 0) light_vars.push_back(v);
    }
    plan.shares.assign(k, 1);
    if (!light_vars.empty()) {
      std::vector<int> light_index(k, -1);
      for (size_t i = 0; i < light_vars.size(); ++i) {
        light_index[light_vars[i]] = static_cast<int>(i);
      }
      std::vector<std::string> names;
      for (int v : light_vars) names.push_back(q.var_name(v));
      std::vector<Atom> residual_atoms;
      std::vector<int64_t> residual_sizes;
      for (int j = 0; j < q.num_atoms(); ++j) {
        Atom atom;
        atom.name = q.atom(j).name;
        for (const auto& [v, c] : atom_var_cols[j]) {
          if (light_index[v] >= 0) atom.vars.push_back(light_index[v]);
        }
        if (!atom.vars.empty()) {
          residual_atoms.push_back(std::move(atom));
          residual_sizes.push_back(plan.sizes[j]);
        }
      }
      if (!residual_atoms.empty()) {
        // A light variable only in filter atoms cannot occur: every light
        // variable's atoms all contain it as a light variable.
        const ConjunctiveQuery residual =
            ConjunctiveQuery::Make(names, residual_atoms);
        const IntegerShares shares =
            ComputeShares(residual, residual_sizes, p, options.rounding);
        for (size_t i = 0; i < light_vars.size(); ++i) {
          plan.shares[light_vars[i]] = shares.shares[i];
        }
      }
    }
    plan.grid_size = 1;
    for (int v = 0; v < k; ++v) plan.grid_size *= plan.shares[v];
    // Rotate each combo's grid to a different region of the cluster.
    plan.offset = static_cast<int>((combo * 2654435761u) % p);
    plans.push_back(std::move(plan));
  }

  // Per-variable hash functions (shared across combos).
  std::vector<HashFunction> hashes;
  for (int v = 0; v < k; ++v) hashes.push_back(cluster.NewHashFunction());

  // The single communication round: route every (combo, atom) class.
  cluster.BeginRound("skew-hc: multicast residual classes");
  // routed[combo_index][atom] fragments.
  std::vector<std::vector<DistRelation>> routed;
  routed.reserve(plans.size());
  for (const ComboPlan& plan : plans) {
    std::vector<DistRelation> combo_routed;
    for (int j = 0; j < q.num_atoms(); ++j) {
      const uint32_t want_sig = plan.combo & atom_var_mask[j];
      // Class members only (local filter; free).
      DistRelation clazz(atoms[j].arity(), p);
      for (int s = 0; s < p; ++s) {
        const Relation& frag = atoms[j].fragment(s);
        for (int64_t i = 0; i < frag.size(); ++i) {
          if (RowSignature(frag.row(i), atom_var_cols[j], heavy) ==
              want_sig) {
            clazz.fragment(s).AppendRowFrom(frag, i);
          }
        }
      }

      // Strides over the combo's grid.
      std::vector<int64_t> strides(k, 0);
      int64_t acc = 1;
      for (int v = 0; v < k; ++v) {
        strides[v] = acc;
        acc *= plan.shares[v];
      }
      std::vector<int> fixed_light;   // Light vars present in this atom.
      std::vector<int> fixed_cols;
      for (const auto& [v, c] : atom_var_cols[j]) {
        if ((plan.combo & (1u << v)) == 0) {
          fixed_light.push_back(v);
          fixed_cols.push_back(c);
        }
      }
      std::vector<int> free_light;  // Light vars absent from this atom.
      for (int v = 0; v < k; ++v) {
        if ((plan.combo & (1u << v)) != 0) continue;
        if (std::find(fixed_light.begin(), fixed_light.end(), v) ==
            fixed_light.end()) {
          free_light.push_back(v);
        }
      }

      combo_routed.push_back(Route(
          cluster, clazz,
          [&, fixed_light, fixed_cols, free_light, strides,
           plan](const Value* row, std::vector<int>& dests) {
            int64_t base = 0;
            for (size_t i = 0; i < fixed_light.size(); ++i) {
              const int v = fixed_light[i];
              base += static_cast<int64_t>(hashes[v].Bucket(
                          row[fixed_cols[i]], plan.shares[v])) *
                      strides[v];
            }
            dests.push_back(
                static_cast<int>((plan.offset + base) % p));
            for (int v : free_light) {
              const size_t count = dests.size();
              for (int coord = 1; coord < plan.shares[v]; ++coord) {
                for (size_t i = 0; i < count; ++i) {
                  // Re-derive the linear coordinate before rotation.
                  const int64_t lin =
                      (dests[i] - plan.offset % p + p) % p;
                  dests.push_back(static_cast<int>(
                      (plan.offset + lin + coord * strides[v]) % p));
                }
              }
            }
          },
          ""));
    }
    routed.push_back(std::move(combo_routed));
  }
  cluster.EndRound();

  // Local evaluation: per combo per server (classes stay separated so a
  // tuple multicast under two combos never double-counts).
  SkewHcResult result{DistRelation(k, p), {}};
  std::vector<Relation> local_atoms(q.num_atoms());
  ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
  MPCQP_TRACE_SCOPE("local eval", "compute");
  for (size_t ci = 0; ci < plans.size(); ++ci) {
    ResidualInfo info;
    for (int v = 0; v < k; ++v) {
      if ((plans[ci].combo & (1u << v)) != 0) info.heavy_vars.push_back(v);
    }
    info.shares = plans[ci].shares;
    info.class_sizes = plans[ci].sizes;
    for (int s = 0; s < p; ++s) {
      bool all_nonempty = true;
      for (int j = 0; j < q.num_atoms(); ++j) {
        local_atoms[j] = routed[ci][j].fragment(s);
        if (local_atoms[j].empty()) all_nonempty = false;
      }
      if (!all_nonempty) continue;
      const Relation out = EvalJoinLocal(q, local_atoms);
      info.output_size += out.size();
      result.output.fragment(s).Append(out);
    }
    result.residuals.push_back(std::move(info));
  }
  return result;
}

}  // namespace mpcqp
