#include "multiway/bigjoin.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "join/semi_join.h"
#include "mpc/exchange.h"
#include "mpc/metrics.h"
#include "relation/key_index.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Locally normalizes an atom: intra-atom repeats filtered, one column per
// distinct variable, deduplicated. Returns fragments + the variable list.
std::pair<DistRelation, std::vector<int>> NormalizeAtom(
    ThreadPool& pool, const Atom& atom, const DistRelation& rel) {
  std::vector<int> vars;
  std::vector<int> cols;
  for (int c = 0; c < atom.arity(); ++c) {
    const int v = atom.vars[c];
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
      cols.push_back(c);
    }
  }
  const bool repeats = static_cast<int>(vars.size()) != atom.arity();
  DistRelation out(static_cast<int>(vars.size()), rel.num_servers());
  pool.ParallelFor(rel.num_servers(), [&](int64_t s) {
    Relation frag = rel.fragment(s);  // COW handle; no bytes move.
    if (repeats) {
      frag = Filter(frag, [&](const Value* row) {
        for (int c = 0; c < atom.arity(); ++c) {
          for (int d = c + 1; d < atom.arity(); ++d) {
            if (atom.vars[c] == atom.vars[d] && row[c] != row[d]) {
              return false;
            }
          }
        }
        return true;
      });
    }
    out.fragment(s) = Dedup(Project(frag, cols));
  });
  return {std::move(out), std::move(vars)};
}

// Column positions in `haystack` of each entry of `needles`.
std::vector<int> PositionsOf(const std::vector<int>& needles,
                             const std::vector<int>& haystack) {
  std::vector<int> positions;
  for (int n : needles) {
    const auto it = std::find(haystack.begin(), haystack.end(), n);
    MPCQP_CHECK(it != haystack.end());
    positions.push_back(static_cast<int>(it - haystack.begin()));
  }
  return positions;
}

// Appends a globally-unique id column (local compute).
DistRelation AppendIds(const DistRelation& rel) {
  DistRelation out(rel.arity() + 1, rel.num_servers());
  Value id = 0;
  std::vector<Value> row(rel.arity() + 1);
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    for (int64_t i = 0; i < frag.size(); ++i) {
      std::copy(frag.row(i), frag.row(i) + rel.arity(), row.begin());
      row[rel.arity()] = id++;
      out.fragment(s).AppendRow(row.data());
    }
  }
  return out;
}

// One involved atom's role in an extension step.
struct Proposer {
  int atom = 0;
  std::vector<int> shared_vars;   // Bound vars present in the atom.
  std::vector<int> prefix_keys;   // Their columns in the prefix relation.
  // Projection onto shared_vars + {var}: fragments, with key columns
  // 0..|shared|-1 and the new value last.
  DistRelation projection{0, 1};
  // Global distinct v-count when shared_vars is empty (a constant
  // per-prefix count).
  int64_t global_count = 0;
};

}  // namespace

BigJoinResult BigJoin(Cluster& cluster, const ConjunctiveQuery& q,
                      const std::vector<DistRelation>& atoms,
                      const BigJoinOptions& options) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  MPCQP_TRACE_SCOPE("bigjoin", "algorithm");
  const int rounds_before = cluster.cost_report().num_rounds();

  std::vector<int> order = options.var_order;
  if (order.empty()) {
    for (int v = 0; v < q.num_vars(); ++v) order.push_back(v);
  }
  MPCQP_CHECK_EQ(static_cast<int>(order.size()), q.num_vars());

  std::vector<DistRelation> rels;
  std::vector<std::vector<int>> rel_vars;
  for (int j = 0; j < q.num_atoms(); ++j) {
    auto [rel, vars] = NormalizeAtom(cluster.pool(), q.atom(j), atoms[j]);
    rels.push_back(std::move(rel));
    rel_vars.push_back(std::move(vars));
  }

  DistRelation prefixes(0, p);
  std::vector<int> bound;

  for (const int var : order) {
    std::vector<int> involved;
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (std::find(rel_vars[j].begin(), rel_vars[j].end(), var) !=
          rel_vars[j].end()) {
        involved.push_back(j);
      }
    }
    MPCQP_CHECK(!involved.empty());

    // Build every involved atom's projection (shared bound vars + var).
    std::vector<Proposer> proposers;
    for (int j : involved) {
      Proposer proposer;
      proposer.atom = j;
      for (int v : bound) {
        if (std::find(rel_vars[j].begin(), rel_vars[j].end(), v) !=
            rel_vars[j].end()) {
          proposer.shared_vars.push_back(v);
        }
      }
      proposer.prefix_keys = PositionsOf(proposer.shared_vars, bound);
      std::vector<int> cols = PositionsOf(proposer.shared_vars, rel_vars[j]);
      cols.push_back(PositionsOf({var}, rel_vars[j]).front());
      proposer.projection =
          DistRelation(static_cast<int>(cols.size()), p);
      cluster.pool().ParallelFor(p, [&](int64_t s) {
        proposer.projection.fragment(s) =
            Dedup(Project(rels[j].fragment(s), cols));
      });
      if (proposer.shared_vars.empty()) {
        // Constant per-prefix candidate count: the global distinct count
        // of v-values (a scalar a deployment piggybacks on its catalog;
        // not metered).
        const Relation values = Dedup(Project(
            proposer.projection.Collect(),
            {proposer.projection.arity() - 1}));
        proposer.global_count = values.size();
      }
      proposers.push_back(std::move(proposer));
    }

    if (bound.empty()) {
      // Seed: the smallest atom's value set, deduplicated globally; then
      // filter by every other involved atom's value set.
      size_t best = 0;
      for (size_t i = 1; i < proposers.size(); ++i) {
        if (proposers[i].global_count < proposers[best].global_count) {
          best = i;
        }
      }
      const HashFunction hash = cluster.NewHashFunction();
      const DistRelation parts =
          HashPartition(cluster, proposers[best].projection, {0}, hash,
                        "bigjoin: seed " + q.var_name(var));
      DistRelation seeded(1, p);
      for (int s = 0; s < p; ++s) {
        seeded.fragment(s) = Dedup(parts.fragment(s));
      }
      prefixes = std::move(seeded);
      bound.push_back(var);
      for (size_t i = 0; i < proposers.size(); ++i) {
        if (i == best) continue;
        prefixes = DistributedSemijoin(
            cluster, prefixes, proposers[i].projection, {0},
            {proposers[i].projection.arity() - 1});
      }
      continue;
    }

    // ---- Count round: annotate each prefix with every proposer's
    // candidate count. Prefixes carry an id; all co-partitions share one
    // MPC round. ----
    const DistRelation prefixes_with_id = AppendIds(prefixes);
    const int id_col = prefixes_with_id.arity() - 1;

    struct CountParts {
      DistRelation prefix_parts{0, 1};
      DistRelation proj_parts{0, 1};
    };
    std::vector<CountParts> count_parts(proposers.size());
    cluster.BeginRound("bigjoin: count " + q.var_name(var));
    for (size_t i = 0; i < proposers.size(); ++i) {
      if (proposers[i].shared_vars.empty()) continue;
      const HashFunction hash = cluster.NewHashFunction();
      std::vector<int> proj_keys(proposers[i].shared_vars.size());
      for (size_t c = 0; c < proj_keys.size(); ++c) {
        proj_keys[c] = static_cast<int>(c);
      }
      count_parts[i].prefix_parts = HashPartition(
          cluster, prefixes_with_id, proposers[i].prefix_keys, hash, "");
      count_parts[i].proj_parts =
          HashPartition(cluster, proposers[i].projection, proj_keys, hash,
                        "");
    }
    cluster.EndRound();

    // Local counting, then one round to bring all counts to the prefix's
    // id-home where the argmin proposer is chosen.
    DistRelation count_tuples(3, p);  // (prefix id, proposer idx, count).
    for (size_t i = 0; i < proposers.size(); ++i) {
      if (proposers[i].shared_vars.empty()) continue;
      std::vector<int> proj_keys(proposers[i].shared_vars.size());
      for (size_t c = 0; c < proj_keys.size(); ++c) {
        proj_keys[c] = static_cast<int>(c);
      }
      ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
      cluster.pool().ParallelFor(p, [&](int64_t s) {
        MPCQP_TRACE_SCOPE_ARG("local count", "compute", s);
        const Relation deduped = Dedup(count_parts[i].proj_parts.fragment(s));
        const KeyIndex index(deduped, proj_keys);
        const Relation& pf = count_parts[i].prefix_parts.fragment(s);
        std::vector<Value> key(proj_keys.size());
        for (int64_t r = 0; r < pf.size(); ++r) {
          for (size_t c = 0; c < proposers[i].prefix_keys.size(); ++c) {
            key[c] = pf.at(r, proposers[i].prefix_keys[c]);
          }
          const int64_t count =
              static_cast<int64_t>(index.Lookup(key.data()).size());
          count_tuples.fragment(s).AppendRow(
              {pf.at(r, id_col), static_cast<Value>(i),
               static_cast<Value>(count)});
        }
      });
    }

    const HashFunction id_hash = cluster.NewHashFunction();
    cluster.BeginRound("bigjoin: argmin " + q.var_name(var));
    const DistRelation counts_home =
        HashPartition(cluster, count_tuples, {0}, id_hash, "");
    const DistRelation prefix_home =
        HashPartition(cluster, prefixes_with_id, {id_col}, id_hash, "");
    cluster.EndRound();

    // Choose the argmin proposer per prefix (constant-count proposers
    // compete with their global count).
    int64_t best_constant = -1;
    int constant_idx = -1;
    for (size_t i = 0; i < proposers.size(); ++i) {
      if (proposers[i].shared_vars.empty() &&
          (constant_idx < 0 || proposers[i].global_count < best_constant)) {
        best_constant = proposers[i].global_count;
        constant_idx = static_cast<int>(i);
      }
    }
    DistRelation chosen(prefixes_with_id.arity() + 1, p);  // +choice col.
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      std::map<Value, std::pair<int64_t, int>> best;  // id -> (count, idx).
      const Relation& cf = counts_home.fragment(s);
      for (int64_t r = 0; r < cf.size(); ++r) {
        const Value id = cf.at(r, 0);
        const int idx = static_cast<int>(cf.at(r, 1));
        const int64_t count = static_cast<int64_t>(cf.at(r, 2));
        const auto it = best.find(id);
        if (it == best.end() || count < it->second.first) {
          best[id] = {count, idx};
        }
      }
      const Relation& pf = prefix_home.fragment(s);
      std::vector<Value> row(chosen.arity());
      for (int64_t r = 0; r < pf.size(); ++r) {
        const Value id = pf.at(r, id_col);
        int choice = constant_idx;
        int64_t count = best_constant;
        const auto it = best.find(id);
        if (it != best.end() &&
            (choice < 0 || it->second.first < count)) {
          choice = it->second.second;
          count = it->second.first;
        }
        MPCQP_CHECK_GE(choice, 0);
        if (count == 0) continue;  // No candidates anywhere: prefix dies.
        std::copy(pf.row(r), pf.row(r) + pf.arity(), row.begin());
        row[pf.arity()] = static_cast<Value>(choice);
        chosen.fragment(s).AppendRow(row.data());
      }
    });
    const int choice_col = chosen.arity() - 1;

    // ---- Extend round: each prefix travels to its chosen proposer's
    // shard; all shuffles share one MPC round. ----
    cluster.BeginRound("bigjoin: extend " + q.var_name(var));
    struct ExtendParts {
      DistRelation prefix_parts{0, 1};
      DistRelation proj_parts{0, 1};
      bool broadcast = false;
    };
    std::vector<ExtendParts> extend_parts(proposers.size());
    for (size_t i = 0; i < proposers.size(); ++i) {
      // Prefixes that chose proposer i (local filter).
      DistRelation mine(chosen.arity(), p);
      cluster.pool().ParallelFor(p, [&](int64_t s) {
        mine.fragment(s) = Filter(chosen.fragment(s), [&](const Value* r) {
          return r[choice_col] == static_cast<Value>(i);
        });
      });
      if (mine.TotalSize() == 0) continue;
      if (proposers[i].shared_vars.empty()) {
        extend_parts[i].broadcast = true;
        extend_parts[i].prefix_parts = mine;
        extend_parts[i].proj_parts =
            Broadcast(cluster, proposers[i].projection, "");
      } else {
        const HashFunction hash = cluster.NewHashFunction();
        std::vector<int> proj_keys(proposers[i].shared_vars.size());
        for (size_t c = 0; c < proj_keys.size(); ++c) {
          proj_keys[c] = static_cast<int>(c);
        }
        extend_parts[i].prefix_parts = HashPartition(
            cluster, mine, proposers[i].prefix_keys, hash, "");
        extend_parts[i].proj_parts = HashPartition(
            cluster, proposers[i].projection, proj_keys, hash, "");
      }
    }
    cluster.EndRound();

    DistRelation extended(static_cast<int>(bound.size()) + 1, p);
    for (size_t i = 0; i < proposers.size(); ++i) {
      if (extend_parts[i].prefix_parts.arity() == 0) continue;
      std::vector<int> proj_keys(proposers[i].shared_vars.size());
      for (size_t c = 0; c < proj_keys.size(); ++c) {
        proj_keys[c] = static_cast<int>(c);
      }
      ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
      cluster.pool().ParallelFor(p, [&](int64_t s) {
        MPCQP_TRACE_SCOPE_ARG("local extend", "compute", s);
        const Relation proj =
            Dedup(extend_parts[i].proj_parts.fragment(s));
        // Join emits prefix columns (incl. id & choice) + the new value;
        // strip the bookkeeping columns.
        const Relation joined = HashJoinLocal(
            extend_parts[i].prefix_parts.fragment(s), proj,
            proposers[i].prefix_keys, proj_keys);
        std::vector<int> keep;
        for (int c = 0; c < static_cast<int>(bound.size()); ++c) {
          keep.push_back(c);
        }
        keep.push_back(joined.arity() - 1);  // The new value.
        const Relation stripped = Project(joined, keep);
        extended.fragment(s).Append(stripped);
      });
    }
    bound.push_back(var);
    prefixes = std::move(extended);

    // ---- Filter rounds: every involved atom semijoin-reduces the
    // extended prefixes by its projection (sound even for the proposer;
    // cheap since it is a pure filter). ----
    for (size_t i = 0; i < proposers.size(); ++i) {
      std::vector<int> filter_vars = proposers[i].shared_vars;
      filter_vars.push_back(var);
      std::vector<int> proj_keys(filter_vars.size());
      for (size_t c = 0; c < proj_keys.size(); ++c) {
        proj_keys[c] = static_cast<int>(c);
      }
      prefixes = DistributedSemijoin(cluster, prefixes,
                                     proposers[i].projection,
                                     PositionsOf(filter_vars, bound),
                                     proj_keys);
    }
  }

  std::vector<int> cols(q.num_vars());
  for (int v = 0; v < q.num_vars(); ++v) {
    cols[v] = PositionsOf({v}, bound).front();
  }
  BigJoinResult result{DistRelation(q.num_vars(), p), 0};
  {
    ScopedPhaseTimer local_phase(cluster.metrics(), Phase::kLocalCompute);
    cluster.pool().ParallelFor(p, [&](int64_t s) {
      result.output.fragment(s) = Project(prefixes.fragment(s), cols);
    });
  }
  result.rounds = cluster.cost_report().num_rounds() - rounds_before;
  return result;
}

}  // namespace mpcqp
