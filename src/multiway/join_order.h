#ifndef MPCQP_MULTIWAY_JOIN_ORDER_H_
#define MPCQP_MULTIWAY_JOIN_ORDER_H_

#include <vector>

#include "mpc/dist_relation.h"
#include "query/query.h"

namespace mpcqp {

// Greedy join-order selection for iterative binary plans (what a textbook
// System-R-style optimizer contributes to the deck's "most systems run
// iterative binary joins", slide 97): start from the smallest atom, then
// repeatedly append the atom minimizing the estimated next intermediate
// under independence assumptions
//
//   |acc ⋈ A| ≈ |acc| · |A| / Π_{v shared} distinct_A(v),
//
// preferring connected atoms (cross products only when forced). Returns
// an atom order for BinaryPlanOptions::order.
std::vector<int> GreedyJoinOrder(const ConjunctiveQuery& q,
                                 const std::vector<DistRelation>& atoms);

// Estimated intermediate sizes along `order` (the optimizer's own
// predictions; exposed for tests and EXPLAIN-style output).
std::vector<double> EstimateIntermediates(
    const ConjunctiveQuery& q, const std::vector<DistRelation>& atoms,
    const std::vector<int>& order);

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_JOIN_ORDER_H_
