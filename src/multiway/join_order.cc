#include "multiway/join_order.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// distinct[j][v]: distinct values of variable v in atom j (0 if absent).
std::vector<std::vector<int64_t>> DistinctCounts(
    const ConjunctiveQuery& q, const std::vector<DistRelation>& atoms) {
  std::vector<std::vector<int64_t>> distinct(
      q.num_atoms(), std::vector<int64_t>(q.num_vars(), 0));
  for (int j = 0; j < q.num_atoms(); ++j) {
    const Relation whole = atoms[j].Collect();
    std::set<int> seen;
    for (int c = 0; c < q.atom(j).arity(); ++c) {
      const int v = q.atom(j).vars[c];
      if (!seen.insert(v).second) continue;
      std::set<Value> values;
      for (int64_t i = 0; i < whole.size(); ++i) {
        values.insert(whole.at(i, c));
      }
      distinct[j][v] = static_cast<int64_t>(values.size());
    }
  }
  return distinct;
}

// Estimated |acc ⋈ atom j| given |acc| and the bound variable set.
double JoinFactor(const ConjunctiveQuery& q,
                  const std::vector<std::vector<int64_t>>& distinct,
                  int64_t atom_size, int j, const std::set<int>& bound) {
  double factor = static_cast<double>(atom_size);
  std::set<int> seen;
  for (int v : q.atom(j).vars) {
    if (!seen.insert(v).second) continue;
    if (bound.count(v) > 0) {
      factor /= std::max<int64_t>(1, distinct[j][v]);
    }
  }
  return factor;
}

}  // namespace

std::vector<int> GreedyJoinOrder(const ConjunctiveQuery& q,
                                 const std::vector<DistRelation>& atoms) {
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  const auto distinct = DistinctCounts(q, atoms);
  std::vector<int64_t> sizes;
  for (const DistRelation& a : atoms) sizes.push_back(a.TotalSize());

  std::vector<int> order;
  std::vector<bool> used(q.num_atoms(), false);
  std::set<int> bound;

  // Start from the smallest atom.
  int first = 0;
  for (int j = 1; j < q.num_atoms(); ++j) {
    if (sizes[j] < sizes[first]) first = j;
  }
  order.push_back(first);
  used[first] = true;
  for (int v : q.atom(first).vars) bound.insert(v);

  double acc = static_cast<double>(sizes[first]);
  for (int step = 1; step < q.num_atoms(); ++step) {
    int best = -1;
    bool best_connected = false;
    double best_estimate = 0.0;
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (used[j]) continue;
      bool connected = false;
      for (int v : q.atom(j).vars) {
        if (bound.count(v) > 0) connected = true;
      }
      const double estimate =
          acc * JoinFactor(q, distinct, sizes[j], j, bound);
      // Connected atoms always beat cross products; among equals, pick
      // the smaller estimated intermediate.
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected && estimate < best_estimate)) {
        best = j;
        best_connected = connected;
        best_estimate = estimate;
      }
    }
    order.push_back(best);
    used[best] = true;
    acc = best_estimate;
    for (int v : q.atom(best).vars) bound.insert(v);
  }
  return order;
}

std::vector<double> EstimateIntermediates(
    const ConjunctiveQuery& q, const std::vector<DistRelation>& atoms,
    const std::vector<int>& order) {
  MPCQP_CHECK_EQ(order.size(), atoms.size());
  const auto distinct = DistinctCounts(q, atoms);
  std::vector<double> estimates;
  std::set<int> bound(q.atom(order[0]).vars.begin(),
                      q.atom(order[0]).vars.end());
  double acc = static_cast<double>(atoms[order[0]].TotalSize());
  for (size_t step = 1; step < order.size(); ++step) {
    const int j = order[step];
    acc *= JoinFactor(q, distinct, atoms[j].TotalSize(), j, bound);
    estimates.push_back(acc);
    for (int v : q.atom(j).vars) bound.insert(v);
  }
  return estimates;
}

}  // namespace mpcqp
