#ifndef MPCQP_MULTIWAY_HYPERCUBE_H_
#define MPCQP_MULTIWAY_HYPERCUBE_H_

#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "multiway/shares.h"
#include "query/query.h"

namespace mpcqp {

// The HyperCube / Shares algorithm (Afrati-Ullman '10, Beame et al. '13-'14;
// deck slides 34-45): computes any full conjunctive query in ONE round.
//
// Servers are arranged in a p_1 × ... × p_k hypercube (one dimension per
// query variable, Π p_i <= p). Each tuple of atom S_j is multicast to all
// servers whose coordinates agree with h_i(t[x_i]) on the atom's variables;
// each server then evaluates the query on what it received. Every output
// tuple is produced at exactly one server (all its variables are hashed).
//
// Skew-free load: IN / p^{1/τ*} for equal-size atoms (τ* = fractional edge
// packing number); N/p^{2/3} for the triangle. Degrades under skew — use
// SkewHcJoin then.
// Which local evaluator each server runs on its received fragments.
enum class LocalEvaluator {
  // Pairwise hash joins (EvalJoinLocal): SQL bag semantics.
  kBinaryJoins,
  // Worst-case optimal Generic Join (EvalJoinWcoj): SET semantics — input
  // duplicates do not multiply. Robust against skewed fragments whose
  // binary intermediates would explode (bench A3).
  kGenericJoin,
};

struct HyperCubeOptions {
  ShareRounding rounding = ShareRounding::kFloorGreedy;
  LocalEvaluator local = LocalEvaluator::kBinaryJoins;
  // If non-empty, overrides the share computation (one entry per query
  // variable, product <= p). Used by benches reproducing specific rows of
  // the deck's tables.
  std::vector<int> forced_shares;
};

struct HyperCubeResult {
  // Output columns = query variables in id order.
  DistRelation output;
  // The integer shares actually used.
  std::vector<int> shares;
};

// atoms[j] instantiates q.atom(j) (arities must match).
HyperCubeResult HyperCubeJoin(Cluster& cluster, const ConjunctiveQuery& q,
                              const std::vector<DistRelation>& atoms,
                              const HyperCubeOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_HYPERCUBE_H_
