#ifndef MPCQP_MULTIWAY_SHARES_H_
#define MPCQP_MULTIWAY_SHARES_H_

#include <cstdint>
#include <vector>

#include "query/query.h"

namespace mpcqp {

// Integer HyperCube shares: p_1 × ... × p_k with Π p_i <= p.
// The fractional optimum comes from the share LP
// (OptimalShareExponents); these routines round it to integers.

enum class ShareRounding {
  // Floor each p^{e_i} (product stays <= p), then greedily bump the share
  // that most reduces the predicted load while the product still fits.
  kFloorGreedy,
  // Exact search over all integer share vectors with product <= p.
  // Exponential in num_vars; fine for the small queries of the deck and
  // used as the ablation baseline (A1).
  kExhaustive,
};

struct IntegerShares {
  std::vector<int> shares;       // One per query variable; product <= p.
  double predicted_load = 0.0;   // max_j |S_j| / Π_{i∈S_j} shares_i.
};

// Predicted per-server load for a given share vector.
double PredictedLoad(const ConjunctiveQuery& q,
                     const std::vector<int64_t>& sizes,
                     const std::vector<int>& shares);

// Computes integer shares for `q` with per-atom sizes on `p` servers.
IntegerShares ComputeShares(const ConjunctiveQuery& q,
                            const std::vector<int64_t>& sizes, int p,
                            ShareRounding rounding = ShareRounding::kFloorGreedy);

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_SHARES_H_
