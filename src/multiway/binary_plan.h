#ifndef MPCQP_MULTIWAY_BINARY_PLAN_H_
#define MPCQP_MULTIWAY_BINARY_PLAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "query/query.h"

namespace mpcqp {

// Multi-round evaluation by iterated two-way joins (deck slides 57-63):
// the plan every practical system defaults to. A left-deep chain over the
// atoms in a given order; each step is one parallel two-way join round.
//
// On skew-free inputs this reaches L = O(IN/p) in n-1 rounds (slide 57);
// on adversarial inputs intermediates can explode to |Ti| >> p·IN
// (slide 63) — both reproduced by the benches.
struct BinaryPlanOptions {
  // Use the skew-aware join for steps with a single shared variable
  // (multi-variable steps always use the hash join).
  bool skew_aware = false;
  // Atom join order; empty = 0, 1, ..., l-1.
  std::vector<int> order;
};

struct BinaryPlanResult {
  // Output columns = query variables in id order.
  DistRelation output;
  // Total size of each intermediate (after each of the l-1 join steps).
  std::vector<int64_t> intermediate_sizes;
};

// atoms[j] instantiates q.atom(j).
BinaryPlanResult IterativeBinaryJoin(Cluster& cluster,
                                     const ConjunctiveQuery& q,
                                     const std::vector<DistRelation>& atoms,
                                     Rng& rng,
                                     const BinaryPlanOptions& options = {});

// Locally normalizes one atom instance: drops rows violating intra-atom
// repeated variables and projects to one column per distinct variable.
// Returns the normalized distributed relation and its variable list.
// Shared with the planner's plan-tree executor, which must reproduce
// IterativeBinaryJoin's data path bit for bit.
std::pair<DistRelation, std::vector<int>> NormalizeAtomDist(
    const Atom& atom, const DistRelation& rel);

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_BINARY_PLAN_H_
