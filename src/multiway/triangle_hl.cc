#include "multiway/triangle_hl.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/trace.h"
#include "join/heavy_hitters.h"
#include "mpc/metrics.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "query/query.h"
#include "relation/relation_ops.h"

namespace mpcqp {

TriangleHlResult TriangleHeavyLightJoin(Cluster& cluster,
                                        const DistRelation& r,
                                        const DistRelation& s,
                                        const DistRelation& t, Rng& rng,
                                        const TriangleHlOptions& options) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(r.arity(), 2);
  MPCQP_CHECK_EQ(s.arity(), 2);
  MPCQP_CHECK_EQ(t.arity(), 2);
  MPCQP_TRACE_SCOPE("triangle_hl", "algorithm");
  const int rounds_before = cluster.cost_report().num_rounds();

  const int64_t total_in = r.TotalSize() + s.TotalSize() + t.TotalSize();
  const int64_t threshold = std::max<int64_t>(
      1, static_cast<int64_t>(
             options.threshold_factor * static_cast<double>(total_in) /
             std::pow(static_cast<double>(p), 1.0 / 3.0)));

  // Heavy z values: degree above IN/p^{1/3} in S.z (column 1) or T.z
  // (column 0). Free statistics, per the model.
  std::unordered_set<Value> heavy;
  for (const HeavyHitter& h :
       FindHeavyHitters(s, 1, threshold, &cluster.pool())) {
    heavy.insert(h.value);
  }
  for (const HeavyHitter& h :
       FindHeavyHitters(t, 0, threshold, &cluster.pool())) {
    heavy.insert(h.value);
  }

  // Local split of S and T by z-heaviness (free compute).
  DistRelation s_light(2, p);
  DistRelation s_heavy(2, p);
  DistRelation t_light(2, p);
  DistRelation t_heavy(2, p);
  {
    ScopedPhaseTimer split_phase(cluster.metrics(), Phase::kLocalCompute);
    for (int srv = 0; srv < p; ++srv) {
      s_light.fragment(srv) = Filter(s.fragment(srv), [&](const Value* row) {
        return heavy.count(row[1]) == 0;
      });
      s_heavy.fragment(srv) = Filter(s.fragment(srv), [&](const Value* row) {
        return heavy.count(row[1]) > 0;
      });
      t_light.fragment(srv) = Filter(t.fragment(srv), [&](const Value* row) {
        return heavy.count(row[0]) == 0;
      });
      t_heavy.fragment(srv) = Filter(t.fragment(srv), [&](const Value* row) {
        return heavy.count(row[0]) > 0;
      });
    }
  }

  const ConjunctiveQuery q = ConjunctiveQuery::Triangle();

  // Light part: one-round HyperCube over all p servers.
  HyperCubeOptions hc;
  hc.rounding = options.rounding;
  const HyperCubeResult light = HyperCubeJoin(cluster, q, {r, s_light,
                                                           t_light}, hc);

  TriangleHlResult result{light.output, static_cast<int64_t>(heavy.size()),
                          0, 2};

  // Heavy part: the two-round semijoin-style plan, only if any heavy z
  // tuples can match.
  if (s_heavy.TotalSize() > 0 && t_heavy.TotalSize() > 0) {
    BinaryPlanOptions plan;
    plan.order = {0, 1, 2};  // R ⋈ S_heavy (on y), then ⋈ T_heavy (z, x).
    const BinaryPlanResult heavy_part =
        IterativeBinaryJoin(cluster, q, {r, s_heavy, t_heavy}, rng, plan);
    for (int srv = 0; srv < p; ++srv) {
      result.output.fragment(srv).Append(heavy_part.output.fragment(srv));
    }
  }

  result.metered_rounds = cluster.cost_report().num_rounds() - rounds_before;
  return result;
}

}  // namespace mpcqp
