#ifndef MPCQP_MULTIWAY_TRIANGLE_HL_H_
#define MPCQP_MULTIWAY_TRIANGLE_HL_H_

#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "multiway/shares.h"

namespace mpcqp {

// The heavy-light + semijoin plan for the triangle (deck slide 59): the
// multi-round alternative to SkewHC that is worst-case optimal at r = 2.
//
//   R(x,y) ⋈ S(y,z) ⋈ T(z,x), with z values of degree > IN/p^{1/3} in
//   S or T designated heavy (at most O(p^{1/3}) of them):
//
//   - light z: one-round HyperCube on (R, S_light, T_light) over all p
//     servers, L = O(IN/p^{2/3});
//   - heavy z: the residual q(z=h) = R(x,y) ⋈ S(y,h) ⋈ T(h,x) runs as a
//     two-round semijoin-style binary plan (R ⋈ S_heavy on y, then ⋈
//     T_heavy on (z, x)), also L = O(IN/p^{2/3}) because each heavy z's
//     degree is capped.
//
//   Both parts run on the same servers; a deployment overlaps the light
//   round with the heavy plan's first round, giving the slide's r = 2.
//   The simulator executes them sequentially (3 metered rounds) and
//   reports both counts.
struct TriangleHlOptions {
  // Heavy threshold factor over IN/p^{1/3}.
  double threshold_factor = 1.0;
  ShareRounding rounding = ShareRounding::kFloorGreedy;
};

struct TriangleHlResult {
  // Output columns (x, y, z).
  DistRelation output;
  int64_t heavy_values = 0;   // Heavy z values handled by the 2-round plan.
  int metered_rounds = 0;     // Rounds as executed sequentially.
  int overlapped_rounds = 0;  // max(1, 2): the deck's round count.
};

// r, s, t instantiate R(x,y), S(y,z), T(z,x).
TriangleHlResult TriangleHeavyLightJoin(Cluster& cluster,
                                        const DistRelation& r,
                                        const DistRelation& s,
                                        const DistRelation& t, Rng& rng,
                                        const TriangleHlOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_TRIANGLE_HL_H_
