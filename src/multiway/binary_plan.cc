#include "multiway/binary_plan.h"

#include <algorithm>

#include "common/check.h"
#include "join/cartesian.h"
#include "join/hash_join.h"
#include "join/skew_join.h"
#include "mpc/exchange.h"
#include "relation/relation_ops.h"

namespace mpcqp {

// Locally normalizes one atom instance: drops rows violating intra-atom
// repeated variables and projects to one column per distinct variable.
// Returns the normalized distributed relation and its variable list.
std::pair<DistRelation, std::vector<int>> NormalizeAtomDist(
    const Atom& atom, const DistRelation& rel) {
  std::vector<int> vars;
  std::vector<int> keep_cols;
  for (int c = 0; c < atom.arity(); ++c) {
    const int v = atom.vars[c];
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
      keep_cols.push_back(c);
    }
  }
  const bool has_repeats = static_cast<int>(vars.size()) != atom.arity();
  DistRelation out(static_cast<int>(vars.size()), rel.num_servers());
  for (int s = 0; s < rel.num_servers(); ++s) {
    const Relation& frag = rel.fragment(s);
    if (!has_repeats) {
      out.fragment(s) = frag;
      continue;
    }
    const Relation filtered = Filter(frag, [&](const Value* row) {
      for (int c = 0; c < atom.arity(); ++c) {
        for (int d = c + 1; d < atom.arity(); ++d) {
          if (atom.vars[c] == atom.vars[d] && row[c] != row[d]) return false;
        }
      }
      return true;
    });
    out.fragment(s) = Project(filtered, keep_cols);
  }
  return {std::move(out), std::move(vars)};
}

BinaryPlanResult IterativeBinaryJoin(Cluster& cluster,
                                     const ConjunctiveQuery& q,
                                     const std::vector<DistRelation>& atoms,
                                     Rng& rng,
                                     const BinaryPlanOptions& options) {
  const int p = cluster.num_servers();
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  std::vector<int> order = options.order;
  if (order.empty()) {
    for (int j = 0; j < q.num_atoms(); ++j) order.push_back(j);
  }
  MPCQP_CHECK_EQ(static_cast<int>(order.size()), q.num_atoms());

  auto [acc, acc_vars] = NormalizeAtomDist(q.atom(order[0]), atoms[order[0]]);
  BinaryPlanResult result{DistRelation(q.num_vars(), p), {}};

  for (size_t step = 1; step < order.size(); ++step) {
    const int j = order[step];
    auto [rel, rel_vars] = NormalizeAtomDist(q.atom(j), atoms[j]);

    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (size_t c = 0; c < rel_vars.size(); ++c) {
      const auto it =
          std::find(acc_vars.begin(), acc_vars.end(), rel_vars[c]);
      if (it != acc_vars.end()) {
        left_keys.push_back(static_cast<int>(it - acc_vars.begin()));
        right_keys.push_back(static_cast<int>(c));
      }
    }

    if (left_keys.empty()) {
      acc = CartesianProduct(cluster, acc, rel, rng);
      // Output: all left columns then all right columns.
      for (int v : rel_vars) acc_vars.push_back(v);
    } else {
      if (options.skew_aware && left_keys.size() == 1) {
        acc = SkewAwareJoin(cluster, acc, rel, left_keys[0], right_keys[0],
                            rng);
      } else {
        acc = ParallelHashJoin(cluster, acc, rel, left_keys, right_keys);
      }
      // Output contract: left columns, then right non-key columns.
      for (size_t c = 0; c < rel_vars.size(); ++c) {
        if (std::find(right_keys.begin(), right_keys.end(),
                      static_cast<int>(c)) == right_keys.end()) {
          acc_vars.push_back(rel_vars[c]);
        }
      }
    }
    result.intermediate_sizes.push_back(acc.TotalSize());
  }

  // Project to variable-id order (local compute).
  MPCQP_CHECK_EQ(static_cast<int>(acc_vars.size()), q.num_vars());
  std::vector<int> cols(q.num_vars());
  for (int v = 0; v < q.num_vars(); ++v) {
    const auto it = std::find(acc_vars.begin(), acc_vars.end(), v);
    MPCQP_CHECK(it != acc_vars.end());
    cols[v] = static_cast<int>(it - acc_vars.begin());
  }
  for (int s = 0; s < p; ++s) {
    result.output.fragment(s) = Project(acc.fragment(s), cols);
  }
  return result;
}

}  // namespace mpcqp
