#ifndef MPCQP_MULTIWAY_BIGJOIN_H_
#define MPCQP_MULTIWAY_BIGJOIN_H_

#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "query/query.h"

namespace mpcqp {

// A distributed, multi-round, worst-case-optimal join in the style of
// BiGJoin (Ammar et al., VLDB'18 — one of the deck's slide-97 "multi-round
// multiway joins in practice"): Generic Join executed variable-at-a-time
// across the cluster.
//
// Round structure per variable x_i (bound vars B = {x_1..x_{i-1}}):
//   extend: the distributed prefix set P (one tuple per partial binding)
//           is co-partitioned with the chosen extender atom (the smallest
//           atom containing x_i) on their shared bound variables and each
//           prefix emits one extended prefix per matching x_i value;
//   filter: every other atom containing x_i semijoin-reduces the extended
//           prefixes by its projection onto (vars ∩ (B ∪ {x_i}))
//           (sound partial filtering; it becomes exact once the atom's
//           last variable binds).
//
// r = O(k·l) rounds; communication per round is proportional to the
// current prefix-set size, which Generic Join bounds by IN^{ρ*}. Compared
// with one-round HyperCube: more rounds, but no multicast replication and
// robustness to skew without residual-query machinery.
//
// SET semantics (like EvalJoinWcoj): duplicates in the inputs do not
// multiply. Output columns = query variables in id order.
struct BigJoinOptions {
  // Variable binding order; empty = variable id order.
  std::vector<int> var_order;
};

struct BigJoinResult {
  DistRelation output;
  int rounds = 0;
};

BigJoinResult BigJoin(Cluster& cluster, const ConjunctiveQuery& q,
                      const std::vector<DistRelation>& atoms,
                      const BigJoinOptions& options = {});

}  // namespace mpcqp

#endif  // MPCQP_MULTIWAY_BIGJOIN_H_
