#include "multiway/shares.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "query/hypergraph_lp.h"

namespace mpcqp {

double PredictedLoad(const ConjunctiveQuery& q,
                     const std::vector<int64_t>& sizes,
                     const std::vector<int>& shares) {
  MPCQP_CHECK_EQ(static_cast<int>(sizes.size()), q.num_atoms());
  MPCQP_CHECK_EQ(static_cast<int>(shares.size()), q.num_vars());
  double worst = 0.0;
  for (int j = 0; j < q.num_atoms(); ++j) {
    double denom = 1.0;
    // Each distinct variable of the atom contributes its share once.
    std::vector<int> seen;
    for (int v : q.atom(j).vars) {
      if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
        seen.push_back(v);
        denom *= shares[v];
      }
    }
    worst = std::max(worst, static_cast<double>(sizes[j]) / denom);
  }
  return worst;
}

namespace {

int64_t ShareProduct(const std::vector<int>& shares) {
  int64_t product = 1;
  for (int s : shares) product *= s;
  return product;
}

IntegerShares FloorGreedy(const ConjunctiveQuery& q,
                          const std::vector<int64_t>& raw_sizes, int p) {
  // The share LP needs positive sizes; an empty atom contributes nothing
  // to the load either way.
  std::vector<int64_t> sizes = raw_sizes;
  for (int64_t& s : sizes) s = std::max<int64_t>(1, s);
  StatusOr<ShareExponents> exponents = OptimalShareExponents(q, sizes, p);
  MPCQP_CHECK(exponents.ok()) << exponents.status();

  const int k = q.num_vars();
  std::vector<int> shares(k, 1);
  for (int v = 0; v < k; ++v) {
    const double ideal =
        std::pow(static_cast<double>(p), exponents->exponents[v]);
    shares[v] = std::max(1, static_cast<int>(ideal + 1e-9));
  }
  MPCQP_CHECK_LE(ShareProduct(shares), p);

  // Greedy repair: bump the single share whose increment helps the most.
  while (true) {
    double best_load = PredictedLoad(q, sizes, shares);
    int best_var = -1;
    for (int v = 0; v < k; ++v) {
      if (ShareProduct(shares) / shares[v] * (shares[v] + 1) > p) continue;
      ++shares[v];
      const double load = PredictedLoad(q, sizes, shares);
      --shares[v];
      if (load < best_load - 1e-12) {
        best_load = load;
        best_var = v;
      }
    }
    if (best_var < 0) break;
    ++shares[best_var];
  }
  return IntegerShares{shares, PredictedLoad(q, sizes, shares)};
}

void ExhaustiveSearch(const ConjunctiveQuery& q,
                      const std::vector<int64_t>& sizes, int p, int var,
                      std::vector<int>& shares, IntegerShares& best) {
  if (var == q.num_vars()) {
    const double load = PredictedLoad(q, sizes, shares);
    if (best.shares.empty() || load < best.predicted_load) {
      best.shares = shares;
      best.predicted_load = load;
    }
    return;
  }
  const int64_t used = ShareProduct(shares);
  for (int s = 1; used * s <= p; ++s) {
    shares[var] = s;
    ExhaustiveSearch(q, sizes, p, var + 1, shares, best);
  }
  shares[var] = 1;
}

}  // namespace

IntegerShares ComputeShares(const ConjunctiveQuery& q,
                            const std::vector<int64_t>& sizes, int p,
                            ShareRounding rounding) {
  MPCQP_CHECK_GE(p, 1);
  MPCQP_CHECK_EQ(static_cast<int>(sizes.size()), q.num_atoms());
  switch (rounding) {
    case ShareRounding::kFloorGreedy:
      return FloorGreedy(q, sizes, p);
    case ShareRounding::kExhaustive: {
      IntegerShares best;
      std::vector<int> shares(q.num_vars(), 1);
      ExhaustiveSearch(q, sizes, p, 0, shares, best);
      return best;
    }
  }
  MPCQP_CHECK(false) << "unknown rounding";
  return {};
}

}  // namespace mpcqp
