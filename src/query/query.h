#ifndef MPCQP_QUERY_QUERY_H_
#define MPCQP_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace mpcqp {

// One atom R(vars...) of a conjunctive query. Variables are integer ids
// into ConjunctiveQuery's variable table; a variable may repeat within an
// atom (self-join on a column).
struct Atom {
  std::string name;
  std::vector<int> vars;

  int arity() const { return static_cast<int>(vars.size()); }
  bool ContainsVar(int var) const;
};

// A full conjunctive query Q(x1..xk) :- S1(...), ..., Sl(...), i.e. the
// output contains every variable (the setting of the tutorial; slides
// 34-51). Output column order is variable-id order.
class ConjunctiveQuery {
 public:
  // Builds a query; every variable id in atoms must be in
  // [0, var_names.size()), and every variable must appear in some atom.
  static ConjunctiveQuery Make(std::vector<std::string> var_names,
                               std::vector<Atom> atoms);

  // Parses "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)". The head is optional
  // ("R(x,y), S(y,z)" works); when present it must list every variable
  // exactly once and defines the variable order. Whitespace is free.
  static StatusOr<ConjunctiveQuery> Parse(const std::string& text);

  // --- Stock queries used throughout the deck ---
  // Triangle: R(x,y), S(y,z), T(z,x).
  static ConjunctiveQuery Triangle();
  // Path/chain of `num_atoms` binary atoms: R1(x0,x1), ..., Rn(x_{n-1},x_n).
  static ConjunctiveQuery Path(int num_atoms);
  // Star: R1(x0,x1), R2(x0,x2), ..., Rn(x0,xn).
  static ConjunctiveQuery Star(int num_atoms);
  // Cycle of length n: R1(x0,x1), ..., Rn(x_{n-1},x0).
  static ConjunctiveQuery Cycle(int num_atoms);
  // Two-way join R(x,y), S(y,z).
  static ConjunctiveQuery TwoWayJoin();
  // Product with shared variable removed: R(x), S(y).
  static ConjunctiveQuery CartesianProduct();
  // Slide 53's R(x), S(x,y), T(y).
  static ConjunctiveQuery Bowtie();

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(int index) const;
  const std::string& var_name(int var) const;
  const std::vector<std::string>& var_names() const { return var_names_; }

  // Atom indices containing `var`.
  std::vector<int> AtomsWithVar(int var) const;

  // "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)".
  std::string ToString() const;

 private:
  ConjunctiveQuery(std::vector<std::string> var_names, std::vector<Atom> atoms)
      : var_names_(std::move(var_names)), atoms_(std::move(atoms)) {}

  std::vector<std::string> var_names_;
  std::vector<Atom> atoms_;
};

// The structural identity of a query, independent of variable names, atom
// (relation) names, and atom order: two queries get the same `shape` string
// iff they are isomorphic as hypergraphs with ordered atom columns. This is
// the plan-cache key — a cached plan for R(x,y),S(y,z) serves E(a,b),F(b,c).
struct CanonicalQueryShape {
  // E.g. the triangle canonicalizes to "2:0,1|2:1,2|2:2,0": per canonical
  // atom its arity and variable ids renamed by first occurrence.
  std::string shape;
  // atom_order[k] = original index of the atom at canonical position k (a
  // permutation of 0..num_atoms-1). Plans cached in canonical atom space
  // are remapped through this to the query at hand.
  std::vector<int> atom_order;
};

// Canonicalizes by taking the lexicographically least shape string over all
// atom permutations (exact for queries of up to 7 atoms; larger queries
// fall back to a deterministic greedy order, which is still a valid cache
// key — it just may miss some cross-query sharing).
CanonicalQueryShape CanonicalizeShape(const ConjunctiveQuery& q);

}  // namespace mpcqp

#endif  // MPCQP_QUERY_QUERY_H_
