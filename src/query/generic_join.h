#ifndef MPCQP_QUERY_GENERIC_JOIN_H_
#define MPCQP_QUERY_GENERIC_JOIN_H_

#include <vector>

#include "query/query.h"
#include "relation/relation.h"

namespace mpcqp {

// Worst-case optimal "Generic Join" (NPRR / Leapfrog-Triejoin flavor):
// variable-at-a-time backtracking, binding each variable to the
// intersection of its atoms' candidate values, always enumerating from
// the currently smallest atom.
//
// Motivation (deck slides 55-56): the AGM bound OUT <= IN^{ρ*} is attained
// by such algorithms; a binary join plan can materialize intermediates of
// size IN²/D on inputs whose final output is tiny, while Generic Join's
// running time stays within O(IN^{ρ*}). It is the natural local evaluator
// inside a HyperCube server when the received fragments are skewed.
//
// SET semantics: the output contains each satisfying assignment once
// (duplicates in the inputs do not multiply). Use EvalJoinLocal for SQL
// bag semantics. Output columns = query variables in id order.
//
// `var_order` optionally fixes the variable elimination order (a
// permutation of 0..num_vars-1); empty picks variable id order.
Relation EvalJoinWcoj(const ConjunctiveQuery& q,
                      const std::vector<Relation>& atoms,
                      const std::vector<int>& var_order = {});

}  // namespace mpcqp

#endif  // MPCQP_QUERY_GENERIC_JOIN_H_
