#ifndef MPCQP_QUERY_LOWER_BOUNDS_H_
#define MPCQP_QUERY_LOWER_BOUNDS_H_

#include <cstdint>

#include "common/statusor.h"
#include "query/query.h"

namespace mpcqp {

// Communication lower bounds for conjunctive queries in MPC.

// One-round lower bound on skew-free inputs (slide 36/40): every one-round
// algorithm needs L >= max over fractional edge packings u of
// (Π |S_j|^{u_j} / p)^{1/Σu} — equal to the HyperCube's load by LP
// duality. (Thin wrapper over MaxPackingLoad, named for intent.)
StatusOr<double> OneRoundLoadLowerBound(const ConjunctiveQuery& q,
                                        const std::vector<int64_t>& sizes,
                                        int p);

// Multi-round counting lower bound (slide 56): a server that receives
// r·L tuples over r rounds can emit at most (r·L)^{ρ*} output tuples
// (AGM), so p·(rL)^{ρ*} >= OUT and
//     L >= (OUT / p)^{1/ρ*} / r.
// `out_size` is the output size the adversary can force (e.g. the AGM
// bound of the instance family).
StatusOr<double> MultiRoundLoadLowerBound(const ConjunctiveQuery& q,
                                          int64_t out_size, int p,
                                          int rounds);

// Sorting bounds (slide 105): r >= log_L(N) rounds and C >= N·log_L(N)
// total communication, independent of p.
double SortRoundsLowerBound(int64_t n, int64_t load);
double SortCommLowerBound(int64_t n, int64_t load);

}  // namespace mpcqp

#endif  // MPCQP_QUERY_LOWER_BOUNDS_H_
