#include "query/lower_bounds.h"

#include <cmath>

#include "common/check.h"
#include "query/hypergraph_lp.h"

namespace mpcqp {

StatusOr<double> OneRoundLoadLowerBound(const ConjunctiveQuery& q,
                                        const std::vector<int64_t>& sizes,
                                        int p) {
  return MaxPackingLoad(q, sizes, p);
}

StatusOr<double> MultiRoundLoadLowerBound(const ConjunctiveQuery& q,
                                          int64_t out_size, int p,
                                          int rounds) {
  if (out_size < 0) return InvalidArgumentError("negative output size");
  if (p < 1 || rounds < 1) {
    return InvalidArgumentError("p and rounds must be >= 1");
  }
  if (out_size == 0) return 0.0;
  MPCQP_ASSIGN_OR_RETURN(WeightedSolution cover, FractionalEdgeCover(q));
  MPCQP_CHECK_GT(cover.value, 0.0);
  const double per_server =
      std::pow(static_cast<double>(out_size) / p, 1.0 / cover.value);
  return per_server / rounds;
}

double SortRoundsLowerBound(int64_t n, int64_t load) {
  MPCQP_CHECK_GT(n, 0);
  MPCQP_CHECK_GT(load, 1);
  return std::log(static_cast<double>(n)) /
         std::log(static_cast<double>(load));
}

double SortCommLowerBound(int64_t n, int64_t load) {
  return static_cast<double>(n) * SortRoundsLowerBound(n, load);
}

}  // namespace mpcqp
