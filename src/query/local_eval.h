#ifndef MPCQP_QUERY_LOCAL_EVAL_H_
#define MPCQP_QUERY_LOCAL_EVAL_H_

#include <vector>

#include "query/query.h"
#include "relation/relation.h"

namespace mpcqp {

// Evaluates the full conjunctive query `q` over the given atom instances
// (atoms[j] instantiates q.atom(j); arities must match). Output columns are
// the query variables in id order; bag (SQL) semantics — multiplicities
// multiply across atoms.
//
// This is a single-node operator: the parallel algorithms run it per server
// on partitioned fragments, and tests run it on whole inputs as the
// reference answer. Atoms are joined greedily, always preferring an atom
// sharing variables with the partial result (avoiding cross products when
// the query is connected). Repeated variables within an atom become
// selections.
Relation EvalJoinLocal(const ConjunctiveQuery& q,
                       const std::vector<Relation>& atoms);

}  // namespace mpcqp

#endif  // MPCQP_QUERY_LOCAL_EVAL_H_
