#include "query/ghd.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.h"

namespace mpcqp {

namespace {

std::vector<int> SortedVarUnion(const ConjunctiveQuery& q,
                                const std::vector<int>& atom_indices) {
  std::set<int> vars;
  for (int a : atom_indices) {
    for (int v : q.atom(a).vars) vars.insert(v);
  }
  return std::vector<int>(vars.begin(), vars.end());
}

}  // namespace

Ghd Ghd::FromNodes(const ConjunctiveQuery& q, std::vector<GhdNode> nodes) {
  Ghd ghd;
  ghd.nodes_ = std::move(nodes);
  MPCQP_CHECK(!ghd.nodes_.empty());
  for (GhdNode& node : ghd.nodes_) {
    node.vars = SortedVarUnion(q, node.atoms);
    node.children.clear();
  }
  int root = -1;
  for (int i = 0; i < ghd.num_nodes(); ++i) {
    const int parent = ghd.nodes_[i].parent;
    if (parent < 0) {
      MPCQP_CHECK_EQ(root, -1) << "multiple roots";
      root = i;
    } else {
      MPCQP_CHECK_LT(parent, ghd.num_nodes());
      MPCQP_CHECK_NE(parent, i);
      ghd.nodes_[parent].children.push_back(i);
    }
  }
  MPCQP_CHECK_NE(root, -1) << "no root";
  ghd.root_ = root;
  // Reachability check (tree, no cycles).
  std::vector<bool> seen(ghd.num_nodes(), false);
  std::vector<int> stack{root};
  int count = 0;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    MPCQP_CHECK(!seen[n]) << "cycle in GHD";
    seen[n] = true;
    ++count;
    for (int c : ghd.nodes_[n].children) stack.push_back(c);
  }
  MPCQP_CHECK_EQ(count, ghd.num_nodes()) << "disconnected GHD";
  return ghd;
}

const GhdNode& Ghd::node(int index) const {
  MPCQP_CHECK_GE(index, 0);
  MPCQP_CHECK_LT(index, num_nodes());
  return nodes_[index];
}

int Ghd::width() const {
  int w = 0;
  for (const GhdNode& n : nodes_) {
    w = std::max(w, static_cast<int>(n.atoms.size()));
  }
  return w;
}

int Ghd::depth() const {
  // Longest root-to-leaf path, in nodes.
  int best = 0;
  std::vector<std::pair<int, int>> stack{{root_, 1}};
  while (!stack.empty()) {
    const auto [n, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    for (int c : nodes_[n].children) stack.push_back({c, d + 1});
  }
  return best;
}

std::vector<std::vector<int>> Ghd::LevelsFromRoot() const {
  std::vector<std::vector<int>> levels;
  std::vector<int> frontier{root_};
  while (!frontier.empty()) {
    levels.push_back(frontier);
    std::vector<int> next;
    for (int n : frontier) {
      for (int c : nodes_[n].children) next.push_back(c);
    }
    frontier = std::move(next);
  }
  return levels;
}

Status Ghd::Validate(const ConjunctiveQuery& q) const {
  // Atom coverage: each atom in exactly one node.
  std::vector<int> assigned(q.num_atoms(), 0);
  for (const GhdNode& n : nodes_) {
    for (int a : n.atoms) {
      if (a < 0 || a >= q.num_atoms()) {
        return InternalError("GHD references unknown atom");
      }
      ++assigned[a];
    }
  }
  for (int a = 0; a < q.num_atoms(); ++a) {
    if (assigned[a] != 1) {
      return FailedPreconditionError("atom " + q.atom(a).name +
                                     " assigned to " +
                                     std::to_string(assigned[a]) + " bags");
    }
  }
  // Vars are derived unions.
  for (const GhdNode& n : nodes_) {
    if (n.vars != SortedVarUnion(q, n.atoms)) {
      return FailedPreconditionError("bag vars != union of atom vars");
    }
  }
  // Running intersection: nodes containing each variable form a subtree.
  for (int v = 0; v < q.num_vars(); ++v) {
    std::vector<int> holders;
    for (int i = 0; i < num_nodes(); ++i) {
      if (std::binary_search(nodes_[i].vars.begin(), nodes_[i].vars.end(),
                             v)) {
        holders.push_back(i);
      }
    }
    if (holders.empty()) continue;
    // Connected iff every holder except one has a holder ancestor through
    // holder-only nodes. Equivalent check: the holder set is connected in
    // the tree. BFS within holders from holders.front().
    std::set<int> holder_set(holders.begin(), holders.end());
    std::set<int> visited;
    std::vector<int> stack{holders.front()};
    visited.insert(holders.front());
    while (!stack.empty()) {
      const int n = stack.back();
      stack.pop_back();
      std::vector<int> neighbors = nodes_[n].children;
      if (nodes_[n].parent >= 0) neighbors.push_back(nodes_[n].parent);
      for (int m : neighbors) {
        if (holder_set.count(m) > 0 && visited.insert(m).second) {
          stack.push_back(m);
        }
      }
    }
    if (visited.size() != holder_set.size()) {
      return FailedPreconditionError(
          "running intersection violated for variable " + q.var_name(v));
    }
  }
  return OkStatus();
}

std::string Ghd::ToString(const ConjunctiveQuery& q) const {
  std::ostringstream os;
  os << "GHD(width=" << width() << ", depth=" << depth() << ")";
  for (int i = 0; i < num_nodes(); ++i) {
    const GhdNode& n = nodes_[i];
    os << "\n  node " << i << " (parent " << n.parent << "): {";
    for (size_t j = 0; j < n.atoms.size(); ++j) {
      if (j > 0) os << ", ";
      os << q.atom(n.atoms[j]).name;
    }
    os << "}";
  }
  return os.str();
}

namespace {

// GYO ear removal. Returns parent assignment per atom (witness atom index,
// or -1 for the last remaining atom = root), or nullopt-equivalent failure.
bool GyoEarRemoval(const ConjunctiveQuery& q, std::vector<int>* parents) {
  const int n = q.num_atoms();
  parents->assign(n, -1);
  std::vector<bool> alive(n, true);
  int alive_count = n;
  std::vector<int> removal_order;

  while (alive_count > 1) {
    bool removed = false;
    for (int a = 0; a < n && !removed; ++a) {
      if (!alive[a]) continue;
      // Shared vars of `a`: vars also appearing in another alive atom.
      std::set<int> shared;
      for (int v : q.atom(a).vars) {
        for (int b = 0; b < n; ++b) {
          if (b != a && alive[b] && q.atom(b).ContainsVar(v)) {
            shared.insert(v);
            break;
          }
        }
      }
      // Witness: an alive atom b containing all shared vars.
      for (int b = 0; b < n; ++b) {
        if (b == a || !alive[b]) continue;
        bool covers = true;
        for (int v : shared) {
          if (!q.atom(b).ContainsVar(v)) {
            covers = false;
            break;
          }
        }
        if (covers) {
          (*parents)[a] = b;
          alive[a] = false;
          --alive_count;
          removed = true;
          break;
        }
      }
    }
    if (!removed) return false;  // Cyclic.
  }
  return true;
}

}  // namespace

bool IsAcyclic(const ConjunctiveQuery& q) {
  std::vector<int> parents;
  return GyoEarRemoval(q, &parents);
}

StatusOr<Ghd> BuildJoinTree(const ConjunctiveQuery& q) {
  std::vector<int> parents;
  if (!GyoEarRemoval(q, &parents)) {
    return FailedPreconditionError("query is cyclic: " + q.ToString());
  }
  // One bag per atom; bag i's parent is the bag of its witness. Witness
  // chains may point at removed atoms — that is fine, the parent pointers
  // always form a tree rooted at the last surviving atom.
  std::vector<GhdNode> nodes(q.num_atoms());
  for (int a = 0; a < q.num_atoms(); ++a) {
    nodes[a].atoms = {a};
    nodes[a].parent = parents[a];
  }
  return Ghd::FromNodes(q, std::move(nodes));
}

Ghd ChainGhd(const ConjunctiveQuery& path_query) {
  std::vector<GhdNode> nodes(path_query.num_atoms());
  for (int a = 0; a < path_query.num_atoms(); ++a) {
    nodes[a].atoms = {a};
    nodes[a].parent = a == 0 ? -1 : a - 1;
  }
  return Ghd::FromNodes(path_query, std::move(nodes));
}

Ghd StarGhd(const ConjunctiveQuery& star_query) {
  std::vector<GhdNode> nodes(star_query.num_atoms());
  for (int a = 0; a < star_query.num_atoms(); ++a) {
    nodes[a].atoms = {a};
    nodes[a].parent = a == 0 ? -1 : 0;
  }
  return Ghd::FromNodes(star_query, std::move(nodes));
}

Ghd FlatGhd(const ConjunctiveQuery& q) {
  GhdNode node;
  for (int a = 0; a < q.num_atoms(); ++a) node.atoms.push_back(a);
  node.parent = -1;
  return Ghd::FromNodes(q, {std::move(node)});
}

namespace {

// Recursively decomposes atoms [lo, hi] of a path query. Returns the index
// of the created node in `nodes`.
int BuildBalanced(int lo, int hi, int parent, std::vector<GhdNode>& nodes) {
  MPCQP_CHECK_LE(lo, hi);
  const int count = hi - lo + 1;
  GhdNode node;
  node.parent = parent;
  if (count <= 3) {
    for (int a = lo; a <= hi; ++a) node.atoms.push_back(a);
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }
  const int mid = (lo + hi) / 2;
  node.atoms = {lo, mid, hi};
  nodes.push_back(std::move(node));
  const int self = static_cast<int>(nodes.size()) - 1;
  if (mid - 1 >= lo + 1) BuildBalanced(lo + 1, mid - 1, self, nodes);
  if (hi - 1 >= mid + 1) BuildBalanced(mid + 1, hi - 1, self, nodes);
  return self;
}

}  // namespace

Ghd GroupedPathGhd(const ConjunctiveQuery& path_query, int bag_width) {
  MPCQP_CHECK_GE(bag_width, 1);
  for (int a = 0; a < path_query.num_atoms(); ++a) {
    MPCQP_CHECK_EQ(path_query.atom(a).arity(), 2);
    MPCQP_CHECK_EQ(path_query.atom(a).vars[0], a);
    MPCQP_CHECK_EQ(path_query.atom(a).vars[1], a + 1);
  }
  std::vector<GhdNode> nodes;
  for (int start = 0; start < path_query.num_atoms(); start += bag_width) {
    GhdNode node;
    const int end =
        std::min(start + bag_width, path_query.num_atoms());
    for (int a = start; a < end; ++a) node.atoms.push_back(a);
    node.parent = nodes.empty() ? -1 : static_cast<int>(nodes.size()) - 1;
    nodes.push_back(std::move(node));
  }
  return Ghd::FromNodes(path_query, std::move(nodes));
}

Ghd BalancedPathGhd(const ConjunctiveQuery& path_query) {
  // Sanity: atoms must look like a chain R_i(x_{i-1}, x_i).
  for (int a = 0; a < path_query.num_atoms(); ++a) {
    MPCQP_CHECK_EQ(path_query.atom(a).arity(), 2);
    MPCQP_CHECK_EQ(path_query.atom(a).vars[0], a);
    MPCQP_CHECK_EQ(path_query.atom(a).vars[1], a + 1);
  }
  std::vector<GhdNode> nodes;
  BuildBalanced(0, path_query.num_atoms() - 1, -1, nodes);
  return Ghd::FromNodes(path_query, std::move(nodes));
}

}  // namespace mpcqp
