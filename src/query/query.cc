#include "query/query.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/check.h"

namespace mpcqp {

bool Atom::ContainsVar(int var) const {
  return std::find(vars.begin(), vars.end(), var) != vars.end();
}

ConjunctiveQuery ConjunctiveQuery::Make(std::vector<std::string> var_names,
                                        std::vector<Atom> atoms) {
  const int k = static_cast<int>(var_names.size());
  std::vector<bool> used(k, false);
  MPCQP_CHECK(!atoms.empty());
  for (const Atom& atom : atoms) {
    MPCQP_CHECK(!atom.vars.empty()) << "atom " << atom.name << " is nullary";
    for (int v : atom.vars) {
      MPCQP_CHECK_GE(v, 0);
      MPCQP_CHECK_LT(v, k);
      used[v] = true;
    }
  }
  for (int v = 0; v < k; ++v) {
    MPCQP_CHECK(used[v]) << "variable " << var_names[v] << " not in any atom";
  }
  return ConjunctiveQuery(std::move(var_names), std::move(atoms));
}

namespace {

// Splits "name(a,b,c)" terms out of a comma-separated list; returns false
// on malformed input.
struct ParsedAtom {
  std::string name;
  std::vector<std::string> args;
};

void SkipSpace(const std::string& s, size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool ParseIdent(const std::string& s, size_t& i, std::string& out) {
  SkipSpace(s, i);
  const size_t start = i;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                          s[i] == '_' || s[i] == '\'')) {
    ++i;
  }
  if (i == start) return false;
  out = s.substr(start, i - start);
  return true;
}

bool ParseAtomList(const std::string& s, size_t& i,
                   std::vector<ParsedAtom>& out) {
  while (true) {
    ParsedAtom atom;
    if (!ParseIdent(s, i, atom.name)) return false;
    SkipSpace(s, i);
    if (i >= s.size() || s[i] != '(') return false;
    ++i;  // '('
    while (true) {
      std::string arg;
      if (!ParseIdent(s, i, arg)) return false;
      atom.args.push_back(arg);
      SkipSpace(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    SkipSpace(s, i);
    if (i >= s.size() || s[i] != ')') return false;
    ++i;  // ')'
    out.push_back(std::move(atom));
    SkipSpace(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  return true;
}

}  // namespace

StatusOr<ConjunctiveQuery> ConjunctiveQuery::Parse(const std::string& text) {
  // Split off an optional head at ":-".
  const size_t sep = text.find(":-");
  std::vector<ParsedAtom> head;
  std::vector<ParsedAtom> body;
  size_t i = 0;
  if (sep != std::string::npos) {
    const std::string head_text = text.substr(0, sep);
    size_t hi = 0;
    if (!ParseAtomList(head_text, hi, head) || head.size() != 1) {
      return InvalidArgumentError("malformed query head: " + head_text);
    }
    SkipSpace(head_text, hi);
    if (hi != head_text.size()) {
      return InvalidArgumentError("trailing junk in head: " + head_text);
    }
    i = sep + 2;
  }
  std::string body_text = text.substr(i);
  size_t bi = 0;
  if (!ParseAtomList(body_text, bi, body) || body.empty()) {
    return InvalidArgumentError("malformed query body: " + body_text);
  }
  SkipSpace(body_text, bi);
  if (bi != body_text.size()) {
    return InvalidArgumentError("trailing junk in body: " + body_text);
  }

  // Assign variable ids: head order if given, else first occurrence.
  std::vector<std::string> var_names;
  std::map<std::string, int> var_ids;
  if (!head.empty()) {
    for (const std::string& v : head.front().args) {
      if (var_ids.count(v) > 0) {
        return InvalidArgumentError("head repeats variable " + v);
      }
      var_ids[v] = static_cast<int>(var_names.size());
      var_names.push_back(v);
    }
  }
  std::vector<Atom> atoms;
  for (const ParsedAtom& pa : body) {
    Atom atom;
    atom.name = pa.name;
    for (const std::string& v : pa.args) {
      auto it = var_ids.find(v);
      if (it == var_ids.end()) {
        if (!head.empty()) {
          return InvalidArgumentError("body variable " + v + " not in head");
        }
        it = var_ids.emplace(v, static_cast<int>(var_names.size())).first;
        var_names.push_back(v);
      }
      atom.vars.push_back(it->second);
    }
    atoms.push_back(std::move(atom));
  }
  // Head variables must all be used.
  std::vector<bool> used(var_names.size(), false);
  for (const Atom& a : atoms) {
    for (int v : a.vars) used[v] = true;
  }
  for (size_t v = 0; v < var_names.size(); ++v) {
    if (!used[v]) {
      return InvalidArgumentError("head variable " + var_names[v] +
                                  " not in body");
    }
  }
  return Make(std::move(var_names), std::move(atoms));
}

ConjunctiveQuery ConjunctiveQuery::Triangle() {
  return Make({"x", "y", "z"},
              {{"R", {0, 1}}, {"S", {1, 2}}, {"T", {2, 0}}});
}

ConjunctiveQuery ConjunctiveQuery::Path(int num_atoms) {
  MPCQP_CHECK_GE(num_atoms, 1);
  std::vector<std::string> vars;
  for (int i = 0; i <= num_atoms; ++i) vars.push_back("x" + std::to_string(i));
  std::vector<Atom> atoms;
  for (int i = 0; i < num_atoms; ++i) {
    atoms.push_back({"R" + std::to_string(i + 1), {i, i + 1}});
  }
  return Make(std::move(vars), std::move(atoms));
}

ConjunctiveQuery ConjunctiveQuery::Star(int num_atoms) {
  MPCQP_CHECK_GE(num_atoms, 1);
  std::vector<std::string> vars;
  for (int i = 0; i <= num_atoms; ++i) vars.push_back("x" + std::to_string(i));
  std::vector<Atom> atoms;
  for (int i = 0; i < num_atoms; ++i) {
    atoms.push_back({"R" + std::to_string(i + 1), {0, i + 1}});
  }
  return Make(std::move(vars), std::move(atoms));
}

ConjunctiveQuery ConjunctiveQuery::Cycle(int num_atoms) {
  MPCQP_CHECK_GE(num_atoms, 2);
  std::vector<std::string> vars;
  for (int i = 0; i < num_atoms; ++i) vars.push_back("x" + std::to_string(i));
  std::vector<Atom> atoms;
  for (int i = 0; i < num_atoms; ++i) {
    atoms.push_back(
        {"R" + std::to_string(i + 1), {i, (i + 1) % num_atoms}});
  }
  return Make(std::move(vars), std::move(atoms));
}

ConjunctiveQuery ConjunctiveQuery::TwoWayJoin() {
  return Make({"x", "y", "z"}, {{"R", {0, 1}}, {"S", {1, 2}}});
}

ConjunctiveQuery ConjunctiveQuery::CartesianProduct() {
  return Make({"x", "y"}, {{"R", {0}}, {"S", {1}}});
}

ConjunctiveQuery ConjunctiveQuery::Bowtie() {
  return Make({"x", "y"}, {{"R", {0}}, {"S", {0, 1}}, {"T", {1}}});
}

const Atom& ConjunctiveQuery::atom(int index) const {
  MPCQP_CHECK_GE(index, 0);
  MPCQP_CHECK_LT(index, num_atoms());
  return atoms_[index];
}

const std::string& ConjunctiveQuery::var_name(int var) const {
  MPCQP_CHECK_GE(var, 0);
  MPCQP_CHECK_LT(var, num_vars());
  return var_names_[var];
}

std::vector<int> ConjunctiveQuery::AtomsWithVar(int var) const {
  std::vector<int> result;
  for (int j = 0; j < num_atoms(); ++j) {
    if (atoms_[j].ContainsVar(var)) result.push_back(j);
  }
  return result;
}

namespace {

// Shape string of the atoms taken in `order`, with variables renamed to
// 0,1,2,... by first occurrence along that order.
std::string ShapeForOrder(const ConjunctiveQuery& q,
                          const std::vector<int>& order) {
  std::vector<int> rename(q.num_vars(), -1);
  int next_id = 0;
  std::string shape;
  for (size_t k = 0; k < order.size(); ++k) {
    const Atom& atom = q.atom(order[k]);
    if (k > 0) shape += '|';
    shape += std::to_string(atom.arity());
    shape += ':';
    for (size_t c = 0; c < atom.vars.size(); ++c) {
      int& id = rename[atom.vars[c]];
      if (id < 0) id = next_id++;
      if (c > 0) shape += ',';
      shape += std::to_string(id);
    }
  }
  return shape;
}

}  // namespace

CanonicalQueryShape CanonicalizeShape(const ConjunctiveQuery& q) {
  std::vector<int> order(q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) order[j] = j;

  CanonicalQueryShape best;
  best.shape = ShapeForOrder(q, order);
  best.atom_order = order;
  if (q.num_atoms() > 7) {
    // Exact canonicalization is factorial in the atom count; fall back to
    // a deterministic greedy order (stable sort by each atom's
    // self-contained signature, ties kept in input order).
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return ShapeForOrder(q, {a}) < ShapeForOrder(q, {b});
    });
    best.shape = ShapeForOrder(q, order);
    best.atom_order = order;
    return best;
  }
  while (std::next_permutation(order.begin(), order.end())) {
    std::string shape = ShapeForOrder(q, order);
    if (shape < best.shape) {
      best.shape = std::move(shape);
      best.atom_order = order;
    }
  }
  return best;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream os;
  os << "Q(";
  for (int v = 0; v < num_vars(); ++v) {
    if (v > 0) os << ",";
    os << var_names_[v];
  }
  os << ") :- ";
  for (int j = 0; j < num_atoms(); ++j) {
    if (j > 0) os << ", ";
    os << atoms_[j].name << "(";
    for (size_t c = 0; c < atoms_[j].vars.size(); ++c) {
      if (c > 0) os << ",";
      os << var_names_[atoms_[j].vars[c]];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace mpcqp
