#include "query/generic_join.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Trie over an atom's tuples, one level per variable in the global
// elimination order (Leapfrog-Triejoin layout). Built once per atom; the
// search then walks child maps instead of re-scanning rows.
struct TrieNode {
  std::map<Value, TrieNode> children;
};

struct AtomTrie {
  std::vector<int> vars;        // Atom's distinct vars, elimination order.
  TrieNode root;
  std::vector<TrieNode*> path;  // Current descent; path[0] == &root.

  int Depth() const { return static_cast<int>(path.size()) - 1; }
  TrieNode* Current() const { return path.back(); }
};

// Normalizes an atom instance (intra-atom repeats filtered, one column
// per distinct variable) and builds its trie with levels ordered by
// `order_pos` (global position of each variable).
AtomTrie BuildTrie(const Atom& atom, const Relation& rel,
                   const std::vector<int>& order_pos) {
  // Distinct vars with their first columns.
  std::vector<int> vars;
  std::vector<int> cols;
  for (int c = 0; c < atom.arity(); ++c) {
    const int v = atom.vars[c];
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
      cols.push_back(c);
    }
  }
  // Sort (var, col) pairs by elimination-order position.
  std::vector<int> perm(vars.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  std::sort(perm.begin(), perm.end(), [&](int x, int y) {
    return order_pos[vars[x]] < order_pos[vars[y]];
  });

  AtomTrie trie;
  std::vector<int> ordered_cols;
  for (int i : perm) {
    trie.vars.push_back(vars[i]);
    ordered_cols.push_back(cols[i]);
  }

  const bool has_repeats = static_cast<int>(vars.size()) != atom.arity();
  for (int64_t r = 0; r < rel.size(); ++r) {
    const Value* row = rel.row(r);
    if (has_repeats) {
      bool ok = true;
      for (int c = 0; c < atom.arity() && ok; ++c) {
        for (int d = c + 1; d < atom.arity(); ++d) {
          if (atom.vars[c] == atom.vars[d] && row[c] != row[d]) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
    }
    TrieNode* node = &trie.root;
    for (int c : ordered_cols) node = &node->children[row[c]];
  }
  // NOTE: path is initialized by the caller once the trie has its final
  // address (a pointer taken here would dangle after the move).
  return trie;
}

struct SearchState {
  std::vector<AtomTrie> tries;
  std::vector<int> order;      // Variable elimination order.
  std::vector<Value> binding;  // Per variable id.
  Relation* output;
};

void Search(SearchState& state, size_t depth) {
  if (depth == state.order.size()) {
    state.output->AppendRow(state.binding.data());
    return;
  }
  const int var = state.order[depth];

  // Tries whose next level is `var` (their earlier vars are all bound,
  // because trie levels follow the global order).
  std::vector<AtomTrie*> involved;
  for (AtomTrie& trie : state.tries) {
    if (trie.Depth() < static_cast<int>(trie.vars.size()) &&
        trie.vars[trie.Depth()] == var) {
      involved.push_back(&trie);
    }
  }
  MPCQP_CHECK(!involved.empty());

  // Enumerate the smallest child map, probe the others.
  AtomTrie* smallest = involved.front();
  for (AtomTrie* trie : involved) {
    if (trie->Current()->children.size() <
        smallest->Current()->children.size()) {
      smallest = trie;
    }
  }
  for (auto& [value, child] : smallest->Current()->children) {
    bool viable = true;
    size_t descended = 0;
    for (AtomTrie* trie : involved) {
      const auto it = trie->Current()->children.find(value);
      if (it == trie->Current()->children.end()) {
        viable = false;
        break;
      }
      trie->path.push_back(&it->second);
      ++descended;
    }
    if (viable) {
      state.binding[var] = value;
      Search(state, depth + 1);
    }
    for (size_t i = 0; i < descended; ++i) involved[i]->path.pop_back();
  }
}

}  // namespace

Relation EvalJoinWcoj(const ConjunctiveQuery& q,
                      const std::vector<Relation>& atoms,
                      const std::vector<int>& var_order) {
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());
  SearchState state;
  if (var_order.empty()) {
    for (int v = 0; v < q.num_vars(); ++v) state.order.push_back(v);
  } else {
    MPCQP_CHECK_EQ(static_cast<int>(var_order.size()), q.num_vars());
    std::vector<bool> seen(q.num_vars(), false);
    for (int v : var_order) {
      MPCQP_CHECK_GE(v, 0);
      MPCQP_CHECK_LT(v, q.num_vars());
      MPCQP_CHECK(!seen[v]) << "duplicate variable in order";
      seen[v] = true;
    }
    state.order = var_order;
  }
  std::vector<int> order_pos(q.num_vars(), 0);
  for (size_t i = 0; i < state.order.size(); ++i) {
    order_pos[state.order[i]] = static_cast<int>(i);
  }

  Relation output(q.num_vars());
  for (int j = 0; j < q.num_atoms(); ++j) {
    MPCQP_CHECK_EQ(atoms[j].arity(), q.atom(j).arity());
    state.tries.push_back(BuildTrie(q.atom(j), atoms[j], order_pos));
    if (state.tries.back().root.children.empty()) {
      return output;  // An empty atom kills the join.
    }
  }
  for (AtomTrie& trie : state.tries) trie.path.push_back(&trie.root);
  state.binding.assign(q.num_vars(), 0);
  state.output = &output;
  Search(state, 0);
  return output;
}

}  // namespace mpcqp
