#ifndef MPCQP_QUERY_HYPERGRAPH_LP_H_
#define MPCQP_QUERY_HYPERGRAPH_LP_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "query/query.h"

namespace mpcqp {

// Linear programs over a query's hypergraph (deck slides 39-44, 55).
// Variables of the hypergraph are the query variables; hyperedges are the
// atoms' variable sets.

// An LP optimum together with its witness weights.
struct WeightedSolution {
  double value = 0.0;
  std::vector<double> weights;
};

// Fractional edge packing number τ*: maximize Σ_j u_j subject to, for every
// variable x, Σ_{j : x ∈ S_j} u_j <= 1, u >= 0. Governs the skew-free
// one-round load L = IN/p^{1/τ*}.
StatusOr<WeightedSolution> FractionalEdgePacking(const ConjunctiveQuery& q);

// Fractional edge cover number ρ*: minimize Σ_j w_j subject to, for every
// variable x, Σ_{j : x ∈ S_j} w_j >= 1, w >= 0. Governs the AGM output
// bound OUT <= IN^{ρ*}.
StatusOr<WeightedSolution> FractionalEdgeCover(const ConjunctiveQuery& q);

// Fractional vertex cover: minimize Σ_i v_i subject to, for every atom S_j,
// Σ_{i ∈ S_j} v_i >= 1, v >= 0. By LP duality its optimum equals τ*.
StatusOr<WeightedSolution> FractionalVertexCover(const ConjunctiveQuery& q);

// The AGM bound with per-atom sizes: the minimum over fractional edge
// covers w of Π_j |S_j|^{w_j}. Atoms of size 0 force OUT = 0. Requires
// sizes.size() == q.num_atoms().
StatusOr<double> AgmBound(const ConjunctiveQuery& q,
                          const std::vector<int64_t>& sizes);

// Fractional HyperCube share exponents for `p` servers and per-atom sizes
// (Beame et al. '14; deck slides 37-40): exponents e_i >= 0 with
// Σ e_i <= 1 minimizing the max per-atom load |S_j| / p^{Σ_{i∈S_j} e_i}.
struct ShareExponents {
  std::vector<double> exponents;  // One per query variable.
  // The minimized load max_j |S_j| / p^{Σ_{i∈S_j} e_i} (in tuples).
  double predicted_load = 0.0;
};
StatusOr<ShareExponents> OptimalShareExponents(
    const ConjunctiveQuery& q, const std::vector<int64_t>& sizes, int p);

// The load lower-bound form of the same quantity: the maximum over
// fractional edge packings u of (Π_j |S_j|^{u_j} / p)^{1 / Σ_j u_j}
// (slide 40). Computed by bisection on log L, each step solving an LP over
// the packing polytope. By duality this equals
// OptimalShareExponents(...).predicted_load up to numerical tolerance —
// asserted by tests.
StatusOr<double> MaxPackingLoad(const ConjunctiveQuery& q,
                                const std::vector<int64_t>& sizes, int p);

// The load (Π_j |S_j|^{u_j} / p)^{1/Σu_j} attained by one explicit packing
// `u` (rows of the slide-42 table). Σu must be > 0.
double LoadForPacking(const std::vector<double>& u,
                      const std::vector<int64_t>& sizes, int p);

}  // namespace mpcqp

#endif  // MPCQP_QUERY_HYPERGRAPH_LP_H_
