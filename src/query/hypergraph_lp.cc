#include "query/hypergraph_lp.h"

#include <cmath>

#include "common/check.h"
#include "lp/simplex.h"

namespace mpcqp {

namespace {

// One LP constraint row per query variable: Σ_{j: var ∈ S_j} u_j (op) 1.
std::vector<LpConstraint> PerVarConstraints(const ConjunctiveQuery& q,
                                            LpConstraintOp op) {
  std::vector<LpConstraint> constraints;
  for (int v = 0; v < q.num_vars(); ++v) {
    LpConstraint c;
    c.coeffs.assign(q.num_atoms(), 0.0);
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (q.atom(j).ContainsVar(v)) c.coeffs[j] = 1.0;
    }
    c.op = op;
    c.rhs = 1.0;
    constraints.push_back(std::move(c));
  }
  return constraints;
}

}  // namespace

StatusOr<WeightedSolution> FractionalEdgePacking(const ConjunctiveQuery& q) {
  LpProblem lp;
  lp.num_vars = q.num_atoms();
  lp.sense = LpObjective::kMaximize;
  lp.objective.assign(q.num_atoms(), 1.0);
  lp.constraints = PerVarConstraints(q, LpConstraintOp::kLessEq);
  MPCQP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  return WeightedSolution{sol.objective_value, std::move(sol.x)};
}

StatusOr<WeightedSolution> FractionalEdgeCover(const ConjunctiveQuery& q) {
  LpProblem lp;
  lp.num_vars = q.num_atoms();
  lp.sense = LpObjective::kMinimize;
  lp.objective.assign(q.num_atoms(), 1.0);
  lp.constraints = PerVarConstraints(q, LpConstraintOp::kGreaterEq);
  MPCQP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  return WeightedSolution{sol.objective_value, std::move(sol.x)};
}

StatusOr<WeightedSolution> FractionalVertexCover(const ConjunctiveQuery& q) {
  LpProblem lp;
  lp.num_vars = q.num_vars();
  lp.sense = LpObjective::kMinimize;
  lp.objective.assign(q.num_vars(), 1.0);
  for (int j = 0; j < q.num_atoms(); ++j) {
    LpConstraint c;
    c.coeffs.assign(q.num_vars(), 0.0);
    for (int v : q.atom(j).vars) c.coeffs[v] = 1.0;
    c.op = LpConstraintOp::kGreaterEq;
    c.rhs = 1.0;
    lp.constraints.push_back(std::move(c));
  }
  MPCQP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  return WeightedSolution{sol.objective_value, std::move(sol.x)};
}

StatusOr<double> AgmBound(const ConjunctiveQuery& q,
                          const std::vector<int64_t>& sizes) {
  if (static_cast<int>(sizes.size()) != q.num_atoms()) {
    return InvalidArgumentError("sizes.size() != num_atoms");
  }
  for (int64_t s : sizes) {
    if (s < 0) return InvalidArgumentError("negative relation size");
    if (s == 0) return 0.0;
  }
  // Minimize Σ w_j ln|S_j| over fractional edge covers w.
  LpProblem lp;
  lp.num_vars = q.num_atoms();
  lp.sense = LpObjective::kMinimize;
  lp.objective.resize(q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) {
    lp.objective[j] = std::log(static_cast<double>(sizes[j]));
  }
  lp.constraints = PerVarConstraints(q, LpConstraintOp::kGreaterEq);
  MPCQP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  return std::exp(sol.objective_value);
}

StatusOr<ShareExponents> OptimalShareExponents(
    const ConjunctiveQuery& q, const std::vector<int64_t>& sizes, int p) {
  if (static_cast<int>(sizes.size()) != q.num_atoms()) {
    return InvalidArgumentError("sizes.size() != num_atoms");
  }
  if (p < 1) return InvalidArgumentError("p must be >= 1");
  for (int64_t s : sizes) {
    if (s <= 0) return InvalidArgumentError("sizes must be positive");
  }
  const double logp = std::log(static_cast<double>(p));
  const int k = q.num_vars();

  // Variables: e_0..e_{k-1} (share exponents), t (log of load).
  // minimize t
  //   s.t. for each atom j:  ln|S_j| - logp * Σ_{i∈S_j} e_i <= t
  //        Σ_i e_i <= 1,  e >= 0, t >= 0.
  // (t >= 0 is harmless: a load below 1 tuple is not meaningful.)
  LpProblem lp;
  lp.num_vars = k + 1;
  lp.sense = LpObjective::kMinimize;
  lp.objective.assign(k + 1, 0.0);
  lp.objective[k] = 1.0;
  for (int j = 0; j < q.num_atoms(); ++j) {
    LpConstraint c;
    c.coeffs.assign(k + 1, 0.0);
    for (int v : q.atom(j).vars) c.coeffs[v] = -logp;
    c.coeffs[k] = -1.0;
    c.op = LpConstraintOp::kLessEq;
    c.rhs = -std::log(static_cast<double>(sizes[j]));
    lp.constraints.push_back(std::move(c));
  }
  {
    LpConstraint sum_c;
    sum_c.coeffs.assign(k + 1, 0.0);
    for (int v = 0; v < k; ++v) sum_c.coeffs[v] = 1.0;
    sum_c.op = LpConstraintOp::kLessEq;
    sum_c.rhs = 1.0;
    lp.constraints.push_back(std::move(sum_c));
  }
  MPCQP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  ShareExponents result;
  result.exponents.assign(sol.x.begin(), sol.x.begin() + k);
  result.predicted_load = std::exp(sol.x[k]);
  return result;
}

double LoadForPacking(const std::vector<double>& u,
                      const std::vector<int64_t>& sizes, int p) {
  MPCQP_CHECK_EQ(u.size(), sizes.size());
  double sum_u = 0.0;
  double log_num = 0.0;
  for (size_t j = 0; j < u.size(); ++j) {
    MPCQP_CHECK_GE(u[j], 0.0);
    sum_u += u[j];
    MPCQP_CHECK_GT(sizes[j], 0);
    log_num += u[j] * std::log(static_cast<double>(sizes[j]));
  }
  MPCQP_CHECK_GT(sum_u, 0.0);
  const double log_load =
      (log_num - std::log(static_cast<double>(p))) / sum_u;
  return std::exp(log_load);
}

StatusOr<double> MaxPackingLoad(const ConjunctiveQuery& q,
                                const std::vector<int64_t>& sizes, int p) {
  if (static_cast<int>(sizes.size()) != q.num_atoms()) {
    return InvalidArgumentError("sizes.size() != num_atoms");
  }
  if (p < 1) return InvalidArgumentError("p must be >= 1");
  for (int64_t s : sizes) {
    if (s <= 0) return InvalidArgumentError("sizes must be positive");
  }
  const double logp = std::log(static_cast<double>(p));

  // g(logL) = max over packings u of Σ_j u_j (ln|S_j| - logL).
  // L* is the smallest L with g(logL) <= logp; g is non-increasing in logL,
  // so bisection applies.
  auto g = [&](double log_load) -> StatusOr<double> {
    LpProblem lp;
    lp.num_vars = q.num_atoms();
    lp.sense = LpObjective::kMaximize;
    lp.objective.resize(q.num_atoms());
    for (int j = 0; j < q.num_atoms(); ++j) {
      lp.objective[j] =
          std::log(static_cast<double>(sizes[j])) - log_load;
    }
    lp.constraints = PerVarConstraints(q, LpConstraintOp::kLessEq);
    MPCQP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
    return sol.objective_value;
  };

  double lo = 0.0;  // L = 1.
  double hi = 0.0;
  for (int64_t s : sizes) {
    hi = std::max(hi, std::log(static_cast<double>(s)));
  }
  // If even the largest size gives g <= logp, the load is bounded by 1...
  // bisection still converges to the correct point within [lo, hi].
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    MPCQP_ASSIGN_OR_RETURN(double gmid, g(mid));
    if (gmid > logp) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(hi);
}

}  // namespace mpcqp
