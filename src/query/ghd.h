#ifndef MPCQP_QUERY_GHD_H_
#define MPCQP_QUERY_GHD_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "query/query.h"

namespace mpcqp {

// A node (bag) of a generalized hypertree decomposition. We use the
// restricted but standard form where each bag is the set of variables of
// the atoms assigned to it, and every atom is assigned to exactly one bag.
// The width of a bag is the number of atoms assigned to it, so |bag
// relation| <= IN^width after materialization — the IN^w of GYM's
// L = O((IN^w + OUT)/p) (deck slide 95).
struct GhdNode {
  std::vector<int> atoms;     // Atom indices of the query.
  std::vector<int> vars;      // Union of those atoms' variables (sorted).
  int parent = -1;            // -1 for the root.
  std::vector<int> children;  // Filled by Ghd::Finalize.
};

// A rooted decomposition tree over a query's atoms.
class Ghd {
 public:
  // Builds from nodes with `atoms` and `parent` set; derives vars,
  // children, and checks shape (single root, tree).
  static Ghd FromNodes(const ConjunctiveQuery& q, std::vector<GhdNode> nodes);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const GhdNode& node(int index) const;
  int root() const { return root_; }

  // Max atoms per bag.
  int width() const;
  // Nodes on the longest root-to-leaf path.
  int depth() const;

  // Node indices grouped by level: result[0] = leaves' deepest level ...
  // Actually: result[d] = nodes at distance d from the root.
  std::vector<std::vector<int>> LevelsFromRoot() const;

  // Verifies the decomposition against `q`:
  //  - every atom assigned to exactly one node,
  //  - each node's vars = union of its atoms' vars,
  //  - running intersection property: for every variable, the nodes
  //    containing it form a connected subtree.
  Status Validate(const ConjunctiveQuery& q) const;

  std::string ToString(const ConjunctiveQuery& q) const;

 private:
  std::vector<GhdNode> nodes_;
  int root_ = -1;
};

// True iff `q` is α-acyclic (GYO ear-removal succeeds).
bool IsAcyclic(const ConjunctiveQuery& q);

// Builds a width-1 join tree for an acyclic query by GYO ear removal
// (one atom per bag). Returns FAILED_PRECONDITION for cyclic queries.
StatusOr<Ghd> BuildJoinTree(const ConjunctiveQuery& q);

// Width-1 chain decomposition for Path(n): depth n (deck slide 79 "Path-n").
Ghd ChainGhd(const ConjunctiveQuery& path_query);

// Width-1 star decomposition for Star(n): root R1, all others children
// (depth 2, slide 79 "Star-n").
Ghd StarGhd(const ConjunctiveQuery& star_query);

// Single-bag decomposition holding every atom: width = num_atoms, depth 1.
Ghd FlatGhd(const ConjunctiveQuery& q);

// Balanced decomposition for Path(n): width <= 3, depth O(log n)
// (slide 95's w=3, d=log(n) point of the tradeoff).
Ghd BalancedPathGhd(const ConjunctiveQuery& path_query);

// Width-w chain decomposition for Path(n): consecutive atoms grouped
// `bag_width` per bag, bags chained; depth = ceil(n / w). Sweeps the full
// r-vs-L frontier of slide 95 between the chain (w=1) and flat (w=n)
// extremes.
Ghd GroupedPathGhd(const ConjunctiveQuery& path_query, int bag_width);

}  // namespace mpcqp

#endif  // MPCQP_QUERY_GHD_H_
