#include "query/local_eval.h"

#include <algorithm>

#include "common/check.h"
#include "relation/relation_ops.h"

namespace mpcqp {

namespace {

// Rewrites an atom instance so each variable appears in one column:
// rows where repeated-variable columns disagree are dropped, duplicate
// columns projected away. Returns the relation and its variable list.
std::pair<Relation, std::vector<int>> NormalizeAtom(const Atom& atom,
                                                    const Relation& rel) {
  MPCQP_CHECK_EQ(rel.arity(), atom.arity());
  std::vector<int> vars;
  std::vector<int> keep_cols;
  bool has_repeats = false;
  for (int c = 0; c < atom.arity(); ++c) {
    const int v = atom.vars[c];
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
      keep_cols.push_back(c);
    } else {
      has_repeats = true;
    }
  }
  if (!has_repeats) return {rel, vars};

  Relation filtered = Filter(rel, [&](const Value* row) {
    for (int c = 0; c < atom.arity(); ++c) {
      for (int d = c + 1; d < atom.arity(); ++d) {
        if (atom.vars[c] == atom.vars[d] && row[c] != row[d]) return false;
      }
    }
    return true;
  });
  return {Project(filtered, keep_cols), vars};
}

}  // namespace

Relation EvalJoinLocal(const ConjunctiveQuery& q,
                       const std::vector<Relation>& atoms) {
  MPCQP_CHECK_EQ(static_cast<int>(atoms.size()), q.num_atoms());

  // Normalized atom instances with their variable lists.
  std::vector<Relation> rels;
  std::vector<std::vector<int>> rel_vars;
  for (int j = 0; j < q.num_atoms(); ++j) {
    auto [rel, vars] = NormalizeAtom(q.atom(j), atoms[j]);
    rels.push_back(std::move(rel));
    rel_vars.push_back(std::move(vars));
  }

  // Greedy join order: start from atom 0; repeatedly join an unused atom
  // sharing a variable with the accumulated result (else any remaining —
  // a genuine cross product).
  std::vector<bool> used(q.num_atoms(), false);
  Relation acc = rels[0];
  std::vector<int> acc_vars = rel_vars[0];
  used[0] = true;

  for (int step = 1; step < q.num_atoms(); ++step) {
    int pick = -1;
    for (int j = 0; j < q.num_atoms(); ++j) {
      if (used[j]) continue;
      for (int v : rel_vars[j]) {
        if (std::find(acc_vars.begin(), acc_vars.end(), v) !=
            acc_vars.end()) {
          pick = j;
          break;
        }
      }
      if (pick >= 0) break;
    }
    if (pick < 0) {
      for (int j = 0; j < q.num_atoms() && pick < 0; ++j) {
        if (!used[j]) pick = j;
      }
    }
    used[pick] = true;

    // Key columns: shared variables.
    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (size_t c = 0; c < rel_vars[pick].size(); ++c) {
      const auto it = std::find(acc_vars.begin(), acc_vars.end(),
                                rel_vars[pick][c]);
      if (it != acc_vars.end()) {
        left_keys.push_back(static_cast<int>(it - acc_vars.begin()));
        right_keys.push_back(static_cast<int>(c));
      }
    }
    acc = HashJoinLocal(acc, rels[pick], left_keys, right_keys);
    // HashJoinLocal output: acc columns, then non-key columns of pick.
    for (size_t c = 0; c < rel_vars[pick].size(); ++c) {
      if (std::find(right_keys.begin(), right_keys.end(),
                    static_cast<int>(c)) == right_keys.end()) {
        acc_vars.push_back(rel_vars[pick][c]);
      }
    }
  }

  // Project to variable-id order.
  MPCQP_CHECK_EQ(static_cast<int>(acc_vars.size()), q.num_vars());
  std::vector<int> cols(q.num_vars());
  for (int v = 0; v < q.num_vars(); ++v) {
    const auto it = std::find(acc_vars.begin(), acc_vars.end(), v);
    MPCQP_CHECK(it != acc_vars.end());
    cols[v] = static_cast<int>(it - acc_vars.begin());
  }
  return Project(acc, cols);
}

}  // namespace mpcqp
