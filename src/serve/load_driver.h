#ifndef MPCQP_SERVE_LOAD_DRIVER_H_
#define MPCQP_SERVE_LOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/query_server.h"

namespace mpcqp {

// Closed-loop load generation against a QueryServer: K client threads
// each issue queries back to back (round-robin over the workload) until
// the request budget is spent, collecting per-request latencies. This is
// what `mpcqp_run --serve` and bench_serving drive.

struct LoadOptions {
  int clients = 1;            // Concurrent client threads.
  int64_t requests = 100;     // Total requests across all clients.
};

struct LoadReport {
  int clients = 0;
  int64_t completed = 0;
  int64_t errors = 0;         // Non-OK Executes (UNAVAILABLE etc.).
  double wall_ms = 0.0;
  double qps = 0.0;           // completed / wall seconds.
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  // Server-side counter snapshots (taken after the run).
  int64_t executed = 0;       // Queries that actually ran the algorithm.
  int64_t result_cache_hits = 0;
  int64_t coalesced = 0;
  int64_t rejected_overload = 0;
  int64_t rejected_memory = 0;

  std::string ToJson() const;
};

// Runs `options.requests` queries from `queries` against `server` using
// `options.clients` threads. Requests are numbered by a shared ticket
// counter and ticket t issues queries[t % queries.size()], so the issue
// counts per query are exact for any client count — and concurrent
// clients, holding consecutive tickets, overlap on the same few queries
// whenever the workload is shorter than the client count (deliberately
// cache- and coalesce-friendly, like real repeated traffic).
LoadReport RunLoad(QueryServer& server,
                   const std::vector<std::string>& queries,
                   const LoadOptions& options);

}  // namespace mpcqp

#endif  // MPCQP_SERVE_LOAD_DRIVER_H_
