#include "serve/query_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "acyclic/gym.h"
#include "common/check.h"
#include "common/random.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "multiway/binary_plan.h"
#include "multiway/hypercube.h"
#include "multiway/skew_hc.h"
#include "planner/planner.h"
#include "query/ghd.h"
#include "query/hypergraph_lp.h"
#include "query/query.h"

namespace mpcqp {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Resolved inputs of one query: catalog snapshots in atom order.
struct ResolvedAtoms {
  std::vector<Catalog::Entry> entries;
};

StatusOr<ResolvedAtoms> Resolve(const ConjunctiveQuery& q,
                                const Catalog& catalog) {
  ResolvedAtoms resolved;
  resolved.entries.reserve(q.num_atoms());
  for (int j = 0; j < q.num_atoms(); ++j) {
    const Atom& atom = q.atom(j);
    Catalog::Entry entry;
    if (!catalog.Find(atom.name, &entry)) {
      return NotFoundError("no relation named '" + atom.name +
                           "' in the catalog");
    }
    if (entry.relation.arity() != atom.arity()) {
      return InvalidArgumentError(
          "atom " + atom.name + " has arity " + std::to_string(atom.arity()) +
          " but catalog relation has arity " +
          std::to_string(entry.relation.arity()));
    }
    resolved.entries.push_back(std::move(entry));
  }
  return resolved;
}

// Inputs are pinned twice during execution (the base fragments plus the
// routed copies a one-round exchange materializes), and the output can be
// as large as the AGM bound allows.
int64_t EstimateBytes(const ConjunctiveQuery& q, const ResolvedAtoms& atoms) {
  int64_t input_bytes = 0;
  std::vector<int64_t> sizes;
  sizes.reserve(atoms.entries.size());
  for (const Catalog::Entry& entry : atoms.entries) {
    input_bytes += entry.relation.size() * entry.relation.arity() *
                   static_cast<int64_t>(sizeof(Value));
    sizes.push_back(entry.relation.size());
  }
  int64_t output_bytes = 0;
  if (const auto agm = AgmBound(q, sizes); agm.ok()) {
    // Clamp before the cast: the AGM bound of even modest cyclic queries
    // overflows int64 as a double.
    const double capped = std::min(*agm, 1e15);
    output_bytes = static_cast<int64_t>(capped) * q.num_vars() *
                   static_cast<int64_t>(sizeof(Value));
  }
  return 2 * input_bytes + output_bytes;
}

// The result-cache key: everything that can change the answer bit for
// bit. Thread count and morsel size are deliberately absent — the
// determinism contract says they never change results.
std::string BuildKey(const ConjunctiveQuery& q, const ResolvedAtoms& atoms,
                     const ServeOptions& options) {
  std::string key = q.ToString();
  for (const Catalog::Entry& entry : atoms.entries) {
    key += "|fp=" + std::to_string(entry.fingerprint);
  }
  key += "|p=" + std::to_string(options.num_servers);
  key += "|alg=" + options.algorithm;
  key += "|seed=" + std::to_string(options.seed);
  key += "|rc=" + std::to_string(options.round_cost);
  return key;
}

}  // namespace

QueryServer::QueryServer(Catalog* catalog, ServeOptions options)
    : catalog_(catalog),
      options_(options),
      pool_(ExecutorRegistry::Shared(options.num_threads)),
      admission_(options.max_inflight, options.max_queued) {
  MPCQP_CHECK(catalog != nullptr);
  MPCQP_CHECK_GE(options.num_servers, 1);
}

int64_t QueryServer::EstimateQueryBytes(const std::string& query_text,
                                        const Catalog& catalog) {
  const auto query = ConjunctiveQuery::Parse(query_text);
  if (!query.ok()) return 0;
  const auto resolved = Resolve(*query, catalog);
  if (!resolved.ok()) return 0;
  return EstimateBytes(*query, *resolved);
}

QueryServer::Counters QueryServer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

StatusOr<QueryResult> QueryServer::Execute(const std::string& query_text) {
  const double start_ms = NowMs();
  const auto query = ConjunctiveQuery::Parse(query_text);
  if (!query.ok()) return query.status();
  const ConjunctiveQuery& q = *query;

  auto resolved = Resolve(q, *catalog_);
  if (!resolved.ok()) return resolved.status();

  const int64_t estimated_bytes = EstimateBytes(q, *resolved);
  if (options_.mem_budget_bytes > 0 &&
      estimated_bytes > options_.mem_budget_bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.rejected_memory;
    }
    return ResourceExhaustedError(
        "query estimated at " + std::to_string(estimated_bytes) +
        " bytes exceeds the per-query budget of " +
        std::to_string(options_.mem_budget_bytes));
  }

  const std::string key = BuildKey(q, *resolved, options_);

  // Fast path: a previous execution against the same data already
  // answered this.
  if (options_.enable_result_cache) {
    Relation cached;
    if (result_cache_.Lookup(key, &cached)) {
      QueryResult result;
      result.output = std::move(cached);
      result.algorithm = options_.algorithm;
      result.result_cache_hit = true;
      result.latency_ms = NowMs() - start_ms;
      return result;
    }
  }

  // Coalesce with an identical in-flight execution, or become the leader.
  std::shared_ptr<Inflight> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
      ++counters_.coalesced;
      flight->done_cv.wait(lock, [&] { return flight->done; });
      if (!flight->status.ok()) return flight->status;
      QueryResult result;
      result.output = flight->output;  // COW handle, O(1).
      result.algorithm = flight->algorithm;
      result.plan_cache_hit = flight->plan_cache_hit;
      result.coalesced = true;
      result.latency_ms = NowMs() - start_ms;
      return result;
    }
    flight = std::make_shared<Inflight>();
    inflight_[key] = flight;
  }

  // Leader path. Whatever happens, we must publish to followers and
  // remove the in-flight entry.
  auto publish = [&](Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    flight->status = std::move(status);
    flight->done = true;
    inflight_.erase(key);
    flight->done_cv.notify_all();
  };

  if (Status admitted = admission_.Admit(estimated_bytes); !admitted.ok()) {
    publish(admitted);
    return admitted;
  }

  ClusterOptions cluster_options;
  cluster_options.morsel_rows = options_.morsel_rows;
  cluster_options.layout = options_.layout;
  cluster_options.shared_pool = pool_;
  // seed + 1 for the cluster, seed + 2 for the algorithm Rng: the exact
  // derivation mpcqp_run uses, so served answers are bit-identical to the
  // one-shot CLI.
  Cluster cluster(options_.num_servers, options_.seed + 1, cluster_options);
  Cluster::ScopedExecution exec_scope(cluster);

  std::vector<DistRelation> dist;
  dist.reserve(resolved->entries.size());
  for (const Catalog::Entry& entry : resolved->entries) {
    dist.push_back(DistRelation::Scatter(entry.relation, options_.num_servers,
                                         &cluster.pool()));
  }
  Rng algo_rng(options_.seed + 2);

  std::string algorithm = options_.algorithm;
  bool plan_cache_hit = false;
  DistRelation output(q.num_vars(), options_.num_servers);
  if (algorithm == "auto" || algorithm == "planner") {
    PlannerOptions planner_options;
    planner_options.round_cost_tuples = options_.round_cost;
    const PlannedQuery planned =
        PlanQuery(q, dist, options_.num_servers, planner_options,
                  options_.enable_plan_cache ? &plan_cache_ : nullptr);
    plan_cache_hit = planned.cache_hit;
    output = ExecutePlannedQuery(cluster, q, dist, planned, algo_rng);
    algorithm = PlanAlgorithmName(planned.plan.family);
  } else if (algorithm == "hypercube") {
    output = HyperCubeJoin(cluster, q, dist).output;
  } else if (algorithm == "skewhc") {
    output = SkewHcJoin(cluster, q, dist).output;
  } else if (algorithm == "binary") {
    BinaryPlanOptions plan;
    plan.skew_aware = true;
    output = IterativeBinaryJoin(cluster, q, dist, algo_rng, plan).output;
  } else if (algorithm == "gym") {
    const auto tree = BuildJoinTree(q);
    if (!tree.ok()) {
      admission_.Release(estimated_bytes);
      publish(tree.status());
      return tree.status();
    }
    GymOptions gym;
    gym.optimized = true;
    output = GymJoin(cluster, q, *tree, dist, algo_rng, gym).output;
  } else {
    admission_.Release(estimated_bytes);
    const Status status =
        InvalidArgumentError("unknown algorithm: " + algorithm);
    publish(status);
    return status;
  }

  QueryResult result;
  result.output = output.Collect(&cluster.pool());
  result.stats = BuildStatsReport(cluster);
  result.algorithm = algorithm;
  result.plan_cache_hit = plan_cache_hit;

  if (options_.enable_result_cache) {
    result_cache_.Insert(key, result.output);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.executed;
    flight->output = result.output;
    flight->algorithm = result.algorithm;
    flight->plan_cache_hit = result.plan_cache_hit;
    flight->done = true;
    inflight_.erase(key);
    flight->done_cv.notify_all();
  }
  admission_.Release(estimated_bytes);

  result.latency_ms = NowMs() - start_ms;
  return result;
}

}  // namespace mpcqp
