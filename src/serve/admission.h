#ifndef MPCQP_SERVE_ADMISSION_H_
#define MPCQP_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace mpcqp {

// Bounded admission-control queue for the serving runtime: at most
// `max_inflight` queries execute at once, at most `max_queued` more wait
// for a slot, and anything beyond that is rejected immediately with
// UNAVAILABLE (fail fast under overload instead of building an unbounded
// backlog). Per-query memory budgeting happens in QueryServer before
// admission (a query whose estimated footprint exceeds the budget never
// takes a slot); the controller additionally tracks the total estimated
// bytes of admitted queries so operators can see pressure.
//
// Thread-safe; Admit() blocks (FIFO via condition variable) until a slot
// frees.
class AdmissionController {
 public:
  struct Counters {
    int64_t admitted = 0;
    int64_t rejected_overload = 0;
    int inflight = 0;
    int peak_inflight = 0;
    int peak_queued = 0;
    int64_t inflight_bytes = 0;
    int64_t peak_inflight_bytes = 0;
  };

  AdmissionController(int max_inflight, int max_queued);

  // Blocks until one of the max_inflight slots is free, charging
  // `estimated_bytes` to the in-flight total; UNAVAILABLE when the wait
  // queue is already full. Pair every OK return with one Release().
  Status Admit(int64_t estimated_bytes);
  void Release(int64_t estimated_bytes);

  Counters counters() const;

 private:
  const int max_inflight_;
  const int max_queued_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  int queued_ = 0;  // Guarded by mutex_.
  Counters counters_;
};

}  // namespace mpcqp

#endif  // MPCQP_SERVE_ADMISSION_H_
