#ifndef MPCQP_SERVE_CATALOG_H_
#define MPCQP_SERVE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <mutex>

#include "relation/relation.h"

namespace mpcqp {

// The serving runtime's table of named base relations. Registration
// computes a content fingerprint (FNV-1a over arity, size, and every
// value) used to key the result cache: a query result stays servable from
// cache exactly as long as every relation it read still has the
// fingerprint it was computed against. Replacing a relation under the
// same name bumps the fingerprint (unless the content is identical, in
// which case cached results are — correctly — still valid).
//
// Thread-safe: many queries resolve atoms while an updater replaces
// relations. Lookups hand out COW Relation handles (O(1) copies), so a
// query keeps executing against the snapshot it resolved even if the name
// is replaced mid-flight.
class Catalog {
 public:
  struct Entry {
    Relation relation;
    uint64_t fingerprint = 0;
    int64_t version = 0;  // Bumped on every Register for the same name.
  };

  // Registers (or replaces) `name`. Returns the new version number.
  int64_t Register(const std::string& name, Relation relation);

  // Snapshot of the named entry; false if absent.
  bool Find(const std::string& name, Entry* out) const;

  std::vector<std::string> names() const;
  int64_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

// Content fingerprint of a relation (FNV-1a over arity, row count, and
// the payload values). Exposed for tests.
uint64_t FingerprintRelation(const Relation& relation);

}  // namespace mpcqp

#endif  // MPCQP_SERVE_CATALOG_H_
