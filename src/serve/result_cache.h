#ifndef MPCQP_SERVE_RESULT_CACHE_H_
#define MPCQP_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "relation/relation.h"

namespace mpcqp {

// LRU cache of collected query outputs for the serving runtime, keyed by
// (normalized query text, per-atom relation fingerprints, cluster size,
// algorithm, seed) — the key is built by QueryServer; this class only
// sees opaque strings. It sits ABOVE the planner's PlanCache: a result
// hit skips execution entirely, a result miss that is a plan hit still
// skips enumeration.
//
// Relation values are COW handles, so Insert/Lookup move O(1) handles,
// never payload bytes. Entries whose relations changed never hit (their
// fingerprints differ), so stale results are evicted by LRU pressure
// rather than scanned for.
//
// Thread-safe; a single mutex is fine because the critical sections are
// pointer swaps (the expensive part — executing a query — happens
// outside).
class ResultCache {
 public:
  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  explicit ResultCache(int64_t max_entries = 4096);

  // Fills `out` and refreshes LRU position on a hit.
  bool Lookup(const std::string& key, Relation* out);

  // Inserts (or refreshes) `key`; evicts the least recently used entry
  // when over capacity.
  void Insert(const std::string& key, const Relation& value);

  Counters counters() const;
  int64_t size() const;
  void Clear();

 private:
  struct Entry {
    Relation value;
    std::list<std::string>::iterator lru_position;
  };

  mutable std::mutex mutex_;
  int64_t max_entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::map<std::string, Entry> entries_;
  Counters counters_;
};

}  // namespace mpcqp

#endif  // MPCQP_SERVE_RESULT_CACHE_H_
