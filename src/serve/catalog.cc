#include "serve/catalog.h"

#include <utility>

namespace mpcqp {

uint64_t FingerprintRelation(const Relation& relation) {
  // FNV-1a, folding in the shape first so (arity=2, rows=[1,2]) and
  // (arity=1, rows=[1],[2]) differ.
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (byte * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<uint64_t>(relation.arity()));
  mix(static_cast<uint64_t>(relation.size()));
  for (const Value value : relation.data()) {
    mix(static_cast<uint64_t>(value));
  }
  return h;
}

int64_t Catalog::Register(const std::string& name, Relation relation) {
  const uint64_t fingerprint = FingerprintRelation(relation);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  entry.relation = std::move(relation);
  entry.fingerprint = fingerprint;
  return ++entry.version;
}

bool Catalog::Find(const std::string& name, Entry* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<std::string> Catalog::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

int64_t Catalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace mpcqp
