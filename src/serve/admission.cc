#include "serve/admission.h"

#include <algorithm>

#include "common/check.h"

namespace mpcqp {

AdmissionController::AdmissionController(int max_inflight, int max_queued)
    : max_inflight_(max_inflight), max_queued_(max_queued) {
  MPCQP_CHECK_GE(max_inflight, 1);
  MPCQP_CHECK_GE(max_queued, 0);
}

Status AdmissionController::Admit(int64_t estimated_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (counters_.inflight >= max_inflight_) {
    if (queued_ >= max_queued_) {
      ++counters_.rejected_overload;
      return UnavailableError(
          "admission queue full (" + std::to_string(counters_.inflight) +
          " in flight, " + std::to_string(queued_) + " queued)");
    }
    ++queued_;
    counters_.peak_queued = std::max(counters_.peak_queued, queued_);
    slot_free_.wait(lock,
                    [this] { return counters_.inflight < max_inflight_; });
    --queued_;
  }
  ++counters_.inflight;
  ++counters_.admitted;
  counters_.inflight_bytes += estimated_bytes;
  counters_.peak_inflight =
      std::max(counters_.peak_inflight, counters_.inflight);
  counters_.peak_inflight_bytes =
      std::max(counters_.peak_inflight_bytes, counters_.inflight_bytes);
  return OkStatus();
}

void AdmissionController::Release(int64_t estimated_bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MPCQP_CHECK_GT(counters_.inflight, 0);
    --counters_.inflight;
    counters_.inflight_bytes -= estimated_bytes;
  }
  slot_free_.notify_one();
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace mpcqp
