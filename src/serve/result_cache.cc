#include "serve/result_cache.h"

#include <utility>

#include "common/check.h"

namespace mpcqp {

ResultCache::ResultCache(int64_t max_entries) : max_entries_(max_entries) {
  MPCQP_CHECK_GE(max_entries, 1);
}

bool ResultCache::Lookup(const std::string& key, Relation* out) {
  MPCQP_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  *out = it->second.value;
  ++counters_.hits;
  return true;
}

void ResultCache::Insert(const std::string& key, const Relation& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = value;
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{value, lru_.begin()};
  ++counters_.insertions;
  while (static_cast<int64_t>(entries_.size()) > max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++counters_.evictions;
  }
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

int64_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  counters_ = Counters();
}

}  // namespace mpcqp
