#include "serve/load_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"

namespace mpcqp {
namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double position = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(position);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

LoadReport RunLoad(QueryServer& server,
                   const std::vector<std::string>& queries,
                   const LoadOptions& options) {
  MPCQP_CHECK(!queries.empty());
  MPCQP_CHECK_GE(options.clients, 1);

  std::atomic<int64_t> next_request{0};
  std::mutex collect_mutex;
  std::vector<double> latencies;
  int64_t errors = 0;
  int64_t cache_hits = 0;

  auto client = [&]() {
    std::vector<double> local_latencies;
    int64_t local_errors = 0;
    int64_t local_hits = 0;
    while (true) {
      const int64_t ticket = next_request.fetch_add(1);
      if (ticket >= options.requests) break;
      // Tickets walk the workload round-robin, so every query is issued
      // floor/ceil(requests / |queries|) times regardless of the client
      // count, and concurrent clients (holding consecutive tickets) still
      // overlap on the same few queries when the workload is short.
      const std::string& query =
          queries[static_cast<size_t>(ticket % queries.size())];
      const auto result = server.Execute(query);
      if (!result.ok()) {
        ++local_errors;
        continue;
      }
      local_latencies.push_back(result->latency_ms);
      if (result->result_cache_hit) ++local_hits;
    }
    std::lock_guard<std::mutex> lock(collect_mutex);
    latencies.insert(latencies.end(), local_latencies.begin(),
                     local_latencies.end());
    errors += local_errors;
    cache_hits += local_hits;
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (int i = 0; i < options.clients; ++i) threads.emplace_back(client);
  for (std::thread& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::sort(latencies.begin(), latencies.end());
  LoadReport report;
  report.clients = options.clients;
  report.completed = static_cast<int64_t>(latencies.size());
  report.errors = errors;
  report.wall_ms = wall_ms;
  report.qps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(report.completed) / wall_ms
                  : 0.0;
  double sum = 0;
  for (const double v : latencies) sum += v;
  report.mean_ms =
      latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size());
  report.p50_ms = Percentile(latencies, 0.50);
  report.p95_ms = Percentile(latencies, 0.95);
  report.p99_ms = Percentile(latencies, 0.99);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();

  const QueryServer::Counters counters = server.counters();
  report.executed = counters.executed;
  report.coalesced = counters.coalesced;
  report.rejected_memory = counters.rejected_memory;
  report.result_cache_hits = server.result_cache().counters().hits;
  report.rejected_overload = server.admission().counters().rejected_overload;
  return report;
}

std::string LoadReport::ToJson() const {
  std::string json = "{";
  auto field = [&json](const std::string& name, const std::string& value,
                       bool last = false) {
    json += "\"" + name + "\": " + value + (last ? "" : ", ");
  };
  auto num = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", v);
    return std::string(buffer);
  };
  field("clients", std::to_string(clients));
  field("completed", std::to_string(completed));
  field("errors", std::to_string(errors));
  field("wall_ms", num(wall_ms));
  field("qps", num(qps));
  field("mean_ms", num(mean_ms));
  field("p50_ms", num(p50_ms));
  field("p95_ms", num(p95_ms));
  field("p99_ms", num(p99_ms));
  field("max_ms", num(max_ms));
  field("executed", std::to_string(executed));
  field("result_cache_hits", std::to_string(result_cache_hits));
  field("coalesced", std::to_string(coalesced));
  field("rejected_overload", std::to_string(rejected_overload));
  field("rejected_memory", std::to_string(rejected_memory), /*last=*/true);
  json += "}";
  return json;
}

}  // namespace mpcqp
