#ifndef MPCQP_SERVE_QUERY_SERVER_H_
#define MPCQP_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "mpc/metrics.h"
#include "planner/plan_cache.h"
#include "relation/columnar.h"
#include "relation/relation.h"
#include "serve/admission.h"
#include "serve/catalog.h"
#include "serve/result_cache.h"

namespace mpcqp {

// Configuration of one serving endpoint. Defaults match mpcqp_run's
// single-query defaults so `--serve` answers exactly what the one-shot
// CLI would.
struct ServeOptions {
  int num_servers = 16;       // Simulated MPC cluster size p per query.
  int num_threads = 1;        // Shared pool width (first creator sizes it).
  int64_t morsel_rows = 8192;
  // Physical layout for hot kernels (never changes answers; see
  // ClusterOptions::layout).
  LayoutMode layout = LayoutMode::kAuto;
  std::string algorithm = "auto";  // auto|planner|hypercube|skewhc|binary|gym.
  uint64_t seed = 42;
  double round_cost = 0.0;    // Planner λ (tuples per round).
  // Admission control: at most max_inflight queries execute, at most
  // max_queued more wait; beyond that Execute returns UNAVAILABLE.
  int max_inflight = 4;
  int max_queued = 64;
  // Per-query memory budget (estimated input + output footprint); 0 =
  // unlimited. Queries whose estimate exceeds it get RESOURCE_EXHAUSTED
  // without taking an admission slot.
  int64_t mem_budget_bytes = 0;
  bool enable_result_cache = true;
  bool enable_plan_cache = true;
};

// What one served query returns: the collected output relation plus the
// per-query stats the runtime is required to keep isolated per Cluster.
struct QueryResult {
  Relation output;
  StatsReport stats;          // Empty rounds on a result-cache hit.
  std::string algorithm;      // What actually ran (planner resolves "auto").
  bool result_cache_hit = false;
  bool coalesced = false;     // Waited on an identical in-flight execution.
  bool plan_cache_hit = false;
  double latency_ms = 0.0;    // End-to-end, including queueing.
};

// The multi-query serving runtime (DESIGN.md, "Serving runtime"). One
// QueryServer owns:
//
//  - a handle to the process-wide shared ThreadPool (ExecutorRegistry);
//    every in-flight query attaches a logical Cluster to it, so N queries
//    interleave morsels on one set of OS threads;
//  - a thread-safe PlanCache shared across queries (isomorphic query
//    shapes skip join-order enumeration);
//  - a ResultCache keyed by (normalized query text, per-atom relation
//    fingerprints, p, algorithm, seed) — a hit skips execution entirely
//    and is sound because registering new data under an atom's name
//    changes its fingerprint;
//  - in-flight coalescing: concurrent Executes with the same result key
//    run once; followers block and share the leader's answer (the
//    thundering-herd / cache-stampede defense);
//  - an AdmissionController bounding concurrent executions and queue
//    depth, with per-query memory budget checks before a slot is taken.
//
// Execute() is thread-safe and blocking: call it from as many client
// threads as you like (serve/load_driver.h does exactly that).
//
// Determinism: every execution builds its Cluster with seed + 1 and its
// algorithm Rng with seed + 2 — the same derivation mpcqp_run uses — so a
// query's output and CostReport are bit-identical to a solo run of the
// one-shot CLI, no matter how many queries are in flight around it.
class QueryServer {
 public:
  struct Counters {
    int64_t executed = 0;      // Ran the algorithm (not cache/coalesced).
    int64_t coalesced = 0;
    int64_t rejected_memory = 0;
  };

  // `catalog` must outlive the server; relations resolve at Execute time,
  // so Register()ing new data between queries is the live-update path.
  QueryServer(Catalog* catalog, ServeOptions options);

  // Parses, resolves, admits, executes (or serves from cache), collects.
  // Errors: INVALID_ARGUMENT (bad query), NOT_FOUND (unknown atom name),
  // RESOURCE_EXHAUSTED (over memory budget), UNAVAILABLE (admission queue
  // full).
  StatusOr<QueryResult> Execute(const std::string& query_text);

  // Estimated bytes a query against `q`-shaped atoms of the given sizes
  // will pin: inputs twice (base + routed copies) plus the AGM-capped
  // output. Exposed for tests.
  static int64_t EstimateQueryBytes(const std::string& query_text,
                                    const Catalog& catalog);

  ThreadPool& pool() { return *pool_; }
  ResultCache& result_cache() { return result_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }
  const AdmissionController& admission() const { return admission_; }
  Counters counters() const;

 private:
  struct Inflight {
    std::condition_variable done_cv;
    bool done = false;
    Status status = OkStatus();
    Relation output;           // COW handle; valid when done && status ok.
    std::string algorithm;
    bool plan_cache_hit = false;
  };

  Catalog* catalog_;
  ServeOptions options_;
  std::shared_ptr<ThreadPool> pool_;
  PlanCache plan_cache_;
  ResultCache result_cache_;
  AdmissionController admission_;

  mutable std::mutex mutex_;  // Guards inflight_ and counters_.
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
  Counters counters_;
};

}  // namespace mpcqp

#endif  // MPCQP_SERVE_QUERY_SERVER_H_
